"""Cochran sampling theory as applied in paper section 4.3.

The injection space has three axes - the bit target b, the MPI process m
and the injection time t - of size b x m x t (at least ~3.9e6 points for
the smallest region).  Exhaustive injection being impossible, the paper
draws a random sample of size n chosen so that the estimated proportion p
of each error-manifestation class satisfies

    Pr(|P - p| < d) >= 1 - alpha                                      (1)

With N >> n and p approximately normal,

    n >= P (1 - P) (z_{alpha/2} / d)^2

and because P is unknown, *oversampling* takes P = 0.5 (the maximizer):

    n >= 0.25 (z_{alpha/2} / d)^2

"For each of the test applications, we performed 400-500 injections in
most regions.  With a confidence interval of 95 percent ... the
estimation error d is 4.4-4.9 percent."
"""

from __future__ import annotations

import math

from scipy.stats import norm


def z_alpha(alpha: float = 0.05) -> float:
    """Double-tailed alpha point of the standard normal distribution
    (z_{alpha/2}); 1.96 for alpha = 5 %."""
    if not 0 < alpha < 1:
        raise ValueError(f"alpha must be in (0, 1): {alpha}")
    return float(norm.ppf(1 - alpha / 2))


def sample_size(d: float, alpha: float = 0.05, p: float = 0.5) -> int:
    """Minimum n for estimation error ``d`` at confidence ``1 - alpha``
    when the true proportion is ``p`` (equation (1) solved for n)."""
    if not 0 < d < 1:
        raise ValueError(f"estimation error d must be in (0, 1): {d}")
    if not 0 <= p <= 1:
        raise ValueError(f"proportion p must be in [0, 1]: {p}")
    z = z_alpha(alpha)
    return math.ceil(p * (1 - p) * (z / d) ** 2)


def sample_size_oversampled(d: float, alpha: float = 0.05) -> int:
    """The paper's oversampling bound: n >= 0.25 (z/d)^2 (P = 0.5)."""
    return sample_size(d, alpha, p=0.5)


def achieved_error(n: int, alpha: float = 0.05) -> float:
    """Estimation error d achieved by ``n`` oversampled injections - the
    inverse of :func:`sample_size_oversampled`.  For n in [400, 500] at
    95 % confidence this is the paper's 4.4-4.9 percent."""
    if n <= 0:
        raise ValueError(f"sample size must be positive: {n}")
    return z_alpha(alpha) * math.sqrt(0.25 / n)


def proportion_ci(
    successes: int, n: int, alpha: float = 0.05
) -> tuple[float, float, float]:
    """``(p, lo, hi)``: the sample proportion and its normal-approximation
    confidence interval (used to annotate campaign tables)."""
    if n <= 0:
        raise ValueError(f"sample size must be positive: {n}")
    if not 0 <= successes <= n:
        raise ValueError(f"successes {successes} outside [0, {n}]")
    p = successes / n
    half = z_alpha(alpha) * math.sqrt(p * (1 - p) / n)
    return p, max(0.0, p - half), min(1.0, p + half)


def stratified_error_rate(
    errors: int, executed: int, pruned: int, pruned_rate: float = 0.0
) -> float:
    """Importance-weighted region error rate when a campaign executes
    only part of its sample (``campaign run --prune-masked``).

    The sampled faults split into two strata: ``executed`` trials that
    ran, and ``pruned`` trials the masking oracle proved masked.  The
    stratified estimator weights each stratum's rate by its share of
    the sample:

        p = (executed/n) * (errors/executed) + (pruned/n) * pruned_rate

    The oracle's soundness contract makes ``pruned_rate`` *known* to be
    0.0 - a pruned stratum with any other rate would be a proof-rule
    bug, not a sampling artifact - so the estimator reduces to
    ``errors / n``: exactly what falls out of tallying each pruned
    trial as a synthetic CORRECT.  This function is that equivalence,
    written down so the pruning layer's differential tests can assert
    it rather than assume it."""
    if executed < 0 or pruned < 0 or executed + pruned <= 0:
        raise ValueError(
            f"need a nonempty sample: executed={executed} pruned={pruned}"
        )
    if not 0 <= errors <= executed:
        raise ValueError(f"errors {errors} outside [0, {executed}]")
    if not 0 <= pruned_rate <= 1:
        raise ValueError(f"pruned_rate must be in [0, 1]: {pruned_rate}")
    n = executed + pruned
    executed_term = (executed / n) * (errors / executed) if executed else 0.0
    return executed_term + (pruned / n) * pruned_rate


def injection_space_size(bits: int, processes: int, time_points: int) -> int:
    """Size of the b x m x t injection space (section 4.3 computes at
    least 512 x 64 x 120 ~ 3.9e6 for the register region)."""
    for name, v in (("bits", bits), ("processes", processes), ("time_points", time_points)):
        if v <= 0:
            raise ValueError(f"{name} must be positive: {v}")
    return bits * processes * time_points
