"""Cochran sampling theory as applied in paper section 4.3.

The injection space has three axes - the bit target b, the MPI process m
and the injection time t - of size b x m x t (at least ~3.9e6 points for
the smallest region).  Exhaustive injection being impossible, the paper
draws a random sample of size n chosen so that the estimated proportion p
of each error-manifestation class satisfies

    Pr(|P - p| < d) >= 1 - alpha                                      (1)

With N >> n and p approximately normal,

    n >= P (1 - P) (z_{alpha/2} / d)^2

and because P is unknown, *oversampling* takes P = 0.5 (the maximizer):

    n >= 0.25 (z_{alpha/2} / d)^2

"For each of the test applications, we performed 400-500 injections in
most regions.  With a confidence interval of 95 percent ... the
estimation error d is 4.4-4.9 percent."
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.stats import norm


def z_alpha(alpha: float = 0.05) -> float:
    """Double-tailed alpha point of the standard normal distribution
    (z_{alpha/2}); 1.96 for alpha = 5 %."""
    if not 0 < alpha < 1:
        raise ValueError(f"alpha must be in (0, 1): {alpha}")
    return float(norm.ppf(1 - alpha / 2))


def sample_size(d: float, alpha: float = 0.05, p: float = 0.5) -> int:
    """Minimum n for estimation error ``d`` at confidence ``1 - alpha``
    when the true proportion is ``p`` (equation (1) solved for n)."""
    if not 0 < d < 1:
        raise ValueError(f"estimation error d must be in (0, 1): {d}")
    if not 0 <= p <= 1:
        raise ValueError(f"proportion p must be in [0, 1]: {p}")
    z = z_alpha(alpha)
    return math.ceil(p * (1 - p) * (z / d) ** 2)


def sample_size_oversampled(d: float, alpha: float = 0.05) -> int:
    """The paper's oversampling bound: n >= 0.25 (z/d)^2 (P = 0.5)."""
    return sample_size(d, alpha, p=0.5)


def achieved_error(n: int, alpha: float = 0.05) -> float:
    """Estimation error d achieved by ``n`` oversampled injections - the
    inverse of :func:`sample_size_oversampled`.  For n in [400, 500] at
    95 % confidence this is the paper's 4.4-4.9 percent."""
    if n <= 0:
        raise ValueError(f"sample size must be positive: {n}")
    return z_alpha(alpha) * math.sqrt(0.25 / n)


def proportion_ci(
    successes: int, n: int, alpha: float = 0.05
) -> tuple[float, float, float]:
    """``(p, lo, hi)``: the sample proportion and its normal-approximation
    confidence interval (used to annotate campaign tables)."""
    if n <= 0:
        raise ValueError(f"sample size must be positive: {n}")
    if not 0 <= successes <= n:
        raise ValueError(f"successes {successes} outside [0, {n}]")
    p = successes / n
    half = z_alpha(alpha) * math.sqrt(p * (1 - p) / n)
    return p, max(0.0, p - half), min(1.0, p + half)


def stratified_error_rate(
    errors: int, executed: int, pruned: int, pruned_rate: float = 0.0
) -> float:
    """Importance-weighted region error rate when a campaign executes
    only part of its sample (``campaign run --prune-masked``).

    The sampled faults split into two strata: ``executed`` trials that
    ran, and ``pruned`` trials the masking oracle proved masked.  The
    stratified estimator weights each stratum's rate by its share of
    the sample:

        p = (executed/n) * (errors/executed) + (pruned/n) * pruned_rate

    The oracle's soundness contract makes ``pruned_rate`` *known* to be
    0.0 - a pruned stratum with any other rate would be a proof-rule
    bug, not a sampling artifact - so the estimator reduces to
    ``errors / n``: exactly what falls out of tallying each pruned
    trial as a synthetic CORRECT.  This function is that equivalence,
    written down so the pruning layer's differential tests can assert
    it rather than assume it."""
    if executed < 0 or pruned < 0 or executed + pruned <= 0:
        raise ValueError(
            f"need a nonempty sample: executed={executed} pruned={pruned}"
        )
    if not 0 <= errors <= executed:
        raise ValueError(f"errors {errors} outside [0, {executed}]")
    if not 0 <= pruned_rate <= 1:
        raise ValueError(f"pruned_rate must be in [0, 1]: {pruned_rate}")
    n = executed + pruned
    executed_term = (executed / n) * (errors / executed) if executed else 0.0
    return executed_term + (pruned / n) * pruned_rate


@dataclass(frozen=True)
class StratumCell:
    """One stratum of a stratified region estimate.

    ``population`` counts the classification pool's members landing in
    this stratum (the weight numerator); ``executed``/``errors`` are the
    dynamic trials actually run there.  ``known_zero`` marks strata
    whose error rate is statically *proven* 0 - the predictor's masked
    stratum, backed by the oracle soundness contract - so they need no
    trials and contribute neither rate nor variance.
    """

    name: str
    population: int
    executed: int = 0
    errors: int = 0
    known_zero: bool = False

    @property
    def rate(self) -> float:
        if self.known_zero:
            return 0.0
        return self.errors / self.executed if self.executed else 0.0

    def variance_term(self, floor: bool = True) -> float:
        """``p_h (1 - p_h)`` with the same endpoint clamp the uniform
        adaptive driver applies, so an all-correct pilot cannot report
        zero width and stop a campaign after eight trials."""
        if self.known_zero:
            return 0.0
        if not self.executed:
            return 0.25  # unsampled: worst case
        p = self.rate
        if floor:
            eps = 1.0 / (self.executed + 1)
            p = min(max(p, eps), 1.0 - eps)
        return p * (1.0 - p)


@dataclass(frozen=True)
class StratifiedEstimate:
    """Importance-weighted region estimate over predicted-outcome strata.

    The classification pool is a uniform sample of the region's
    injection space, so stratum weights ``W_h = population_h / pool``
    are unbiased; executing trials *within* strata at any allocation
    and re-weighting by ``W_h`` recovers the unbiased region rate

        p = sum_h W_h p_h

    with half-width

        d = z * sqrt(sum_h W_h^2 p_h (1 - p_h) / n_h)

    which Neyman allocation (:func:`neyman_allocation`) minimizes for a
    given trial budget.  Known-zero strata (the oracle-proven masked
    stratum) carry weight but no variance: their savings are exactly
    the ``--prune-masked`` savings, folded into the estimator.
    """

    pool: int
    cells: tuple[StratumCell, ...]
    alpha: float = 0.05

    def weight(self, cell: StratumCell) -> float:
        return cell.population / self.pool if self.pool else 0.0

    @property
    def executed(self) -> int:
        return sum(c.executed for c in self.cells)

    @property
    def error_rate(self) -> float:
        return sum(self.weight(c) * c.rate for c in self.cells)

    @property
    def half_width(self) -> float:
        var = 0.0
        for c in self.cells:
            if c.known_zero:
                continue
            if not c.executed:
                if not c.population:
                    continue
                return float("inf")  # weighted stratum with no data
            var += self.weight(c) ** 2 * c.variance_term() / c.executed
        return z_alpha(self.alpha) * math.sqrt(var)

    @property
    def uniform_equivalent_n(self) -> int:
        """Trials a uniform oversampled Cochran campaign would need to
        guarantee this estimate's half-width - the savings baseline."""
        d = self.half_width
        if not 0.0 < d < 1.0:
            return 0
        return sample_size_oversampled(d, self.alpha)


def neyman_allocation(
    cells: tuple[StratumCell, ...],
    pool: int,
    total: int,
) -> dict[str, int]:
    """Allocate ``total`` further trials across strata minimizing the
    stratified variance: ``n_h`` proportional to ``W_h * s_h`` (Neyman),
    with deterministic largest-remainder rounding and per-stratum caps
    at the remaining unexecuted population (each pool member is one
    concrete, addressable trial spec).  Known-zero and exhausted strata
    get nothing."""
    if total < 0:
        raise ValueError(f"allocation total must be >= 0: {total}")
    live = [
        c for c in cells
        if not c.known_zero and c.population > c.executed
    ]
    scores = {
        c.name: (c.population / pool) * math.sqrt(c.variance_term())
        for c in live
    }
    mass = sum(scores.values())
    out = {c.name: 0 for c in cells}
    if not live or mass <= 0.0 or total == 0:
        return out
    remaining = {c.name: c.population - c.executed for c in live}
    # Iterate until the budget is spent or every stratum is capped;
    # largest-remainder keeps the split deterministic and exact.
    budget = total
    while budget > 0:
        open_cells = [c for c in live if out[c.name] < remaining[c.name]]
        open_mass = sum(scores[c.name] for c in open_cells)
        if not open_cells or open_mass <= 0.0:
            break
        shares = []
        for c in sorted(open_cells, key=lambda c: c.name):
            exact = budget * scores[c.name] / open_mass
            shares.append((c.name, int(exact), exact - int(exact)))
        given = 0
        for name, base, _ in shares:
            take = min(base, remaining[name] - out[name])
            out[name] += take
            given += take
        leftovers = sorted(shares, key=lambda s: (-s[2], s[0]))
        for name, _, _ in leftovers:
            if given >= budget:
                break
            if out[name] < remaining[name]:
                out[name] += 1
                given += 1
        if given == 0:
            break
        budget -= given
    return out


def injection_space_size(bits: int, processes: int, time_points: int) -> int:
    """Size of the b x m x t injection space (section 4.3 computes at
    least 512 x 64 x 120 ~ 3.9e6 for the register region)."""
    for name, v in (("bits", bits), ("processes", processes), ("time_points", time_points)):
        if v <= 0:
            raise ValueError(f"{name} must be positive: {v}")
    return bits * processes * time_points
