"""Campaign sizing plans.

The paper performed 400-500 injections per region over two months of
cluster time.  Simulated executions are cheap but not free, so the
default plan is smaller and CI-friendly; the achieved estimation error d
is always computed and reported alongside the results, exactly as
section 4.3 prescribes.  Set the ``REPRO_CAMPAIGN_N`` environment
variable (e.g. to 500) to reproduce the paper's scale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.sampling.theory import achieved_error

#: Default injections per region for benches/tests.
DEFAULT_REGION_N = 60

#: The eight injection regions of Tables 2-4, in the paper's row order.
PAPER_REGIONS = (
    "regular_reg",
    "fp_reg",
    "bss",
    "data",
    "stack",
    "text",
    "heap",
    "message",
)


@dataclass(frozen=True)
class CampaignPlan:
    """How many injections to run per region, with the statistical
    quality that buys."""

    per_region: dict[str, int] = field(default_factory=dict)
    alpha: float = 0.05

    def n_for(self, region: str) -> int:
        return self.per_region[region]

    def d_for(self, region: str) -> float:
        """Achieved estimation error for the region's sample size."""
        return achieved_error(self.per_region[region], self.alpha)

    @property
    def total_injections(self) -> int:
        return sum(self.per_region.values())


def default_plan(
    n: int | None = None,
    regions: tuple[str, ...] = PAPER_REGIONS,
    alpha: float = 0.05,
) -> CampaignPlan:
    """Uniform plan over the paper's eight regions.

    Priority of ``n``: explicit argument, then ``REPRO_CAMPAIGN_N`` in
    the environment, then :data:`DEFAULT_REGION_N`.
    """
    if n is None:
        env = os.environ.get("REPRO_CAMPAIGN_N")
        n = int(env) if env else DEFAULT_REGION_N
    if n <= 0:
        raise ValueError(f"injections per region must be positive: {n}")
    return CampaignPlan(per_region={r: n for r in regions}, alpha=alpha)
