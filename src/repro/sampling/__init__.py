"""Sampling theory for fault-injection campaigns (paper section 4.3)."""

from repro.sampling.theory import (
    z_alpha,
    sample_size,
    sample_size_oversampled,
    achieved_error,
    proportion_ci,
    injection_space_size,
)
from repro.sampling.plans import CampaignPlan, default_plan, DEFAULT_REGION_N

__all__ = [
    "z_alpha",
    "sample_size",
    "sample_size_oversampled",
    "achieved_error",
    "proportion_ci",
    "injection_space_size",
    "CampaignPlan",
    "default_plan",
    "DEFAULT_REGION_N",
]
