"""x87 FPU model: the register stack, tag word and special registers.

Faithful to the features that mattered in the paper's experiments
(section 6.1.1):

* Eight 80-bit data registers organised as a stack; instructions address
  registers relative to the top.  Compiled kernels typically use only a
  few stack slots, so most data-register flips hit dead values.
* The values are held at 80-bit extended precision (``np.longdouble`` on
  x86); storing to a 64-bit memory double *discards* the low mantissa
  bits, so flips there are masked - one of the paper's three explanations
  for the low FP error rate.
* The TWD (tag word) register classifies each data register as valid,
  zero, special or empty.  A single tag-bit flip can make a valid number
  read back as zero or NaN - the one special register the paper found to
  induce errors.
* The remaining special registers (CWD, SWD, FIP, FCS, FOO, FOS) hold
  state that the data path never consumes, so injections there are
  benign, as observed.
* FP exceptions are masked (the x87 power-on default): division by zero
  and invalid operations produce Inf/NaN and propagate silently.
"""

from __future__ import annotations

import math

import numpy as np

#: The seven special-purpose x87 registers the paper enumerates.
FPU_SPECIAL_REGS = ("cwd", "swd", "twd", "fip", "fcs", "foo", "fos")

#: Bits of one 80-bit extended-precision data register.
EXTENDED_BITS = 80


class TagValue:
    VALID = 0
    ZERO = 1
    SPECIAL = 2
    EMPTY = 3


def _classify(value: float) -> int:
    if value == 0.0:
        return TagValue.ZERO
    if math.isnan(value) or math.isinf(value):
        return TagValue.SPECIAL
    return TagValue.VALID


class FPU:
    """x87 floating-point unit state."""

    def __init__(self) -> None:
        # Physical registers as 80-bit extended floats.  The byte layout
        # of np.longdouble on x86 is the genuine 80-bit format (padded to
        # 16 bytes), so bit flips target the real encoding.
        self._phys = np.zeros(8, dtype=np.longdouble)
        #: Python-float shadow of ``_phys``.  The stack-machine hot path
        #: (push/pop/read_st/write_st) works entirely on the shadow; the
        #: 80-bit physical array is synchronized lazily (``_sync``)
        #: before anything consumes its raw bits - fault injection,
        #: checkpoint capture, SPECIAL-tag reads.  A double's extended
        #: encoding is exact, so eager and lazy stores produce the same
        #: physical bytes; the shadow only removes the per-operation
        #: NumPy longdouble scalar conversion cost.
        self._vals = [0.0] * 8
        #: Bitmask of shadow slots newer than ``_phys``.
        self._stale = 0
        self._sig_bytes = min(10, self._phys.itemsize)
        self.top = 0
        self.twd = 0xFFFF  # all empty
        self.cwd = 0x037F  # power-on default: all exceptions masked
        self.swd = 0x0000
        self.fip = 0
        self.fcs = 0
        self.foo = 0
        self.fos = 0
        self.depth = 0  # logical stack depth
        self.max_depth = 0  # high-water mark (liveness statistic)

    # ------------------------------------------------------------------
    # tag helpers
    # ------------------------------------------------------------------
    def tag_of(self, phys: int) -> int:
        return (self.twd >> (2 * phys)) & 0b11

    def _set_tag(self, phys: int, tag: int) -> None:
        self.twd = (self.twd & ~(0b11 << (2 * phys))) | (tag << (2 * phys))

    def _phys_index(self, sti: int) -> int:
        return (self.top + sti) & 7

    def _sync(self) -> None:
        """Flush shadow slots into the 80-bit physical registers."""
        stale = self._stale
        if stale:
            for phys in range(8):
                if stale & (1 << phys):
                    self._phys[phys] = self._vals[phys]
            self._stale = 0

    # ------------------------------------------------------------------
    # stack operations
    # ------------------------------------------------------------------
    def push(self, value: float) -> None:
        value = float(value)
        top = self.top = (self.top - 1) & 7
        self._vals[top] = value
        self._stale |= 1 << top
        # _classify / _set_tag inlined: PUSH is the FPU's hottest entry
        # point and the call overhead dominates the work.
        if value == 0.0:
            tag = TagValue.ZERO
        elif value != value or math.isinf(value):
            tag = TagValue.SPECIAL
        else:
            tag = TagValue.VALID
        self.twd = (self.twd & ~(0b11 << (2 * top))) | (tag << (2 * top))
        depth = self.depth + 1
        if depth > 8:
            depth = 8
        self.depth = depth
        if depth > self.max_depth:
            self.max_depth = depth

    def pop(self) -> float:
        top = self.top
        if (self.twd >> (2 * top)) & 0b11 == TagValue.VALID:
            value = self._vals[top]
        else:
            value = self.read_st(0)
        # EMPTY is 0b11, so tagging the slot empty is a plain OR.
        self.twd |= 0b11 << (2 * top)
        self.top = (top + 1) & 7
        depth = self.depth - 1
        self.depth = depth if depth > 0 else 0
        return value

    def read_st(self, sti: int) -> float:
        """Read ST(i) *through the tag word*, which is how a tag-bit flip
        turns a valid number into zero or NaN (paper section 6.1.1)."""
        phys = (self.top + sti) & 7
        tag = (self.twd >> (2 * phys)) & 0b11
        if tag == TagValue.VALID:
            return self._vals[phys]
        if tag == TagValue.ZERO:
            return 0.0
        if tag == TagValue.SPECIAL:
            self._sync()
            raw = float(self._phys[phys])
            # A register re-tagged "special" is interpreted as a NaN/Inf
            # encoding even if the payload was a plain number.
            return raw if (math.isnan(raw) or math.isinf(raw)) else math.nan
        # EMPTY: masked stack underflow produces the indefinite QNaN.
        self.swd |= 0x0041  # IE + stack fault
        return math.nan

    def write_st(self, sti: int, value: float) -> None:
        value = float(value)
        phys = (self.top + sti) & 7
        self._vals[phys] = value
        self._stale |= 1 << phys
        self._set_tag(phys, _classify(value))

    def exchange(self, sti: int) -> None:
        """FXCH ST(0), ST(i)."""
        a, b = self.read_st(0), self.read_st(sti)
        self.write_st(0, b)
        self.write_st(sti, a)

    # ------------------------------------------------------------------
    # memory conversion
    # ------------------------------------------------------------------
    @staticmethod
    def to_double(value: float) -> float:
        """Store to a 64-bit memory double - the low extended-precision
        mantissa bits are discarded here."""
        return float(np.float64(value))

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def flip_data_bit(self, sti: int, bit: int) -> float:
        """Flip one of the 80 bits of data register ST(i)."""
        if not 0 <= bit < EXTENDED_BITS:
            raise ValueError(f"bit index out of range for 80-bit register: {bit}")
        self._sync()
        phys = self._phys_index(sti)
        raw = bytearray(self._phys[phys : phys + 1].tobytes())
        byte, mask = divmod(bit, 8)
        if byte >= self._sig_bytes:  # pragma: no cover - non-x86 fallback
            byte = byte % self._sig_bytes
        raw[byte] ^= 1 << mask
        self._phys[phys : phys + 1] = np.frombuffer(
            bytes(raw), dtype=np.longdouble, count=1
        )
        self._vals[phys] = float(self._phys[phys])
        return self._vals[phys]

    def flip_special_bit(self, name: str, bit: int) -> int:
        """Flip a bit of one of the seven special registers."""
        if name not in FPU_SPECIAL_REGS:
            raise ValueError(f"unknown x87 special register {name!r}")
        # FIP/FOO are 32-bit pointer offsets; CWD/SWD/TWD and the FCS/FOS
        # segment selectors are 16-bit.
        width = 16 if name in ("cwd", "swd", "twd", "fcs", "fos") else 32
        if not 0 <= bit < width:
            raise ValueError(f"bit {bit} out of range for {name} ({width} bits)")
        value = getattr(self, name) ^ (1 << bit)
        setattr(self, name, value)
        return value

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def capture_state(self) -> tuple:
        """Full picklable FPU state.  The physical registers travel as
        raw bytes so the 80-bit extended encoding round-trips exactly
        (``float()`` conversion would discard mantissa bits)."""
        self._sync()
        return (
            self._phys.tobytes(),
            self.top,
            self.twd,
            self.cwd,
            self.swd,
            self.fip,
            self.fcs,
            self.foo,
            self.fos,
            self.depth,
            self.max_depth,
        )

    def restore_state(self, state: tuple) -> None:
        phys, top, twd, cwd, swd, fip, fcs, foo, fos, depth, max_depth = state
        self._phys = np.frombuffer(phys, dtype=np.longdouble).copy()
        self._vals = [float(v) for v in self._phys]
        self._stale = 0
        self.top = top
        self.twd = twd
        self.cwd = cwd
        self.swd = swd
        self.fip = fip
        self.fcs = fcs
        self.foo = foo
        self.fos = fos
        self.depth = depth
        self.max_depth = max_depth

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def registers_in_use(self) -> int:
        """How many data registers currently hold non-empty values."""
        return sum(1 for p in range(8) if self.tag_of(p) != TagValue.EMPTY)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        st = [f"ST{i}={self.read_st(i)!r}" for i in range(self.depth)]
        return f"FPU(top={self.top}, twd={self.twd:04x}, [{', '.join(st)}])"
