"""Per-opcode semantics: the single execution authority.

Every opcode's observable behaviour lives here, in one function per
opcode, and both halves of the dual-mode engine consume this module:

* the interpreter (:class:`repro.cpu.vm.VM`) dispatches ``EXEC[op]``
  for every fetched instruction;
* the block translator (:mod:`repro.cpu.translate`) emits specialized
  straight-line code whose effects must match these functions bit for
  bit — the property suite in ``tests/props/test_property_fastpath.py``
  pins the two against each other on random machine states.

The functions preserve *exact* interpreter-visible behaviour, which is
stricter than architectural state: the order of register-file accesses
(the read/write counters feed the section-6.1.1 liveness statistics and
are captured into checkpoint digests), the x87 status-word side effects
of reading an empty stack slot, the flag values left by every ALU op,
and the precise exception type, message and machine state at every
fault point.

The tables at the bottom (:data:`CAN_RAISE`, :data:`VECTOR_OPS`,
:data:`VECTOR_LEN_FIELD`, :data:`VBIN_UFUNC`) describe the properties
the translator and the block-clock cost model need; they are part of
the authority, so changes to an opcode's behaviour belong here and
nowhere else.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import SimFPE, SimIllegalInstruction, SimSegfault
from repro.cpu.isa import INSN_SIZE, Insn, Op, RedOp, VecOp

_U32_MASK = 0xFFFF_FFFF


def signed(v: int) -> int:
    """Two's-complement reading of a 32-bit value."""
    return v - 0x1_0000_0000 if v & 0x8000_0000 else v


# ----------------------------------------------------------------------
# system
# ----------------------------------------------------------------------
def _nop(vm, i: Insn) -> None:
    return None


def _hlt(vm, i: Insn) -> None:
    # HLT is privileged; in user mode the kernel delivers SIGSEGV.
    raise SimSegfault(
        f"privileged instruction at 0x{vm.regs.eip - INSN_SIZE:08x}"
    )


# ----------------------------------------------------------------------
# data movement
# ----------------------------------------------------------------------
def _movi(vm, i: Insn) -> None:
    vm.regs.put(i.r1, i.imm & _U32_MASK)


def _mov(vm, i: Insn) -> None:
    regs = vm.regs
    regs.put(i.r1, regs.get(i.r2))


def _load(vm, i: Insn) -> None:
    regs = vm.regs
    regs.put(i.r1, vm.space.load_u32((regs.get(i.r2) + i.imm) & _U32_MASK))


def _store(vm, i: Insn) -> None:
    regs = vm.regs
    vm.space.store_u32((regs.get(i.r1) + i.imm) & _U32_MASK, regs.get(i.r2))


def _lea(vm, i: Insn) -> None:
    regs = vm.regs
    regs.put(i.r1, (regs.get(i.r2) + i.imm) & _U32_MASK)


def _push(vm, i: Insn) -> None:
    vm._push_u32(vm.regs.get(i.r1))


def _pop(vm, i: Insn) -> None:
    vm.regs.put(i.r1, vm._pop_u32())


# ----------------------------------------------------------------------
# integer ALU
# ----------------------------------------------------------------------
def _add(vm, i: Insn) -> None:
    regs = vm.regs
    r = signed(regs.get(i.r1)) + signed(regs.get(i.r2))
    regs.put(i.r1, r & _U32_MASK)
    regs.set_flags(signed(r & _U32_MASK))


def _sub(vm, i: Insn) -> None:
    regs = vm.regs
    r = signed(regs.get(i.r1)) - signed(regs.get(i.r2))
    regs.put(i.r1, r & _U32_MASK)
    regs.set_flags(signed(r & _U32_MASK))


def _imul(vm, i: Insn) -> None:
    regs = vm.regs
    r = signed(regs.get(i.r1)) * signed(regs.get(i.r2))
    regs.put(i.r1, r & _U32_MASK)
    regs.set_flags(signed(r & _U32_MASK))


def _idiv(vm, i: Insn) -> None:
    regs = vm.regs
    b = signed(regs.get(i.r2))
    if b == 0:
        raise SimFPE("integer division by zero")
    a = signed(regs.get(i.r1))
    q = int(math.trunc(a / b))  # C truncation semantics
    regs.put(i.r1, q & _U32_MASK)
    regs.set_flags(q)


def _irem(vm, i: Insn) -> None:
    regs = vm.regs
    b = signed(regs.get(i.r2))
    if b == 0:
        raise SimFPE("integer division by zero")
    a = signed(regs.get(i.r1))
    r = a - int(math.trunc(a / b)) * b
    regs.put(i.r1, r & _U32_MASK)
    regs.set_flags(r)


def _and(vm, i: Insn) -> None:
    regs = vm.regs
    r = regs.get(i.r1) & regs.get(i.r2)
    regs.put(i.r1, r)
    regs.set_flags(signed(r))


def _or(vm, i: Insn) -> None:
    regs = vm.regs
    r = regs.get(i.r1) | regs.get(i.r2)
    regs.put(i.r1, r)
    regs.set_flags(signed(r))


def _xor(vm, i: Insn) -> None:
    regs = vm.regs
    r = regs.get(i.r1) ^ regs.get(i.r2)
    regs.put(i.r1, r)
    regs.set_flags(signed(r))


def _shl(vm, i: Insn) -> None:
    regs = vm.regs
    r = (regs.get(i.r1) << (i.imm & 31)) & _U32_MASK
    regs.put(i.r1, r)
    regs.set_flags(signed(r))


def _shr(vm, i: Insn) -> None:
    regs = vm.regs
    r = regs.get(i.r1) >> (i.imm & 31)
    regs.put(i.r1, r)
    regs.set_flags(signed(r))


def _addi(vm, i: Insn) -> None:
    regs = vm.regs
    r = (signed(regs.get(i.r1)) + i.imm) & _U32_MASK
    regs.put(i.r1, r)
    regs.set_flags(signed(r))


def _cmp(vm, i: Insn) -> None:
    regs = vm.regs
    regs.set_flags(signed(regs.get(i.r1)) - signed(regs.get(i.r2)))


def _cmpi(vm, i: Insn) -> None:
    regs = vm.regs
    regs.set_flags(signed(regs.get(i.r1)) - i.imm)


def _neg(vm, i: Insn) -> None:
    regs = vm.regs
    r = (-signed(regs.get(i.r1))) & _U32_MASK
    regs.put(i.r1, r)
    regs.set_flags(signed(r))


# ----------------------------------------------------------------------
# control flow
# ----------------------------------------------------------------------
def _jmp(vm, i: Insn) -> None:
    regs = vm.regs
    regs.eip = (regs.eip + i.imm) & _U32_MASK


def _jz(vm, i: Insn) -> None:
    regs = vm.regs
    if regs.zf:
        regs.eip = (regs.eip + i.imm) & _U32_MASK


def _jnz(vm, i: Insn) -> None:
    regs = vm.regs
    if not regs.zf:
        regs.eip = (regs.eip + i.imm) & _U32_MASK


def _jl(vm, i: Insn) -> None:
    regs = vm.regs
    if regs.sf:
        regs.eip = (regs.eip + i.imm) & _U32_MASK


def _jge(vm, i: Insn) -> None:
    regs = vm.regs
    if not regs.sf:
        regs.eip = (regs.eip + i.imm) & _U32_MASK


def _jg(vm, i: Insn) -> None:
    regs = vm.regs
    if not regs.sf and not regs.zf:
        regs.eip = (regs.eip + i.imm) & _U32_MASK


def _jle(vm, i: Insn) -> None:
    regs = vm.regs
    if regs.sf or regs.zf:
        regs.eip = (regs.eip + i.imm) & _U32_MASK


def _call(vm, i: Insn) -> None:
    regs = vm.regs
    vm._push_u32(regs.eip)
    regs.eip = i.imm & _U32_MASK


def _callr(vm, i: Insn) -> None:
    regs = vm.regs
    vm._push_u32(regs.eip)
    regs.eip = regs.get(i.r1)


def _ret(vm, i: Insn) -> None:
    # The sentinel ends the run at the next step's fetch check.
    vm.regs.eip = vm._pop_u32()


# ----------------------------------------------------------------------
# x87 FPU
# ----------------------------------------------------------------------
def _fld(vm, i: Insn) -> None:
    vm.fpu.push(
        vm.space.load_f64((vm.regs.get(i.r1) + i.imm) & _U32_MASK)
    )


def _fst(vm, i: Insn) -> None:
    fpu = vm.fpu
    vm.space.store_f64(
        (vm.regs.get(i.r1) + i.imm) & _U32_MASK, fpu.to_double(fpu.read_st(0))
    )


def _fstp(vm, i: Insn) -> None:
    fpu = vm.fpu
    vm.space.store_f64(
        (vm.regs.get(i.r1) + i.imm) & _U32_MASK, fpu.to_double(fpu.read_st(0))
    )
    fpu.pop()


def _fldz(vm, i: Insn) -> None:
    vm.fpu.push(0.0)


def _fld1(vm, i: Insn) -> None:
    vm.fpu.push(1.0)


def _fldimm(vm, i: Insn) -> None:
    vm.fpu.push(float(i.imm))


def _faddp(vm, i: Insn) -> None:
    fpu = vm.fpu
    b, a = fpu.pop(), fpu.pop()
    fpu.push(a + b)


def _fsubp(vm, i: Insn) -> None:
    fpu = vm.fpu
    b, a = fpu.pop(), fpu.pop()
    fpu.push(a - b)


def _fmulp(vm, i: Insn) -> None:
    fpu = vm.fpu
    b, a = fpu.pop(), fpu.pop()
    fpu.push(a * b)


def _fdivp(vm, i: Insn) -> None:
    fpu = vm.fpu
    b, a = fpu.pop(), fpu.pop()
    # x87 exceptions are masked: /0 yields signed Inf, 0/0 NaN.
    if b == 0.0:
        fpu.push(
            math.nan
            if a == 0.0 or math.isnan(a)
            else math.copysign(math.inf, a) * math.copysign(1.0, b)
        )
    else:
        fpu.push(a / b)


def _fchs(vm, i: Insn) -> None:
    fpu = vm.fpu
    fpu.write_st(0, -fpu.read_st(0))


def _fabs(vm, i: Insn) -> None:
    fpu = vm.fpu
    fpu.write_st(0, abs(fpu.read_st(0)))


def _fsqrt(vm, i: Insn) -> None:
    fpu = vm.fpu
    v = fpu.read_st(0)
    fpu.write_st(0, math.sqrt(v) if v >= 0.0 else math.nan)


def _fxch(vm, i: Insn) -> None:
    vm.fpu.exchange(i.r1)


def _fcomip(vm, i: Insn) -> None:
    regs, fpu = vm.regs, vm.fpu
    a, b = fpu.read_st(0), fpu.read_st(1)
    if math.isnan(a) or math.isnan(b):
        regs.zf, regs.sf = True, False  # unordered
    else:
        regs.zf, regs.sf = (a == b), (a < b)
    fpu.pop()


def _fdup(vm, i: Insn) -> None:
    fpu = vm.fpu
    fpu.push(fpu.read_st(0))


def _fpop(vm, i: Insn) -> None:
    vm.fpu.pop()


# ----------------------------------------------------------------------
# vector unit
# ----------------------------------------------------------------------
def _vmov(vm, i: Insn) -> None:
    regs, space = vm.regs, vm.space
    n = regs.get(i.r3)
    src = space.vector_f64(regs.get(i.r2), n)
    dst = space.vector_f64(regs.get(i.r1), n, True)
    np.copyto(dst, src)


def _vfill(vm, i: Insn) -> None:
    regs, space, fpu = vm.regs, vm.space, vm.fpu
    n = regs.get(i.r2)
    dst = space.vector_f64(regs.get(i.r1), n, True)
    dst.fill(fpu.to_double(fpu.read_st(0)))


def _vbin(vm, i: Insn) -> None:
    regs, space = vm.regs, vm.space
    n = regs.get(i.r4)
    a = space.vector_f64(regs.get(i.r2), n)
    b = space.vector_f64(regs.get(i.r3), n)
    dst = space.vector_f64(regs.get(i.r1), n, True)
    with np.errstate(all="ignore"):
        VBIN_UFUNC[i.subop](a, b, out=dst)


def _vbins(vm, i: Insn) -> None:
    regs, space, fpu = vm.regs, vm.space, vm.fpu
    n = regs.get(i.r3)
    a = space.vector_f64(regs.get(i.r2), n)
    dst = space.vector_f64(regs.get(i.r1), n, True)
    s = fpu.to_double(fpu.read_st(0))
    with np.errstate(all="ignore"):
        VBIN_UFUNC[i.subop](a, s, out=dst)


def _vaxpy(vm, i: Insn) -> None:
    regs, space, fpu = vm.regs, vm.space, vm.fpu
    n = regs.get(i.r4)
    a = space.vector_f64(regs.get(i.r2), n)
    b = space.vector_f64(regs.get(i.r3), n)
    dst = space.vector_f64(regs.get(i.r1), n, True)
    s = fpu.to_double(fpu.read_st(0))
    with np.errstate(all="ignore"):
        np.add(a, s * b, out=dst)


def _vred(vm, i: Insn) -> None:
    regs, space, fpu = vm.regs, vm.space, vm.fpu
    sub = i.subop
    if sub == RedOp.DOT:
        n = regs.get(i.r3)
        a = space.vector_f64(regs.get(i.r1), n)
        b = space.vector_f64(regs.get(i.r2), n)
        fpu.push(float(np.dot(a, b)))
        return
    n = regs.get(i.r2)
    a = space.vector_f64(regs.get(i.r1), n)
    with np.errstate(all="ignore"):
        return _vred_apply(fpu, sub, a, n)


def _vred_apply(fpu, sub: int, a, n: int) -> None:
    if sub == RedOp.SUM:
        fpu.push(float(np.sum(a)))
    elif sub == RedOp.MIN:
        fpu.push(float(np.min(a)) if n else math.nan)
    elif sub == RedOp.MAX:
        fpu.push(float(np.max(a)) if n else math.nan)
    elif sub == RedOp.NANCOUNT:
        fpu.push(float(np.count_nonzero(~np.isfinite(a))))
    elif sub == RedOp.SUMSQ:
        fpu.push(float(np.dot(a, a)))
    else:
        raise SimIllegalInstruction(f"undefined VRED subop {sub}")


# ----------------------------------------------------------------------
# tables
# ----------------------------------------------------------------------
#: NumPy ufuncs behind VBIN/VBINS sub-opcodes.
VBIN_UFUNC = {
    int(VecOp.ADD): np.add,
    int(VecOp.SUB): np.subtract,
    int(VecOp.MUL): np.multiply,
    int(VecOp.DIV): np.divide,
    int(VecOp.MIN): np.minimum,
    int(VecOp.MAX): np.maximum,
}

#: Opcodes whose block-clock cost depends on a register (vector length).
VECTOR_OPS = frozenset(
    {Op.VMOV, Op.VFILL, Op.VBIN, Op.VBINS, Op.VAXPY, Op.VRED}
)

#: Insn field naming the element count for each vector opcode (VRED
#: uses r3 when the sub-opcode is DOT).
VECTOR_LEN_FIELD = {
    Op.VMOV: "r3",
    Op.VFILL: "r2",
    Op.VBIN: "r4",
    Op.VBINS: "r3",
    Op.VAXPY: "r4",
    Op.VRED: "r2",
}

#: Opcodes that can raise a simulated fault (or a decoder-shaped
#: KeyError for a corrupted VBIN/VBINS sub-opcode) partway through
#: execution.  The translator plants exact machine state (eip, partial
#: clock/retirement) before each of these.
CAN_RAISE = frozenset(
    {
        Op.HLT,
        Op.LOAD,
        Op.STORE,
        Op.PUSH,
        Op.POP,
        Op.IDIV,
        Op.IREM,
        Op.CALL,
        Op.CALLR,
        Op.RET,
        Op.FLD,
        Op.FST,
        Op.FSTP,
    }
    | VECTOR_OPS
)


def vector_len_reg(insn: Insn) -> int:
    """Register index (masked to the 8 GPRs) holding the element count
    of a vector instruction."""
    field = VECTOR_LEN_FIELD[insn.op]
    if insn.op is Op.VRED and insn.subop == RedOp.DOT:
        field = "r3"
    return getattr(insn, field) & 7


def insn_cost(insn: Insn, peek) -> int:
    """Block-clock cost of one instruction; ``peek`` maps a register
    index to its (uncounted) current value."""
    if insn.op in VECTOR_OPS:
        n = peek(vector_len_reg(insn))
        return max(1, n >> 3)
    return 1


#: Interpreter dispatch: every defined opcode has exactly one entry.
EXEC = {
    Op.NOP: _nop,
    Op.HLT: _hlt,
    Op.MOVI: _movi,
    Op.MOV: _mov,
    Op.LOAD: _load,
    Op.STORE: _store,
    Op.LEA: _lea,
    Op.PUSH: _push,
    Op.POP: _pop,
    Op.ADD: _add,
    Op.SUB: _sub,
    Op.IMUL: _imul,
    Op.IDIV: _idiv,
    Op.IREM: _irem,
    Op.AND: _and,
    Op.OR: _or,
    Op.XOR: _xor,
    Op.SHL: _shl,
    Op.SHR: _shr,
    Op.ADDI: _addi,
    Op.CMP: _cmp,
    Op.CMPI: _cmpi,
    Op.NEG: _neg,
    Op.JMP: _jmp,
    Op.JZ: _jz,
    Op.JNZ: _jnz,
    Op.JL: _jl,
    Op.JGE: _jge,
    Op.JG: _jg,
    Op.JLE: _jle,
    Op.CALL: _call,
    Op.CALLR: _callr,
    Op.RET: _ret,
    Op.FLD: _fld,
    Op.FST: _fst,
    Op.FSTP: _fstp,
    Op.FLDZ: _fldz,
    Op.FLD1: _fld1,
    Op.FLDIMM: _fldimm,
    Op.FADDP: _faddp,
    Op.FSUBP: _fsubp,
    Op.FMULP: _fmulp,
    Op.FDIVP: _fdivp,
    Op.FCHS: _fchs,
    Op.FABS: _fabs,
    Op.FSQRT: _fsqrt,
    Op.FXCH: _fxch,
    Op.FCOMIP: _fcomip,
    Op.FDUP: _fdup,
    Op.FPOP: _fpop,
    Op.VMOV: _vmov,
    Op.VFILL: _vfill,
    Op.VBIN: _vbin,
    Op.VBINS: _vbins,
    Op.VAXPY: _vaxpy,
    Op.VRED: _vred,
}

assert set(EXEC) == set(Op), "every opcode needs a semantic function"
