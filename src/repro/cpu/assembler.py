"""Two-pass assembler for the VM instruction set.

Applications express their numeric kernels in a small assembly dialect;
the :class:`Program` collects the assembled functions, hands their byte
images to the linker, and patches symbol relocations (``$data_symbol`` and
``@function`` references) once the linker has assigned addresses - the
same assemble/link split a real toolchain has, which is what gives the
fault dictionary genuine {symbol, address} pairs to work from.

Syntax (one instruction per line, ``;`` starts a comment)::

    loop:   LOAD  eax, [esi+8]
            ADDI  eax, 1
            STORE [esi+8], eax
            MOVI  ebx, $grid      ; address of linked data object
            CALL  @helper         ; address of linked function
            CMPI  eax, 10
            JL    loop
            RET

Vector instructions select their element-wise operation with a suffix:
``VBIN.add dst, a, b, n`` / ``VRED.sum a, n`` / ``VBINS.mul dst, a, n``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.cpu.isa import INSN_SIZE, Insn, Op, RedOp, VecOp, encode
from repro.cpu.registers import REG_INDEX


class AssemblerError(Exception):
    """A syntax or operand error, annotated with the offending line."""

    def __init__(self, message: str, line_no: int | None = None, line: str = ""):
        loc = f" (line {line_no}: {line.strip()!r})" if line_no is not None else ""
        super().__init__(message + loc)


_MEM_RE = re.compile(
    r"^\[\s*(?P<reg>[a-z]+)\s*(?:(?P<sign>[+-])\s*(?P<off>\d+)\s*)?\]$"
)

#: Mnemonics taking (reg, reg).
_RR = {
    "mov": Op.MOV,
    "add": Op.ADD,
    "sub": Op.SUB,
    "imul": Op.IMUL,
    "idiv": Op.IDIV,
    "irem": Op.IREM,
    "and": Op.AND,
    "or": Op.OR,
    "xor": Op.XOR,
    "cmp": Op.CMP,
}

#: Mnemonics taking (reg, imm).
_RI = {"addi": Op.ADDI, "cmpi": Op.CMPI, "shl": Op.SHL, "shr": Op.SHR}

#: Mnemonics taking a single register.
_R = {"push": Op.PUSH, "pop": Op.POP, "neg": Op.NEG, "callr": Op.CALLR}

#: Zero-operand mnemonics.
_NULLARY = {
    "nop": Op.NOP,
    "hlt": Op.HLT,
    "ret": Op.RET,
    "fldz": Op.FLDZ,
    "fld1": Op.FLD1,
    "faddp": Op.FADDP,
    "fsubp": Op.FSUBP,
    "fmulp": Op.FMULP,
    "fdivp": Op.FDIVP,
    "fchs": Op.FCHS,
    "fabs": Op.FABS,
    "fsqrt": Op.FSQRT,
    "fcomip": Op.FCOMIP,
    "fdup": Op.FDUP,
    "fpop": Op.FPOP,
}

#: Branch mnemonics (operand is a label).
_BRANCH = {
    "jmp": Op.JMP,
    "jz": Op.JZ,
    "jnz": Op.JNZ,
    "jl": Op.JL,
    "jge": Op.JGE,
    "jg": Op.JG,
    "jle": Op.JLE,
}

#: FPU memory mnemonics.
_FMEM = {"fld": Op.FLD, "fst": Op.FST, "fstp": Op.FSTP}


@dataclass
class Relocation:
    """imm32 patch applied after the linker assigns addresses."""

    insn_index: int
    symbol: str


@dataclass
class AssembledFunction:
    name: str
    insns: list[Insn]
    relocations: list[Relocation] = field(default_factory=list)
    _code: bytes | None = field(default=None, repr=False, compare=False)

    @property
    def code(self) -> bytes:
        # Insns are immutable after assembly ($symbol/@function fixups
        # are patched into the *linked* text segment, never back into
        # the Insn list), so the encoding is computed once per function
        # instead of once per process-image build.
        if self._code is None:
            self._code = b"".join(encode(i) for i in self.insns)
        return self._code

    @property
    def size(self) -> int:
        return len(self.insns) * INSN_SIZE

    def _register_sets(self) -> tuple[set[str], set[str]]:
        """(read, written) register names over every instruction.

        Only *explicit* operand registers are reported (the historical
        ``registers_used`` contract): PUSH/POP/CALL/RET's implicit ESP
        traffic is a property of the opcode, not of what the programmer
        named, and the section-6.1.1 ablation counts named registers.
        """
        from repro.cpu.registers import REG_NAMES
        from repro.cpu.semantics import effects

        read: set[str] = set()
        written: set[str] = set()
        for insn in self.insns:
            eff = effects(insn, include_implicit=False)
            read.update(REG_NAMES[r] for r in eff.reads)
            written.update(REG_NAMES[r] for r in eff.writes)
        return read, written

    def registers_read(self) -> set[str]:
        """Registers whose value some instruction consumes (liveness
        *uses*; includes address and count operands of vector ops)."""
        return self._register_sets()[0]

    def registers_written(self) -> set[str]:
        """Registers some instruction defines (liveness *defs*)."""
        return self._register_sets()[1]

    def registers_used(self) -> set[str]:
        """Static register usage, read or written - the Springer-[23]
        style measurement for the optimization-level ablation (paper
        section 6.1.1)."""
        read, written = self._register_sets()
        return read | written


def _reg(token: str, line_no: int, line: str) -> int:
    try:
        return REG_INDEX[token.lower()]
    except KeyError:
        raise AssemblerError(f"unknown register {token!r}", line_no, line) from None


def _imm(token: str, line_no: int, line: str) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"bad immediate {token!r}", line_no, line) from None


def _mem(token: str, line_no: int, line: str) -> tuple[int, int]:
    m = _MEM_RE.match(token.strip())
    if not m:
        raise AssemblerError(f"bad memory operand {token!r}", line_no, line)
    reg = _reg(m.group("reg"), line_no, line)
    off = int(m.group("off") or 0)
    if m.group("sign") == "-":
        off = -off
    return reg, off


def _split_operands(rest: str) -> list[str]:
    # split on commas not inside brackets
    parts, depth, cur = [], 0, []
    for ch in rest:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        parts.append(tail)
    return parts


def assemble_function(name: str, source: str) -> AssembledFunction:
    """Assemble one function; intra-function labels become relative
    branches, ``$sym``/``@func`` references become relocations."""
    labels: dict[str, int] = {}
    pending: list[tuple[int, str, str, int, str]] = []  # (idx, kind, label, ln, line)
    insns: list[Insn] = []
    relocs: list[Relocation] = []

    lines = source.splitlines()
    for line_no, raw in enumerate(lines, 1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        while ":" in line.split()[0] if line else False:
            label, _, line = line.partition(":")
            label = label.strip()
            if not label.isidentifier():
                raise AssemblerError(f"bad label {label!r}", line_no, raw)
            if label in labels:
                raise AssemblerError(f"duplicate label {label!r}", line_no, raw)
            labels[label] = len(insns)
            line = line.strip()
            if not line:
                break
        if not line:
            continue

        mnemonic, _, rest = line.partition(" ")
        mnemonic = mnemonic.lower()
        ops = _split_operands(rest)
        idx = len(insns)

        def need(n: int) -> None:
            if len(ops) != n:
                raise AssemblerError(
                    f"{mnemonic} expects {n} operand(s), got {len(ops)}",
                    line_no,
                    raw,
                )

        base, _, suffix = mnemonic.partition(".")

        if base in _NULLARY and not suffix:
            need(0)
            insns.append(Insn(_NULLARY[base]))
        elif base == "movi":
            need(2)
            r1 = _reg(ops[0], line_no, raw)
            tok = ops[1]
            if tok.startswith("$") or tok.startswith("@"):
                relocs.append(Relocation(idx, tok[1:]))
                insns.append(Insn(Op.MOVI, r1=r1, imm=0))
            else:
                insns.append(Insn(Op.MOVI, r1=r1, imm=_imm(tok, line_no, raw)))
        elif base in _RR:
            need(2)
            insns.append(
                Insn(
                    _RR[base],
                    r1=_reg(ops[0], line_no, raw),
                    r2=_reg(ops[1], line_no, raw),
                )
            )
        elif base in _RI:
            need(2)
            insns.append(
                Insn(
                    _RI[base],
                    r1=_reg(ops[0], line_no, raw),
                    imm=_imm(ops[1], line_no, raw),
                )
            )
        elif base in _R:
            need(1)
            insns.append(Insn(_R[base], r1=_reg(ops[0], line_no, raw)))
        elif base == "load":
            need(2)
            r1 = _reg(ops[0], line_no, raw)
            r2, off = _mem(ops[1], line_no, raw)
            insns.append(Insn(Op.LOAD, r1=r1, r2=r2, imm=off))
        elif base == "store":
            need(2)
            r1, off = _mem(ops[0], line_no, raw)
            r2 = _reg(ops[1], line_no, raw)
            insns.append(Insn(Op.STORE, r1=r1, r2=r2, imm=off))
        elif base == "lea":
            need(2)
            r1 = _reg(ops[0], line_no, raw)
            r2, off = _mem(ops[1], line_no, raw)
            insns.append(Insn(Op.LEA, r1=r1, r2=r2, imm=off))
        elif base in _BRANCH:
            need(1)
            pending.append((idx, "branch", ops[0], line_no, raw))
            insns.append(Insn(_BRANCH[base], imm=0))
        elif base == "call":
            need(1)
            tok = ops[0]
            if not tok.startswith("@"):
                raise AssemblerError("CALL target must be @function", line_no, raw)
            relocs.append(Relocation(idx, tok[1:]))
            insns.append(Insn(Op.CALL, imm=0))
        elif base in _FMEM:
            need(1)
            r1, off = _mem(ops[0], line_no, raw)
            insns.append(Insn(_FMEM[base], r1=r1, imm=off))
        elif base == "fldimm":
            need(1)
            insns.append(Insn(Op.FLDIMM, imm=_imm(ops[0], line_no, raw)))
        elif base == "fxch":
            need(1)
            insns.append(Insn(Op.FXCH, r1=_imm(ops[0], line_no, raw)))
        elif base == "vmov":
            need(3)
            r = [_reg(t, line_no, raw) for t in ops]
            insns.append(Insn(Op.VMOV, r1=r[0], r2=r[1], r3=r[2]))
        elif base == "vfill":
            need(2)
            r = [_reg(t, line_no, raw) for t in ops]
            insns.append(Insn(Op.VFILL, r1=r[0], r2=r[1]))
        elif base == "vbin":
            need(4)
            sub = _vecop(suffix, line_no, raw)
            r = [_reg(t, line_no, raw) for t in ops]
            insns.append(Insn(Op.VBIN, r1=r[0], r2=r[1], r3=r[2], r4=r[3], subop=sub))
        elif base == "vbins":
            need(3)
            sub = _vecop(suffix, line_no, raw)
            r = [_reg(t, line_no, raw) for t in ops]
            insns.append(Insn(Op.VBINS, r1=r[0], r2=r[1], r3=r[2], subop=sub))
        elif base == "vaxpy":
            need(4)
            r = [_reg(t, line_no, raw) for t in ops]
            insns.append(Insn(Op.VAXPY, r1=r[0], r2=r[1], r3=r[2], r4=r[3]))
        elif base == "vred":
            sub = _redop(suffix, line_no, raw)
            if sub == RedOp.DOT:
                need(3)
                r = [_reg(t, line_no, raw) for t in ops]
                insns.append(Insn(Op.VRED, r1=r[0], r2=r[1], r3=r[2], subop=sub))
            else:
                need(2)
                r = [_reg(t, line_no, raw) for t in ops]
                insns.append(Insn(Op.VRED, r1=r[0], r2=r[1], subop=sub))
        else:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line_no, raw)

    # resolve intra-function branches
    resolved = list(insns)
    for idx, kind, label, line_no, raw in pending:
        if label not in labels:
            raise AssemblerError(f"undefined label {label!r}", line_no, raw)
        disp = (labels[label] - (idx + 1)) * INSN_SIZE
        old = resolved[idx]
        resolved[idx] = Insn(old.op, old.r1, old.r2, old.r3, old.r4, old.subop, disp)

    return AssembledFunction(name, resolved, relocs)


def _vecop(suffix: str, line_no: int, raw: str) -> int:
    try:
        return int(VecOp[suffix.upper()])
    except KeyError:
        raise AssemblerError(f"unknown vector op suffix {suffix!r}", line_no, raw)


def _redop(suffix: str, line_no: int, raw: str) -> int:
    try:
        return int(RedOp[suffix.upper()])
    except KeyError:
        raise AssemblerError(f"unknown reduce op suffix {suffix!r}", line_no, raw)


class Program:
    """A set of assembled functions plus their pending relocations."""

    def __init__(self) -> None:
        self.functions: dict[str, AssembledFunction] = {}

    def add(self, name: str, source: str) -> AssembledFunction:
        if name in self.functions:
            raise ValueError(f"duplicate function {name!r}")
        fn = assemble_function(name, source)
        self.functions[name] = fn
        return fn

    def add_to_linker(self, linker, library: str = "user") -> None:
        """Register every function's code as a text object."""
        for name, fn in self.functions.items():
            linker.add_text(name, fn.code, library)

    def relocate(self, image) -> None:
        """Patch ``$symbol`` / ``@function`` immediates in the linked text
        segment, once addresses are known."""
        for name, fn in self.functions.items():
            base = image.symtab.lookup(name).addr
            for reloc in fn.relocations:
                target = image.symtab.lookup(reloc.symbol).addr
                image.text.write_u32(base + reloc.insn_index * INSN_SIZE + 4, target)

    def registers_used(self) -> set[str]:
        used: set[str] = set()
        for fn in self.functions.values():
            used |= fn.registers_used()
        return used

    def registers_read(self) -> set[str]:
        read: set[str] = set()
        for fn in self.functions.values():
            read |= fn.registers_read()
        return read

    def registers_written(self) -> set[str]:
        written: set[str] = set()
        for fn in self.functions.values():
            written |= fn.registers_written()
        return written
