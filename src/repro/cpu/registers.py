"""The integer register file and EFLAGS.

The paper injects into "all registers (including regular and x87
floating-point ones)" except system/debug/VM-management registers.  The
regular set here is the eight x86 general-purpose registers.  Access
counters support the liveness analysis of section 6.1.1 (few registers,
mostly live, hence the high manifestation rate).
"""

from __future__ import annotations

#: x86 register order (matches the mod/rm register numbering).
REG_NAMES = ("eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi")
REG_INDEX = {name: i for i, name in enumerate(REG_NAMES)}

EAX, ECX, EDX, EBX, ESP, EBP, ESI, EDI = range(8)

_MASK = 0xFFFF_FFFF


class RegisterFile:
    """Eight 32-bit GPRs, EIP and the arithmetic flags."""

    __slots__ = ("r", "eip", "zf", "sf", "read_count", "write_count")

    def __init__(self) -> None:
        self.r = [0] * 8
        self.eip = 0
        self.zf = False  # zero flag
        self.sf = False  # sign flag
        # Plain lists: these counters sit on the interpreter's hottest
        # path, where NumPy scalar indexing would dominate the cost.
        self.read_count = [0] * 8
        self.write_count = [0] * 8

    # ------------------------------------------------------------------
    # access (counted, for liveness statistics)
    # ------------------------------------------------------------------
    def get(self, i: int) -> int:
        # The encoded register field is 4 bits wide but only 8 GPRs
        # exist; the high bit is ignored (hardware-style aliasing), so a
        # text-fault-corrupted field still names a real register.
        i &= 7
        self.read_count[i] += 1
        return self.r[i]

    def put(self, i: int, value: int) -> None:
        i &= 7
        self.write_count[i] += 1
        self.r[i] = value & _MASK

    def get_signed(self, i: int) -> int:
        v = self.get(i)
        return v - 0x1_0000_0000 if v & 0x8000_0000 else v

    def put_signed(self, i: int, value: int) -> None:
        self.put(i, value & _MASK)

    # Uncounted peek/poke for the injector and debugger - ptrace reads do
    # not constitute program accesses.
    def peek(self, i: int) -> int:
        return self.r[i & 7]

    def poke(self, i: int, value: int) -> None:
        self.r[i & 7] = value & _MASK

    # ------------------------------------------------------------------
    # flags
    # ------------------------------------------------------------------
    def set_flags(self, result_signed: int) -> None:
        self.zf = result_signed == 0
        self.sf = result_signed < 0

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def flip_bit(self, reg: int, bit: int) -> int:
        """Flip bit ``bit`` (0..31) of register ``reg``; returns new value."""
        if not 0 <= reg < 8:
            raise ValueError(f"register index out of range: {reg}")
        if not 0 <= bit < 32:
            raise ValueError(f"bit index out of range: {bit}")
        self.r[reg] ^= 1 << bit
        return self.r[reg]

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def live_registers(self, min_accesses: int = 1) -> list[str]:
        """Names of registers read at least ``min_accesses`` times - the
        Springer-style usage measurement referenced in section 6.1.1."""
        return [
            REG_NAMES[i]
            for i in range(8)
            if self.read_count[i] >= min_accesses
        ]

    def snapshot(self) -> dict[str, int]:
        return {name: self.r[i] for i, name in enumerate(REG_NAMES)}

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def capture_state(self) -> tuple:
        """Full picklable state, including the liveness counters (they
        feed section-6.1.1 statistics and must survive restore)."""
        return (
            tuple(self.r),
            self.eip,
            self.zf,
            self.sf,
            tuple(self.read_count),
            tuple(self.write_count),
        )

    def restore_state(self, state: tuple) -> None:
        r, eip, zf, sf, reads, writes = state
        self.r[:] = r
        self.eip = eip
        self.zf = zf
        self.sf = sf
        self.read_count[:] = reads
        self.write_count[:] = writes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        regs = " ".join(f"{n}={v:08x}" for n, v in self.snapshot().items())
        return f"RegisterFile({regs} eip={self.eip:08x} zf={self.zf} sf={self.sf})"
