"""Single decode authority, shared by every consumer of text bytes.

Three subsystems decode instruction words: the interpreter's fetch
path (:meth:`repro.cpu.vm.VM._fetch`), the CFG builder
(:func:`repro.staticanalysis.cfg.decode_function`) and the block
translator (:mod:`repro.cpu.translate`).  They all route through
:func:`decode_stream` here, so one code blob is decoded exactly once
per process and every consumer sees the *same* instruction stream —
``tests/cpu/test_decode_authority.py`` pins the fetch path and the CFG
path against each other for every shipped kernel.

Streams are cached by content digest.  Identical kernels across ranks,
trials and campaigns (the common case: every rank links the same
program) therefore share a single decode, which also makes the
interpreter's per-address cache priming nearly free.
"""

from __future__ import annotations

import hashlib

from repro.cpu.isa import INSN_SIZE, Insn, UndefinedOpcode, decode

#: digest -> tuple of decoded instructions (None = stream contains an
#: undefined opcode and cannot be decoded as a whole).
_CACHE: dict[bytes, tuple[Insn, ...] | None] = {}


def code_digest(code: bytes) -> bytes:
    """Stable content key for a text object."""
    return hashlib.sha256(bytes(code)).digest()


def decode_stream(code: bytes, digest: bytes | None = None) -> tuple[Insn, ...]:
    """Decode a whole text object into its instruction stream.

    ``code`` must be a multiple of :data:`INSN_SIZE` bytes (callers
    validate and report in their own vocabulary).  Raises
    :class:`UndefinedOpcode` if any word has no defined opcode.
    """
    if len(code) % INSN_SIZE:
        raise ValueError(
            f"code length {len(code)} is not a multiple of {INSN_SIZE}"
        )
    key = code_digest(code) if digest is None else digest
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    if key in _CACHE:  # cached decode failure
        _decode_raw(code)  # re-raise the same UndefinedOpcode
        raise AssertionError("cached failure decoded cleanly")  # pragma: no cover
    try:
        insns = _decode_raw(code)
    except UndefinedOpcode:
        _CACHE[key] = None
        raise
    _CACHE[key] = insns
    return insns


def try_decode_stream(code: bytes) -> tuple[Insn, ...] | None:
    """Like :func:`decode_stream` but returns None for undecodable
    streams (convenient for cache priming over opaque text objects)."""
    try:
        return decode_stream(code)
    except UndefinedOpcode:
        return None


def _decode_raw(code: bytes) -> tuple[Insn, ...]:
    mv = memoryview(code)
    return tuple(
        decode(bytes(mv[off : off + INSN_SIZE]))
        for off in range(0, len(code), INSN_SIZE)
    )
