"""Virtual CPU substrate.

A compact x86-flavoured virtual machine: eight 32-bit integer registers
with the x86 names, EFLAGS, an x87-style FPU register stack (80-bit data
registers, tag word and the seven special registers the paper enumerates),
and a fixed-width encoded instruction set that includes vector instructions
so application kernels run at NumPy speed while every control value (base
address, length, loop counter, accumulator) still lives in an injectable
register or memory cell.

The fault injector interacts with the VM exactly as the paper's
``ptrace``-based injector interacts with a Linux process: execution is
halted at an instruction boundary, register or memory state is overwritten,
and execution resumes.
"""

from repro.cpu.registers import RegisterFile, REG_NAMES, REG_INDEX
from repro.cpu.fpu import FPU, FPU_SPECIAL_REGS, TagValue
from repro.cpu.isa import Insn, Op, VecOp, RedOp, decode, encode, INSN_SIZE
from repro.cpu.assembler import AssemblerError, Program, assemble_function
from repro.cpu.vm import VM, RET_SENTINEL

__all__ = [
    "RegisterFile",
    "REG_NAMES",
    "REG_INDEX",
    "FPU",
    "FPU_SPECIAL_REGS",
    "TagValue",
    "Insn",
    "Op",
    "VecOp",
    "RedOp",
    "decode",
    "encode",
    "INSN_SIZE",
    "AssemblerError",
    "Program",
    "assemble_function",
    "VM",
    "RET_SENTINEL",
]
