"""Instruction set architecture: encoding, decoding and opcode tables.

Instructions are fixed-width 8-byte words:

    byte 0      opcode
    byte 1      r1 << 4 | r2        (register operand fields)
    byte 2      r3 << 4 | r4
    byte 3      sub-opcode          (vector/reduce operation selector)
    bytes 4-7   imm32, little endian (signed where the opcode says so)

A fixed-width dense encoding is deliberate: a single bit flip in the text
segment lands in a *field* of a real instruction - opcode, register
number, sub-opcode or immediate - and decoding the corrupted word yields
either a different valid instruction (silent behaviour change) or an
undefined opcode (SIGILL), the two outcomes the paper attributes to text
faults ("a bit error in the instruction opcode can alter the instruction
and halt the execution, whereas a bit error in the data could be more
innocuous").
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

#: Instruction width in bytes.
INSN_SIZE = 8

_WORD = struct.Struct("<BBBBi")  # opcode, regs12, regs34, subop, imm32 (signed)


class Op(enum.IntEnum):
    """Primary opcodes.  Gaps are undefined opcodes (decode -> SIGILL)."""

    NOP = 0x01
    HLT = 0x02  # privileged in user mode -> SIGSEGV, a realistic crash

    MOVI = 0x10
    MOV = 0x11
    LOAD = 0x12  # r1 <- mem32[r2 + imm]
    STORE = 0x13  # mem32[r1 + imm] <- r2
    LEA = 0x14  # r1 <- r2 + imm
    PUSH = 0x15
    POP = 0x16

    ADD = 0x20
    SUB = 0x21
    IMUL = 0x22
    IDIV = 0x23
    IREM = 0x24
    AND = 0x25
    OR = 0x26
    XOR = 0x27
    SHL = 0x28
    SHR = 0x29
    ADDI = 0x2A
    CMP = 0x2B
    CMPI = 0x2C
    NEG = 0x2D

    JMP = 0x30  # relative imm (bytes, from the following instruction)
    JZ = 0x31
    JNZ = 0x32
    JL = 0x33
    JGE = 0x34
    JG = 0x35
    JLE = 0x36
    CALL = 0x37  # absolute imm
    RET = 0x38
    CALLR = 0x39  # indirect through r1

    FLD = 0x40  # push f64 from mem[r1 + imm]
    FST = 0x41  # store ST0 to mem[r1 + imm]
    FSTP = 0x42  # store and pop
    FLDZ = 0x43
    FLD1 = 0x44
    FLDIMM = 0x4E  # push float(imm32)
    FADDP = 0x45
    FSUBP = 0x46
    FMULP = 0x47
    FDIVP = 0x48
    FCHS = 0x49
    FABS = 0x4A
    FSQRT = 0x4B
    FXCH = 0x4C  # ST0 <-> ST(r1)
    FCOMIP = 0x4D  # compare ST0 with ST1, set flags, pop
    FDUP = 0x4F  # push a copy of ST0
    FPOP = 0x5F  # discard ST0

    VMOV = 0x50  # dst=r1 src=r2 n=r3
    VFILL = 0x51  # dst=r1 n=r2, value = ST0
    VBIN = 0x52  # dst=r1 a=r2 b=r3 n=r4, elementwise subop
    VBINS = 0x53  # dst=r1 a=r2 n=r3, scalar = ST0
    VAXPY = 0x54  # dst=r1 a=r2 b=r3 n=r4: dst = a + ST0 * b
    VRED = 0x55  # reduce, result pushed; see RedOp


class VecOp(enum.IntEnum):
    """Sub-opcodes for VBIN / VBINS."""

    ADD = 0
    SUB = 1
    MUL = 2
    DIV = 3
    MIN = 4
    MAX = 5


class RedOp(enum.IntEnum):
    """Sub-opcodes for VRED (a=r1, n=r2; DOT uses a=r1, b=r2, n=r3)."""

    SUM = 0
    DOT = 1
    MIN = 2
    MAX = 3
    NANCOUNT = 4
    SUMSQ = 5


#: Valid opcode values, for the decoder.
_VALID_OPS = frozenset(int(op) for op in Op)

#: Opcodes whose imm field is a *relative branch displacement*.
BRANCH_OPS = frozenset(
    {Op.JMP, Op.JZ, Op.JNZ, Op.JL, Op.JGE, Op.JG, Op.JLE}
)


class UndefinedOpcode(Exception):
    """Raised by :func:`decode` for a word with no defined opcode."""

    def __init__(self, opcode: int):
        self.opcode = opcode
        super().__init__(f"undefined opcode 0x{opcode:02x}")


@dataclass(frozen=True)
class Insn:
    """One decoded instruction."""

    op: Op
    r1: int = 0
    r2: int = 0
    r3: int = 0
    r4: int = 0
    subop: int = 0
    imm: int = 0

    def encode(self) -> bytes:
        return encode(self)


def encode(insn: Insn) -> bytes:
    """Encode an instruction into its 8-byte word."""
    for field in ("r1", "r2", "r3", "r4"):
        v = getattr(insn, field)
        if not 0 <= v < 16:
            raise ValueError(f"{field}={v} does not fit the 4-bit register field")
    if not -(2**31) <= insn.imm < 2**31:
        raise ValueError(f"immediate {insn.imm} does not fit in 32 bits")
    if not 0 <= insn.subop < 256:
        raise ValueError(f"subop {insn.subop} does not fit in 8 bits")
    return _WORD.pack(
        int(insn.op),
        (insn.r1 << 4) | insn.r2,
        (insn.r3 << 4) | insn.r4,
        insn.subop,
        insn.imm,
    )


def decode(word: bytes) -> Insn:
    """Decode one 8-byte word; raises :class:`UndefinedOpcode` when the
    opcode byte (possibly the product of a bit flip) is not defined."""
    if len(word) != INSN_SIZE:
        raise ValueError(f"instruction word must be {INSN_SIZE} bytes")
    opcode, regs12, regs34, subop, imm = _WORD.unpack(word)
    if opcode not in _VALID_OPS:
        raise UndefinedOpcode(opcode)
    return Insn(
        op=Op(opcode),
        r1=regs12 >> 4,
        r2=regs12 & 0xF,
        r3=regs34 >> 4,
        r4=regs34 & 0xF,
        subop=subop,
        imm=imm,
    )


def disassemble(word: bytes) -> str:
    """Human-readable rendering (for error messages and tests)."""
    try:
        i = decode(word)
    except UndefinedOpcode as exc:
        return f"(undefined 0x{exc.opcode:02x})"
    return (
        f"{i.op.name} r1={i.r1} r2={i.r2} r3={i.r3} r4={i.r4} "
        f"subop={i.subop} imm={i.imm}"
    )
