"""Ahead-of-time block translation: the fast half of the dual-mode VM.

ZOFI-style architecture (PAPERS.md, arXiv:1906.09390): run free of
per-instruction instrumentation wherever no observer can see
intermediate state, and fall back to the interpreter exactly where one
can.  Each *translation unit* — a straight-line instruction run inside
one CFG basic block — compiles once into a specialized Python function
that replays the interpreter's observable effects bit for bit:

* register values **and** access counters (they feed the section-6.1.1
  liveness statistics and checkpoint digests), flags, FPU state
  including the status-word side effects of empty-slot reads, memory
  through the same checked :class:`AddressSpace` paths;
* ``blocks_executed`` and ``instructions_retired`` accounting — the
  unit's block-clock cost is precomputed from entry-time register
  values, which is sound because a unit is split before any vector
  instruction whose length register was written earlier in the unit;
* on a mid-unit fault: the exception type and message, ``eip``, and
  the partial cost/retirement of the completed prefix.

Unit boundaries come from the PR 1 CFG (:mod:`repro.staticanalysis.cfg`)
plus three split rules on top of basic blocks: after CALL/CALLR
(control leaves the block even though the CFG keeps building through
calls), before a vector instruction with a dynamic entry cost (see
above — the split makes it the *first* instruction of its unit, where
entry-time cost is exact again), and before an instruction the
translator cannot reproduce (a corrupted VBIN/VBINS/VRED sub-opcode,
whose exact interpreter behaviour — including the bare ``KeyError`` of
a missing ufunc — is left to the interpreter).

Every generated unit takes the caller's *budget*: the distance (in
blocks) to the nearest observer horizon — the next ``schedule_hook``
or the hang budget.  A unit whose total cost would reach the horizon
refuses to run (returns True) before touching any state; the dispatch
loop then interprets instruction by instruction, so hooks fire and
``HangDetected`` raises at exactly the same instruction boundary as a
pure interpreter run.

Translations are cached per ``(code digest, base address)``, so every
rank, trial and campaign wave sharing a program shares one compile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cpu import ops, semantics
from repro.cpu.decoder import code_digest, decode_stream, try_decode_stream
from repro.cpu.isa import INSN_SIZE, Insn, Op, RedOp, UndefinedOpcode
from repro.errors import SimFPE, SimSegfault

_M = 0xFFFF_FFFF

#: Conditional branches (they read flags; JMP does not).
_COND_BRANCHES = frozenset(
    {Op.JZ, Op.JNZ, Op.JL, Op.JGE, Op.JG, Op.JLE}
)

#: Flag-writing opcodes (the dead-flag elimination authority is
#: :mod:`repro.cpu.semantics`; mirrored here as a set for speed).
_FLAG_WRITERS = frozenset(
    {
        Op.ADD, Op.SUB, Op.IMUL, Op.IDIV, Op.IREM, Op.AND, Op.OR,
        Op.XOR, Op.SHL, Op.SHR, Op.ADDI, Op.CMP, Op.CMPI, Op.NEG,
        Op.FCOMIP,
    }
)

_REDOPS = frozenset(int(r) for r in RedOp)

_VRED_APPLY_SRC = {
    int(RedOp.SUM): "fpu.push(float(np.sum(a)))",
    int(RedOp.MIN): "fpu.push(float(np.min(a)) if n else math.nan)",
    int(RedOp.MAX): "fpu.push(float(np.max(a)) if n else math.nan)",
    int(RedOp.NANCOUNT): "fpu.push(float(np.count_nonzero(~np.isfinite(a))))",
    int(RedOp.SUMSQ): "fpu.push(float(np.dot(a, a)))",
}


#: Globals bound into every generated module.
_GLOBALS = {
    "S": ops.signed,
    "M": _M,
    "math": math,
    "np": np,
    "SimFPE": SimFPE,
    "SimSegfault": SimSegfault,
}
_GLOBALS.update({f"uf{k}": fn for k, fn in ops.VBIN_UFUNC.items()})


def translatable_subop(insn: Insn) -> bool:
    """Whether the translator can reproduce this instruction's
    sub-opcode (corrupted ones are left to the interpreter so their
    exact failure mode is preserved)."""
    if insn.op in (Op.VBIN, Op.VBINS):
        return insn.subop in ops.VBIN_UFUNC
    if insn.op is Op.VRED:
        return insn.subop in _REDOPS
    return True


# ----------------------------------------------------------------------
# unit planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class UnitPlan:
    """One translation unit: instruction indices [start, end) and why
    the unit ends there."""

    start: int
    end: int
    #: "terminator" (branch/RET/HLT sets eip), "call" (CALL/CALLR),
    #: "fallthrough" (block boundary), "cost_split" (next insn has a
    #: dynamic vector cost), "invalid_next" (next insn untranslatable).
    end_kind: str


@dataclass(frozen=True)
class FunctionPlan:
    name: str
    n_insns: int
    n_blocks: int
    units: tuple[UnitPlan, ...]
    #: (insn index, reason) of instructions left to the interpreter.
    skipped: tuple[tuple[int, str], ...]
    cost_splits: int
    call_splits: int
    #: Function-level reason nothing was translated (None = translated).
    reason: str | None = None

    @property
    def translated_insns(self) -> int:
        return sum(u.end - u.start for u in self.units)


def plan_function(name: str, insns, cfg) -> FunctionPlan:
    """Split a function's basic blocks into translation units."""
    units: list[UnitPlan] = []
    skipped: list[tuple[int, str]] = []
    cost_splits = call_splits = 0
    for block in cfg.blocks:
        start = block.start
        written: set[int] = set()
        j = block.start
        while j < block.end:
            insn = insns[j]
            if insn.op in ops.VECTOR_OPS:
                if not translatable_subop(insn):
                    if j > start:
                        units.append(UnitPlan(start, j, "invalid_next"))
                    skipped.append((j, "invalid_subop"))
                    j += 1
                    start = j
                    written = set()
                    continue
                if ops.vector_len_reg(insn) in written:
                    # Entry-time cost would be stale: start a new unit
                    # at the vector insn, where entry regs are exact.
                    units.append(UnitPlan(start, j, "cost_split"))
                    cost_splits += 1
                    start = j
                    written = set()
            written |= semantics.effects(insn).writes
            if insn.op in (Op.CALL, Op.CALLR):
                units.append(UnitPlan(start, j + 1, "call"))
                call_splits += 1
                start = j + 1
                written = set()
            j += 1
        if start < block.end:
            last = insns[block.end - 1]
            kind = (
                "terminator" if semantics.is_terminator(last) else "fallthrough"
            )
            units.append(UnitPlan(start, block.end, kind))
    return FunctionPlan(
        name=name,
        n_insns=len(insns),
        n_blocks=len(cfg.blocks),
        units=tuple(units),
        skipped=tuple(skipped),
        cost_splits=cost_splits,
        call_splits=call_splits,
    )


# ----------------------------------------------------------------------
# code generation
# ----------------------------------------------------------------------
class _Emitter:
    """Accumulates generated lines; batches register-access counter
    increments between observation points (any point where a fault can
    surface machine state) so the hot path stays short."""

    def __init__(self, indent: int) -> None:
        self.lines: list[str] = []
        self.indent = indent
        self._pending: dict[tuple[str, int], int] = {}

    def line(self, s: str) -> None:
        self.lines.append("    " * self.indent + s)

    def r(self, k: int, n: int = 1) -> None:
        self._pending[("rc", k)] = self._pending.get(("rc", k), 0) + n

    def w(self, k: int, n: int = 1) -> None:
        self._pending[("wc", k)] = self._pending.get(("wc", k), 0) + n

    def flush(self) -> None:
        for arr, k in sorted(self._pending):
            self.line(f"{arr}[{k}] += {self._pending[(arr, k)]}")
        self._pending.clear()


def _addr_expr(k: int, imm: int) -> str:
    return f"rr[{k}]" if imm == 0 else f"(rr[{k}] + {imm}) & M"


def _flag_liveness(body) -> list[bool]:
    """Backward pass: a flag write may be skipped iff no conditional
    branch, fault point or unit end can observe it before the next
    write."""
    live = [False] * len(body)
    observed = True  # flags at unit end are observable state
    for j in range(len(body) - 1, -1, -1):
        op = body[j].op
        if op in _FLAG_WRITERS:
            live[j] = observed
            observed = False
        if op in _COND_BRANCHES or op in ops.CAN_RAISE:
            observed = True
    return live


def _cost_expr(n_scalar: int, cost_vars: list[str]) -> str:
    """Block-clock cost as a source expression, folding repeated cost
    variables (``3 + 2*c1`` instead of ``3 + c1 + c1``)."""
    counts: dict[str, int] = {}
    for v in cost_vars:
        counts[v] = counts.get(v, 0) + 1
    terms = [str(n_scalar)] + [
        v if c == 1 else f"{c}*{v}" for v, c in counts.items()
    ]
    return " + ".join(terms)


_ALU2_SIGNED = {Op.ADD: "+", Op.SUB: "-", Op.IMUL: "*"}
_ALU2_BITWISE = {Op.AND: "&", Op.OR: "|", Op.XOR: "^"}


def _gen_unit(fname: str, insns, unit: UnitPlan, base: int) -> list[str]:
    body = insns[unit.start : unit.end]
    n = len(body)
    flags_live = _flag_liveness(body)
    can_raise = any(i.op in ops.CAN_RAISE for i in body)

    header = [
        f"def {fname}(vm, regs, rr, rc, wc, space, fpu, clock, budget):"
    ]
    # One cost variable per *distinct* length register: the planner's
    # cost_split rule guarantees no earlier unit instruction writes a
    # later vector insn's length register, so every vector insn reading
    # the same register sees the same entry-time value.
    cost_vars: list[str] = []
    seen_lenregs: set[int] = set()
    for i in body:
        if i.op in ops.VECTOR_OPS:
            reg = ops.vector_len_reg(i)
            cost_vars.append(f"c{reg}")
            if reg not in seen_lenregs:
                seen_lenregs.add(reg)
                header.append(f"    c{reg} = rr[{reg}] >> 3 or 1")
    n_scalar = n - len(cost_vars)
    total = _cost_expr(n_scalar, cost_vars)
    if cost_vars:
        header.append(f"    _t = {total}")
        total = "_t"
        # Monomorphic view lookup: the fast path never runs with
        # working-set tracking enabled (the dispatch gate forces the
        # interpreter), so a cache hit can skip vector_f64 entirely.
        # Misses fall through to the full checked path, raising exactly
        # like the interpreter would.
        header.append("    _vg = space._vec_cache.get")
    header.append(f"    if {total} > budget:")
    header.append("        return True")
    if can_raise:
        header.append("    _st = (0, 0)")
        header.append("    try:")

    em = _Emitter(indent=2 if can_raise else 1)
    ns_done = 0  # scalar instructions emitted so far
    cv_done: list[str] = []  # cost vars of vector insns emitted so far

    def barrier(j: int, addr: int) -> None:
        """Fault point: flush counters, plant the completed-prefix
        accounting and the faulting instruction's post-fetch eip."""
        em.flush()
        em.line(f"_st = ({j}, {_cost_expr(ns_done, cv_done)})")
        em.line(f"regs.eip = {addr + INSN_SIZE}")

    for j, i in enumerate(body):
        addr = base + INSN_SIZE * (unit.start + j)
        _emit_insn(em, i, j, addr, flags_live[j], barrier)
        if i.op in ops.VECTOR_OPS:
            cv_done.append(f"c{ops.vector_len_reg(i)}")
        else:
            ns_done += 1

    tail: list[str] = []
    if can_raise:
        tail += [
            "    except BaseException:",
            "        vm.instructions_retired += _st[0]",
            "        clock.blocks += _st[1]",
            "        raise",
        ]
    closing = _Emitter(indent=1)
    closing._pending = em._pending
    em._pending = {}
    closing.flush()
    closing.line(f"vm.instructions_retired += {n}")
    closing.line(f"clock.blocks += {total}")
    if unit.end_kind in ("fallthrough", "cost_split", "invalid_next"):
        closing.line(f"regs.eip = {base + INSN_SIZE * unit.end}")
    return header + em.lines + tail + closing.lines


def _vec_view(em, var: str, reg: int, write: bool = False) -> None:
    """Emit a float64 view fetch through the unit-local cache getter
    (``_vg``); misses take the full checked ``vector_f64`` path."""
    flag = "True" if write else "False"
    em.line(f"_h = _vg((rr[{reg}], n, {flag}))")
    em.line(
        f"{var} = _h[1] if _h is not None else "
        f"space.vector_f64(rr[{reg}], n{', True' if write else ''})"
    )


def _emit_insn(em, i: Insn, j: int, addr: int, flags_live: bool, barrier):
    op = i.op
    k1, k2, k3, k4 = i.r1 & 7, i.r2 & 7, i.r3 & 7, i.r4 & 7

    def flags(expr: str) -> None:
        """Flags of a plain signed Python int (IDIV/IREM quotients)."""
        if flags_live:
            em.line(f"s = {expr}")
            em.line("regs.zf = s == 0")
            em.line("regs.sf = s < 0")

    def flags_masked(var: str) -> None:
        """Flags of a 32-bit masked result: ``signed(r) == 0`` iff
        ``r == 0`` and ``signed(r) < 0`` iff the sign bit is set, so no
        signed conversion is needed on the hot ALU path."""
        if flags_live:
            em.line(f"regs.zf = {var} == 0")
            em.line(f"regs.sf = {var} >= 2147483648")

    if op is Op.NOP:
        pass
    elif op is Op.HLT:
        barrier(j, addr)
        em.line(
            f'raise SimSegfault("privileged instruction at 0x{addr:08x}")'
        )

    # -------------------------------------------------- data movement
    elif op is Op.MOVI:
        em.w(k1)
        em.line(f"rr[{k1}] = {i.imm & _M}")
    elif op is Op.MOV:
        em.r(k2)
        em.w(k1)
        em.line(f"rr[{k1}] = rr[{k2}]")
    elif op is Op.LOAD:
        em.r(k2)
        barrier(j, addr)
        em.line(f"v = space.load_u32({_addr_expr(k2, i.imm)})")
        em.w(k1)
        em.line(f"rr[{k1}] = v")
    elif op is Op.STORE:
        em.r(k1)
        em.r(k2)
        barrier(j, addr)
        em.line(f"space.store_u32({_addr_expr(k1, i.imm)}, rr[{k2}])")
    elif op is Op.LEA:
        em.r(k2)
        em.w(k1)
        em.line(f"rr[{k1}] = {_addr_expr(k2, i.imm)}")
    elif op is Op.PUSH:
        # value is read before ESP moves (PUSH ESP pushes the old ESP)
        em.r(k1)
        em.r(4)
        em.w(4)
        barrier(j, addr)
        em.line(f"v = rr[{k1}]")
        em.line("e = (rr[4] - 4) & M")
        em.line("rr[4] = e")
        em.line("space.store_u32(e, v)")
    elif op is Op.POP:
        em.r(4)
        barrier(j, addr)
        em.line("e = rr[4]")
        em.line("v = space.load_u32(e)")
        em.w(4)
        em.w(k1)
        em.line("rr[4] = (e + 4) & M")
        em.line(f"rr[{k1}] = v")

    # -------------------------------------------------- integer ALU
    elif op in _ALU2_SIGNED:
        # Two's-complement identity: (signed(a) op signed(b)) & M equals
        # (a op b) & M for +, - and *, so the unsigned register words
        # feed the ALU directly.
        em.r(k1)
        em.r(k2)
        em.w(k1)
        em.line(f"r = (rr[{k1}] {_ALU2_SIGNED[op]} rr[{k2}]) & M")
        em.line(f"rr[{k1}] = r")
        flags_masked("r")
    elif op in (Op.IDIV, Op.IREM):
        em.r(k2)
        barrier(j, addr)
        em.line(f"b = S(rr[{k2}])")
        em.line("if b == 0:")
        em.line("    raise SimFPE('integer division by zero')")
        em.r(k1)
        em.w(k1)
        em.line(f"a = S(rr[{k1}])")
        if op is Op.IDIV:
            em.line("q = int(math.trunc(a / b))")
            em.line(f"rr[{k1}] = q & M")
            flags("q")
        else:
            em.line("q = a - int(math.trunc(a / b)) * b")
            em.line(f"rr[{k1}] = q & M")
            flags("q")
    elif op in _ALU2_BITWISE:
        em.r(k1)
        em.r(k2)
        em.w(k1)
        em.line(f"r = rr[{k1}] {_ALU2_BITWISE[op]} rr[{k2}]")
        em.line(f"rr[{k1}] = r")
        flags_masked("r")
    elif op is Op.SHL:
        em.r(k1)
        em.w(k1)
        em.line(f"r = (rr[{k1}] << {i.imm & 31}) & M")
        em.line(f"rr[{k1}] = r")
        flags_masked("r")
    elif op is Op.SHR:
        em.r(k1)
        em.w(k1)
        em.line(f"r = rr[{k1}] >> {i.imm & 31}")
        em.line(f"rr[{k1}] = r")
        flags_masked("r")
    elif op is Op.ADDI:
        em.r(k1)
        em.w(k1)
        em.line(f"r = (rr[{k1}] + {i.imm}) & M")
        em.line(f"rr[{k1}] = r")
        flags_masked("r")
    elif op is Op.CMP:
        # zf compares the raw words; sf needs a true signed compare
        # (the difference is computed in unbounded ints, so it cannot
        # be reduced to a masked sign bit).
        em.r(k1)
        em.r(k2)
        if flags_live:
            em.line(f"a = rr[{k1}]")
            em.line(f"b = rr[{k2}]")
            em.line("regs.zf = a == b")
            em.line(
                "regs.sf = (a - 4294967296 if a >= 2147483648 else a)"
                " < (b - 4294967296 if b >= 2147483648 else b)"
            )
    elif op is Op.CMPI:
        em.r(k1)
        if flags_live:
            em.line(f"a = rr[{k1}]")
            em.line(f"regs.zf = a == {i.imm & _M}")
            em.line(
                f"regs.sf = (a - 4294967296 if a >= 2147483648 else a)"
                f" < {i.imm}"
            )
    elif op is Op.NEG:
        em.r(k1)
        em.w(k1)
        em.line(f"r = (-rr[{k1}]) & M")
        em.line(f"rr[{k1}] = r")
        flags_masked("r")

    # -------------------------------------------------- control flow
    elif op in (Op.JMP, *_COND_BRANCHES):
        taken = (addr + INSN_SIZE + i.imm) & _M
        fall = addr + INSN_SIZE
        if op is Op.JMP:
            em.line(f"regs.eip = {taken}")
        elif op is Op.JZ:
            em.line(f"regs.eip = {taken} if regs.zf else {fall}")
        elif op is Op.JNZ:
            em.line(f"regs.eip = {fall} if regs.zf else {taken}")
        elif op is Op.JL:
            em.line(f"regs.eip = {taken} if regs.sf else {fall}")
        elif op is Op.JGE:
            em.line(f"regs.eip = {fall} if regs.sf else {taken}")
        elif op is Op.JG:
            em.line(
                f"regs.eip = {fall} if (regs.sf or regs.zf) else {taken}"
            )
        else:  # JLE
            em.line(
                f"regs.eip = {taken} if (regs.sf or regs.zf) else {fall}"
            )
    elif op is Op.CALL:
        em.r(4)
        em.w(4)
        barrier(j, addr)
        em.line("e = (rr[4] - 4) & M")
        em.line("rr[4] = e")
        em.line(f"space.store_u32(e, {addr + INSN_SIZE})")
        em.line(f"regs.eip = {i.imm & _M}")
    elif op is Op.CALLR:
        em.r(4)
        em.w(4)
        barrier(j, addr)
        em.line("e = (rr[4] - 4) & M")
        em.line("rr[4] = e")
        em.line(f"space.store_u32(e, {addr + INSN_SIZE})")
        em.r(k1)
        em.line(f"regs.eip = rr[{k1}]")
    elif op is Op.RET:
        em.r(4)
        barrier(j, addr)
        em.line("e = rr[4]")
        em.line("v = space.load_u32(e)")
        em.w(4)
        em.line("rr[4] = (e + 4) & M")
        em.line("regs.eip = v")

    # -------------------------------------------------- x87 FPU
    elif op is Op.FLD:
        em.r(k1)
        barrier(j, addr)
        em.line(f"fpu.push(space.load_f64({_addr_expr(k1, i.imm)}))")
    elif op in (Op.FST, Op.FSTP):
        em.r(k1)
        barrier(j, addr)
        em.line(
            f"space.store_f64({_addr_expr(k1, i.imm)}, "
            f"fpu.to_double(fpu.read_st(0)))"
        )
        if op is Op.FSTP:
            em.line("fpu.pop()")
    elif op is Op.FLDZ:
        em.line("fpu.push(0.0)")
    elif op is Op.FLD1:
        em.line("fpu.push(1.0)")
    elif op is Op.FLDIMM:
        em.line(f"fpu.push({float(i.imm)!r})")
    elif op in (Op.FADDP, Op.FSUBP, Op.FMULP):
        sym = {Op.FADDP: "+", Op.FSUBP: "-", Op.FMULP: "*"}[op]
        em.line("b = fpu.pop()")
        em.line("a = fpu.pop()")
        em.line(f"fpu.push(a {sym} b)")
    elif op is Op.FDIVP:
        em.line("b = fpu.pop()")
        em.line("a = fpu.pop()")
        em.line("if b == 0.0:")
        em.line(
            "    fpu.push(math.nan if a == 0.0 or math.isnan(a) else "
            "math.copysign(math.inf, a) * math.copysign(1.0, b))"
        )
        em.line("else:")
        em.line("    fpu.push(a / b)")
    elif op is Op.FCHS:
        em.line("fpu.write_st(0, -fpu.read_st(0))")
    elif op is Op.FABS:
        em.line("fpu.write_st(0, abs(fpu.read_st(0)))")
    elif op is Op.FSQRT:
        em.line("v = fpu.read_st(0)")
        em.line("fpu.write_st(0, math.sqrt(v) if v >= 0.0 else math.nan)")
    elif op is Op.FXCH:
        em.line(f"fpu.exchange({i.r1})")
    elif op is Op.FCOMIP:
        em.line("a, b = fpu.read_st(0), fpu.read_st(1)")
        if flags_live:
            em.line("if math.isnan(a) or math.isnan(b):")
            em.line("    regs.zf, regs.sf = True, False")
            em.line("else:")
            em.line("    regs.zf, regs.sf = (a == b), (a < b)")
        em.line("fpu.pop()")
    elif op is Op.FDUP:
        em.line("fpu.push(fpu.read_st(0))")
    elif op is Op.FPOP:
        em.line("fpu.pop()")

    # -------------------------------------------------- vector unit
    # No per-insn ``np.errstate`` here: the dispatch loop holds one
    # ``errstate(all="ignore")`` across the whole fast run, which is
    # observationally identical to the interpreter's per-op scope (the
    # policy only suppresses NumPy warnings; values are unaffected).
    elif op is Op.VMOV:
        em.r(k3)
        em.r(k2)
        barrier(j, addr)
        em.line(f"n = rr[{k3}]")
        _vec_view(em, "src", k2)
        em.line(f"rc[{k1}] += 1")
        _vec_view(em, "dst", k1, write=True)
        em.line("np.copyto(dst, src)")
    elif op is Op.VFILL:
        em.r(k2)
        em.r(k1)
        barrier(j, addr)
        em.line(f"n = rr[{k2}]")
        _vec_view(em, "dst", k1, write=True)
        em.line("dst.fill(fpu.to_double(fpu.read_st(0)))")
    elif op is Op.VBIN:
        em.r(k4)
        em.r(k2)
        barrier(j, addr)
        em.line(f"n = rr[{k4}]")
        _vec_view(em, "a", k2)
        em.line(f"rc[{k3}] += 1")
        # Same source register twice: the second view lookup would hit
        # the same cache entry, so alias it (raise behavior identical).
        if k3 == k2:
            em.line("b = a")
        else:
            _vec_view(em, "b", k3)
        em.line(f"rc[{k1}] += 1")
        _vec_view(em, "dst", k1, write=True)
        em.line(f"uf{i.subop}(a, b, out=dst)")
    elif op is Op.VBINS:
        em.r(k3)
        em.r(k2)
        barrier(j, addr)
        em.line(f"n = rr[{k3}]")
        _vec_view(em, "a", k2)
        em.line(f"rc[{k1}] += 1")
        _vec_view(em, "dst", k1, write=True)
        em.line("s = fpu.to_double(fpu.read_st(0))")
        em.line(f"uf{i.subop}(a, s, out=dst)")
    elif op is Op.VAXPY:
        em.r(k4)
        em.r(k2)
        barrier(j, addr)
        em.line(f"n = rr[{k4}]")
        _vec_view(em, "a", k2)
        em.line(f"rc[{k3}] += 1")
        if k3 == k2:
            em.line("b = a")
        else:
            _vec_view(em, "b", k3)
        em.line(f"rc[{k1}] += 1")
        _vec_view(em, "dst", k1, write=True)
        em.line("s = fpu.to_double(fpu.read_st(0))")
        em.line("np.add(a, s * b, out=dst)")
    elif op is Op.VRED:
        if i.subop == RedOp.DOT:
            em.r(k3)
            em.r(k1)
            barrier(j, addr)
            em.line(f"n = rr[{k3}]")
            _vec_view(em, "a", k1)
            em.line(f"rc[{k2}] += 1")
            if k2 == k1:
                em.line("b = a")
            else:
                _vec_view(em, "b", k2)
            em.line("fpu.push(float(np.dot(a, b)))")
        else:
            em.r(k2)
            em.r(k1)
            barrier(j, addr)
            em.line(f"n = rr[{k2}]")
            _vec_view(em, "a", k1)
            em.line(_VRED_APPLY_SRC[i.subop])
    else:  # pragma: no cover - the planner excludes everything else
        raise AssertionError(f"unplanned opcode {op!r}")


# ----------------------------------------------------------------------
# compilation + cache
# ----------------------------------------------------------------------
#: (code digest, base address) -> {entry addr: (unit fn, n insns)}.
_TRANSLATIONS: dict[tuple[bytes, int], dict] = {}


def translation_for(name: str, code: bytes, base: int) -> dict:
    """Translate one linked text object (already relocated) laid out at
    ``base``.  Returns ``{}`` for objects that cannot be translated as
    a whole (undecodable or misaligned); cached per content digest."""
    key = (code_digest(code), base)
    cached = _TRANSLATIONS.get(key)
    if cached is None:
        cached = _TRANSLATIONS[key] = _translate(name, code, base)
    return cached


def _translate(name: str, code: bytes, base: int) -> dict:
    from repro.staticanalysis.cfg import ControlFlowGraph

    if len(code) % INSN_SIZE or not code:
        return {}
    insns = try_decode_stream(bytes(code))
    if insns is None:
        return {}
    cfg = ControlFlowGraph.from_code(name, bytes(code))
    plan = plan_function(name, insns, cfg)
    return compile_plan(name, insns, plan, base)


def compile_plan(name: str, insns, plan: FunctionPlan, base: int) -> dict:
    """Compile every unit of a plan into its specialized function."""
    lines: list[str] = []
    for ui, unit in enumerate(plan.units):
        lines += _gen_unit(f"u{ui}", insns, unit, base)
    namespace = dict(_GLOBALS)
    exec(
        compile(
            "\n".join(lines), f"<fastpath:{name}@0x{base:08x}>", "exec"
        ),
        namespace,
    )
    return {
        base + INSN_SIZE * u.start: (namespace[f"u{ui}"], u.end - u.start)
        for ui, u in enumerate(plan.units)
    }


def build_vm_table(image) -> dict:
    """Merge the translations of every text symbol in a process image
    into one dispatch table (entry address -> unit)."""
    text = image.text
    table: dict = {}
    for sym in image.symtab.symbols("text"):
        if sym.size == 0 or sym.size % INSN_SIZE:
            continue
        code = text.read_bytes(sym.addr, sym.size)
        table.update(translation_for(sym.name, code, sym.addr))
    return table


# ----------------------------------------------------------------------
# translatability audit (the `analyze --translate` emitter)
# ----------------------------------------------------------------------
def audit_function(fn) -> dict:
    """Static translatability report for one assembled function."""
    from repro.staticanalysis.cfg import ControlFlowGraph

    try:
        insns = decode_stream(bytes(fn.code))
    except (UndefinedOpcode, ValueError) as exc:
        return {
            "name": fn.name,
            "insns": len(fn.code) // INSN_SIZE,
            "blocks": 0,
            "units": 0,
            "translated_insns": 0,
            "interpreted_insns": len(fn.code) // INSN_SIZE,
            "cost_splits": 0,
            "call_splits": 0,
            "untranslatable": [],
            "reason": f"undecodable: {exc}",
        }
    cfg = ControlFlowGraph.from_function(fn)
    plan = plan_function(fn.name, insns, cfg)
    translated = plan.translated_insns
    return {
        "name": fn.name,
        "insns": plan.n_insns,
        "blocks": plan.n_blocks,
        "units": len(plan.units),
        "translated_insns": translated,
        "interpreted_insns": plan.n_insns - translated,
        "cost_splits": plan.cost_splits,
        "call_splits": plan.call_splits,
        "untranslatable": [
            {"index": idx, "reason": reason} for idx, reason in plan.skipped
        ],
        "reason": None,
    }
