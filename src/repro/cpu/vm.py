"""The virtual machine interpreter.

Executes assembled kernels against a :class:`~repro.memory.process.ProcessImage`.
Every design choice serves the fault-injection experiment:

* Execution halts *between* instructions at scheduled basic-block counts
  so the injector can overwrite registers or memory and resume - the
  analogue of the paper's ``ptrace``-based injector waking up periodically.
* Scalar instructions advance the clock by one block; vector instructions
  advance it in proportion to the element count they replace, so the
  uniform injection-time sampling lands in compute loops with realistic
  density.
* Instruction words are fetched (and the text working set recorded)
  through the address space; decoded words are cached against the text
  segment's version counter, so a bit flip in text invalidates the cache
  and the corrupted word is re-decoded - possibly into a different valid
  instruction, possibly into SIGILL.
* A block budget models the paper's hang criterion ("one minute beyond
  the expected execution completion time").
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.errors import (
    HangDetected,
    SimFPE,
    SimIllegalInstruction,
    SimSegfault,
)
from repro.observability import runtime as _obs
from repro.cpu.fpu import FPU
from repro.cpu.isa import INSN_SIZE, Insn, Op, RedOp, UndefinedOpcode, VecOp, decode
from repro.cpu.registers import EAX, EBP, ESP, RegisterFile
from repro.memory.process import ProcessImage

#: Return address marking the outermost frame of a ``VM.call``.  It lies
#: in kernel space, so a corrupted return address that *doesn't* exactly
#: match it faults on the next fetch - as on real hardware.
RET_SENTINEL = 0xFFFF_FFF0

_U32_MASK = 0xFFFF_FFFF


def _signed(v: int) -> int:
    return v - 0x1_0000_0000 if v & 0x8000_0000 else v


class VM:
    """One virtual CPU bound to one process image."""

    def __init__(self, image: ProcessImage) -> None:
        self.image = image
        self.space = image.address_space
        self.clock = image.clock
        self.regs = RegisterFile()
        self.fpu = FPU()
        #: Hard block budget; exceeded -> HangDetected (None = unlimited).
        self.block_limit: int | None = None
        #: Scheduled injection callbacks: sorted [(block_count, fn), ...].
        self._hooks: list[tuple[int, Callable[["VM"], None]]] = []
        self._next_hook: int | None = None
        self._decode_cache: dict[int, tuple[int, Insn]] = {}
        self._running = False
        self.instructions_retired = 0
        #: Optional control-flow signature monitor
        #: (:mod:`repro.detectors.cfcheck`); called per retired
        #: instruction with (addr, insn, next_eip).
        self.cf_checker = None

    # ------------------------------------------------------------------
    # injection scheduling (the ptrace analogue)
    # ------------------------------------------------------------------
    def schedule_hook(self, at_blocks: int, callback: Callable[["VM"], None]) -> None:
        """Run ``callback(vm)`` at the first instruction boundary at or
        after ``at_blocks`` executed blocks."""
        self._hooks.append((at_blocks, callback))
        self._hooks.sort(key=lambda h: h[0])
        self._next_hook = self._hooks[0][0]

    def _fire_hooks(self) -> None:
        while self._hooks and self.clock.blocks >= self._hooks[0][0]:
            _, callback = self._hooks.pop(0)
            callback(self)
        self._next_hook = self._hooks[0][0] if self._hooks else None

    def pending_hooks(self) -> int:
        return len(self._hooks)

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def capture_state(self) -> tuple:
        """Picklable CPU-side state (registers, FPU, clock, retirement
        counter).  Memory and pending hooks are captured separately: the
        image belongs to the snapshot layer and hooks are per-trial
        wiring armed *after* a restore."""
        return (
            self.regs.capture_state(),
            self.fpu.capture_state(),
            self.clock.blocks,
            self.instructions_retired,
        )

    def restore_state(self, state: tuple) -> None:
        regs, fpu, blocks, insns = state
        self.regs.restore_state(regs)
        self.fpu.restore_state(fpu)
        self.clock.restore(blocks)
        self.instructions_retired = insns

    # ------------------------------------------------------------------
    # stack helpers (operate through the *register-file* ESP, so a
    # corrupted ESP derails pushes and pops exactly as on hardware)
    # ------------------------------------------------------------------
    def _push_u32(self, value: int) -> None:
        esp = (self.regs.get(ESP) - 4) & _U32_MASK
        self.regs.put(ESP, esp)
        self.space.store_u32(esp, value)

    def _pop_u32(self) -> int:
        esp = self.regs.get(ESP)
        value = self.space.load_u32(esp)
        self.regs.put(ESP, (esp + 4) & _U32_MASK)
        return value

    # ------------------------------------------------------------------
    # top-level entry
    # ------------------------------------------------------------------
    def call(self, function: str | int, args: Sequence[int] = ()) -> int:
        """Call an assembled function with 32-bit arguments (cdecl);
        returns EAX.  Floating-point results are left on the FPU stack."""
        entry = (
            self.image.entry_points[function]
            if isinstance(function, str)
            else function
        )
        stack = self.image.stack
        for a in reversed([int(x) & _U32_MASK for x in args]):
            stack.push_u32(a)
        stack.push_u32(RET_SENTINEL)
        self.regs.poke(ESP, stack.esp)
        self.regs.poke(EBP, stack.ebp)
        self.regs.eip = entry
        tracer = _obs.TRACER
        if tracer is None:
            self._run()
        else:
            # Kernel span: one "X" event per VM.call, stamped on the
            # simulated block clock; emitted even when the kernel dies
            # mid-flight so a crashing trial shows the truncated span.
            name = function if isinstance(function, str) else f"fn@0x{entry:08x}"
            t0 = self.clock.blocks
            i0 = self.instructions_retired
            try:
                self._run()
            finally:
                tracer.complete(
                    f"kernel:{name}",
                    "vm",
                    t0,
                    self.clock.blocks - t0,
                    tid=self.image.rank,
                    args={"insns": self.instructions_retired - i0},
                )
        # Caller pops the arguments (cdecl); ESP is just above the
        # (now consumed) return-address slot.
        stack.esp = (self.regs.peek(ESP) + 4 * len(args)) & _U32_MASK
        stack.ebp = self.regs.peek(EBP)
        return self.regs.peek(EAX)

    def _run(self) -> None:
        self._running = True
        try:
            while self._running:
                self.step()
        finally:
            self._running = False

    # ------------------------------------------------------------------
    # fetch/decode
    # ------------------------------------------------------------------
    def _fetch(self, eip: int) -> Insn:
        text = self.image.text
        if text.contains(eip, INSN_SIZE):
            cached = self._decode_cache.get(eip)
            if cached is not None and cached[0] == text.version:
                text.note_exec(eip, INSN_SIZE)
                return cached[1]
            word = text.read_bytes(eip, INSN_SIZE)
            text.note_exec(eip, INSN_SIZE)
        else:
            # Jumped outside text: fetch through the checked path, which
            # raises SIGSEGV for unmapped/execute-denied addresses.
            word = self.space.fetch_code(eip, INSN_SIZE)
        try:
            insn = decode(word)
        except UndefinedOpcode as exc:
            raise SimIllegalInstruction(
                f"undefined opcode 0x{exc.opcode:02x} at 0x{eip:08x}"
            ) from None
        if text.contains(eip, INSN_SIZE):
            self._decode_cache[eip] = (text.version, insn)
        return insn

    # ------------------------------------------------------------------
    # single step
    # ------------------------------------------------------------------
    def step(self) -> None:
        eip = self.regs.eip
        if eip == RET_SENTINEL:
            self._running = False
            return
        insn = self._fetch(eip)
        self.regs.eip = eip + INSN_SIZE
        self._execute(insn)
        if self.cf_checker is not None:
            self.cf_checker.check(eip, insn, self.regs.eip)
        self.instructions_retired += 1
        blocks = self.clock.tick(self._cost(insn))
        if self._next_hook is not None and blocks >= self._next_hook:
            self._fire_hooks()
        if self.block_limit is not None and blocks > self.block_limit:
            raise HangDetected("block budget exceeded", blocks)

    def _cost(self, insn: Insn) -> int:
        if insn.op in _VECTOR_OPS:
            n_field = _VECTOR_LEN_FIELD[insn.op]
            if insn.op == Op.VRED and insn.subop == RedOp.DOT:
                n_field = "r3"
            n = self.regs.peek(getattr(insn, n_field))
            return max(1, n >> 3)
        return 1

    # ------------------------------------------------------------------
    # execute
    # ------------------------------------------------------------------
    def _execute(self, i: Insn) -> None:
        op = i.op
        regs = self.regs
        fpu = self.fpu
        space = self.space

        if op is Op.NOP:
            return
        if op is Op.HLT:
            # HLT is privileged; in user mode the kernel delivers SIGSEGV.
            raise SimSegfault(f"privileged instruction at 0x{regs.eip - INSN_SIZE:08x}")

        # -------------------------------------------------- data movement
        if op is Op.MOVI:
            regs.put(i.r1, i.imm & _U32_MASK)
        elif op is Op.MOV:
            regs.put(i.r1, regs.get(i.r2))
        elif op is Op.LOAD:
            regs.put(i.r1, space.load_u32((regs.get(i.r2) + i.imm) & _U32_MASK))
        elif op is Op.STORE:
            space.store_u32((regs.get(i.r1) + i.imm) & _U32_MASK, regs.get(i.r2))
        elif op is Op.LEA:
            regs.put(i.r1, (regs.get(i.r2) + i.imm) & _U32_MASK)
        elif op is Op.PUSH:
            self._push_u32(regs.get(i.r1))
        elif op is Op.POP:
            regs.put(i.r1, self._pop_u32())

        # -------------------------------------------------- integer ALU
        elif op is Op.ADD:
            r = _signed(regs.get(i.r1)) + _signed(regs.get(i.r2))
            regs.put(i.r1, r & _U32_MASK)
            regs.set_flags(_signed(r & _U32_MASK))
        elif op is Op.SUB:
            r = _signed(regs.get(i.r1)) - _signed(regs.get(i.r2))
            regs.put(i.r1, r & _U32_MASK)
            regs.set_flags(_signed(r & _U32_MASK))
        elif op is Op.IMUL:
            r = _signed(regs.get(i.r1)) * _signed(regs.get(i.r2))
            regs.put(i.r1, r & _U32_MASK)
            regs.set_flags(_signed(r & _U32_MASK))
        elif op is Op.IDIV:
            b = _signed(regs.get(i.r2))
            if b == 0:
                raise SimFPE("integer division by zero")
            a = _signed(regs.get(i.r1))
            q = int(math.trunc(a / b))  # C truncation semantics
            regs.put(i.r1, q & _U32_MASK)
            regs.set_flags(q)
        elif op is Op.IREM:
            b = _signed(regs.get(i.r2))
            if b == 0:
                raise SimFPE("integer division by zero")
            a = _signed(regs.get(i.r1))
            r = a - int(math.trunc(a / b)) * b
            regs.put(i.r1, r & _U32_MASK)
            regs.set_flags(r)
        elif op is Op.AND:
            r = regs.get(i.r1) & regs.get(i.r2)
            regs.put(i.r1, r)
            regs.set_flags(_signed(r))
        elif op is Op.OR:
            r = regs.get(i.r1) | regs.get(i.r2)
            regs.put(i.r1, r)
            regs.set_flags(_signed(r))
        elif op is Op.XOR:
            r = regs.get(i.r1) ^ regs.get(i.r2)
            regs.put(i.r1, r)
            regs.set_flags(_signed(r))
        elif op is Op.SHL:
            r = (regs.get(i.r1) << (i.imm & 31)) & _U32_MASK
            regs.put(i.r1, r)
            regs.set_flags(_signed(r))
        elif op is Op.SHR:
            r = regs.get(i.r1) >> (i.imm & 31)
            regs.put(i.r1, r)
            regs.set_flags(_signed(r))
        elif op is Op.ADDI:
            r = (_signed(regs.get(i.r1)) + i.imm) & _U32_MASK
            regs.put(i.r1, r)
            regs.set_flags(_signed(r))
        elif op is Op.CMP:
            regs.set_flags(_signed(regs.get(i.r1)) - _signed(regs.get(i.r2)))
        elif op is Op.CMPI:
            regs.set_flags(_signed(regs.get(i.r1)) - i.imm)
        elif op is Op.NEG:
            r = (-_signed(regs.get(i.r1))) & _U32_MASK
            regs.put(i.r1, r)
            regs.set_flags(_signed(r))

        # -------------------------------------------------- control flow
        elif op is Op.JMP:
            regs.eip = (regs.eip + i.imm) & _U32_MASK
        elif op is Op.JZ:
            if regs.zf:
                regs.eip = (regs.eip + i.imm) & _U32_MASK
        elif op is Op.JNZ:
            if not regs.zf:
                regs.eip = (regs.eip + i.imm) & _U32_MASK
        elif op is Op.JL:
            if regs.sf:
                regs.eip = (regs.eip + i.imm) & _U32_MASK
        elif op is Op.JGE:
            if not regs.sf:
                regs.eip = (regs.eip + i.imm) & _U32_MASK
        elif op is Op.JG:
            if not regs.sf and not regs.zf:
                regs.eip = (regs.eip + i.imm) & _U32_MASK
        elif op is Op.JLE:
            if regs.sf or regs.zf:
                regs.eip = (regs.eip + i.imm) & _U32_MASK
        elif op is Op.CALL:
            self._push_u32(regs.eip)
            regs.eip = i.imm & _U32_MASK
        elif op is Op.CALLR:
            self._push_u32(regs.eip)
            regs.eip = regs.get(i.r1)
        elif op is Op.RET:
            # The sentinel ends the run at the next step's fetch check.
            regs.eip = self._pop_u32()

        # -------------------------------------------------- x87 FPU
        elif op is Op.FLD:
            fpu.push(space.load_f64((regs.get(i.r1) + i.imm) & _U32_MASK))
        elif op is Op.FST:
            space.store_f64(
                (regs.get(i.r1) + i.imm) & _U32_MASK, fpu.to_double(fpu.read_st(0))
            )
        elif op is Op.FSTP:
            space.store_f64(
                (regs.get(i.r1) + i.imm) & _U32_MASK, fpu.to_double(fpu.read_st(0))
            )
            fpu.pop()
        elif op is Op.FLDZ:
            fpu.push(0.0)
        elif op is Op.FLD1:
            fpu.push(1.0)
        elif op is Op.FLDIMM:
            fpu.push(float(i.imm))
        elif op is Op.FADDP:
            b, a = fpu.pop(), fpu.pop()
            fpu.push(a + b)
        elif op is Op.FSUBP:
            b, a = fpu.pop(), fpu.pop()
            fpu.push(a - b)
        elif op is Op.FMULP:
            b, a = fpu.pop(), fpu.pop()
            fpu.push(a * b)
        elif op is Op.FDIVP:
            b, a = fpu.pop(), fpu.pop()
            # x87 exceptions are masked: /0 yields signed Inf, 0/0 NaN.
            if b == 0.0:
                fpu.push(math.nan if a == 0.0 or math.isnan(a) else math.copysign(math.inf, a) * math.copysign(1.0, b))
            else:
                fpu.push(a / b)
        elif op is Op.FCHS:
            fpu.write_st(0, -fpu.read_st(0))
        elif op is Op.FABS:
            fpu.write_st(0, abs(fpu.read_st(0)))
        elif op is Op.FSQRT:
            v = fpu.read_st(0)
            fpu.write_st(0, math.sqrt(v) if v >= 0.0 else math.nan)
        elif op is Op.FXCH:
            fpu.exchange(i.r1)
        elif op is Op.FCOMIP:
            a, b = fpu.read_st(0), fpu.read_st(1)
            if math.isnan(a) or math.isnan(b):
                regs.zf, regs.sf = True, False  # unordered
            else:
                regs.zf, regs.sf = (a == b), (a < b)
            fpu.pop()
        elif op is Op.FDUP:
            fpu.push(fpu.read_st(0))
        elif op is Op.FPOP:
            fpu.pop()

        # -------------------------------------------------- vector unit
        elif op is Op.VMOV:
            n = regs.get(i.r3)
            src = space.vector_f64(regs.get(i.r2), n)
            dst = space.vector_f64(regs.get(i.r1), n, write=True)
            np.copyto(dst, src)
        elif op is Op.VFILL:
            n = regs.get(i.r2)
            dst = space.vector_f64(regs.get(i.r1), n, write=True)
            dst.fill(fpu.to_double(fpu.read_st(0)))
        elif op is Op.VBIN:
            n = regs.get(i.r4)
            a = space.vector_f64(regs.get(i.r2), n)
            b = space.vector_f64(regs.get(i.r3), n)
            dst = space.vector_f64(regs.get(i.r1), n, write=True)
            with np.errstate(all="ignore"):
                _VBIN_UFUNC[i.subop](a, b, out=dst)
        elif op is Op.VBINS:
            n = regs.get(i.r3)
            a = space.vector_f64(regs.get(i.r2), n)
            dst = space.vector_f64(regs.get(i.r1), n, write=True)
            s = fpu.to_double(fpu.read_st(0))
            with np.errstate(all="ignore"):
                _VBIN_UFUNC[i.subop](a, s, out=dst)
        elif op is Op.VAXPY:
            n = regs.get(i.r4)
            a = space.vector_f64(regs.get(i.r2), n)
            b = space.vector_f64(regs.get(i.r3), n)
            dst = space.vector_f64(regs.get(i.r1), n, write=True)
            s = fpu.to_double(fpu.read_st(0))
            with np.errstate(all="ignore"):
                np.add(a, s * b, out=dst)
        elif op is Op.VRED:
            self._vred(i)
        else:  # pragma: no cover - the decoder guarantees coverage
            raise SimIllegalInstruction(f"unimplemented opcode {op!r}")

    def _vred(self, i: Insn) -> None:
        regs, fpu, space = self.regs, self.fpu, self.space
        sub = i.subop
        if sub == RedOp.DOT:
            n = regs.get(i.r3)
            a = space.vector_f64(regs.get(i.r1), n)
            b = space.vector_f64(regs.get(i.r2), n)
            fpu.push(float(np.dot(a, b)))
            return
        n = regs.get(i.r2)
        a = space.vector_f64(regs.get(i.r1), n)
        with np.errstate(all="ignore"):
            return self._vred_apply(sub, a, n)

    def _vred_apply(self, sub: int, a, n: int) -> None:
        fpu = self.fpu
        if sub == RedOp.SUM:
            fpu.push(float(np.sum(a)))
        elif sub == RedOp.MIN:
            fpu.push(float(np.min(a)) if n else math.nan)
        elif sub == RedOp.MAX:
            fpu.push(float(np.max(a)) if n else math.nan)
        elif sub == RedOp.NANCOUNT:
            fpu.push(float(np.count_nonzero(~np.isfinite(a))))
        elif sub == RedOp.SUMSQ:
            fpu.push(float(np.dot(a, a)))
        else:
            raise SimIllegalInstruction(f"undefined VRED subop {sub}")


_VBIN_UFUNC = {
    int(VecOp.ADD): np.add,
    int(VecOp.SUB): np.subtract,
    int(VecOp.MUL): np.multiply,
    int(VecOp.DIV): np.divide,
    int(VecOp.MIN): np.minimum,
    int(VecOp.MAX): np.maximum,
}

_VECTOR_OPS = frozenset(
    {Op.VMOV, Op.VFILL, Op.VBIN, Op.VBINS, Op.VAXPY, Op.VRED}
)

_VECTOR_LEN_FIELD = {
    Op.VMOV: "r3",
    Op.VFILL: "r2",
    Op.VBIN: "r4",
    Op.VBINS: "r3",
    Op.VAXPY: "r4",
    Op.VRED: "r2",
}
