"""The virtual machine interpreter.

Executes assembled kernels against a :class:`~repro.memory.process.ProcessImage`.
Every design choice serves the fault-injection experiment:

* Execution halts *between* instructions at scheduled basic-block counts
  so the injector can overwrite registers or memory and resume - the
  analogue of the paper's ``ptrace``-based injector waking up periodically.
* Scalar instructions advance the clock by one block; vector instructions
  advance it in proportion to the element count they replace, so the
  uniform injection-time sampling lands in compute loops with realistic
  density.
* Instruction words are fetched (and the text working set recorded)
  through the address space; decoded words are cached against the text
  segment's version counter, so a bit flip in text invalidates the cache
  and the corrupted word is re-decoded - possibly into a different valid
  instruction, possibly into SIGILL.
* A block budget models the paper's hang criterion ("one minute beyond
  the expected execution completion time").
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import HangDetected, SimIllegalInstruction
from repro.observability import runtime as _obs
from repro.cpu import ops as _ops
from repro.cpu.decoder import code_digest, try_decode_stream
from repro.cpu.fpu import FPU
from repro.cpu.isa import INSN_SIZE, Insn, UndefinedOpcode, decode
from repro.cpu.registers import EAX, EBP, ESP, RegisterFile
from repro.memory.process import ProcessImage

#: Return address marking the outermost frame of a ``VM.call``.  It lies
#: in kernel space, so a corrupted return address that *doesn't* exactly
#: match it faults on the next fetch - as on real hardware.
RET_SENTINEL = 0xFFFF_FFF0

_U32_MASK = 0xFFFF_FFFF

#: Budget handed to translated units when no hook or hang limit is
#: armed - far beyond any reachable block count.
_NO_HORIZON = 1 << 62

_signed = _ops.signed

#: Primed per-address decode caches, shared across VMs of identical
#: text images: (text digest, version) -> {addr: (version, insn)}.
_PRIMED_TEXT: dict[tuple[bytes, int], dict] = {}


class VM:
    """One virtual CPU bound to one process image."""

    def __init__(self, image: ProcessImage) -> None:
        self.image = image
        self.space = image.address_space
        self.clock = image.clock
        self.regs = RegisterFile()
        self.fpu = FPU()
        #: Hard block budget; exceeded -> HangDetected (None = unlimited).
        self.block_limit: int | None = None
        #: Scheduled injection callbacks: sorted [(block_count, fn), ...].
        self._hooks: list[tuple[int, Callable[["VM"], None]]] = []
        self._next_hook: int | None = None
        self._decode_cache: dict[int, tuple[int, Insn]] = {}
        self._running = False
        self.instructions_retired = 0
        #: Optional control-flow signature monitor
        #: (:mod:`repro.detectors.cfcheck`); called per retired
        #: instruction with (addr, insn, next_eip).
        self.cf_checker = None
        #: Opt-in translated fast path (set by the engine from
        #: ``--fastpath``); observers can still force interpretation.
        self.fastpath = False
        #: Fastpath accounting, harvested into campaign metrics.
        self.fastpath_stats = {
            "translated_units": 0,
            "translated_insns": 0,
            "interpreted_insns": 0,
            "horizon_insns": 0,
            "retranslations": 0,
            "observer_runs": 0,
        }
        self._fast_table: dict | None = None
        self._fast_version = -1
        #: Working-set tracking needs per-access events, which only the
        #: interpreter emits.
        self._tracked = any(
            seg.tracking for seg in self.space.segments()
        )
        self._prime_decode_cache()

    # ------------------------------------------------------------------
    # injection scheduling (the ptrace analogue)
    # ------------------------------------------------------------------
    def schedule_hook(self, at_blocks: int, callback: Callable[["VM"], None]) -> None:
        """Run ``callback(vm)`` at the first instruction boundary at or
        after ``at_blocks`` executed blocks."""
        self._hooks.append((at_blocks, callback))
        self._hooks.sort(key=lambda h: h[0])
        self._next_hook = self._hooks[0][0]

    def _fire_hooks(self) -> None:
        while self._hooks and self.clock.blocks >= self._hooks[0][0]:
            _, callback = self._hooks.pop(0)
            callback(self)
        self._next_hook = self._hooks[0][0] if self._hooks else None

    def pending_hooks(self) -> int:
        return len(self._hooks)

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def capture_state(self) -> tuple:
        """Picklable CPU-side state (registers, FPU, clock, retirement
        counter).  Memory and pending hooks are captured separately: the
        image belongs to the snapshot layer and hooks are per-trial
        wiring armed *after* a restore."""
        return (
            self.regs.capture_state(),
            self.fpu.capture_state(),
            self.clock.blocks,
            self.instructions_retired,
        )

    def restore_state(self, state: tuple) -> None:
        regs, fpu, blocks, insns = state
        self.regs.restore_state(regs)
        self.fpu.restore_state(fpu)
        self.clock.restore(blocks)
        self.instructions_retired = insns

    # ------------------------------------------------------------------
    # stack helpers (operate through the *register-file* ESP, so a
    # corrupted ESP derails pushes and pops exactly as on hardware)
    # ------------------------------------------------------------------
    def _push_u32(self, value: int) -> None:
        esp = (self.regs.get(ESP) - 4) & _U32_MASK
        self.regs.put(ESP, esp)
        self.space.store_u32(esp, value)

    def _pop_u32(self) -> int:
        esp = self.regs.get(ESP)
        value = self.space.load_u32(esp)
        self.regs.put(ESP, (esp + 4) & _U32_MASK)
        return value

    # ------------------------------------------------------------------
    # top-level entry
    # ------------------------------------------------------------------
    def call(self, function: str | int, args: Sequence[int] = ()) -> int:
        """Call an assembled function with 32-bit arguments (cdecl);
        returns EAX.  Floating-point results are left on the FPU stack."""
        entry = (
            self.image.entry_points[function]
            if isinstance(function, str)
            else function
        )
        stack = self.image.stack
        for a in reversed([int(x) & _U32_MASK for x in args]):
            stack.push_u32(a)
        stack.push_u32(RET_SENTINEL)
        self.regs.poke(ESP, stack.esp)
        self.regs.poke(EBP, stack.ebp)
        self.regs.eip = entry
        tracer = _obs.TRACER
        if tracer is None:
            self._run()
        else:
            # Kernel span: one "X" event per VM.call, stamped on the
            # simulated block clock; emitted even when the kernel dies
            # mid-flight so a crashing trial shows the truncated span.
            name = function if isinstance(function, str) else f"fn@0x{entry:08x}"
            t0 = self.clock.blocks
            i0 = self.instructions_retired
            try:
                self._run()
            finally:
                tracer.complete(
                    f"kernel:{name}",
                    "vm",
                    t0,
                    self.clock.blocks - t0,
                    tid=self.image.rank,
                    args={"insns": self.instructions_retired - i0},
                )
        # Caller pops the arguments (cdecl); ESP is just above the
        # (now consumed) return-address slot.
        stack.esp = (self.regs.peek(ESP) + 4 * len(args)) & _U32_MASK
        stack.ebp = self.regs.peek(EBP)
        return self.regs.peek(EAX)

    def _run(self) -> None:
        self._running = True
        try:
            if self.fastpath and self.cf_checker is None and not self._tracked:
                self._run_fast()
            else:
                if self.fastpath:
                    self.fastpath_stats["observer_runs"] += 1
                while self._running:
                    self.step()
        finally:
            self._running = False

    def _run_fast(self) -> None:
        """Dual-mode dispatch: run translated units wherever no observer
        can see intermediate state, interpret everywhere else.

        A unit refuses to run (and we interpret one instruction) when
        its block cost would reach the next ``schedule_hook`` horizon or
        cross the hang budget, so hooks fire and :class:`HangDetected`
        raises at exactly the interpreter's instruction boundary.  A
        text-segment fault (version bump) re-translates against the
        *current* bytes: unchanged functions hit the per-digest cache,
        so only the corrupted function recompiles (~5 ms), and the rest
        of the trial keeps its fast path.  Functions whose corrupted
        bytes no longer decode translate to nothing and fall back to
        the interpreter naturally.
        """
        text = self.image.text
        if self._fast_table is None or self._fast_version != text.version:
            self._build_fast_table()
        table = self._fast_table
        regs = self.regs
        rr = regs.r
        rc = regs.read_count
        wc = regs.write_count
        space, fpu, clock = self.space, self.fpu, self.clock
        version = self._fast_version
        units = fast = slow = horizon = retrans = 0
        # One errstate scope for the whole run: translated units elide
        # the interpreter's per-op ``errstate(all="ignore")`` blocks.
        try:
            with np.errstate(all="ignore"):
                while self._running:
                    if text.version != version:
                        retrans += 1
                        self._build_fast_table()
                        table = self._fast_table
                        version = self._fast_version
                        continue
                    entry = table.get(regs.eip)
                    if entry is None:
                        if regs.eip == RET_SENTINEL:
                            self._running = False
                            break
                        slow += 1
                        self.step()
                        continue
                    nh = self._next_hook
                    bl = self.block_limit
                    if nh is None and bl is None:
                        budget = _NO_HORIZON
                    else:
                        at = (
                            nh - 1
                            if bl is None
                            else (bl if nh is None else min(nh - 1, bl))
                        )
                        budget = at - clock.blocks
                    fn, n = entry
                    if fn(self, regs, rr, rc, wc, space, fpu, clock, budget):
                        horizon += 1
                        self.step()
                        continue
                    units += 1
                    fast += n
        finally:
            stats = self.fastpath_stats
            stats["translated_units"] += units
            stats["translated_insns"] += fast
            stats["interpreted_insns"] += slow
            stats["horizon_insns"] += horizon
            stats["retranslations"] += retrans

    def _build_fast_table(self) -> None:
        # Imported lazily: translate pulls in staticanalysis.cfg, which
        # imports this module.
        from repro.cpu import translate

        self._fast_table = translate.build_vm_table(self.image)
        self._fast_version = self.image.text.version

    # ------------------------------------------------------------------
    # fetch/decode
    # ------------------------------------------------------------------
    def _prime_decode_cache(self) -> None:
        """Fill the per-address decode cache from the shared stream
        decoder (:mod:`repro.cpu.decoder`), one stream per text symbol.
        The fetch path and the static CFG therefore consume the *same*
        decode of every shipped kernel.  Identical text images (every
        rank and every trial of a campaign) share one primed prototype.
        """
        symtab = getattr(self.image, "symtab", None)
        if symtab is None:
            return
        text = self.image.text
        version = text.version
        key = (code_digest(text.read_bytes(text.base, text.size)), version)
        proto = _PRIMED_TEXT.get(key)
        if proto is None:
            proto = {}
            for sym in symtab.symbols("text"):
                if sym.size == 0 or sym.size % INSN_SIZE:
                    continue
                insns = try_decode_stream(text.read_bytes(sym.addr, sym.size))
                if insns is None:
                    continue
                addr = sym.addr
                for insn in insns:
                    proto[addr] = (version, insn)
                    addr += INSN_SIZE
            if len(_PRIMED_TEXT) >= 64:
                _PRIMED_TEXT.clear()
            _PRIMED_TEXT[key] = proto
        self._decode_cache = dict(proto)

    def _fetch(self, eip: int) -> Insn:
        text = self.image.text
        if text.contains(eip, INSN_SIZE):
            cached = self._decode_cache.get(eip)
            if cached is not None and cached[0] == text.version:
                text.note_exec(eip, INSN_SIZE)
                return cached[1]
            word = text.read_bytes(eip, INSN_SIZE)
            text.note_exec(eip, INSN_SIZE)
        else:
            # Jumped outside text: fetch through the checked path, which
            # raises SIGSEGV for unmapped/execute-denied addresses.
            word = self.space.fetch_code(eip, INSN_SIZE)
        try:
            insn = decode(word)
        except UndefinedOpcode as exc:
            raise SimIllegalInstruction(
                f"undefined opcode 0x{exc.opcode:02x} at 0x{eip:08x}"
            ) from None
        if text.contains(eip, INSN_SIZE):
            self._decode_cache[eip] = (text.version, insn)
        return insn

    # ------------------------------------------------------------------
    # single step
    # ------------------------------------------------------------------
    def step(self) -> None:
        eip = self.regs.eip
        if eip == RET_SENTINEL:
            self._running = False
            return
        insn = self._fetch(eip)
        self.regs.eip = eip + INSN_SIZE
        self._execute(insn)
        if self.cf_checker is not None:
            self.cf_checker.check(eip, insn, self.regs.eip)
        self.instructions_retired += 1
        blocks = self.clock.tick(self._cost(insn))
        if self._next_hook is not None and blocks >= self._next_hook:
            self._fire_hooks()
        if self.block_limit is not None and blocks > self.block_limit:
            raise HangDetected("block budget exceeded", blocks)

    def _cost(self, insn: Insn) -> int:
        if insn.op in _ops.VECTOR_OPS:
            n = self.regs.peek(_ops.vector_len_reg(insn))
            return max(1, n >> 3)
        return 1

    # ------------------------------------------------------------------
    # execute
    # ------------------------------------------------------------------
    def _execute(self, i: Insn) -> None:
        # One function per opcode: repro.cpu.ops is the single execution
        # authority, shared with the block translator.
        _EXEC[i.op](self, i)


_EXEC = _ops.EXEC
