"""Static per-instruction semantics: register use/def sets and structure.

The interpreter in :mod:`repro.cpu.vm` *is* the semantics of the ISA, but
it only exposes them dynamically, one executed instruction at a time.
The static analyses (:mod:`repro.staticanalysis`) need the same facts
without executing anything: which register fields an opcode reads and
writes, which instructions branch, and how each instruction moves the
hardware stack.  This module is the single authority for those facts -
the assembler's ``registers_read``/``registers_written`` reporting and
the CFG/liveness/AVF passes all derive from the tables here, so a new
opcode only needs describing once.

Register operands come in two flavours the analyses must distinguish:

* **explicit** operands, encoded in the r1..r4 fields (``OPERAND_FIELDS``);
* **implicit** operands, baked into the opcode's semantics - PUSH/POP,
  CALL/CALLR/RET all read and write ESP without naming it.

``FXCH``'s r1 field is *not* a register operand: it selects an x87 stack
slot, so it never appears in any register set here (mirroring the
``reg_ops`` table the assembler historically used).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.isa import BRANCH_OPS, Insn, Op, RedOp
from repro.cpu.registers import ESP

#: Explicit register operand fields per opcode, tagged with access mode:
#: ``"r"`` read, ``"w"`` written, ``"rw"`` both.  Vector "destination"
#: operands are *reads* - the register holds the destination address,
#: the write goes to memory.
OPERAND_FIELDS: dict[Op, tuple[tuple[str, str], ...]] = {
    Op.NOP: (),
    Op.HLT: (),
    Op.MOVI: (("r1", "w"),),
    Op.MOV: (("r1", "w"), ("r2", "r")),
    Op.LOAD: (("r1", "w"), ("r2", "r")),
    Op.STORE: (("r1", "r"), ("r2", "r")),
    Op.LEA: (("r1", "w"), ("r2", "r")),
    Op.PUSH: (("r1", "r"),),
    Op.POP: (("r1", "w"),),
    Op.ADD: (("r1", "rw"), ("r2", "r")),
    Op.SUB: (("r1", "rw"), ("r2", "r")),
    Op.IMUL: (("r1", "rw"), ("r2", "r")),
    Op.IDIV: (("r1", "rw"), ("r2", "r")),
    Op.IREM: (("r1", "rw"), ("r2", "r")),
    Op.AND: (("r1", "rw"), ("r2", "r")),
    Op.OR: (("r1", "rw"), ("r2", "r")),
    Op.XOR: (("r1", "rw"), ("r2", "r")),
    Op.SHL: (("r1", "rw"),),
    Op.SHR: (("r1", "rw"),),
    Op.ADDI: (("r1", "rw"),),
    Op.CMP: (("r1", "r"), ("r2", "r")),
    Op.CMPI: (("r1", "r"),),
    Op.NEG: (("r1", "rw"),),
    Op.JMP: (),
    Op.JZ: (),
    Op.JNZ: (),
    Op.JL: (),
    Op.JGE: (),
    Op.JG: (),
    Op.JLE: (),
    Op.CALL: (),
    Op.RET: (),
    Op.CALLR: (("r1", "r"),),
    Op.FLD: (("r1", "r"),),
    Op.FST: (("r1", "r"),),
    Op.FSTP: (("r1", "r"),),
    Op.FLDZ: (),
    Op.FLD1: (),
    Op.FLDIMM: (),
    Op.FADDP: (),
    Op.FSUBP: (),
    Op.FMULP: (),
    Op.FDIVP: (),
    Op.FCHS: (),
    Op.FABS: (),
    Op.FSQRT: (),
    Op.FXCH: (),  # r1 is an x87 stack index, not a GPR
    Op.FCOMIP: (),
    Op.FDUP: (),
    Op.FPOP: (),
    Op.VMOV: (("r1", "r"), ("r2", "r"), ("r3", "r")),
    Op.VFILL: (("r1", "r"), ("r2", "r")),
    Op.VBIN: (("r1", "r"), ("r2", "r"), ("r3", "r"), ("r4", "r")),
    Op.VBINS: (("r1", "r"), ("r2", "r"), ("r3", "r")),
    Op.VAXPY: (("r1", "r"), ("r2", "r"), ("r3", "r"), ("r4", "r")),
    Op.VRED: (("r1", "r"), ("r2", "r"), ("r3", "r")),
}

#: Opcodes using the imm field as a memory offset (base register + imm).
MEM_OFFSET_OPS = frozenset(
    {Op.LOAD, Op.STORE, Op.LEA, Op.FLD, Op.FST, Op.FSTP}
)

#: Opcodes whose imm field is read as plain data.
IMM_DATA_OPS = frozenset(
    {Op.MOVI, Op.ADDI, Op.CMPI, Op.SHL, Op.SHR, Op.FLDIMM}
)

#: Conditional branches (read the flags).
COND_BRANCH_OPS = frozenset({Op.JZ, Op.JNZ, Op.JL, Op.JGE, Op.JG, Op.JLE})

#: Opcodes that set ZF/SF.
FLAG_WRITING_OPS = frozenset(
    {
        Op.ADD, Op.SUB, Op.IMUL, Op.IDIV, Op.IREM,
        Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR,
        Op.ADDI, Op.CMP, Op.CMPI, Op.NEG, Op.FCOMIP,
    }
)

#: Implicit ESP readers/writers (hardware stack movement).
_STACK_OPS = frozenset({Op.PUSH, Op.POP, Op.CALL, Op.CALLR, Op.RET})


def operand_fields(insn: Insn) -> tuple[tuple[str, str], ...]:
    """The (field, mode) pairs actually live for this instruction -
    ``VRED`` uses r3 only for the DOT reduction."""
    fields = OPERAND_FIELDS[insn.op]
    if insn.op is Op.VRED and insn.subop != RedOp.DOT:
        fields = tuple(f for f in fields if f[0] != "r3")
    return fields


@dataclass(frozen=True)
class InsnEffects:
    """Register-level effects of one instruction."""

    reads: frozenset[int]
    writes: frozenset[int]
    reads_flags: bool
    writes_flags: bool
    #: Net 32-bit stack slots pushed (+1) / popped (-1) by the
    #: instruction itself.  CALL is 0: the pushed return address is
    #: consumed by the callee's RET, so at this function's level the
    #: pair is neutral.  RET is 0 for the same reason - it consumes the
    #: slot our *caller* pushed, which was never part of this frame.
    stack_delta: int


def effects(insn: Insn, include_implicit: bool = True) -> InsnEffects:
    """Static use/def sets for one decoded instruction.

    With ``include_implicit`` the stack instructions report their ESP
    traffic; without it only the encoded operand fields are reported
    (the assembler's historical ``registers_used`` contract).
    """
    reads: set[int] = set()
    writes: set[int] = set()
    for fieldname, mode in operand_fields(insn):
        # The register file masks indices to the 8 GPRs (i &= 7), so a
        # 4-bit field with the alias bit set still names a real register.
        idx = getattr(insn, fieldname) & 7
        if "r" in mode:
            reads.add(idx)
        if "w" in mode:
            writes.add(idx)
    if include_implicit and insn.op in _STACK_OPS:
        reads.add(ESP)
        writes.add(ESP)
    delta = 0
    if insn.op is Op.PUSH:
        delta = 1
    elif insn.op is Op.POP:
        delta = -1
    return InsnEffects(
        reads=frozenset(reads),
        writes=frozenset(writes),
        reads_flags=insn.op in COND_BRANCH_OPS,
        writes_flags=insn.op in FLAG_WRITING_OPS,
        stack_delta=delta,
    )


@dataclass(frozen=True)
class MemAccess:
    """One memory access an instruction performs, statically described.

    ``base`` is the GPR index whose value (plus the instruction's
    immediate, for the scalar offset ops) addresses the access.
    ``value`` says where the moved data lives on the register side:

    * ``"gpr:<i>"`` - a general-purpose register (LOAD/STORE/PUSH/POP);
    * ``"x87"``     - the FPU stack (FLD/FST/FSTP/VFILL);
    * ``"mem"``     - no register carries the data: the op streams
      memory to memory (the vector ops read and write whole runs).
    """

    mode: str  # "r" (read) or "w" (write)
    base: int
    value: str


def memory_accesses(insn: Insn) -> tuple[MemAccess, ...]:
    """The memory traffic of one instruction, mirroring the interpreter
    case-for-case (:mod:`repro.cpu.vm`): which register addresses each
    access and where the moved value comes from or lands.  CALL/CALLR/
    RET's return-address push/pop is omitted - it never carries
    application data, and :func:`effects` already reports the ESP
    movement."""
    op = insn.op
    r1, r2 = insn.r1 & 7, insn.r2 & 7
    if op is Op.LOAD:
        return (MemAccess("r", r2, f"gpr:{r1}"),)
    if op is Op.STORE:
        return (MemAccess("w", r1, f"gpr:{r2}"),)
    if op is Op.PUSH:
        return (MemAccess("w", ESP, f"gpr:{r1}"),)
    if op is Op.POP:
        return (MemAccess("r", ESP, f"gpr:{r1}"),)
    if op is Op.FLD:
        return (MemAccess("r", r1, "x87"),)
    if op in (Op.FST, Op.FSTP):
        return (MemAccess("w", r1, "x87"),)
    if op is Op.VMOV:
        return (MemAccess("r", r2, "mem"), MemAccess("w", r1, "mem"))
    if op is Op.VFILL:
        return (MemAccess("w", r1, "x87"),)
    if op in (Op.VBIN, Op.VAXPY):
        r3 = insn.r3 & 7
        return (
            MemAccess("r", r2, "mem"),
            MemAccess("r", r3, "mem"),
            MemAccess("w", r1, "mem"),
        )
    if op is Op.VBINS:
        return (MemAccess("r", r2, "mem"), MemAccess("w", r1, "mem"))
    if op is Op.VRED:
        reads = [MemAccess("r", r1, "x87")]
        if insn.subop == RedOp.DOT:
            reads.append(MemAccess("r", insn.r3 & 7, "x87"))
        return tuple(reads)
    return ()


#: Opcodes that consume the x87 stack top (beyond the mem traffic above).
X87_READERS = frozenset(
    {
        Op.FST, Op.FSTP, Op.FADDP, Op.FSUBP, Op.FMULP, Op.FDIVP,
        Op.FCHS, Op.FABS, Op.FSQRT, Op.FXCH, Op.FCOMIP, Op.FDUP,
        Op.FPOP, Op.VFILL, Op.VBINS, Op.VAXPY,
    }
)

#: Opcodes that push or rewrite x87 stack state.
X87_WRITERS = frozenset(
    {
        Op.FLD, Op.FLDZ, Op.FLD1, Op.FLDIMM, Op.FADDP, Op.FSUBP,
        Op.FMULP, Op.FDIVP, Op.FCHS, Op.FABS, Op.FSQRT, Op.FXCH,
        Op.FDUP, Op.FPOP, Op.VRED,
    }
)


def is_branch(insn: Insn) -> bool:
    """True for relative control transfers (the CFG edge formers)."""
    return insn.op in BRANCH_OPS


def is_terminator(insn: Insn) -> bool:
    """True when the instruction ends a basic block."""
    return insn.op in BRANCH_OPS or insn.op in (Op.RET, Op.HLT)


def falls_through(insn: Insn) -> bool:
    """True when execution can continue at the next instruction.
    Conditional branches fall through; JMP/RET/HLT never do.  CALL and
    CALLR resume at the next instruction once the callee returns."""
    return insn.op not in (Op.JMP, Op.RET, Op.HLT)
