"""Simulated hardware/software fault conditions.

The paper's injector observes the target through UNIX signals and MPICH
error messages.  In the simulated substrate, the equivalent conditions are
raised as Python exceptions and translated by the runtime into the same
externally visible artifacts the paper's classifier keys on: MPICH-style
``p4_error`` lines on the captured stderr for crashes, console abort
messages for application-detected errors, and an invoked error handler for
MPI-detected errors.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all conditions raised by the simulated substrate."""


class SimSignal(SimulationError):
    """A simulated fatal UNIX signal delivered to one MPI process.

    MPICH "handles all critical signals (e.g. SIGSEGV and SIGBUS) due to
    abnormal termination" (paper section 5.1); the runtime catches these and
    prints an MPICH error message to stderr before aborting the job, which
    is how the outcome classifier recognises a Crash.
    """

    #: signal name, e.g. ``"SIGSEGV"``; subclasses override.
    signame = "SIGKILL"

    def __init__(self, message: str = "", rank: int | None = None):
        self.rank = rank
        super().__init__(message or self.signame)


class SimSegfault(SimSignal):
    """Access to an unmapped or out-of-segment virtual address."""

    signame = "SIGSEGV"


class SimBusError(SimSignal):
    """Misaligned or otherwise unserviceable memory access."""

    signame = "SIGBUS"


class SimIllegalInstruction(SimSignal):
    """The VM decoded an invalid opcode (e.g. after a text-segment flip)."""

    signame = "SIGILL"


class SimFPE(SimSignal):
    """Integer division by zero.  x87 FP exceptions are *masked* (the
    default x87 configuration): float division by zero yields Inf/NaN and
    propagates silently, matching the paper's observation that FP faults
    surface as NaN checks or silent corruption rather than signals."""

    signame = "SIGFPE"


class MPIError(SimulationError):
    """An error detected by the MPI library's argument checking.

    Per the paper's reading of MPICH/LAM/LA-MPI, this is the *only* class
    of error that invokes a user-registered error handler; everything else
    aborts the job directly.
    """

    def __init__(self, mpi_class: str, message: str, rank: int | None = None):
        self.mpi_class = mpi_class
        self.rank = rank
        super().__init__(f"{mpi_class}: {message}")


class MPIAbort(SimulationError):
    """The MPI job was aborted (MPI_Abort, peer death, fatal error)."""

    def __init__(self, message: str = "MPI_Abort", exit_code: int = 1):
        self.exit_code = exit_code
        super().__init__(message)


class AppAbort(SimulationError):
    """The application's own consistency check failed and the app aborted.

    The message is printed to the captured console output; the classifier
    labels the run Application Detected.
    """

    def __init__(self, check: str, message: str = ""):
        self.check = check
        super().__init__(f"{check}: {message}" if message else check)


class HangDetected(SimulationError):
    """The scheduler declared the execution hung.

    Either a true deadlock (every rank blocked with no message in flight)
    or the step budget derived from the fault-free execution was exceeded
    (the paper's "one minute beyond the expected execution completion
    time").
    """

    def __init__(self, reason: str, blocks: int | None = None):
        self.reason = reason
        self.blocks = blocks
        super().__init__(reason)


class InvalidFaultSpec(SimulationError):
    """A fault specification referenced a nonexistent target."""


class CheckpointDesync(Exception):
    """Replay of a recorded golden prefix diverged from live execution.

    Deliberately *not* a :class:`SimulationError`: a desync means the
    checkpoint machinery itself is broken (the recording no longer
    matches the pre-injection execution), so it must escape the job's
    outcome classification rather than masquerade as a Crash.
    """
