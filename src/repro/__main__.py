"""Command-line entry point: run paper experiments.

Usage::

    python -m repro list                    # show all experiments
    python -m repro run T2 [n]              # regenerate one artifact
    python -m repro report [n] [--out FILE] # run everything, emit markdown
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness.experiments import EXPERIMENTS, get_experiment
from repro.harness.report import Report


def cmd_list(_args) -> int:
    width = max(len(e.paper_artifact) for e in EXPERIMENTS.values())
    for exp in EXPERIMENTS.values():
        print(f"{exp.id:>4}  {exp.paper_artifact:<{width}}  {exp.description}")
    return 0


def cmd_run(args) -> int:
    try:
        exp = get_experiment(args.experiment)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    t0 = time.time()
    artifact, _metrics = exp.run(args.n)
    print(f"=== {exp.id} ({exp.paper_artifact}) - {time.time() - t0:.1f}s ===")
    print(artifact)
    return 0


def cmd_report(args) -> int:
    report = Report(title="Paper reproduction report")
    for exp_id in EXPERIMENTS:
        t0 = time.time()
        report.run_experiment(exp_id, args.n)
        print(f"{exp_id}: done in {time.time() - t0:.1f}s", file=sys.stderr)
    markdown = report.render_markdown()
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(markdown)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(markdown)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce 'Assessing Fault Sensitivity in MPI "
        "Applications' (Lu & Reed, SC 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list all experiments").set_defaults(fn=cmd_list)
    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment id, e.g. T2 or E5")
    run.add_argument("n", nargs="?", type=int, default=None,
                     help="campaign size / trial count override")
    run.set_defaults(fn=cmd_run)
    rep = sub.add_parser("report", help="run everything, emit markdown")
    rep.add_argument("n", nargs="?", type=int, default=None)
    rep.add_argument("--out", default=None, help="output file")
    rep.set_defaults(fn=cmd_report)
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
