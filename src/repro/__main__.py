"""Command-line entry point: run paper experiments.

Usage::

    python -m repro list                    # show all experiments
    python -m repro run T2 [n]              # regenerate one artifact
    python -m repro report [n] [--out FILE] # run everything, emit markdown
    python -m repro analyze wavetoy         # static AVF prediction
    python -m repro analyze --lint moldyn   # assembly diagnostics
    python -m repro analyze --mpi climate   # communication skeleton + map
    python -m repro analyze --mpi --lint buggy  # SA1xx gate (exits 1)
    python -m repro analyze --propagation moldyn  # taint cones + SA2xx audit
    python -m repro analyze --outcomes wavetoy  # strata + SA3xx audit
    python -m repro campaign run --app wavetoy --regions message,stack \
        --jobs 8 --target-d 0.05 --store out.jsonl --resume
    python -m repro campaign run --app wavetoy --regions text,data \
        --stratify --target-d 0.05     # Neyman-allocate over predicted
                                       # outcome strata, reweight rates
    python -m repro campaign run --app wavetoy --regions text,data \
        --prune-masked --store out.jsonl       # skip provably-masked sites
    python -m repro campaign run --app wavetoy -n 4 \
        --trace trace.json --metrics metrics.prom
    python -m repro campaign run --app wavetoy -n 40 \
        --serve 9100 --artifacts runs/wavetoy   # live /metrics + /status
                                       # + an artifact run directory
    python -m repro serve --store out.jsonl --endpoint 9100
                                       # scrape a store without a campaign
    python -m repro campaign serve-work --app wavetoy -n 200 \
        --serve 9200 --store out.sqlite    # coordinate a distributed
                                           # campaign: lease trial batches
                                           # to workers over HTTP
    python -m repro campaign work 127.0.0.1:9200 --jobs 4
                                       # pull, execute, and submit leased
                                       # batches until the campaign is done
    python -m repro report runs/wavetoy [--check]
                                       # regenerate summary.json/report.html
    python -m repro campaign status --store out.jsonl [--json]
    python -m repro campaign merge --out all.jsonl a.jsonl b.jsonl
    python -m repro trace run --app wavetoy --region message \
        --out trace.json --metrics-out metrics.prom
    python -m repro trace check --trace trace.json \
        --require vm,channel,injection
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.harness.experiments import EXPERIMENTS, get_experiment
from repro.harness.report import Report

#: Version of every ``analyze ... --json`` payload.  All four emitters
#: (``--lint``/plain, ``--mpi``, ``--propagation``, ``--outcomes``)
#: stamp this shared number so downstream consumers can gate on one
#: field; bump it when any payload shape changes.
ANALYZE_SCHEMA_VERSION = 1


def _diag_payload(diags):
    from repro.staticanalysis.lint import sort_diagnostics

    return [
        {
            "code": d.code,
            "function": d.function,
            "insn_index": d.insn_index,
            "message": d.message,
        }
        for d in sort_diagnostics(diags)
    ]


def cmd_list(_args) -> int:
    width = max(len(e.paper_artifact) for e in EXPERIMENTS.values())
    for exp in EXPERIMENTS.values():
        print(f"{exp.id:>4}  {exp.paper_artifact:<{width}}  {exp.description}")
    return 0


def cmd_run(args) -> int:
    try:
        exp = get_experiment(args.experiment)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    t0 = time.time()
    artifact, _metrics = exp.run(args.n)
    print(f"=== {exp.id} ({exp.paper_artifact}) - {time.time() - t0:.1f}s ===")
    print(artifact)
    return 0


def cmd_report(args) -> int:
    import os

    target = args.target
    if target is not None and os.path.isdir(str(target)):
        return cmd_report_artifacts(args)
    if target is not None:
        try:
            args.n = int(target)
        except ValueError:
            print(
                f"report target {target!r} is neither an artifact run "
                "directory nor a trial-count override",
                file=sys.stderr,
            )
            return 2
    else:
        args.n = None
    report = Report(title="Paper reproduction report")
    for exp_id in EXPERIMENTS:
        t0 = time.time()
        report.run_experiment(exp_id, args.n)
        print(f"{exp_id}: done in {time.time() - t0:.1f}s", file=sys.stderr)
    markdown = report.render_markdown()
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(markdown)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(markdown)
    return 0


def cmd_report_artifacts(args) -> int:
    """Regenerate ``summary.json`` + ``report.html`` of an artifact run
    directory from its manifest/events/metrics files alone.  With
    ``--check``, verify the on-disk derived files are bit-identical to
    a fresh derivation instead (exit 1 on drift)."""
    from repro.observability.artifacts import check_outputs, write_outputs

    target = args.target
    try:
        if args.check:
            stale = check_outputs(target)
            if stale:
                for name in stale:
                    print(
                        f"{target}/{name}: differs from regeneration",
                        file=sys.stderr,
                    )
                return 1
            print(f"{target}: summary.json and report.html reproduce exactly")
            return 0
        summary = write_outputs(target)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(
        f"regenerated {target}/summary.json and {target}/report.html "
        f"({summary['trials']} trials, {summary['errors']} errors)"
    )
    return 0


def cmd_serve(args) -> int:
    """Serve live telemetry for an append-only result store: the store
    is followed incrementally (only newly appended bytes are parsed per
    scrape), so other campaign processes can keep writing to it."""
    from repro.observability.serve import StoreTelemetry, serve_endpoint

    try:
        server = serve_endpoint(StoreTelemetry(args.store), args.endpoint)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(
        f"serving {args.store} at {server.url} "
        "(/metrics /status /progress; Ctrl-C to stop)",
        file=sys.stderr,
    )
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def cmd_analyze_mpi(args) -> int:
    from repro.apps import APPLICATION_SUITE
    from repro.staticanalysis.mpicheck import (
        BuggyApp,
        build_vulnerability_map,
        check_skeleton,
        extract_skeleton,
    )

    factories = dict(APPLICATION_SUITE)
    factories["buggy"] = BuggyApp
    factory = factories.get(args.target)
    if factory is None:
        print(
            f"unknown MPI analysis target {args.target!r}; choose one of: "
            f"{', '.join(sorted(factories))}",
            file=sys.stderr,
        )
        return 2

    skeleton = extract_skeleton(factory(), args.nprocs)
    vmap = build_vulnerability_map(skeleton)
    diags = check_skeleton(skeleton) if args.lint else []

    if args.json:
        payload = {
            "schema_version": ANALYZE_SCHEMA_VERSION,
            "target": args.target,
            "nprocs": args.nprocs,
            "status": skeleton.status.value,
            "skeleton": {
                "events": len(skeleton.events),
                "packets": len(skeleton.packets),
                "kernel_calls": len(skeleton.kernel_calls),
            },
            "vulnerability": {
                "total_bytes": vmap.total_bytes,
                "structural_score": vmap.structural_score,
                "detected_score": vmap.detected_score,
                "byte_classes": vmap.byte_class_totals(),
                "ranks": [
                    {
                        "rank": r.rank,
                        "total_bytes": r.total_bytes,
                        "header_fraction": r.header_fraction,
                        "structural_score": r.structural_score,
                    }
                    for r in vmap.ranks
                ],
            },
        }
        if args.lint:
            payload["diagnostics"] = _diag_payload(diags)
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"{args.target}: {args.nprocs} ranks, dry run "
            f"{skeleton.status.value}, {len(skeleton.events)} MPI events, "
            f"{len(skeleton.packets)} packets, "
            f"{len(skeleton.kernel_calls)} elided kernel calls"
        )
        print(vmap.report())
        if args.lint:
            for d in diags:
                print(d)
            print(f"lint: {len(diags)} diagnostic(s)")
    return 1 if diags else 0


def cmd_analyze_propagation(args) -> int:
    """Per-site taint classification plus the SA2xx coverage audit for
    one suite application.  Exit 1 iff the audit has open findings."""
    from repro.apps import APPLICATION_SUITE
    from repro.staticanalysis.lint import sort_diagnostics
    from repro.staticanalysis.propagation import (
        TaintAnalysis,
        audit_app,
        class_counts,
        coverage_for,
        kernel_sites,
    )

    factory = APPLICATION_SUITE.get(args.target)
    if factory is None:
        print(
            f"unknown propagation target {args.target!r}; choose one of: "
            f"{', '.join(sorted(APPLICATION_SUITE))}",
            file=sys.stderr,
        )
        return 2

    coverage = coverage_for(args.target)
    program = factory().program()
    kernels = []
    for name in sorted(program.functions):
        sites = kernel_sites(
            TaintAnalysis.from_function(program.functions[name]), coverage
        )
        kernels.append((name, sites, class_counts(sites)))
    open_findings, suppressed = audit_app(coverage)

    if args.json:
        payload = {
            "schema_version": ANALYZE_SCHEMA_VERSION,
            "target": args.target,
            "kernels": [
                {"function": name, "sites": len(sites), "classes": counts}
                for name, sites, counts in kernels
            ],
            "audit": {
                "open": _diag_payload(open_findings),
                "suppressed": _diag_payload(suppressed),
            },
        }
        print(json.dumps(payload, indent=2))
    else:
        for name, sites, counts in kernels:
            classes = ", ".join(f"{v} {k}" for k, v in counts.items())
            print(f"{name}: {len(sites)} register sites ({classes})")
        for d in sort_diagnostics(open_findings):
            print(d)
        for d in sort_diagnostics(suppressed):
            print(f"{d}  [accepted]")
        print(
            f"audit: {len(open_findings)} open, "
            f"{len(suppressed)} accepted finding(s)"
        )
    return 1 if open_findings else 0


def cmd_analyze_outcomes(args) -> int:
    """Predicted-outcome strata plus the SA3xx audit for one suite
    application.  Exit 1 iff the audit has findings."""
    from repro.injection.campaign import Campaign
    from repro.staticanalysis.outcomes import audit_outcomes, build_probe

    try:
        campaign = Campaign.from_registry(args.target, nprocs=args.nprocs)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    probe = build_probe(campaign.outcome_predictor())
    diags = audit_outcomes(probe)

    if args.json:
        payload = {
            "schema_version": ANALYZE_SCHEMA_VERSION,
            "target": args.target,
            "nprocs": args.nprocs,
            "block_limit": probe.block_limit,
            "hang_bit_floor": probe.hang_floor,
            "windows": {
                "static": list(probe.windows[0]),
                "stack": list(probe.windows[1]),
            },
            "kernels": [
                {
                    "function": k.name,
                    "memory_sites": k.memory_sites,
                    "blind_sites": k.blind_sites,
                    "loops": k.loops,
                    "counterless_loops": k.counterless_loops,
                }
                for k in probe.kernels
            ],
            "regions": [
                {
                    "region": r.region,
                    "strata": dict(r.strata),
                    "masked_oracle_proven": r.masked_oracle_proven,
                }
                for r in probe.regions
            ],
            "diagnostics": _diag_payload(diags),
        }
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"{args.target}: block limit {probe.block_limit}, hang-bit "
            f"floor {probe.hang_floor}"
        )
        for k in probe.kernels:
            print(
                f"{k.name}: {k.memory_sites} access sites "
                f"({k.blind_sites} blind), {k.loops} loop(s) "
                f"({k.counterless_loops} counterless)"
            )
        for r in probe.regions:
            strata = ", ".join(f"{n} {name}" for name, n in r.strata)
            print(f"{r.region}: {strata}")
        for d in diags:
            print(d)
        print(f"audit: {len(diags)} finding(s)")
    return 1 if diags else 0


def _parse_regions(text: str | None):
    from repro.injection.faults import Region

    if not text or text == "all":
        return tuple(Region)
    regions = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            regions.append(Region(token))
        except ValueError:
            raise SystemExit(
                f"unknown region {token!r}; choose from: "
                f"{', '.join(r.value for r in Region)}"
            )
    return tuple(regions)


def _parse_params(text: str | None) -> dict:
    """``k=v,k=v`` application parameters; values int when possible."""
    params = {}
    for token in (text or "").split(","):
        token = token.strip()
        if not token:
            continue
        if "=" not in token:
            raise SystemExit(f"bad --params entry {token!r}; expected key=value")
        key, value = token.split("=", 1)
        try:
            params[key] = int(value)
        except ValueError:
            params[key] = value
    return params


def cmd_campaign_run(args) -> int:
    from repro.engine.progress import format_progress
    from repro.harness.tables import render_campaign_table
    from repro.injection.campaign import Campaign
    from repro.observability.export import TraceCollector
    from repro.observability.metrics import MetricsRegistry, render_prometheus

    if args.resume and not args.store:
        print("--resume requires --store", file=sys.stderr)
        return 2
    try:
        campaign = Campaign.from_registry(
            args.app,
            nprocs=args.nprocs,
            app_params=_parse_params(args.params),
            seed=args.seed,
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    regions = _parse_regions(args.regions)
    # A single registry backs every metrics consumer: the textfile
    # export, the live /metrics endpoint, and the artifact flushes all
    # read the same state, so their totals agree exactly.
    want_metrics = bool(args.metrics or args.serve or args.artifacts)
    metrics = MetricsRegistry() if want_metrics else None
    collector = TraceCollector() if args.trace else None

    telemetry = server = None
    if args.serve:
        from repro.observability.serve import TelemetryHub, serve_endpoint

        telemetry = TelemetryHub(registry=metrics)
        try:
            server = serve_endpoint(telemetry, args.serve)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        print(f"serving telemetry at {server.url}", file=sys.stderr)

    artifacts = None
    if args.artifacts:
        from repro.observability.artifacts import (
            RunArtifacts,
            reproduce_command,
        )

        context = campaign.execution_context(fastpath=args.fastpath)
        artifacts = RunArtifacts(
            args.artifacts,
            {
                "app": args.app,
                "seed": args.seed,
                "nprocs": args.nprocs,
                "regions": [r.value for r in regions],
                "n": args.n,
                "target_d": args.target_d,
                "jobs": args.jobs,
                "params": _parse_params(args.params),
                "execution": context.describe(),
                "command": reproduce_command(getattr(args, "_argv", None)),
            },
        )

    def progress(event):
        print(format_progress(event), file=sys.stderr)

    stride = None if args.no_checkpoint else args.checkpoint_stride
    t0 = time.time()
    try:
        result = campaign.run(
            regions,
            args.n,
            jobs=args.jobs,
            store=args.store,
            resume=args.resume,
            target_d=args.target_d,
            log_interval=args.log_interval,
            progress=progress if args.log_interval else None,
            metrics=metrics,
            trace=collector,
            checkpoint_stride=stride,
            fastpath=args.fastpath,
            prune_masked=args.prune_masked,
            stratify=args.stratify,
            telemetry=telemetry,
            artifacts=artifacts,
        )
        elapsed = time.time() - t0
        if artifacts is not None:
            artifacts.finalize(metrics)
            print(f"wrote artifacts: {args.artifacts}", file=sys.stderr)
    finally:
        if server is not None:
            server.stop()
    if collector is not None:
        collector.write(
            args.trace, metadata={"app": args.app, "seed": args.seed}
        )
        print(f"wrote trace: {args.trace}", file=sys.stderr)
    if args.metrics:
        with open(args.metrics, "w") as fh:
            fh.write(render_prometheus(metrics))
        print(f"wrote metrics: {args.metrics}", file=sys.stderr)
    print(
        render_campaign_table(
            result,
            include_detection_columns=args.app != "wavetoy",
            title=f"Fault Injection Results ({args.app})",
        )
    )
    if args.stratify:
        # The table above shows raw allocation counts; these are the
        # importance-weighted (unbiased) estimates per region.
        print("\nStratified estimates (importance-weighted):")
        for region, row in result.regions.items():
            est = row.stratified
            if est is None:
                continue
            strata = ", ".join(
                f"{c.name} W={est.weight(c):.2f} n={c.executed}"
                + (" (proven)" if c.known_zero else "")
                for c in est.cells
            )
            print(
                f"  {region.value}: error rate "
                f"{100 * est.error_rate:.1f}% +- "
                f"{100 * est.half_width:.1f}%, {est.executed} executed "
                f"(uniform Cochran would need {est.uniform_equivalent_n}); "
                f"{strata}"
            )
    resumed = sum(r.resumed for r in result.regions.values())
    pruned = sum(r.pruned for r in result.regions.values())
    print(
        f"{result.total_injections()} injections "
        f"({resumed} resumed from store, {pruned} statically pruned) "
        f"in {elapsed:.1f}s with jobs={args.jobs or 1}",
        file=sys.stderr,
    )
    return 0


def cmd_campaign_status(args) -> int:
    from repro.engine.store import open_store

    # ``status()`` streams the store through the incremental summary
    # fold - memory stays bounded by the number of distinct trial keys,
    # never by full parsed results.  ``open_store`` picks the backend
    # (JSONL or SQLite) from the path, so either store reads the same.
    statuses = open_store(args.store).status()
    if args.json:
        payload = {
            "store": str(args.store),
            "regions": [s.to_json() for s in statuses],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if not statuses:
        print(f"{args.store}: no stored trials")
        return 0
    print(f"{'app':<10} {'region':<12} {'trials':>6} {'errors':>6} "
          f"{'pruned':>6} {'error %':>8} {'d %':>6}")
    for s in statuses:
        print(
            f"{s.app:<10} {s.region:<12} {s.trials:>6} {s.errors:>6} "
            f"{s.pruned:>6} {s.error_rate_percent:>8.1f} "
            f"{s.achieved_d_percent:>6.1f}"
        )
    return 0


def cmd_campaign_serve_work(args) -> int:
    """Coordinate a distributed campaign: plan every trial, serve leased
    batches to ``campaign work`` workers over HTTP, fold submissions,
    and print the same campaign table a local run would."""
    from repro.engine.coordination import (
        CampaignCoordinator,
        CoordinatorService,
    )
    from repro.harness.tables import render_campaign_table
    from repro.injection.campaign import Campaign
    from repro.observability.serve import TelemetryHub, serve_endpoint

    if args.resume and not args.store:
        print("--resume requires --store", file=sys.stderr)
        return 2
    try:
        campaign = Campaign.from_registry(
            args.app,
            nprocs=args.nprocs,
            app_params=_parse_params(args.params),
            seed=args.seed,
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    regions = _parse_regions(args.regions)
    stride = None if args.no_checkpoint else args.checkpoint_stride
    t0 = time.time()
    with campaign.engine(
        store=args.store,
        checkpoint_stride=stride,
        fastpath=args.fastpath,
        prune_masked=args.prune_masked,
        telemetry=TelemetryHub(),
    ) as engine:
        coordinator = CampaignCoordinator(
            engine,
            regions,
            args.n,
            batch_size=args.batch_size,
            lease_timeout=args.lease_timeout,
            resume=args.resume,
        )
        try:
            server = serve_endpoint(CoordinatorService(coordinator), args.serve)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        print(
            f"coordinating {coordinator.trials} trials "
            f"({coordinator.book.pending} batches to lease) at {server.url} "
            "(/manifest /lease /submit /work + /metrics /status /progress)",
            file=sys.stderr,
        )
        try:
            while not coordinator.done:
                time.sleep(0.2)
        except KeyboardInterrupt:
            print(
                "interrupted; completed trials are in the store "
                "(resume with --resume)",
                file=sys.stderr,
            )
            server.stop()
            return 1
        result = coordinator.finalize()
        elapsed = time.time() - t0
        # Idle workers poll /lease between batches; keep answering
        # "done" for a grace window so they exit cleanly.
        time.sleep(args.linger)
        server.stop()
    print(
        render_campaign_table(
            result,
            include_detection_columns=args.app != "wavetoy",
            title=f"Fault Injection Results ({args.app})",
        )
    )
    resumed = sum(r.resumed for r in result.regions.values())
    pruned = sum(r.pruned for r in result.regions.values())
    print(
        f"{result.total_injections()} injections "
        f"({resumed} resumed from store, {pruned} statically pruned, "
        f"{coordinator.book.requeues} batch(es) requeued) "
        f"in {elapsed:.1f}s",
        file=sys.stderr,
    )
    return 0


def cmd_campaign_work(args) -> int:
    """Join a distributed campaign as a worker: pull leased batches from
    the coordinator, execute them through the local engine, and submit
    the results until the coordinator reports the campaign done."""
    from repro.engine.coordination import WorkerClient, WorkerError

    client = WorkerClient(
        args.coordinator,
        jobs=args.jobs,
        name=args.name,
        poll_interval=args.poll_interval,
        max_batches=args.max_batches,
        log=lambda msg: print(msg, file=sys.stderr),
    )
    try:
        stats = client.run()
    except WorkerError as exc:
        print(exc, file=sys.stderr)
        return 1
    print(
        f"worker done: {stats.trials} trials in {stats.batches} batch(es)"
        + (f", {stats.duplicates} duplicate(s)" if stats.duplicates else ""),
        file=sys.stderr,
    )
    return 0


def cmd_trace_run(args) -> int:
    """Trace one chosen injection trial end to end: spans from the VM,
    the MPI stack, and the injector land in one Perfetto-loadable file,
    with the per-trial metrics registry rendered alongside."""
    from repro.injection.campaign import Campaign
    from repro.observability.export import TraceCollector
    from repro.observability.metrics import MetricsRegistry, render_prometheus

    try:
        campaign = Campaign.from_registry(
            args.app,
            nprocs=args.nprocs,
            app_params=_parse_params(args.params),
            seed=args.seed,
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    regions = _parse_regions(args.region)
    metrics = MetricsRegistry()
    collector = TraceCollector()
    with campaign.engine(metrics=metrics, trace=collector) as eng:
        specs = [eng.make_spec(region, args.index) for region in regions]
        results = eng.run_trials(specs)
    for result in sorted(results, key=lambda r: r.region.value):
        latency = (
            f", latency {result.latency_blocks} blocks"
            if result.latency_blocks is not None
            else ""
        )
        print(
            f"{result.region.value}#{result.index}: "
            f"{result.manifestation.value}"
            f" ({result.divergence_kind or 'no divergence'}{latency})",
            file=sys.stderr,
        )
    collector.write(
        args.out,
        metadata={"app": args.app, "seed": args.seed, "index": args.index},
    )
    print(f"wrote trace: {args.out}", file=sys.stderr)
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            fh.write(render_prometheus(metrics))
        print(f"wrote metrics: {args.metrics_out}", file=sys.stderr)
    return 0


def cmd_trace_check(args) -> int:
    """Validate a trace file (and optionally a metrics textfile): the
    Chrome trace schema must hold, every ``--require`` category must be
    present, and the metrics file must parse.  Exit 1 on any problem."""
    from repro.observability.export import trace_categories, validate_chrome_trace
    from repro.observability.metrics import parse_prometheus

    with open(args.trace) as fh:
        try:
            obj = json.load(fh)
        except ValueError as exc:
            print(f"{args.trace}: not JSON: {exc}", file=sys.stderr)
            return 1
    problems = validate_chrome_trace(obj)
    for problem in problems:
        print(f"{args.trace}: {problem}", file=sys.stderr)
    present = trace_categories(obj)
    required = {
        token.strip()
        for token in (args.require or "").split(",")
        if token.strip()
    }
    missing = sorted(required - present)
    for cat in missing:
        print(f"{args.trace}: missing required category {cat!r}", file=sys.stderr)
    n_events = len(obj.get("traceEvents", []))
    metrics_note = ""
    samples = None
    if args.metrics:
        with open(args.metrics) as fh:
            try:
                samples = parse_prometheus(fh.read())
            except ValueError as exc:
                print(f"{args.metrics}: {exc}", file=sys.stderr)
                return 1
        metrics_note = f", {len(samples)} metric samples"
    if problems or missing:
        return 1
    print(
        f"ok: {n_events} events, categories "
        f"{','.join(sorted(present))}{metrics_note}"
    )
    return 0


def cmd_campaign_merge(args) -> int:
    from repro.engine.store import merge_stores

    count = merge_stores(args.stores, args.out)
    print(f"wrote {count} unique trials to {args.out}")
    return 0


def cmd_analyze_translate(args) -> int:
    """Translatability audit: which instructions of each shipped kernel
    the fast path runs translated, and why the rest fall back to the
    interpreter.  Report-only (always exit 0): an untranslatable block
    costs throughput, not correctness."""
    from repro.cpu.translate import audit_function
    from repro.staticanalysis.lint import iter_shipped_kernels

    kernels = list(iter_shipped_kernels())
    owners = {owner for owner, _ in kernels}
    selected = [
        (owner, fn)
        for owner, fn in kernels
        if args.target in (owner, fn.name)
    ]
    if not selected:
        names = sorted(owners | {fn.name for _, fn in kernels})
        print(
            f"unknown analysis target {args.target!r}; choose an "
            f"application or kernel: {', '.join(names)}",
            file=sys.stderr,
        )
        return 2

    reports = [(owner, audit_function(fn)) for owner, fn in selected]
    if args.json:
        payload = {
            "schema_version": ANALYZE_SCHEMA_VERSION,
            "target": args.target,
            "kernels": [
                dict(report, owner=owner) for owner, report in reports
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        for _, rep in reports:
            if rep["reason"]:
                print(f"{rep['name']}: untranslatable ({rep['reason']})")
                continue
            pct = (
                100.0 * rep["translated_insns"] / rep["insns"]
                if rep["insns"]
                else 0.0
            )
            print(
                f"{rep['name']}: {rep['translated_insns']}/{rep['insns']} "
                f"insns translated ({pct:.0f}%), {rep['units']} unit(s) "
                f"over {rep['blocks']} block(s), {rep['call_splits']} call "
                f"split(s), {rep['cost_splits']} cost split(s)"
            )
            for skip in rep["untranslatable"]:
                print(
                    f"  insn {skip['index']}: interpreted "
                    f"({skip['reason']})"
                )
    return 0


def cmd_analyze(args) -> int:
    if args.mpi:
        return cmd_analyze_mpi(args)
    if args.propagation:
        return cmd_analyze_propagation(args)
    if args.outcomes:
        return cmd_analyze_outcomes(args)
    if args.translate:
        return cmd_analyze_translate(args)
    from repro.staticanalysis.avf import analyze_function
    from repro.staticanalysis.lint import lint_function
    from repro.staticanalysis.lint import iter_shipped_kernels

    kernels = list(iter_shipped_kernels())
    owners = {owner for owner, _ in kernels}
    selected = [
        (owner, fn)
        for owner, fn in kernels
        if args.target in (owner, fn.name)
    ]
    if not selected:
        names = sorted(owners | {fn.name for _, fn in kernels})
        print(
            f"unknown analysis target {args.target!r}; choose an "
            f"application or kernel: {', '.join(names)}",
            file=sys.stderr,
        )
        return 2

    reports = [(fn, analyze_function(fn)) for _, fn in selected]
    diags = (
        [d for _, fn in selected for d in lint_function(fn)]
        if args.lint
        else []
    )

    if args.json:
        payload = {
            "schema_version": ANALYZE_SCHEMA_VERSION,
            "target": args.target,
            "functions": [rep.to_dict() for _, rep in reports],
        }
        if args.lint:
            payload["diagnostics"] = _diag_payload(diags)
        print(json.dumps(payload, indent=2))
    else:
        for fn, rep in reports:
            print(
                f"{rep.name}: {rep.n_insns} insns, {rep.n_blocks} blocks, "
                f"program AVF {rep.program_avf:.3f}, text AVF "
                f"{rep.text_avf:.3f}"
            )
            for reg, score in sorted(
                rep.register_avf.items(), key=lambda kv: -kv[1]
            ):
                if score > 0.0:
                    print(f"  {reg}: {score:.3f}")
            bits = rep.text_bits
            print(
                f"  text bits: {bits['crash']} crash, "
                f"{bits['incorrect']} incorrect, {bits['benign']} benign"
            )
        if args.lint:
            for d in diags:
                print(d)
            print(f"lint: {len(diags)} diagnostic(s)")
    return 1 if diags else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce 'Assessing Fault Sensitivity in MPI "
        "Applications' (Lu & Reed, SC 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list all experiments").set_defaults(fn=cmd_list)
    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment id, e.g. T2 or E5")
    run.add_argument("n", nargs="?", type=int, default=None,
                     help="campaign size / trial count override")
    run.set_defaults(fn=cmd_run)
    rep = sub.add_parser(
        "report",
        help="run everything and emit markdown, or regenerate an "
        "artifact run directory's summary.json/report.html",
    )
    rep.add_argument(
        "target", nargs="?", default=None,
        help="artifact run directory to regenerate, or trial-count "
        "override for the markdown report (default: full report)",
    )
    rep.add_argument("--out", default=None, help="output file")
    rep.add_argument(
        "--check", action="store_true",
        help="with a run directory: verify summary.json/report.html "
        "are bit-identical to a fresh derivation (exit 1 on drift)",
    )
    rep.set_defaults(fn=cmd_report)
    ana = sub.add_parser(
        "analyze",
        help="static fault-vulnerability analysis of shipped kernels",
    )
    ana.add_argument(
        "target", help="application (wavetoy, moldyn, climate, ablation) "
        "or kernel function name (e.g. wt_step); with --mpi, an "
        "application or the 'buggy' fixture"
    )
    ana.add_argument(
        "--lint", action="store_true",
        help="run the diagnostics too (exit 1 on any diagnostic)",
    )
    ana.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    ana.add_argument(
        "--mpi", action="store_true",
        help="analyze the MPI communication skeleton instead of kernels "
        "(match graph, SA1xx passes, message-vulnerability map)",
    )
    ana.add_argument(
        "--nprocs", type=int, default=4,
        help="ranks for the --mpi dry run (default 4)",
    )
    ana.add_argument(
        "--propagation", action="store_true",
        help="per-site taint classification and the SA2xx detector-"
        "coverage audit for one application (exit 1 on open findings)",
    )
    ana.add_argument(
        "--outcomes", action="store_true",
        help="predicted-outcome strata (crash/hang/detectable/sdc/"
        "masked) and the SA3xx audit for one application (exit 1 on "
        "findings); --nprocs sets the reference-run ranks",
    )
    ana.add_argument(
        "--translate", action="store_true",
        help="translatability audit: per-kernel fast-path coverage and "
        "the instructions the dual-mode engine must interpret (report "
        "only, always exit 0)",
    )
    ana.set_defaults(fn=cmd_analyze)

    camp = sub.add_parser(
        "campaign",
        help="run injection campaigns through the parallel engine",
    )
    camp_sub = camp.add_subparsers(dest="campaign_command", required=True)
    crun = camp_sub.add_parser(
        "run", help="run a (possibly parallel, resumable) campaign"
    )
    crun.add_argument("--app", required=True,
                      help="suite application: wavetoy, moldyn, climate")
    crun.add_argument("--regions", default="all",
                      help="comma-separated regions (default: all eight)")
    crun.add_argument("-n", type=int, default=None,
                      help="injections per region (default: plan / "
                      "REPRO_CAMPAIGN_N)")
    crun.add_argument("--target-d", type=float, default=None, dest="target_d",
                      help="adaptive mode: dispatch batches until the "
                      "observed Cochran half-width d drops below this "
                      "(e.g. 0.05)")
    crun.add_argument("--jobs", type=int, default=None,
                      help="parallel worker processes (default: "
                      "REPRO_CAMPAIGN_JOBS or 1)")
    crun.add_argument("--store", default=None,
                      help="append-only result store: JSONL, or SQLite "
                      "for .sqlite/.sqlite3/.db paths")
    crun.add_argument("--resume", action="store_true",
                      help="skip trials already present in --store")
    crun.add_argument("--seed", type=int, default=20040607,
                      help="campaign seed (default 20040607)")
    crun.add_argument("--nprocs", type=int, default=8,
                      help="simulated MPI ranks (default 8)")
    crun.add_argument("--params", default=None,
                      help="application build parameters, k=v,k=v")
    crun.add_argument("--log-interval", type=int, default=10,
                      dest="log_interval",
                      help="progress line every N trials (0 disables; "
                      "default 10)")
    crun.add_argument("--trace", default=None, metavar="FILE",
                      help="write a merged Chrome trace (Perfetto-"
                      "loadable) of the campaign's trials to FILE")
    crun.add_argument("--metrics", default=None, metavar="FILE",
                      help="write the aggregated campaign metrics as a "
                      "Prometheus textfile to FILE")
    crun.add_argument("--serve", default=None, metavar="[HOST:]PORT",
                      help="serve live telemetry over HTTP while the "
                      "campaign runs: /metrics (Prometheus), /status "
                      "(per-region tallies), /progress (throughput, "
                      "ETA); bare ports bind 127.0.0.1")
    crun.add_argument("--artifacts", default=None, metavar="DIR",
                      help="write an artifact-grade run directory: "
                      "manifest.json, events.jsonl, metrics.jsonl, "
                      "summary.json, report.html, reproduce.sh "
                      "(regenerable later via 'report DIR')")
    crun.add_argument("--checkpoint-stride", type=int, default=16,
                      dest="checkpoint_stride", metavar="BLOCKS",
                      help="replay the recorded golden prefix up to the "
                      "last checkpoint (every BLOCKS blocks) before each "
                      "injection instant (default 16)")
    crun.add_argument("--no-checkpoint", action="store_true",
                      dest="no_checkpoint",
                      help="disable golden-prefix replay; every trial "
                      "executes from block 0")
    crun.add_argument("--prune-masked", action="store_true",
                      dest="prune_masked",
                      help="consult the static masking oracle before "
                      "dispatch: provably outcome-free faults are "
                      "tallied as correct without execution")
    crun.add_argument("--stratify", action="store_true",
                      help="stratified sampling over predicted-outcome "
                      "strata: classify a pool statically, Neyman-"
                      "allocate trials by observed per-stratum "
                      "variance, importance-weight the rates back to "
                      "unbiased region estimates")
    crun.add_argument("--fastpath", default=False,
                      action=argparse.BooleanOptionalAction,
                      help="execute trials through the translated "
                      "dual-mode block engine; outcomes are "
                      "bit-identical to the interpreter (default off)")
    crun.set_defaults(fn=cmd_campaign_run)
    cstat = camp_sub.add_parser("status", help="summarize a result store")
    cstat.add_argument("--store", required=True,
                       help="result store, JSONL or SQLite")
    cstat.add_argument("--json", action="store_true",
                       help="machine-readable output (tallies + "
                       "Cochran half-width)")
    cstat.set_defaults(fn=cmd_campaign_status)
    cmerge = camp_sub.add_parser(
        "merge", help="merge result stores, deduplicating by trial key"
    )
    cmerge.add_argument("stores", nargs="+",
                        help="input stores, JSONL or SQLite in any mix")
    cmerge.add_argument("--out", required=True,
                        help="merged output store (backend chosen from "
                        "the suffix: .sqlite/.sqlite3/.db = SQLite, "
                        "anything else = JSONL)")
    cmerge.set_defaults(fn=cmd_campaign_merge)
    cserve = camp_sub.add_parser(
        "serve-work",
        help="coordinate a distributed campaign: serve leased trial "
        "batches over HTTP and fold worker submissions",
    )
    cserve.add_argument("--app", required=True,
                        help="suite application: wavetoy, moldyn, climate")
    cserve.add_argument("--regions", default="all",
                        help="comma-separated regions (default: all eight)")
    cserve.add_argument("-n", type=int, default=None,
                        help="injections per region (default: plan)")
    cserve.add_argument("--serve", default="127.0.0.1:9200",
                        metavar="[HOST:]PORT",
                        help="bind address for /manifest /lease /submit "
                        "/work plus the live telemetry endpoints "
                        "(default 127.0.0.1:9200)")
    cserve.add_argument("--store", default=None,
                        help="result store, JSONL or SQLite by suffix; "
                        "every submitted trial is appended")
    cserve.add_argument("--resume", action="store_true",
                        help="skip trials already present in --store")
    cserve.add_argument("--seed", type=int, default=20040607,
                        help="campaign seed (default 20040607)")
    cserve.add_argument("--nprocs", type=int, default=8,
                        help="simulated MPI ranks (default 8)")
    cserve.add_argument("--params", default=None,
                        help="application build parameters, k=v,k=v")
    cserve.add_argument("--batch-size", type=int, default=8,
                        dest="batch_size",
                        help="trials per leased batch (default 8)")
    cserve.add_argument("--lease-timeout", type=float, default=60.0,
                        dest="lease_timeout", metavar="SECONDS",
                        help="requeue a leased batch not submitted "
                        "within this window (default 60)")
    cserve.add_argument("--linger", type=float, default=3.0,
                        metavar="SECONDS",
                        help="keep answering idle workers' polls this "
                        "long after completion (default 3)")
    cserve.add_argument("--checkpoint-stride", type=int, default=16,
                        dest="checkpoint_stride", metavar="BLOCKS",
                        help="workers replay the golden prefix at this "
                        "stride, as in campaign run (default 16)")
    cserve.add_argument("--no-checkpoint", action="store_true",
                        dest="no_checkpoint",
                        help="disable golden-prefix replay on workers")
    cserve.add_argument("--prune-masked", action="store_true",
                        dest="prune_masked",
                        help="tally provably-masked faults as correct "
                        "on the coordinator; only unproven trials are "
                        "leased out")
    cserve.add_argument("--fastpath", default=False,
                        action=argparse.BooleanOptionalAction,
                        help="workers execute through the translated "
                        "dual-mode block engine (default off)")
    cserve.set_defaults(fn=cmd_campaign_serve_work)
    cwork = camp_sub.add_parser(
        "work",
        help="join a distributed campaign as a worker: lease, execute, "
        "submit until done",
    )
    cwork.add_argument("coordinator", metavar="[HOST:]PORT",
                       help="the serve-work coordinator's endpoint "
                       "(bare port = 127.0.0.1)")
    cwork.add_argument("--jobs", type=int, default=None,
                       help="local worker processes per batch (default: "
                       "REPRO_CAMPAIGN_JOBS or 1)")
    cwork.add_argument("--name", default=None,
                       help="worker name shown in coordinator accounting "
                       "(default: host:pid)")
    cwork.add_argument("--poll-interval", type=float, default=0.5,
                       dest="poll_interval", metavar="SECONDS",
                       help="wait between connection retries and idle "
                       "polls (default 0.5)")
    cwork.add_argument("--max-batches", type=int, default=None,
                       dest="max_batches",
                       help="exit after this many batches (default: "
                       "until the campaign is done)")
    cwork.set_defaults(fn=cmd_campaign_work)

    srv = sub.add_parser(
        "serve",
        help="serve live telemetry for a result store over HTTP",
    )
    srv.add_argument("--store", required=True,
                     help="result store to follow, JSONL or SQLite")
    srv.add_argument("--endpoint", default="127.0.0.1:9100",
                     metavar="[HOST:]PORT",
                     help="bind address (default 127.0.0.1:9100)")
    srv.set_defaults(fn=cmd_serve)

    trc = sub.add_parser(
        "trace",
        help="trace single injection trials and validate trace files",
    )
    trc_sub = trc.add_subparsers(dest="trace_command", required=True)
    trun = trc_sub.add_parser(
        "run", help="execute chosen trials with full tracing enabled"
    )
    trun.add_argument("--app", required=True,
                      help="suite application: wavetoy, moldyn, climate")
    trun.add_argument("--region", default="all",
                      help="comma-separated regions to trace one trial "
                      "of each (default: all eight)")
    trun.add_argument("--index", type=int, default=0,
                      help="trial index within each region (default 0)")
    trun.add_argument("--nprocs", type=int, default=4,
                      help="simulated MPI ranks (default 4)")
    trun.add_argument("--params", default=None,
                      help="application build parameters, k=v,k=v")
    trun.add_argument("--seed", type=int, default=20040607,
                      help="campaign seed (default 20040607)")
    trun.add_argument("--out", required=True,
                      help="Chrome trace JSON output file")
    trun.add_argument("--metrics-out", default=None, dest="metrics_out",
                      help="Prometheus textfile output")
    trun.set_defaults(fn=cmd_trace_run)
    tchk = trc_sub.add_parser(
        "check", help="schema-validate a trace (and metrics) file"
    )
    tchk.add_argument("--trace", required=True, help="trace JSON file")
    tchk.add_argument("--metrics", default=None,
                      help="Prometheus textfile to parse-check")
    tchk.add_argument("--require", default=None,
                      help="comma-separated trace categories that must "
                      "be present (e.g. vm,channel,injection)")
    tchk.set_defaults(fn=cmd_trace_check)
    args = parser.parse_args(argv)
    # The raw argv backs reproduce.sh in artifact run directories (the
    # test harness calls main() with an explicit list, so sys.argv is
    # not authoritative here).
    args._argv = list(argv) if argv is not None else sys.argv[1:]
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
