"""Command-line entry point: run paper experiments.

Usage::

    python -m repro list                    # show all experiments
    python -m repro run T2 [n]              # regenerate one artifact
    python -m repro report [n] [--out FILE] # run everything, emit markdown
    python -m repro analyze wavetoy         # static AVF prediction
    python -m repro analyze --lint moldyn   # assembly diagnostics
    python -m repro analyze --mpi climate   # communication skeleton + map
    python -m repro analyze --mpi --lint buggy  # SA1xx gate (exits 1)
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.harness.experiments import EXPERIMENTS, get_experiment
from repro.harness.report import Report


def cmd_list(_args) -> int:
    width = max(len(e.paper_artifact) for e in EXPERIMENTS.values())
    for exp in EXPERIMENTS.values():
        print(f"{exp.id:>4}  {exp.paper_artifact:<{width}}  {exp.description}")
    return 0


def cmd_run(args) -> int:
    try:
        exp = get_experiment(args.experiment)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    t0 = time.time()
    artifact, _metrics = exp.run(args.n)
    print(f"=== {exp.id} ({exp.paper_artifact}) - {time.time() - t0:.1f}s ===")
    print(artifact)
    return 0


def cmd_report(args) -> int:
    report = Report(title="Paper reproduction report")
    for exp_id in EXPERIMENTS:
        t0 = time.time()
        report.run_experiment(exp_id, args.n)
        print(f"{exp_id}: done in {time.time() - t0:.1f}s", file=sys.stderr)
    markdown = report.render_markdown()
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(markdown)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(markdown)
    return 0


def cmd_analyze_mpi(args) -> int:
    from repro.apps import APPLICATION_SUITE
    from repro.staticanalysis.mpicheck import (
        BuggyApp,
        build_vulnerability_map,
        check_skeleton,
        extract_skeleton,
    )

    factories = dict(APPLICATION_SUITE)
    factories["buggy"] = BuggyApp
    factory = factories.get(args.target)
    if factory is None:
        print(
            f"unknown MPI analysis target {args.target!r}; choose one of: "
            f"{', '.join(sorted(factories))}",
            file=sys.stderr,
        )
        return 2

    skeleton = extract_skeleton(factory(), args.nprocs)
    vmap = build_vulnerability_map(skeleton)
    diags = check_skeleton(skeleton) if args.lint else []

    if args.json:
        payload = {
            "target": args.target,
            "nprocs": args.nprocs,
            "status": skeleton.status.value,
            "skeleton": {
                "events": len(skeleton.events),
                "packets": len(skeleton.packets),
                "kernel_calls": len(skeleton.kernel_calls),
            },
            "vulnerability": {
                "total_bytes": vmap.total_bytes,
                "structural_score": vmap.structural_score,
                "detected_score": vmap.detected_score,
                "byte_classes": vmap.byte_class_totals(),
                "ranks": [
                    {
                        "rank": r.rank,
                        "total_bytes": r.total_bytes,
                        "header_fraction": r.header_fraction,
                        "structural_score": r.structural_score,
                    }
                    for r in vmap.ranks
                ],
            },
        }
        if args.lint:
            payload["diagnostics"] = [
                {
                    "code": d.code,
                    "function": d.function,
                    "insn_index": d.insn_index,
                    "message": d.message,
                }
                for d in diags
            ]
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"{args.target}: {args.nprocs} ranks, dry run "
            f"{skeleton.status.value}, {len(skeleton.events)} MPI events, "
            f"{len(skeleton.packets)} packets, "
            f"{len(skeleton.kernel_calls)} elided kernel calls"
        )
        print(vmap.report())
        if args.lint:
            for d in diags:
                print(d)
            print(f"lint: {len(diags)} diagnostic(s)")
    return 1 if diags else 0


def cmd_analyze(args) -> int:
    if args.mpi:
        return cmd_analyze_mpi(args)
    from repro.staticanalysis.avf import analyze_function
    from repro.staticanalysis.lint import lint_function
    from repro.staticanalysis.lint import iter_shipped_kernels

    kernels = list(iter_shipped_kernels())
    owners = {owner for owner, _ in kernels}
    selected = [
        (owner, fn)
        for owner, fn in kernels
        if args.target in (owner, fn.name)
    ]
    if not selected:
        names = sorted(owners | {fn.name for _, fn in kernels})
        print(
            f"unknown analysis target {args.target!r}; choose an "
            f"application or kernel: {', '.join(names)}",
            file=sys.stderr,
        )
        return 2

    reports = [(fn, analyze_function(fn)) for _, fn in selected]
    diags = (
        [d for _, fn in selected for d in lint_function(fn)]
        if args.lint
        else []
    )

    if args.json:
        payload = {
            "target": args.target,
            "functions": [rep.to_dict() for _, rep in reports],
        }
        if args.lint:
            payload["diagnostics"] = [
                {
                    "code": d.code,
                    "function": d.function,
                    "insn_index": d.insn_index,
                    "message": d.message,
                }
                for d in diags
            ]
        print(json.dumps(payload, indent=2))
    else:
        for fn, rep in reports:
            print(
                f"{rep.name}: {rep.n_insns} insns, {rep.n_blocks} blocks, "
                f"program AVF {rep.program_avf:.3f}, text AVF "
                f"{rep.text_avf:.3f}"
            )
            for reg, score in sorted(
                rep.register_avf.items(), key=lambda kv: -kv[1]
            ):
                if score > 0.0:
                    print(f"  {reg}: {score:.3f}")
            bits = rep.text_bits
            print(
                f"  text bits: {bits['crash']} crash, "
                f"{bits['incorrect']} incorrect, {bits['benign']} benign"
            )
        if args.lint:
            for d in diags:
                print(d)
            print(f"lint: {len(diags)} diagnostic(s)")
    return 1 if diags else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce 'Assessing Fault Sensitivity in MPI "
        "Applications' (Lu & Reed, SC 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list all experiments").set_defaults(fn=cmd_list)
    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment id, e.g. T2 or E5")
    run.add_argument("n", nargs="?", type=int, default=None,
                     help="campaign size / trial count override")
    run.set_defaults(fn=cmd_run)
    rep = sub.add_parser("report", help="run everything, emit markdown")
    rep.add_argument("n", nargs="?", type=int, default=None)
    rep.add_argument("--out", default=None, help="output file")
    rep.set_defaults(fn=cmd_report)
    ana = sub.add_parser(
        "analyze",
        help="static fault-vulnerability analysis of shipped kernels",
    )
    ana.add_argument(
        "target", help="application (wavetoy, moldyn, climate, ablation) "
        "or kernel function name (e.g. wt_step); with --mpi, an "
        "application or the 'buggy' fixture"
    )
    ana.add_argument(
        "--lint", action="store_true",
        help="run the diagnostics too (exit 1 on any diagnostic)",
    )
    ana.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    ana.add_argument(
        "--mpi", action="store_true",
        help="analyze the MPI communication skeleton instead of kernels "
        "(match graph, SA1xx passes, message-vulnerability map)",
    )
    ana.add_argument(
        "--nprocs", type=int, default=4,
        help="ranks for the --mpi dry run (default 4)",
    )
    ana.set_defaults(fn=cmd_analyze)
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
