"""Control-flow graph construction over assembled kernel bytes.

The graph is built from the *encoded* text image, not the assembler's
in-memory instruction list: the decoder is the same one the VM fetch
path uses, so the CFG describes exactly the words a text-segment fault
would corrupt.  Leaders are the entry instruction, every branch target
and every fall-through after a terminator; CALL/CALLR do not end blocks
(control returns to the next word) while RET, HLT and the jumps do.

Loop nesting depth per block comes from dominator-based natural loops -
it is the execution-weight proxy the AVF estimator uses in place of a
dynamic profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu import semantics
from repro.cpu.assembler import AssembledFunction, assemble_function
from repro.cpu.decoder import decode_stream
from repro.cpu.isa import INSN_SIZE, Insn
from repro.errors import SimulationError


class CFGError(SimulationError):
    """The byte image is not a decodable function body."""


def decode_function(code: bytes) -> list[Insn]:
    """Decode a function's text bytes into its instruction words.

    Routed through :mod:`repro.cpu.decoder`, the same cached decode
    authority the VM fetch path and the block translator use, so the
    CFG describes exactly the words the interpreter executes.
    """
    if len(code) % INSN_SIZE:
        raise CFGError(
            f"function body of {len(code)} bytes is not a whole number "
            f"of {INSN_SIZE}-byte words"
        )
    return list(decode_stream(code))


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions."""

    index: int
    start: int  # first instruction index (inclusive)
    end: int  # last instruction index (exclusive)
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)
    #: Natural-loop nesting depth (0 = not in any loop).
    loop_depth: int = 0

    def insn_indices(self) -> range:
        return range(self.start, self.end)

    def __len__(self) -> int:
        return self.end - self.start


@dataclass
class ControlFlowGraph:
    name: str
    insns: list[Insn]
    blocks: list[BasicBlock]
    #: Instruction index -> owning block index.
    block_of: list[int]
    #: (insn index, decoded displacement) of branches whose target lies
    #: outside the function or off the instruction grid - no edge is
    #: added for them; the linter reports SA005.
    bad_branch_targets: list[tuple[int, int]]
    #: Relocated instruction indices (their imm is patched at link time,
    #: so its encoded value carries no static meaning).
    relocated: frozenset[int] = frozenset()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_code(
        cls, name: str, code: bytes, relocated: frozenset[int] = frozenset()
    ) -> "ControlFlowGraph":
        insns = decode_function(code)
        return cls._build(name, insns, relocated)

    @classmethod
    def from_function(cls, fn: AssembledFunction) -> "ControlFlowGraph":
        """Build from an assembled function, round-tripping through its
        byte image (the linker-visible form)."""
        relocated = frozenset(r.insn_index for r in fn.relocations)
        return cls.from_code(fn.name, fn.code, relocated)

    @classmethod
    def from_source(cls, name: str, source: str) -> "ControlFlowGraph":
        return cls.from_function(assemble_function(name, source))

    @classmethod
    def _build(
        cls, name: str, insns: list[Insn], relocated: frozenset[int]
    ) -> "ControlFlowGraph":
        if not insns:
            raise CFGError(f"function {name!r} has no instructions")
        n = len(insns)

        def branch_target(idx: int) -> int | None:
            """Target instruction index, or None when it leaves the
            function or lands between words."""
            disp = insns[idx].imm
            if disp % INSN_SIZE:
                return None
            target = idx + 1 + disp // INSN_SIZE
            return target if 0 <= target < n else None

        leaders = {0}
        bad: list[tuple[int, int]] = []
        for i, insn in enumerate(insns):
            if semantics.is_branch(insn):
                target = branch_target(i)
                if target is None:
                    bad.append((i, insn.imm))
                else:
                    leaders.add(target)
            if semantics.is_terminator(insn) and i + 1 < n:
                leaders.add(i + 1)

        starts = sorted(leaders)
        blocks = [
            BasicBlock(index=b, start=s, end=e)
            for b, (s, e) in enumerate(zip(starts, starts[1:] + [n]))
        ]
        block_of = [0] * n
        for block in blocks:
            for i in block.insn_indices():
                block_of[i] = block.index

        for block in blocks:
            last = insns[block.end - 1]
            succs: list[int] = []
            if semantics.is_branch(last):
                target = branch_target(block.end - 1)
                if target is not None:
                    succs.append(block_of[target])
            if semantics.falls_through(last) and block.end < n:
                fall = block_of[block.end]
                if fall not in succs:
                    succs.append(fall)
            block.succs = succs
            for s in succs:
                blocks[s].preds.append(block.index)

        cfg = cls(
            name=name,
            insns=insns,
            blocks=blocks,
            block_of=block_of,
            bad_branch_targets=bad,
            relocated=relocated,
        )
        cfg._annotate_loop_depths()
        return cfg

    # ------------------------------------------------------------------
    # graph queries
    # ------------------------------------------------------------------
    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def reachable(self) -> set[int]:
        """Block indices reachable from the entry block."""
        seen = {0}
        work = [0]
        while work:
            b = work.pop()
            for s in self.blocks[b].succs:
                if s not in seen:
                    seen.add(s)
                    work.append(s)
        return seen

    def dominators(self) -> list[set[int]]:
        """Per-block dominator sets (iterative dataflow; the kernels are
        a handful of blocks, so the simple algorithm is plenty)."""
        nblocks = len(self.blocks)
        full = set(range(nblocks))
        dom: list[set[int]] = [full.copy() for _ in range(nblocks)]
        dom[0] = {0}
        reachable = self.reachable()
        changed = True
        while changed:
            changed = False
            for b in range(1, nblocks):
                if b not in reachable:
                    continue
                preds = [p for p in self.blocks[b].preds if p in reachable]
                if not preds:
                    continue
                new = set.intersection(*(dom[p] for p in preds)) | {b}
                if new != dom[b]:
                    dom[b] = new
                    changed = True
        return dom

    def _annotate_loop_depths(self) -> None:
        """Natural-loop nesting depth: a back edge t->h (h dominates t)
        defines a loop of h plus every block that reaches t without
        passing through h; a block's depth is the number of distinct
        loop headers whose loop contains it."""
        dom = self.dominators()
        reachable = self.reachable()
        loops: dict[int, set[int]] = {}  # header -> body
        for block in self.blocks:
            if block.index not in reachable:
                continue
            for succ in block.succs:
                if succ in dom[block.index]:  # back edge block -> succ
                    body = loops.setdefault(succ, {succ})
                    work = [block.index]
                    while work:
                        b = work.pop()
                        if b in body:
                            continue
                        body.add(b)
                        work.extend(self.blocks[b].preds)
        for block in self.blocks:
            block.loop_depth = sum(
                1 for body in loops.values() if block.index in body
            )

    # ------------------------------------------------------------------
    # rendering (debugging aid and CLI output)
    # ------------------------------------------------------------------
    def render(self) -> str:
        lines = [f"cfg {self.name}: {len(self.blocks)} blocks"]
        for b in self.blocks:
            ops = " ".join(self.insns[i].op.name for i in b.insn_indices())
            lines.append(
                f"  B{b.index} [{b.start}:{b.end}] depth={b.loop_depth} "
                f"succs={b.succs} | {ops}"
            )
        return "\n".join(lines)
