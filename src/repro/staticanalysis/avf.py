"""ACE/AVF-style static fault-sensitivity estimation.

The architectural vulnerability factor of a storage bit is the fraction
of time it holds state required for correct execution (ACE state).  The
dynamic campaigns measure this by injection; here it is *predicted* from
structure alone:

* a register's AVF is the execution-weighted fraction of program points
  at which it is live (liveness from :mod:`.dataflow`, weights from the
  CFG's loop nesting - a static stand-in for a block-frequency profile);
* a text bit's verdict comes from re-decoding the flipped word, the
  exact mechanism the paper gives for text faults ("a bit error in the
  instruction opcode can alter the instruction and halt the execution"):
  flips that decode to an undefined opcode (or the privileged HLT, or a
  control transfer out of the function) are predicted **Crash**; flips
  that yield a different valid instruction are predicted **Incorrect**
  (silent behaviour change); flips in fields the instruction never
  reads - unused operand nibbles, the register alias bit the register
  file masks off, dead immediates - are predicted **Benign**.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cpu import semantics
from repro.cpu.assembler import AssembledFunction, Program
from repro.cpu.isa import INSN_SIZE, BRANCH_OPS, Insn, Op, RedOp, VecOp
from repro.cpu.registers import REG_NAMES
from repro.memory.layout import segment_escape_bit
from repro.staticanalysis.cfg import ControlFlowGraph
from repro.staticanalysis.dataflow import Liveness, liveness

#: Execution weight multiplier per loop-nesting level (a block two loops
#: deep is assumed to run LOOP_WEIGHT^2 times as often as straight-line
#: code - the classic static profile guess).
LOOP_WEIGHT = 10

#: Memory-offset immediate bits at or above this position are predicted
#: to escape every mapped segment when flipped, turning the access into
#: a segfault.  Derived from the segment-layout authority in
#: :mod:`repro.memory.layout` (the largest segment is the default heap).
MEM_ESCAPE_BIT = segment_escape_bit()

_VALID_OPCODES = frozenset(int(op) for op in Op)
_VALID_VECOPS = frozenset(int(v) for v in VecOp)
_VALID_REDOPS = frozenset(int(v) for v in RedOp)


class Predicted(enum.Enum):
    """Predicted manifestation of a single text-bit flip."""

    CRASH = "crash"
    INCORRECT = "incorrect"
    BENIGN = "benign"


# ----------------------------------------------------------------------
# per-register AVF
# ----------------------------------------------------------------------
def block_weights(cfg: ControlFlowGraph) -> list[float]:
    """Per-instruction execution weight (unreachable code weighs 0)."""
    reachable = cfg.reachable()
    weights = [0.0] * len(cfg.insns)
    for block in cfg.blocks:
        w = float(LOOP_WEIGHT**block.loop_depth) if block.index in reachable else 0.0
        for i in block.insn_indices():
            weights[i] = w
    return weights


def register_avf(
    cfg: ControlFlowGraph, live: Liveness | None = None
) -> dict[str, float]:
    """Weighted fraction of program points at which each register is
    live - the predicted probability that a uniformly timed flip of that
    register lands in a live window."""
    live = live or liveness(cfg)
    weights = block_weights(cfg)
    total = sum(weights) or 1.0
    scores = {name: 0.0 for name in REG_NAMES}
    for i, w in enumerate(weights):
        for r in live.before[i]:
            scores[REG_NAMES[r]] += w
    return {name: s / total for name, s in scores.items()}


# ----------------------------------------------------------------------
# text-segment vulnerability map
# ----------------------------------------------------------------------
def classify_bit(
    insn: Insn, insn_index: int, n_insns: int, bit: int, relocated: bool = False
) -> Predicted:
    """Predict the manifestation of flipping ``bit`` (0..63, little
    endian over the 8-byte word) of instruction ``insn_index``."""
    byte, bit_in_byte = divmod(bit, 8)
    op = insn.op

    if byte == 0:  # opcode
        flipped = int(op) ^ (1 << bit_in_byte)
        if flipped not in _VALID_OPCODES:
            return Predicted.CRASH  # SIGILL on next fetch
        if flipped == int(Op.HLT):
            return Predicted.CRASH  # privileged -> SIGSEGV
        return Predicted.INCORRECT

    if byte in (1, 2):  # register operand nibbles
        if op is Op.FXCH and byte == 1 and bit_in_byte >= 4:
            # r1 selects an x87 stack slot (unmasked): a flip retargets
            # the exchange or underflows the FP stack.
            return Predicted.INCORRECT
        fields = {("r1", 1, True), ("r2", 1, False), ("r3", 2, True), ("r4", 2, False)}
        used = {f for f, _ in semantics.operand_fields(insn)}
        for fieldname, fbyte, high in fields:
            if fbyte != byte or (bit_in_byte >= 4) != high:
                continue
            if fieldname not in used:
                return Predicted.BENIGN
            if bit_in_byte % 4 == 3:
                # Register alias bit: the register file masks indices
                # with i & 7, so +8 names the same GPR.
                return Predicted.BENIGN
            return Predicted.INCORRECT
        return Predicted.BENIGN

    if byte == 3:  # sub-opcode
        flipped = insn.subop ^ (1 << bit_in_byte)
        if op in (Op.VBIN, Op.VBINS):
            return (
                Predicted.INCORRECT
                if flipped in _VALID_VECOPS
                else Predicted.CRASH
            )
        if op is Op.VRED:
            return (
                Predicted.INCORRECT
                if flipped in _VALID_REDOPS
                else Predicted.CRASH
            )
        return Predicted.BENIGN

    # bytes 4-7: the 32-bit immediate
    imm_bit = bit - 32
    if op in BRANCH_OPS:
        # Flip on the encoded u32, then reinterpret as the signed i32
        # the decoder produces.
        u = (insn.imm & 0xFFFFFFFF) ^ (1 << imm_bit)
        flipped = u - (1 << 32) if u >= (1 << 31) else u
        if flipped % INSN_SIZE:
            return Predicted.CRASH  # lands between words -> garbage fetch
        target = insn_index + 1 + flipped // INSN_SIZE
        if not 0 <= target < n_insns:
            return Predicted.CRASH
        return Predicted.INCORRECT
    if op is Op.CALL or (op is Op.CALLR):
        # CALL's imm is an absolute entry address (link-time patched);
        # any flip sends control to a corrupted address. CALLR ignores
        # its imm entirely.
        return Predicted.CRASH if op is Op.CALL else Predicted.BENIGN
    if relocated:
        # The encoded imm is a link-time-patched absolute address
        # (``$symbol`` data pointers): a flip strays off the object.
        return (
            Predicted.CRASH if imm_bit >= MEM_ESCAPE_BIT else Predicted.INCORRECT
        )
    if op in semantics.MEM_OFFSET_OPS:
        return (
            Predicted.CRASH if imm_bit >= MEM_ESCAPE_BIT else Predicted.INCORRECT
        )
    if op in semantics.IMM_DATA_OPS:
        if op in (Op.SHL, Op.SHR) and imm_bit >= 5:
            return Predicted.BENIGN  # shift count is masked with & 31
        return Predicted.INCORRECT
    return Predicted.BENIGN


def text_vulnerability_map(cfg: ControlFlowGraph) -> list[list[Predicted]]:
    """Per-instruction, per-bit (64 each) predicted manifestations."""
    n = len(cfg.insns)
    return [
        [
            classify_bit(insn, i, n, bit, relocated=i in cfg.relocated)
            for bit in range(64)
        ]
        for i, insn in enumerate(cfg.insns)
    ]


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AVFReport:
    """Static fault-sensitivity prediction for one function."""

    name: str
    n_insns: int
    n_blocks: int
    #: register name -> live-fraction AVF score in [0, 1].
    register_avf: dict[str, float]
    #: mean register AVF over the whole file (the program score).
    program_avf: float
    #: registers with any live window at all.
    live_registers: tuple[str, ...]
    #: bit-count per predicted class over the text image.
    text_bits: dict[str, int]

    @property
    def text_avf(self) -> float:
        """Fraction of text bits whose flip is predicted to manifest."""
        total = sum(self.text_bits.values()) or 1
        vulnerable = self.text_bits["crash"] + self.text_bits["incorrect"]
        return vulnerable / total

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "n_insns": self.n_insns,
            "n_blocks": self.n_blocks,
            "register_avf": {
                k: round(v, 4) for k, v in self.register_avf.items()
            },
            "program_avf": round(self.program_avf, 4),
            "live_registers": list(self.live_registers),
            "text_bits": dict(self.text_bits),
            "text_avf": round(self.text_avf, 4),
        }


def analyze_cfg(cfg: ControlFlowGraph) -> AVFReport:
    live = liveness(cfg)
    reg_avf = register_avf(cfg, live)
    text_map = text_vulnerability_map(cfg)
    counts = {p.value: 0 for p in Predicted}
    for word in text_map:
        for verdict in word:
            counts[verdict.value] += 1
    live_regs = tuple(
        sorted(REG_NAMES[r] for r in live.live_registers())
    )
    return AVFReport(
        name=cfg.name,
        n_insns=len(cfg.insns),
        n_blocks=len(cfg.blocks),
        register_avf=reg_avf,
        program_avf=sum(reg_avf.values()) / len(reg_avf),
        live_registers=live_regs,
        text_bits=counts,
    )


def analyze_function(fn: AssembledFunction) -> AVFReport:
    return analyze_cfg(ControlFlowGraph.from_function(fn))


def analyze_program(prog: Program) -> dict[str, AVFReport]:
    return {
        name: analyze_function(fn) for name, fn in prog.functions.items()
    }
