"""Deliberately broken propagation models, one per SA2xx code.

Mirrors :mod:`repro.staticanalysis.mpicheck.fixture`: the audit passes
are only trustworthy if each can be made to fire on demand.  Every
builder starts from the real WaveToy coverage join and swaps in a model
with one specific defect; the triggered code is the builder's name, and
:data:`FIXTURES` maps code -> builder for the drift test that insists
every documented code has a triggering fixture.

The fixtures strip the shipped accepted risks (``accepted=()``) so the
target finding is *open* rather than suppressed; collateral findings
from the stripped exemptions are expected and harmless - the tests
assert presence of the target code, not exclusivity.
"""

from __future__ import annotations

from dataclasses import replace

from repro.staticanalysis.propagation.coverage import AppCoverage, coverage_for
from repro.staticanalysis.propagation.model import (
    AcceptedRisk,
    Corridor,
    DetectorSite,
    sym,
)


def _base() -> AppCoverage:
    return coverage_for("wavetoy")


def _with_model(**changes) -> AppCoverage:
    cov = _base()
    return replace(cov, model=replace(cov.model, accepted=(), **changes))


def coverage_gap() -> AppCoverage:
    """SA201: hot heap state reaches output with no detector (the
    shipped WaveToy gap, with its exemption stripped)."""
    return _with_model()


def wasted_detector() -> AppCoverage:
    """SA202: a nan check watching a subset of what a same-family peer
    already watches."""
    return _with_model(
        detectors=(
            DetectorSite(
                "nan_check", "field-nan",
                frozenset({"heap", sym("wt_source")}),
            ),
            DetectorSite("nan_check", "halo-nan", frozenset({"heap"})),
        )
    )


def unprotected_corridor() -> AppCoverage:
    """SA203: data-class payloads crossing ranks with no detector on
    the stream or its sources."""
    return _with_model()


def model_drift() -> AppCoverage:
    """SA204 both ways: a symbol the linker never saw, and an accepted
    risk matching no finding."""
    cov = _base()
    model = replace(
        cov.model,
        app_read_symbols=cov.model.app_read_symbols | {"wt_missing"},
        accepted=(
            AcceptedRisk("SA205", "no-such-detector", "stale exemption"),
        ),
    )
    return replace(cov, model=model)


def cold_detector() -> AppCoverage:
    """SA205: a detector tapping only state no kernel addresses."""
    return _with_model(
        detectors=(
            DetectorSite(
                "nan_check", "table-nan", frozenset({sym("wt_coeff_table")})
            ),
        )
    )


def corridor_drift() -> AppCoverage:
    """SA206: a declared corridor whose tag the dry run never sends
    (and which message_classes() does not know)."""
    cov = _base()
    model = replace(
        cov.model,
        accepted=(),
        corridors=cov.model.corridors
        + (Corridor("p2p", 999, frozenset({"heap"})),),
    )
    return replace(cov, model=model)


#: code -> builder whose audit must report that code as open.
FIXTURES = {
    "SA201": coverage_gap,
    "SA202": wasted_detector,
    "SA203": unprotected_corridor,
    "SA204": model_drift,
    "SA205": cold_detector,
    "SA206": corridor_drift,
}
