"""Flow-sensitive taint analysis: the static propagation cone of a fault.

Given an injection site - "the value this instruction just wrote into
this register is corrupt" - the analysis computes every location the
corruption can subsequently reach: registers, the flags, the x87 stack,
and memory at symbol granularity.  The cone is the static counterpart
of the dynamic propagation timeline (:mod:`repro.observability.timeline`):
the timeline records where one injected trial actually went, the cone
bounds where *any* trial at that site could go.

Soundness contract
------------------
The analysis only ever **over**-taints: joins are unions, memory taint
is never killed, unknown pointers match every tainted memory region, and
a call instruction taints the return register, the x87 stack and memory
wholesale.  The one claim downstream consumers build on is therefore the
*negative* one - a cone with no escape is **provably masked**: no
execution from that site can alter the function's observable behaviour.
Everything that inflates the cone shrinks the set of provably-masked
sites, never the reverse.

Two analyses cooperate:

* a **may-points-to** pre-pass (computed once per function, reused by
  every site query) tracks which memory region each register can
  address: a linked symbol (``sym:<name>``, from ``$sym`` relocations),
  the hardware stack (``stackmem``, seeded into ESP/EBP), or an unknown
  region (``unk``, the result of any memory load);
* the **taint fixpoint** itself, seeded mid-block at the injection site
  and run to convergence over the same worklist engine the liveness and
  reaching-definitions passes use (:func:`repro.staticanalysis.dataflow.solve`).

Escape conditions (any one makes the site not-masked):

* taint reaches any memory location (symbols, heap, stack, or the
  ``anymem`` wildcard a write through an unknown/tainted pointer
  produces) - memory outlives the cone's intraprocedural view;
* a conditional branch tests tainted flags (``branch``): past that
  point the *path* is corrupt and the cone is only a lower bound, so
  the site is a control-flow risk by definition;
* the return value (EAX), the x87 stack, or the flags are tainted when
  the function exits (``ret`` / ``x87`` / ``flags``) - the caller can
  observe them.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.cpu import semantics
from repro.cpu.assembler import AssembledFunction, assemble_function
from repro.cpu.isa import Insn, Op
from repro.cpu.registers import EAX, EBP, ESP, REG_NAMES
from repro.staticanalysis.cfg import ControlFlowGraph
from repro.staticanalysis.dataflow import solve

#: GPR count (register file masks indices with & 7).
_NREGS = 8

#: Pointer-mangling ops: the result may leave the operand's region.
_MANGLE_OPS = frozenset({Op.IMUL, Op.IDIV, Op.IREM, Op.SHL, Op.SHR, Op.NEG})

#: Pointer-preserving arithmetic (base + offset stays in the region).
_PRESERVE_OPS = frozenset({Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR})


def _is_mem_token(token: str) -> bool:
    return (
        token in ("heap", "stackmem", "anymem") or token.startswith("sym:")
    )


@dataclass(frozen=True)
class PropagationCone:
    """Everything a corrupted value can reach from one injection site."""

    function: str
    site: str
    #: Every taint token that held at any program point:
    #: ``reg:<i>``, ``flags``, ``x87``, ``sym:<name>``, ``heap``,
    #: ``stackmem``, ``anymem``, ``branch``, ``wild_read``, ``wild_store``.
    tainted: frozenset[str]
    #: Normalised escape tokens (``stackmem`` reported as ``stack``,
    #: EAX-at-exit as ``ret``).  Empty means provably masked.
    escapes: frozenset[str]

    @property
    def masked(self) -> bool:
        return not self.escapes

    @property
    def branch_tainted(self) -> bool:
        return "branch" in self.tainted

    @property
    def wild_store(self) -> bool:
        return "wild_store" in self.tainted

    @property
    def wild_read(self) -> bool:
        return "wild_read" in self.tainted

    @property
    def registers(self) -> tuple[str, ...]:
        """Names of GPRs ever tainted, in register-file order."""
        hit = {
            int(t.split(":", 1)[1])
            for t in self.tainted
            if t.startswith("reg:")
        }
        return tuple(REG_NAMES[i] for i in sorted(hit))

    @property
    def symbols(self) -> tuple[str, ...]:
        """Linked symbols whose memory the taint can reach."""
        return tuple(
            sorted(
                t.split(":", 1)[1]
                for t in self.tainted
                if t.startswith("sym:")
            )
        )

    @property
    def memory_tokens(self) -> frozenset[str]:
        """Escaped memory locations in the model grammar of
        :mod:`repro.staticanalysis.propagation.model` (``sym:<name>``,
        ``heap``, ``stack``)."""
        out: set[str] = set()
        for t in self.escapes:
            if t.startswith("sym:") or t in ("heap", "stack"):
                out.add(t)
            elif t == "anymem":  # unknown destination: could be either
                out.update(("heap", "stack"))
        return frozenset(out)


class TaintAnalysis:
    """Per-function taint queries over a shared points-to pre-pass."""

    def __init__(
        self,
        cfg: ControlFlowGraph,
        reloc_symbols: dict[int, str] | None = None,
    ) -> None:
        self.cfg = cfg
        self.reloc_symbols = dict(reloc_symbols or {})
        self._reachable = cfg.reachable()
        #: points-to state *before* each instruction: per-insn tuple of
        #: per-register frozensets of region tokens.
        self._pt_before = self._points_to()
        #: (taint, insn) -> taint' memo.  The transfer is pure given the
        #: points-to pre-pass, and per-site queries over one function
        #: revisit the same states at the same instructions constantly
        #: (every site's suffix walk converges to a handful of steady
        #: states), so sharing steps across queries turns the all-sites
        #: sweep from quadratic to near-linear on unrolled code.
        self._step_memo: dict[tuple[frozenset[str], int], frozenset[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_function(cls, fn: AssembledFunction) -> "TaintAnalysis":
        return cls(
            ControlFlowGraph.from_function(fn),
            {r.insn_index: r.symbol for r in fn.relocations},
        )

    @classmethod
    def from_source(cls, name: str, source: str) -> "TaintAnalysis":
        return cls.from_function(assemble_function(name, source))

    # ------------------------------------------------------------------
    # may-points-to pre-pass
    # ------------------------------------------------------------------
    def _pt_step(self, state: frozenset, i: int) -> frozenset:
        """One instruction of points-to transfer.  ``state`` is a
        frozenset of ``(reg, region)`` pairs."""
        insn = self.cfg.insns[i]
        op = insn.op

        def regions(r: int) -> frozenset[str]:
            return frozenset(t for rr, t in state if rr == r)

        def assign(r: int, toks: frozenset[str]) -> frozenset:
            kept = frozenset(p for p in state if p[0] != r)
            return kept | frozenset((r, t) for t in toks)

        r1, r2 = insn.r1 & 7, insn.r2 & 7
        if op is Op.MOVI:
            if i in self.cfg.relocated:
                sym = self.reloc_symbols.get(i)
                toks = frozenset({f"sym:{sym}"} if sym else {"unk"})
            else:
                toks = frozenset()  # plain constant, not an address
            return assign(r1, toks)
        if op in (Op.MOV, Op.LEA):
            return assign(r1, regions(r2))
        if op in _PRESERVE_OPS:
            return assign(r1, regions(r1) | regions(r2))
        if op is Op.ADDI:
            return state  # base + constant offset stays put
        if op in _MANGLE_OPS:
            merged = regions(r1) | regions(r2)
            return assign(r1, merged | {"unk"} if merged else frozenset())
        if op in (Op.LOAD, Op.POP):
            return assign(r1, frozenset({"unk"}))
        if op in (Op.CALL, Op.CALLR):
            return assign(EAX, frozenset({"unk"}))
        # Remaining ops write no GPR (or only move ESP, which stays
        # pointing at the stack).
        return state

    def _points_to(self) -> list[tuple[frozenset[str], ...]]:
        cfg = self.cfg
        entry = frozenset({(ESP, "stackmem"), (EBP, "stackmem")})

        def transfer(b: int, state: frozenset) -> frozenset:
            for i in cfg.blocks[b].insn_indices():
                state = self._pt_step(state, i)
            return state

        block_in, _ = solve(
            cfg, backward=False, boundary=entry, transfer=transfer
        )
        before: list[tuple[frozenset[str], ...]] = [
            tuple(frozenset() for _ in range(_NREGS))
        ] * len(cfg.insns)
        for block in cfg.blocks:
            state = block_in[block.index]
            if block.index == 0:
                state = state | entry
            for i in block.insn_indices():
                before[i] = tuple(
                    frozenset(t for rr, t in state if rr == r)
                    for r in range(_NREGS)
                )
                state = self._pt_step(state, i)
        return before

    # ------------------------------------------------------------------
    # taint fixpoint
    # ------------------------------------------------------------------
    def _mem_read_hits(
        self, base_regions: frozenset[str], taint: frozenset[str]
    ) -> tuple[bool, bool]:
        """Does a read through a pointer with ``base_regions`` observe
        any tainted memory?  Returns ``(hit, wild)`` where ``wild``
        marks a conservative match through an unknown pointer."""
        mem = frozenset(t for t in taint if _is_mem_token(t))
        if not mem:
            return False, False
        if "anymem" in mem:
            return True, False
        if not base_regions or "unk" in base_regions:
            return True, True
        return bool(base_regions & mem), False

    def _taint_step(self, taint: frozenset[str], i: int) -> frozenset[str]:
        key = (taint, i)
        out = self._step_memo.get(key)
        if out is None:
            out = self._taint_step_uncached(taint, i)
            self._step_memo[key] = out
        return out

    def _taint_step_uncached(
        self, taint: frozenset[str], i: int
    ) -> frozenset[str]:
        insn: Insn = self.cfg.insns[i]
        op = insn.op
        eff = semantics.effects(insn)
        pt = self._pt_before[i]
        new = set(taint)

        src = any(f"reg:{r}" in taint for r in eff.reads)
        if op in semantics.X87_READERS and "x87" in taint:
            src = True

        mem_src = False
        accesses = semantics.memory_accesses(insn)
        for acc in accesses:
            if acc.mode != "r":
                continue
            base_tainted = f"reg:{acc.base}" in taint
            hit, wild = self._mem_read_hits(pt[acc.base], taint)
            if base_tainted or hit:
                mem_src = True
            if wild and not base_tainted:
                new.add("wild_read")
        tainted_input = src or mem_src

        if op in semantics.COND_BRANCH_OPS and "flags" in taint:
            new.add("branch")

        for r in eff.writes:
            if tainted_input:
                new.add(f"reg:{r}")
            else:
                new.discard(f"reg:{r}")
        if op in semantics.FLAG_WRITING_OPS:
            new.discard("flags")
            if tainted_input:
                new.add("flags")
        if op in semantics.X87_WRITERS and tainted_input:
            new.add("x87")  # sticky: the x87 stack is one coarse cell

        for acc in accesses:
            if acc.mode != "w":
                continue
            base_tainted = f"reg:{acc.base}" in taint
            if base_tainted:
                # A corrupted pointer writes somewhere unpredictable.
                new.update(("anymem", "wild_store"))
            if tainted_input:
                regions = pt[acc.base]
                if regions and "unk" not in regions:
                    new.update(regions)
                else:
                    new.update(("anymem", "wild_store"))

        if op in (Op.CALL, Op.CALLR):
            if op is Op.CALLR and f"reg:{insn.r1 & 7}" in taint:
                new.update(("branch", "anymem", "wild_store"))
            if new:
                # The callee can observe and spread anything we hold.
                new.update((f"reg:{EAX}", "x87", "anymem"))
        return frozenset(new)

    def _run(
        self,
        seed_entry: frozenset[str],
        seed_site: tuple[int, int] | None,
        site_label: str,
    ) -> PropagationCone:
        cfg = self.cfg

        def transfer(b: int, taint: frozenset) -> frozenset:
            for i in cfg.blocks[b].insn_indices():
                taint = self._taint_step(taint, i)
                if seed_site is not None and i == seed_site[0]:
                    taint = taint | {f"reg:{seed_site[1]}"}
            return taint

        block_in, block_out = solve(
            cfg, backward=False, boundary=seed_entry, transfer=transfer
        )

        ever: set[str] = set()
        exit_state: set[str] = set()
        saw_exit = False
        for block in cfg.blocks:
            if block.index not in self._reachable:
                continue
            taint = block_in[block.index]
            if block.index == 0:
                taint = taint | seed_entry
            for i in block.insn_indices():
                ever |= taint
                taint = self._taint_step(taint, i)
                if seed_site is not None and i == seed_site[0]:
                    taint = taint | {f"reg:{seed_site[1]}"}
                ever |= taint
            if not block.succs:
                saw_exit = True
                exit_state |= taint
        if not saw_exit:  # infinite loop: every reachable point "exits"
            for block in cfg.blocks:
                if block.index in self._reachable:
                    exit_state |= block_out[block.index]

        escapes: set[str] = set()
        for t in ever:
            if t == "stackmem":
                escapes.add("stack")
            elif _is_mem_token(t):
                escapes.add(t)
            elif t in ("branch", "wild_store"):
                escapes.add(t)
        if "x87" in exit_state:
            escapes.add("x87")
        if "flags" in exit_state:
            escapes.add("flags")
        if f"reg:{EAX}" in exit_state:
            escapes.add("ret")
        return PropagationCone(
            function=cfg.name,
            site=site_label,
            tainted=frozenset(ever),
            escapes=frozenset(escapes),
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def cone_after(self, insn_index: int, reg: int) -> PropagationCone:
        """Cone of "``reg`` is corrupt right after instruction
        ``insn_index`` executes" - the register-injection site model."""
        if not 0 <= insn_index < len(self.cfg.insns):
            raise IndexError(f"no instruction {insn_index}")
        if not 0 <= reg < _NREGS:
            raise IndexError(f"no register {reg}")
        label = f"insn {insn_index} reg {REG_NAMES[reg]}"
        if self.cfg.block_of[insn_index] not in self._reachable:
            # The site never executes: the empty cone, by construction.
            return PropagationCone(
                function=self.cfg.name,
                site=label,
                tainted=frozenset(),
                escapes=frozenset(),
            )
        return self._run(frozenset(), (insn_index, reg), label)

    def cone_from_tokens(self, tokens: frozenset[str]) -> PropagationCone:
        """Cone of "this memory is corrupt when the function starts" -
        the data/bss-injection site model.  ``tokens`` use the model
        grammar (``sym:<name>``, ``heap``, ``stack``)."""
        seed = frozenset(
            "stackmem" if t == "stack" else t for t in tokens
        )
        for t in seed:
            if not _is_mem_token(t):
                raise ValueError(f"not a memory token: {t!r}")
        return self._run(seed, None, "entry " + ",".join(sorted(tokens)))

    def written_gprs(self, insn_index: int) -> tuple[int, ...]:
        """GPRs this instruction writes - the register sites it hosts.
        ESP/EBP are excluded: corrupting the stack or frame pointer is a
        crash-class event the AVF layer already models, not a dataflow
        cone."""
        eff = semantics.effects(self.cfg.insns[insn_index])
        return tuple(
            sorted(r for r in eff.writes if r not in (ESP, EBP))
        )


@lru_cache(maxsize=64)
def _cached_from_source(name: str, source: str) -> TaintAnalysis:
    return TaintAnalysis.from_source(name, source)


def analysis_for_source(name: str, source: str) -> TaintAnalysis:
    """Cached construction: app kernels are analysed repeatedly (CLI,
    audit, oracle) and the points-to pre-pass dominates the cost."""
    return _cached_from_source(name, source)
