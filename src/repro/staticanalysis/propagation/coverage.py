"""The coverage join: linked symbols x declared model x comm skeleton.

The taint engine (:mod:`.taint`) works per kernel; this module lifts its
tokens to app level by joining three independent sources of truth:

* the **linker inventory** - every user symbol the app links, split into
  *hot* (referenced by a kernel relocation, named as a kernel function,
  or declared read by the model) and *cold* (everything else: the
  padding text, lookup tables and staging buffers the paper's Table 1
  sections are mostly made of);
* the app's **propagation model** (:mod:`.model`) - which tokens feed
  the output files, which ride a message corridor, which detectors tap
  what;
* the **communication skeleton** (:mod:`repro.staticanalysis.mpicheck`)
  - the tags and collectives the app actually exercises, so corridor
  declarations are checked against observed traffic rather than
  trusted.

The join's product is :meth:`AppCoverage.paths_from_token`: for a taint
token, every route to app output and the detectors sitting on each
route.  The SA2xx audit passes and the per-site classifier are both thin
consumers of that one query.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.memory.symbols import Linker
from repro.staticanalysis.propagation.model import (
    Corridor,
    DetectorSite,
    PropagationModel,
)

#: nprocs used for skeleton extraction: the smallest job that exercises
#: every corridor (all shipped apps communicate at 2 ranks).
AUDIT_NPROCS = 2


@dataclass(frozen=True)
class OutputPath:
    """One route from a tainted token to the app's observable output."""

    source: str
    #: ``"direct"`` (token feeds the output files) or
    #: ``"corridor:<token>"`` (taint rides a message to a peer rank).
    route: str
    detectors: tuple[DetectorSite, ...]

    @property
    def covered(self) -> bool:
        return bool(self.detectors)

    def describe(self) -> str:
        dets = (
            "+".join(d.name for d in self.detectors)
            if self.detectors
            else "no detector"
        )
        return f"{self.source} -> {self.route} [{dets}]"


@dataclass(frozen=True)
class AppCoverage:
    app: str
    model: PropagationModel
    #: User symbols a kernel can address (relocation-referenced), the
    #: kernels themselves, and the model's declared reads.
    hot_symbols: frozenset[str]
    #: Remaining user symbols: never addressed by any kernel.
    cold_symbols: frozenset[str]
    #: All user symbols by section, for the audits.
    symbols_by_section: dict[str, frozenset[str]]
    #: Kernel (text) function names.
    kernel_names: frozenset[str]
    #: Point-to-point tags the dry run observed.
    observed_tags: frozenset[int]
    #: Whether the dry run observed any collective.
    observed_collectives: bool
    #: Tag -> payload class from ``app.message_classes()``.
    message_classes: dict[int, str]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, app) -> "AppCoverage":
        """Join the three sources for one application instance."""
        from repro.staticanalysis.mpicheck import extract_skeleton

        program = app.program()
        linker = Linker()
        program.add_to_linker(linker)
        app.add_static_objects(linker)

        by_section: dict[str, set[str]] = {"text": set(), "data": set(), "bss": set()}
        for obj in linker.objects(library="user"):
            by_section[obj.section].add(obj.name)

        kernel_names = frozenset(program.functions)
        model: PropagationModel = app.propagation_model()
        referenced = {
            r.symbol
            for fn in program.functions.values()
            for r in fn.relocations
        }
        hot = frozenset(
            (referenced | kernel_names | model.app_read_symbols)
            - model.cold_symbols
        )
        all_user = frozenset().union(*by_section.values())
        cold = all_user - hot

        skeleton = extract_skeleton(app, AUDIT_NPROCS)
        tags = frozenset(
            e.tag for e in skeleton.sends() if e.tag is not None
        )
        collectives = bool(skeleton.collectives())

        return cls(
            app=model.app,
            model=model,
            hot_symbols=hot,
            cold_symbols=cold,
            symbols_by_section={
                k: frozenset(v) for k, v in by_section.items()
            },
            kernel_names=kernel_names,
            observed_tags=tags,
            observed_collectives=collectives,
            message_classes=dict(app.message_classes()),
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_hot(self, token: str) -> bool:
        if token in ("heap", "stack"):
            return True  # dynamically allocated state is always in play
        if token.startswith("sym:"):
            return token.split(":", 1)[1] in self.hot_symbols
        return token.startswith("tag:") or token == "collective"

    def corridor_detectors(self, corridor: Corridor) -> tuple[DetectorSite, ...]:
        """Detectors guarding a corridor: those tapping the corridor's
        own token plus those tapping any of its payload sources (a seal
        computed over the staged bytes guards the message too)."""
        dets = list(self.model.detectors_tapping(corridor.token))
        for src in sorted(corridor.sources):
            for d in self.model.detectors_tapping(src):
                if d not in dets:
                    dets.append(d)
        return tuple(dets)

    def paths_from_token(self, token: str) -> tuple[OutputPath, ...]:
        """Every route from a tainted ``token`` to observable output."""
        paths: list[OutputPath] = []
        if token in self.model.output_sources:
            paths.append(
                OutputPath(token, "direct", self.model.detectors_tapping(token))
            )
        for corridor in self.model.corridors:
            if token in corridor.sources:
                paths.append(
                    OutputPath(
                        token,
                        f"corridor:{corridor.token}",
                        self.corridor_detectors(corridor),
                    )
                )
        return tuple(paths)

    def paths_from_tokens(self, tokens) -> tuple[OutputPath, ...]:
        out: list[OutputPath] = []
        for token in sorted(tokens):
            out.extend(self.paths_from_token(token))
        return tuple(out)


@lru_cache(maxsize=16)
def _cached_coverage(app_name: str, params_key: tuple) -> AppCoverage:
    from repro.apps import APPLICATION_SUITE

    app = APPLICATION_SUITE[app_name](**dict(params_key))
    return AppCoverage.build(app)


def coverage_for(app_name: str, app_params: dict | None = None) -> AppCoverage:
    """Cached app-level coverage (the skeleton dry run dominates)."""
    params_key = tuple(sorted((app_params or {}).items()))
    return _cached_coverage(app_name, params_key)
