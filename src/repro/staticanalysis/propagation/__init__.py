"""Static fault-propagation analysis.

Layered bottom-up:

* :mod:`.taint` - flow-sensitive per-kernel taint cones over the CFG /
  dataflow layer (which registers, flags, and memory regions a corrupted
  value can reach);
* :mod:`.model` - the per-app declarative propagation model (output
  sources, message corridors, deployed detectors, accepted risks);
* :mod:`.coverage` - the app-level join of linker inventory, model, and
  communication skeleton;
* :mod:`.sites` - per-injection-site classification into
  provably-masked / detector-covered / sdc-risk / control-flow-risk;
* :mod:`.passes` - the SA2xx detector-coverage audit;
* :mod:`.pruning` - the masking oracle behind
  ``campaign run --prune-masked``;
* :mod:`.validation` - static predictions vs dynamic campaign outcomes;
* :mod:`.fixtures` - deliberately broken models for the audit tests.
"""

from repro.staticanalysis.propagation.coverage import (
    AppCoverage,
    OutputPath,
    coverage_for,
)
from repro.staticanalysis.propagation.model import (
    AcceptedRisk,
    Corridor,
    DetectorSite,
    PropagationModel,
    sym,
)
from repro.staticanalysis.propagation.passes import (
    PROPAGATION_LINT_CODES,
    audit_app,
)
from repro.staticanalysis.propagation.pruning import (
    FP_BOOKKEEPING,
    MaskingOracle,
    PruneVerdict,
)
from repro.staticanalysis.propagation.sites import (
    RegisterSite,
    SiteClass,
    class_counts,
    classify_cone,
    kernel_sites,
)
from repro.staticanalysis.propagation.taint import (
    PropagationCone,
    TaintAnalysis,
)

__all__ = [
    "AcceptedRisk",
    "AppCoverage",
    "Corridor",
    "DetectorSite",
    "FP_BOOKKEEPING",
    "MaskingOracle",
    "OutputPath",
    "PROPAGATION_LINT_CODES",
    "PropagationCone",
    "PropagationModel",
    "PruneVerdict",
    "RegisterSite",
    "SiteClass",
    "TaintAnalysis",
    "audit_app",
    "class_counts",
    "classify_cone",
    "coverage_for",
    "kernel_sites",
    "sym",
]
