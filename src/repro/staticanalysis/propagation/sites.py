"""Per-injection-site classification from cone + coverage.

Every (instruction, written GPR) pair in a kernel is one register
injection site; its taint cone (:mod:`.taint`) plus the app's coverage
join (:mod:`.coverage`) yields one of four classes:

``provably-masked``
    the cone never escapes the function, or escapes only into state
    with no route to the app's output - no trial at this site can
    change the observable result;
``control-flow-risk``
    a conditional branch tests tainted flags (or a corrupted pointer is
    stored through): past that point the static cone is only a lower
    bound, so the site can crash or silently detour - the paper's
    dominant text-segment failure mode;
``detector-covered``
    every route from the escaped state to the output crosses at least
    one deployed detector;
``sdc-risk``
    some escape route reaches the output with no detector on it - the
    silent-data-corruption exposure the audit passes report as SA201.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from enum import Enum

from repro.cpu.registers import REG_NAMES
from repro.staticanalysis.propagation.coverage import AppCoverage
from repro.staticanalysis.propagation.taint import (
    PropagationCone,
    TaintAnalysis,
)


class SiteClass(str, Enum):
    PROVABLY_MASKED = "provably-masked"
    DETECTOR_COVERED = "detector-covered"
    SDC_RISK = "sdc-risk"
    CONTROL_FLOW_RISK = "control-flow-risk"


@dataclass(frozen=True)
class RegisterSite:
    """One classified register injection site."""

    function: str
    insn_index: int
    reg: int
    cone: PropagationCone
    site_class: SiteClass

    @property
    def reg_name(self) -> str:
        return REG_NAMES[self.reg]


def classify_cone(cone: PropagationCone, coverage: AppCoverage) -> SiteClass:
    """Map one cone to its site class under one app's coverage."""
    if cone.masked:
        return SiteClass.PROVABLY_MASKED
    if cone.branch_tainted or cone.wild_store:
        # A corrupt path or a corrupt pointer: outcome is no longer a
        # dataflow question.
        return SiteClass.CONTROL_FLOW_RISK
    caller_visible = bool(
        cone.escapes & frozenset({"ret", "x87", "flags"})
    )
    paths = coverage.paths_from_tokens(cone.memory_tokens)
    if not paths and not caller_visible:
        # Escapes, but only into state nothing downstream reads.
        return SiteClass.PROVABLY_MASKED
    if caller_visible:
        # The caller takes the corrupt value somewhere the kernel-level
        # cone cannot see; without a detector on the return path this
        # is an SDC exposure.
        return SiteClass.SDC_RISK
    if all(p.covered for p in paths):
        return SiteClass.DETECTOR_COVERED
    return SiteClass.SDC_RISK


def kernel_sites(
    analysis: TaintAnalysis, coverage: AppCoverage
) -> list[RegisterSite]:
    """Classify every register site of one kernel, in site order."""
    out: list[RegisterSite] = []
    for i in range(len(analysis.cfg.insns)):
        for reg in analysis.written_gprs(i):
            cone = analysis.cone_after(i, reg)
            out.append(
                RegisterSite(
                    function=analysis.cfg.name,
                    insn_index=i,
                    reg=reg,
                    cone=cone,
                    site_class=classify_cone(cone, coverage),
                )
            )
    return out


def class_counts(sites: list[RegisterSite]) -> dict[str, int]:
    """Site-class histogram, all four classes always present."""
    counts = Counter(s.site_class.value for s in sites)
    return {cls.value: counts.get(cls.value, 0) for cls in SiteClass}
