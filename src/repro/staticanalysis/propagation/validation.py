"""Validate static propagation predictions against dynamic outcomes.

Two claims make the analyzer trustworthy, and both are checked against
real campaign runs rather than asserted:

* **masked precision** - of the faults the masking oracle calls
  provably masked, the fraction whose dynamic outcome is CORRECT.  The
  oracle's whole contract is soundness, so the bar is high
  (:data:`MASKED_PRECISION_FLOOR`, 0.95 per app; in practice the
  observed precision is 1.0 - a single counterexample means a proof
  rule is wrong, not that a heuristic misfired);
* **risk ordering** - across (app, region) cells, the statically
  predicted exposure (the unprunable fraction of sampled faults) should
  rank the observed error rates: Spearman rho >=
  :data:`RANK_CORRELATION_FLOOR` (0.6).  The analyzer does not predict
  absolute rates - dynamic masking on top of static liveness sees to
  that - but a predictor that cannot even order the cells is not
  measuring exposure.

The module reuses :func:`repro.staticanalysis.validation.spearman`, the
same tie-averaged rank correlation the AVF layer is validated with.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.injection.faults import Region
from repro.staticanalysis.validation import spearman

#: Minimum per-app P(CORRECT | predicted masked).
MASKED_PRECISION_FLOOR = 0.95
#: Minimum Spearman rho between predicted exposure and observed error
#: rate over the (app, region) cells.
RANK_CORRELATION_FLOOR = 0.6

#: The cells the rank correlation is scored over.  The static regions
#: (text/data/bss/fp) are where the oracle has proof rules; the two
#: dynamic regions (registers, messages) anchor the top of the exposure
#: ranking - the oracle declares them fully exposed (see :mod:`.pruning`)
#: and their observed error rates are the suite's highest, so a
#: predictor that cannot place the static regions *below* them fails
#: the ordering test.
VALIDATION_REGIONS = (
    Region.TEXT,
    Region.DATA,
    Region.BSS,
    Region.FP_REG,
    Region.REGULAR_REG,
    Region.MESSAGE,
)


@dataclass(frozen=True)
class CellOutcome:
    """One (app, region) validation cell."""

    app: str
    region: Region
    trials: int
    errors: int
    #: Trials the oracle declared provably masked.
    predicted_masked: int
    #: ... of which the dynamic run confirmed CORRECT.
    masked_correct: int

    @property
    def predicted_exposure(self) -> float:
        """Statically unprunable fraction: the analyzer's risk score."""
        return 1.0 - self.predicted_masked / self.trials if self.trials else 0.0

    @property
    def observed_error_rate(self) -> float:
        return self.errors / self.trials if self.trials else 0.0


@dataclass(frozen=True)
class ValidationReport:
    cells: tuple[CellOutcome, ...]

    def app_precision(self, app: str) -> float:
        """P(CORRECT | predicted masked) over one app's cells; 1.0 when
        nothing was predicted masked (vacuous truth, and the pruning
        benefit is then zero anyway)."""
        masked = sum(c.predicted_masked for c in self.cells if c.app == app)
        correct = sum(c.masked_correct for c in self.cells if c.app == app)
        return correct / masked if masked else 1.0

    @property
    def apps(self) -> tuple[str, ...]:
        seen: list[str] = []
        for c in self.cells:
            if c.app not in seen:
                seen.append(c.app)
        return tuple(seen)

    @property
    def rank_correlation(self) -> float:
        """Spearman rho of predicted exposure vs observed error rate
        over every cell."""
        return spearman(
            [c.predicted_exposure for c in self.cells],
            [c.observed_error_rate for c in self.cells],
        )

    @property
    def passed(self) -> bool:
        return (
            all(
                self.app_precision(a) >= MASKED_PRECISION_FLOOR
                for a in self.apps
            )
            and self.rank_correlation >= RANK_CORRELATION_FLOOR
        )

    def render(self) -> str:
        lines = [
            f"{'app':<10} {'region':<8} {'trials':>6} {'errors':>6} "
            f"{'masked':>6} {'exposure':>8} {'err rate':>8}"
        ]
        for c in self.cells:
            lines.append(
                f"{c.app:<10} {c.region.value:<8} {c.trials:>6} "
                f"{c.errors:>6} {c.predicted_masked:>6} "
                f"{c.predicted_exposure:>8.2f} {c.observed_error_rate:>8.2f}"
            )
        for app in self.apps:
            lines.append(
                f"masked precision [{app}]: {self.app_precision(app):.3f} "
                f"(floor {MASKED_PRECISION_FLOOR})"
            )
        lines.append(
            f"rank correlation: {self.rank_correlation:.3f} "
            f"(floor {RANK_CORRELATION_FLOOR})"
        )
        lines.append("PASS" if self.passed else "FAIL")
        return "\n".join(lines)


def validate_app(
    app_name: str,
    n: int = 40,
    *,
    nprocs: int = 2,
    seed: int = 20040607,
    regions=VALIDATION_REGIONS,
) -> tuple[CellOutcome, ...]:
    """Run one app's validation cells: sample ``n`` faults per region,
    execute every one (no pruning), and score the oracle's verdicts
    against the observed manifestations."""
    from repro.engine.trial import Manifestation
    from repro.injection.campaign import Campaign

    campaign = Campaign.from_registry(app_name, nprocs=nprocs, seed=seed)
    oracle = campaign.masking_oracle()
    cells = []
    with campaign.engine() as eng:
        for region in regions:
            specs = [eng.make_spec(region, i) for i in range(n)]
            verdicts = [oracle.verdict(s.fault) for s in specs]
            results = {r.index: r for r in eng.run_trials(specs)}
            errors = sum(
                1
                for r in results.values()
                if r.manifestation is not Manifestation.CORRECT
            )
            masked_idx = [
                s.index for s, v in zip(specs, verdicts) if v.masked
            ]
            masked_correct = sum(
                1
                for i in masked_idx
                if results[i].manifestation is Manifestation.CORRECT
            )
            cells.append(
                CellOutcome(
                    app=app_name,
                    region=region,
                    trials=len(specs),
                    errors=errors,
                    predicted_masked=len(masked_idx),
                    masked_correct=masked_correct,
                )
            )
    return tuple(cells)


def validate_suite(
    apps=("wavetoy", "moldyn", "climate"),
    n: int = 40,
    *,
    nprocs: int = 2,
    seed: int = 20040607,
) -> ValidationReport:
    """The full static-vs-dynamic validation over the paper's suite."""
    cells: list[CellOutcome] = []
    for app in apps:
        cells.extend(validate_app(app, n, nprocs=nprocs, seed=seed))
    return ValidationReport(cells=tuple(cells))
