"""The masking oracle: which planned faults are provably outcome-free.

``campaign run --prune-masked`` asks, for every sampled
:class:`~repro.injection.faults.FaultSpec`, whether static analysis can
*prove* the flip cannot change the job's outcome.  Provable sites are
tallied as masked without execution; everything else runs normally.

The oracle only prunes what it can argue from first principles - every
verdict names its reason, and each reason rests on a different static
fact:

``cold-text``
    the flipped byte lies in a text object that is not an assembled
    kernel (the apps' padding blobs: cold library routines that are
    never called, verified against the program's function inventory);
``benign-text-bit``
    the byte lies inside a kernel, but the AVF bit classifier
    (:func:`repro.staticanalysis.avf.classify_bit`) proves the bit is
    architecturally dead: an unused operand nibble, the register-alias
    bit the register file masks off, a dead immediate, a shift-count
    bit above the 5 the shifter consumes;
``cold-symbol``
    a data/BSS byte in a symbol no kernel relocation references, the
    model does not declare read, and that is not itself a kernel -
    nothing ever loads it (the paper's Table 1 cold majority);
``fp-bookkeeping``
    an FP_REG fault targeting fip/fcs/foo/fos - the x87 exception
    bookkeeping words the FPU records but this pipeline never reads
    back.

Deliberately **not** prunable: HEAP and STACK faults (addresses resolve
at fire time against live allocation state), REGULAR_REG faults (the
register's deadness depends on the injection *moment* - that is the AVF
layer's probabilistic story, not a proof), MESSAGE faults, and the
cwd/swd/twd FP controls the execution path does consume.

Tally correction: a pruned site is recorded as a delivered trial with
manifestation CORRECT.  Because sampling is uniform over each region's
byte space and the pruned stratum has a *known* error rate of zero,
crediting its samples as correct is exactly the stratified estimator
with a zero-variance stratum - equivalently, importance weighting where
the executed stratum keeps its original sampling weight.  Region rates
are therefore unbiased with respect to the unpruned campaign; only the
executed-trial count shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.isa import INSN_SIZE, decode
from repro.injection.faults import FaultSpec, Region
from repro.memory.symbols import SymbolTable
from repro.staticanalysis.avf import Predicted, classify_bit
from repro.staticanalysis.propagation.model import PropagationModel

#: x87 bookkeeping words: written by the FPU on every operation, read
#: back by nothing in this pipeline (fsave/frstor excepted, which
#: round-trips them unchanged).
FP_BOOKKEEPING = frozenset({"fip", "fcs", "foo", "fos"})


@dataclass(frozen=True)
class PruneVerdict:
    masked: bool
    reason: str


_RUN = PruneVerdict(False, "dynamic-target")


class MaskingOracle:
    """Per-spec masked/run verdicts for one linked application."""

    def __init__(
        self,
        program,
        symtab: SymbolTable,
        model: PropagationModel,
    ) -> None:
        self.program = program
        self.symtab = symtab
        self.model = model
        #: Function name -> (decoded insns, relocated indices).
        self._functions = {
            name: (
                [
                    decode(fn.code[o : o + INSN_SIZE])
                    for o in range(0, len(fn.code), INSN_SIZE)
                ],
                frozenset(r.insn_index for r in fn.relocations),
            )
            for name, fn in program.functions.items()
        }
        referenced = {
            r.symbol
            for fn in program.functions.values()
            for r in fn.relocations
        }
        #: Symbols some kernel can actually address.
        self._hot_symbols = frozenset(
            referenced
            | set(program.functions)
            | set(model.app_read_symbols)
        ) - model.cold_symbols

    @classmethod
    def from_campaign(cls, campaign) -> "MaskingOracle":
        """Build from a campaign's reference profile (the same linked
        image the fault dictionary was built from)."""
        app = campaign.app_factory()
        return cls(
            program=app.program(),
            symtab=campaign.reference().symtab,
            model=app.propagation_model(),
        )

    # ------------------------------------------------------------------
    def verdict(self, spec: FaultSpec) -> PruneVerdict:
        if spec.region is Region.TEXT:
            return self._text_verdict(spec)
        if spec.region in (Region.DATA, Region.BSS):
            return self._static_data_verdict(spec)
        if spec.region is Region.FP_REG:
            if spec.fp_target in FP_BOOKKEEPING:
                return PruneVerdict(True, "fp-bookkeeping")
            return _RUN
        return _RUN

    def _text_verdict(self, spec: FaultSpec) -> PruneVerdict:
        sym = self.symtab.resolve(spec.address)
        if sym is None or sym.library != "user":
            return _RUN
        if sym.name not in self._functions:
            # A user text object that is not an assembled kernel: the
            # apps' never-executed padding blobs.
            return PruneVerdict(True, "cold-text")
        insns, relocated = self._functions[sym.name]
        offset = spec.address - sym.addr
        word, byte = divmod(offset, INSN_SIZE)
        if word >= len(insns):  # trailing padding inside the object
            return PruneVerdict(True, "cold-text")
        predicted = classify_bit(
            insns[word],
            word,
            len(insns),
            byte * 8 + spec.bit,
            relocated=word in relocated,
        )
        if predicted is Predicted.BENIGN:
            return PruneVerdict(True, "benign-text-bit")
        return _RUN

    def _static_data_verdict(self, spec: FaultSpec) -> PruneVerdict:
        sym = self.symtab.resolve(spec.address)
        if sym is None or sym.library != "user":
            return _RUN
        if sym.name not in self._hot_symbols:
            return PruneVerdict(True, "cold-symbol")
        return _RUN
