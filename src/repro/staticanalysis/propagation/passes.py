"""SA2xx audit passes: detector coverage over the propagation join.

Each pass emits :class:`~repro.staticanalysis.lint.Diagnostic` entries
in the ``SA2xx`` family (``SA0xx`` are the per-kernel assembly lints,
``SA1xx`` the MPI communication checks):

======  ==============================================================
code    meaning
======  ==============================================================
SA201   detector-coverage gap: a hot token reaches the app's output
        along at least one path crossing no detector
SA202   wasted detector: another detector of the same family already
        observes everything this one taps
SA203   unprotected corridor: a data-class message payload crosses
        ranks with no detector on the stream or its sources
SA204   model drift: the model names a symbol the linker never saw,
        or carries an accepted risk matching no actual finding
SA205   cold detector: a detector taps only state no kernel ever
        addresses (it can never fire on a propagating fault)
SA206   corridor drift: a declared corridor's traffic was never
        observed, or observed traffic has no declared corridor
======  ==============================================================

``function`` carries an ``app:token`` label and ``insn_index`` is 0,
so the shared ``(function, position, code, message)`` report order
applies unchanged.

**Accepted risks** (:class:`~.model.AcceptedRisk`) suppress matching
findings the way the SA001 POP exemption suppresses dead-write noise:
the gap stays real and documented in the model, but the audit gate
stays green.  A suppression that matches nothing is itself reported
(SA204): exemptions cannot outlive the findings they excuse.
"""

from __future__ import annotations

from repro.staticanalysis.lint import Diagnostic, sort_diagnostics
from repro.staticanalysis.propagation.coverage import AppCoverage
from repro.staticanalysis.propagation.model import PropagationModel

#: Stable diagnostic codes of the propagation audit passes.
PROPAGATION_LINT_CODES = {
    "SA201": "detector-coverage gap on an output-reaching path",
    "SA202": "detector wasted: dominated by a same-family detector",
    "SA203": "unprotected cross-rank data payload corridor",
    "SA204": "propagation model drift (unknown symbol or stale exemption)",
    "SA205": "detector observes only cold state",
    "SA206": "corridor drift between model and observed traffic",
}


def _diag(app: str, code: str, token: str, message: str) -> Diagnostic:
    return Diagnostic(code, f"{app}:{token}", 0, message)


def _hot_tokens(coverage: AppCoverage) -> list[str]:
    """Tokens worth auditing for output exposure: the always-live
    dynamic regions plus every hot symbol."""
    return ["heap", "stack"] + sorted(
        f"sym:{s}" for s in coverage.hot_symbols
        if s not in coverage.kernel_names  # text bytes are AVF's domain
    )


# ----------------------------------------------------------------------
# SA201 - detector-coverage gaps
# ----------------------------------------------------------------------
def _check_coverage_gaps(coverage: AppCoverage) -> list[Diagnostic]:
    diags = []
    for token in _hot_tokens(coverage):
        for path in coverage.paths_from_token(token):
            if not path.covered:
                diags.append(
                    _diag(
                        coverage.app,
                        "SA201",
                        token,
                        f"live state reaches output with no detector "
                        f"({path.describe()})",
                    )
                )
    return diags


# ----------------------------------------------------------------------
# SA202 - wasted detectors
# ----------------------------------------------------------------------
def _check_wasted_detectors(model: PropagationModel) -> list[Diagnostic]:
    diags = []
    for d in model.detectors:
        for other in model.detectors:
            if other is d or other.family != d.family:
                continue
            dominated = d.taps < other.taps or (
                d.taps == other.taps and other.name < d.name
            )
            if dominated:
                diags.append(
                    _diag(
                        model.app,
                        "SA202",
                        d.name,
                        f"{d.family} detector {d.name!r} observes a subset "
                        f"of what {other.name!r} already observes",
                    )
                )
                break
    return diags


# ----------------------------------------------------------------------
# SA203 - unprotected corridors
# ----------------------------------------------------------------------
def _check_corridors(coverage: AppCoverage) -> list[Diagnostic]:
    diags = []
    for corridor in coverage.model.corridors:
        if corridor.tag is not None:
            payload_class = coverage.message_classes.get(corridor.tag, "data")
            if payload_class != "data":
                continue  # control/checksummed traffic is not SDC surface
        if not corridor.sources:
            continue
        if not coverage.corridor_detectors(corridor):
            diags.append(
                _diag(
                    coverage.app,
                    "SA203",
                    corridor.token,
                    f"{corridor.kind} payload from "
                    f"{', '.join(sorted(corridor.sources))} crosses ranks "
                    f"unprotected",
                )
            )
    return diags


# ----------------------------------------------------------------------
# SA204 - model drift (unknown symbols; stale exemptions are appended
# after suppression in audit_app)
# ----------------------------------------------------------------------
def _model_sym_tokens(model: PropagationModel):
    out = set(model.output_sources)
    for s in model.app_read_symbols:
        out.add(f"sym:{s}")
    for c in model.corridors:
        out |= set(c.sources)
    for d in model.detectors:
        out |= set(d.taps)
    return out


def _check_model_symbols(coverage: AppCoverage) -> list[Diagnostic]:
    known = frozenset().union(*coverage.symbols_by_section.values())
    diags = []
    for token in sorted(_model_sym_tokens(coverage.model)):
        if token.startswith("sym:") and token.split(":", 1)[1] not in known:
            diags.append(
                _diag(
                    coverage.app,
                    "SA204",
                    token,
                    f"model references {token.split(':', 1)[1]!r} but the "
                    f"linker defines no such user symbol",
                )
            )
    return diags


# ----------------------------------------------------------------------
# SA205 - detectors watching only cold state
# ----------------------------------------------------------------------
def _check_cold_detectors(coverage: AppCoverage) -> list[Diagnostic]:
    diags = []
    for d in coverage.model.detectors:
        if not d.taps:
            continue
        if not any(coverage.is_hot(t) for t in sorted(d.taps)):
            diags.append(
                _diag(
                    coverage.app,
                    "SA205",
                    d.name,
                    f"{d.family} detector {d.name!r} taps only state no "
                    f"kernel addresses ({', '.join(sorted(d.taps))})",
                )
            )
    return diags


# ----------------------------------------------------------------------
# SA206 - corridor drift
# ----------------------------------------------------------------------
def _check_corridor_drift(coverage: AppCoverage) -> list[Diagnostic]:
    diags = []
    declared_tags = {
        c.tag for c in coverage.model.corridors if c.tag is not None
    }
    declares_collective = any(
        c.tag is None for c in coverage.model.corridors
    )
    for tag in sorted(declared_tags - coverage.observed_tags):
        diags.append(
            _diag(
                coverage.app,
                "SA206",
                f"tag:{tag}",
                f"model declares corridor tag {tag} but the dry run never "
                f"sends it",
            )
        )
    for tag in sorted(coverage.observed_tags - declared_tags):
        diags.append(
            _diag(
                coverage.app,
                "SA206",
                f"tag:{tag}",
                f"ranks exchange tag {tag} but the model declares no "
                f"corridor for it",
            )
        )
    for tag in sorted(declared_tags - set(coverage.message_classes)):
        diags.append(
            _diag(
                coverage.app,
                "SA206",
                f"tag:{tag}",
                f"corridor tag {tag} has no message_classes() entry",
            )
        )
    if declares_collective and not coverage.observed_collectives:
        diags.append(
            _diag(
                coverage.app,
                "SA206",
                "collective",
                "model declares a collective corridor but the dry run "
                "executes no collective",
            )
        )
    if coverage.observed_collectives and not declares_collective:
        diags.append(
            _diag(
                coverage.app,
                "SA206",
                "collective",
                "ranks execute collectives but the model declares no "
                "collective corridor",
            )
        )
    return diags


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def audit_app(coverage: AppCoverage) -> tuple[list[Diagnostic], list[Diagnostic]]:
    """Run every SA2xx pass; returns ``(open_findings, suppressed)``.

    ``open_findings`` is what the CI gate fails on; ``suppressed`` are
    the findings covered by the model's accepted risks, kept visible so
    reports can show what is being lived with.  A stale accepted risk
    becomes an SA204 in ``open_findings``.
    """
    model = coverage.model
    raw: list[Diagnostic] = []
    raw += _check_coverage_gaps(coverage)
    raw += _check_wasted_detectors(model)
    raw += _check_corridors(coverage)
    raw += _check_model_symbols(coverage)
    raw += _check_cold_detectors(coverage)
    raw += _check_corridor_drift(coverage)

    open_findings: list[Diagnostic] = []
    suppressed: list[Diagnostic] = []
    matched: set[tuple[str, str]] = set()
    for diag in raw:
        token = diag.function.split(":", 1)[1]
        if model.accepts(diag.code, token):
            matched.add((diag.code, token))
            suppressed.append(diag)
        else:
            open_findings.append(diag)
    for risk in model.accepted:
        if (risk.code, risk.token) not in matched:
            open_findings.append(
                _diag(
                    model.app,
                    "SA204",
                    risk.token,
                    f"accepted risk {risk.code} on {risk.token!r} matches "
                    f"no finding: the exemption is stale",
                )
            )
    return sort_diagnostics(open_findings), sort_diagnostics(suppressed)
