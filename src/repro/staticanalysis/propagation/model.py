"""Declarative propagation models: what an app's data can reach.

The taint analysis (:mod:`.taint`) answers *"which locations can a
corrupted value touch"* purely from the assembly; whether a touched
location matters - whether it feeds the app's output files, crosses a
rank boundary in an MPI payload, or passes under a detector on the way -
is application knowledge the assembly does not carry.  Each shipped app
declares that knowledge here as a small :class:`PropagationModel`, the
same way it already declares ``message_classes()`` for the vulnerability
map.

Locations are named by **tokens**, a tiny grammar shared across the
package:

``sym:<name>``
    a linked data/bss symbol (``sym:cam_T``);
``heap``
    any heap allocation (field arrays, gather staging, MPI scratch);
``stack``
    the hardware stack frame;
``tag:<n>``
    the payload of the point-to-point message class with tag ``n`` - a
    *corridor* token, used to hang detectors on a message stream rather
    than on the memory it was staged from.

Keeping the model declarative keeps the audit honest: the SA2xx passes
(:mod:`.passes`) cross-check every token against the linked image and
the extracted communication skeleton, so a model that names a symbol
the linker never saw or a tag no rank ever sends is itself a finding
(SA204/SA206), not silently trusted.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DetectorSite:
    """One deployed detector and the state it actually observes.

    ``family`` names the :mod:`repro.detectors` mechanism (``checksum``,
    ``nan_check``, ``assertion``, ``abft``, ``cfc``); ``taps`` is the
    set of tokens whose corruption the detector can notice.  A NaN check
    over ``cam_diag_out`` taps ``sym:cam_diag_out``; a Fletcher seal on
    the tag-201 coordinate exchange taps ``tag:201``.
    """

    family: str
    name: str
    taps: frozenset[str]


@dataclass(frozen=True)
class Corridor:
    """One cross-rank flow: a message class and the state feeding it.

    ``sources`` are the tokens whose bytes are staged into the payload;
    taint in any source can ride the corridor to the peer rank.  ``tag``
    is ``None`` for collectives (reductions/gathers have no p2p tag).
    """

    kind: str  # "p2p" or "collective"
    tag: int | None
    sources: frozenset[str]

    @property
    def token(self) -> str:
        return f"tag:{self.tag}" if self.tag is not None else "collective"


@dataclass(frozen=True)
class AcceptedRisk:
    """An audit finding the app owns on purpose.

    Mirrors the SA001 POP exemption style: the gap is real, documented,
    and deliberately shipped (the paper's WaveToy has no detectors at
    all).  ``code`` and ``token`` must match an actual finding - a
    stale exemption is itself reported (SA204) so accepted risks cannot
    silently outlive the gaps they excuse.
    """

    code: str
    token: str
    why: str


@dataclass(frozen=True)
class PropagationModel:
    """Everything the audit needs to know about one app's data flow."""

    app: str
    #: Tokens whose contents reach the app's output files.
    output_sources: frozenset[str]
    #: Hot symbols the kernels read every iteration (constants, fields).
    app_read_symbols: frozenset[str]
    corridors: tuple[Corridor, ...] = ()
    detectors: tuple[DetectorSite, ...] = ()
    accepted: tuple[AcceptedRisk, ...] = ()
    #: Extra declared-cold symbols (beyond the unreferenced ones the
    #: coverage join discovers on its own).
    cold_symbols: frozenset[str] = field(default_factory=frozenset)

    def detectors_tapping(self, token: str) -> tuple[DetectorSite, ...]:
        return tuple(d for d in self.detectors if token in d.taps)

    def accepts(self, code: str, token: str) -> bool:
        return any(a.code == code and a.token == token for a in self.accepted)


def sym(name: str) -> str:
    """Token for a linked data/bss symbol."""
    return f"sym:{name}"
