"""Cross-validation of static AVF predictions against dynamic injection.

The whole point of the static pass is to predict what a register
injection campaign would measure without running one; this module runs
both and reports the agreement:

* **per-register rank correlation** - for each ablation kernel
  (:mod:`repro.analysis.liveness`'s optimized / unoptimized pair) and
  each GPR, the static AVF score is paired with the dynamically measured
  flip error rate (the same uniform time x bit sampling the campaigns
  use, driven through ``VM.schedule_hook`` exactly like
  ``register_sensitivity``), and Spearman's rho is computed over all
  (kernel, register) points;
* **live-register count agreement** - the static analysis must reproduce
  the Springer-style section-6.1.1 ablation result: the optimized kernel
  keeps more registers live than the spill-everything variant.

The dynamic side deliberately mirrors the existing ablation rather than
a full MPI campaign: the ablation kernel is the one program for which
the repo already has a trusted dynamic ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.liveness import (
    _EXPECTED,
    OPTIMIZED_SOURCE,
    UNOPTIMIZED_SOURCE,
    _build,
)
from repro.cpu.assembler import assemble_function
from repro.cpu.registers import REG_NAMES
from repro.errors import SimulationError
from repro.staticanalysis.avf import register_avf
from repro.staticanalysis.cfg import ControlFlowGraph
from repro.staticanalysis.dataflow import liveness


def spearman(xs, ys) -> float:
    """Spearman rank correlation with average ranks for ties."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two equal-length samples of size >= 2")

    def ranks(v: np.ndarray) -> np.ndarray:
        order = np.argsort(v, kind="stable")
        r = np.empty(len(v), dtype=float)
        i = 0
        while i < len(v):
            j = i
            while j + 1 < len(v) and v[order[j + 1]] == v[order[i]]:
                j += 1
            r[order[i : j + 1]] = (i + j) / 2.0 + 1.0
            i = j + 1
        return r

    rx, ry = ranks(xs), ranks(ys)
    sx, sy = rx.std(), ry.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0  # a constant ranking carries no ordering information
    return float(np.mean((rx - rx.mean()) * (ry - ry.mean())) / (sx * sy))


# ----------------------------------------------------------------------
# the two sides of the comparison
# ----------------------------------------------------------------------
def static_register_scores(source: str) -> dict[str, float]:
    """Loop-weighted static AVF per register for one kernel source."""
    cfg = ControlFlowGraph.from_function(assemble_function("kernel", source))
    return register_avf(cfg)


def static_live_register_count(source: str) -> int:
    """Number of registers with any live window (the static counterpart
    of the ablation's registers-used count)."""
    cfg = ControlFlowGraph.from_function(assemble_function("kernel", source))
    return len(liveness(cfg).live_registers())


def dynamic_register_sensitivity(
    source: str, reg: int, trials: int, rng: np.random.Generator
) -> float:
    """Measured fraction of single bit flips of ``reg`` (uniform over
    time and bit position) that change the kernel's outcome."""
    image, vm, _ = _build(source)
    reference = vm.call("kernel")
    total_blocks = image.clock.blocks
    if reference != _EXPECTED:  # pragma: no cover - kernel is test-pinned
        raise AssertionError("ablation kernel broken")
    errors = 0
    for _ in range(trials):
        _, vm, _ = _build(source)
        vm.block_limit = total_blocks * 4 + 64
        bit = int(rng.integers(32))
        at = int(rng.integers(1, total_blocks + 1))
        vm.schedule_hook(at, lambda v, r=reg, b=bit: v.regs.flip_bit(r, b))
        try:
            result = vm.call("kernel")
        except SimulationError:
            errors += 1
            continue
        if result != _EXPECTED:
            errors += 1
    return errors / trials


# ----------------------------------------------------------------------
# the report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ValidationReport:
    #: (kernel, register) -> static AVF prediction.
    static_scores: dict[tuple[str, str], float]
    #: (kernel, register) -> dynamic flip error rate.
    dynamic_rates: dict[tuple[str, str], float]
    rank_correlation: float
    static_live_optimized: int
    static_live_unoptimized: int
    text: str

    @property
    def liveness_agrees(self) -> bool:
        """The section-6.1.1 ablation direction, reproduced statically."""
        return self.static_live_optimized > self.static_live_unoptimized


def validate(trials: int = 60, seed: int = 17) -> ValidationReport:
    """Run both sides over the ablation kernel pair and correlate."""
    rng = np.random.default_rng(seed)
    kernels = {
        "optimized": OPTIMIZED_SOURCE,
        "unoptimized": UNOPTIMIZED_SOURCE,
    }
    static: dict[tuple[str, str], float] = {}
    dynamic: dict[tuple[str, str], float] = {}
    for kname, source in kernels.items():
        scores = static_register_scores(source)
        for reg_index, reg_name in enumerate(REG_NAMES):
            static[(kname, reg_name)] = scores[reg_name]
            dynamic[(kname, reg_name)] = dynamic_register_sensitivity(
                source, reg_index, trials, rng
            )
    keys = sorted(static)
    rho = spearman([static[k] for k in keys], [dynamic[k] for k in keys])
    live_opt = static_live_register_count(OPTIMIZED_SOURCE)
    live_unopt = static_live_register_count(UNOPTIMIZED_SOURCE)
    lines = [
        f"static-vs-dynamic register sensitivity, {trials} trials/register:",
        f"  Spearman rank correlation rho = {rho:.3f} over {len(keys)} points",
        f"  static live registers: optimized {live_opt}, "
        f"unoptimized {live_unopt}",
    ]
    for k in keys:
        lines.append(
            f"  {k[0]:>11s}.{k[1]}: static {static[k]:.3f} "
            f"dynamic {dynamic[k]:.3f}"
        )
    return ValidationReport(
        static_scores=static,
        dynamic_rates=dynamic,
        rank_correlation=rho,
        static_live_optimized=live_opt,
        static_live_unoptimized=live_unopt,
        text="\n".join(lines),
    )
