"""Assembly diagnostics built on the CFG and dataflow analyses.

Each diagnostic has a stable code so CI can gate on them and kernels can
be audited by hand:

======  ==============================================================
code    meaning
======  ==============================================================
SA001   write to a dead register (the value can never be read)
SA002   register read with no reaching definition (use before def)
SA003   unreachable basic block
SA004   push/pop stack imbalance on a path reaching RET
SA005   branch to nowhere (target outside the function or off-grid)
======  ==============================================================

The ``SA0xx`` codes above are this module's; the ``SA1xx`` family
(MPI communication checks) lives in
:mod:`repro.staticanalysis.mpicheck.passes`, the ``SA2xx`` family
(propagation/detector-coverage audit) in
:mod:`repro.staticanalysis.propagation.passes`, and the ``SA3xx``
family (outcome-prediction audit) in
:mod:`repro.staticanalysis.outcomes.passes`, each with its own code
table.  Codes are unique across all four families and every family
shares this module's :class:`Diagnostic` type and report order.

Two deliberate exemptions keep the checks useful on compiler-shaped
code:

* ``POP r`` with a dead destination is *not* SA001 - compilers emit
  ``pop`` purely to deallocate a stack slot, and the ESP adjustment is
  the point (the value being discarded is the idiom, not a bug);
* writes to ESP/EBP are not SA001 - frame management keeps them live
  through the implicit stack traffic and the exit convention anyway.

The stack-balance check (SA004) understands the standard frame idiom:
``mov ebp, esp`` snapshots the depth and ``mov esp, ebp`` restores it,
so kernels that reset ESP through the frame pointer still verify.  Any
other write to ESP makes the depth unknown and mutes the check on the
affected paths rather than guessing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu import semantics
from repro.cpu.assembler import AssembledFunction
from repro.cpu.isa import Op
from repro.cpu.registers import EBP, ESP, REG_NAMES
from repro.staticanalysis.cfg import ControlFlowGraph
from repro.staticanalysis.dataflow import liveness, reaching_definitions

#: Stable diagnostic codes and their one-line descriptions.
LINT_CODES = {
    "SA001": "write to a dead register",
    "SA002": "use of a register before any definition",
    "SA003": "unreachable basic block",
    "SA004": "push/pop stack imbalance",
    "SA005": "branch target outside the function",
}


@dataclass(frozen=True)
class Diagnostic:
    code: str
    function: str
    insn_index: int
    message: str

    def __str__(self) -> str:
        return (
            f"{self.code} {self.function}+{self.insn_index}: {self.message}"
        )


def sort_diagnostics(diags) -> list[Diagnostic]:
    """Canonical report order, shared by every diagnostic producer (the
    kernel lints here and the ``SA1xx`` MPI passes): stable
    ``(function, position, code, message)`` sorting with exact
    duplicates removed, so reports and CI gates are deterministic."""
    return sorted(
        set(diags), key=lambda d: (d.function, d.insn_index, d.code, d.message)
    )


def lint_cfg(cfg: ControlFlowGraph) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    diags += _check_dead_writes(cfg)
    diags += _check_use_before_def(cfg)
    diags += _check_unreachable(cfg)
    diags += _check_stack_balance(cfg)
    diags += _check_branch_targets(cfg)
    return sort_diagnostics(diags)


def lint_function(fn: AssembledFunction) -> list[Diagnostic]:
    return lint_cfg(ControlFlowGraph.from_function(fn))


def lint_program(prog) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for fn in prog.functions.values():
        out.extend(lint_function(fn))
    return sort_diagnostics(out)


def iter_shipped_kernels():
    """Yield ``(owner, AssembledFunction)`` for every kernel the repo
    ships: the three applications' kernels (built with their default
    parameters) plus the liveness-ablation pair - the lint CI gate
    covers all of them."""
    from repro.analysis.liveness import OPTIMIZED_SOURCE, UNOPTIMIZED_SOURCE
    from repro.apps import APPLICATION_SUITE
    from repro.cpu.assembler import assemble_function

    for app_name, app_cls in APPLICATION_SUITE.items():
        prog = app_cls().program()
        for fn in prog.functions.values():
            yield app_name, fn
    yield "ablation", assemble_function("opt_kernel", OPTIMIZED_SOURCE)
    yield "ablation", assemble_function("unopt_kernel", UNOPTIMIZED_SOURCE)


# ----------------------------------------------------------------------
# SA001 - dead writes
# ----------------------------------------------------------------------
def _check_dead_writes(cfg: ControlFlowGraph) -> list[Diagnostic]:
    live = liveness(cfg)
    reachable = cfg.reachable()
    diags = []
    for i, insn in enumerate(cfg.insns):
        if cfg.block_of[i] not in reachable:
            continue  # dead code is SA003's finding, not a dead write
        if insn.op is Op.POP:
            continue  # stack-deallocation idiom: the pop IS the point
        eff = semantics.effects(insn)
        for r in sorted(eff.writes):
            if r in (ESP, EBP):
                continue
            if r not in live.after[i]:
                diags.append(
                    Diagnostic(
                        "SA001",
                        cfg.name,
                        i,
                        f"{insn.op.name} writes {REG_NAMES[r]} but the "
                        f"value is never read",
                    )
                )
    return diags


# ----------------------------------------------------------------------
# SA002 - use before def
# ----------------------------------------------------------------------
def _check_use_before_def(cfg: ControlFlowGraph) -> list[Diagnostic]:
    reach = reaching_definitions(cfg)
    reachable = cfg.reachable()
    diags = []
    for i, insn in enumerate(cfg.insns):
        if cfg.block_of[i] not in reachable:
            continue
        eff = semantics.effects(insn)
        for r in sorted(eff.reads):
            if not reach.defs_of(i, r):
                diags.append(
                    Diagnostic(
                        "SA002",
                        cfg.name,
                        i,
                        f"{insn.op.name} reads {REG_NAMES[r]} before any "
                        f"definition",
                    )
                )
    return diags


# ----------------------------------------------------------------------
# SA003 - unreachable blocks
# ----------------------------------------------------------------------
def _check_unreachable(cfg: ControlFlowGraph) -> list[Diagnostic]:
    reachable = cfg.reachable()
    return [
        Diagnostic(
            "SA003",
            cfg.name,
            block.start,
            f"block B{block.index} ({len(block)} instruction(s)) is "
            f"unreachable from the entry",
        )
        for block in cfg.blocks
        if block.index not in reachable
    ]


# ----------------------------------------------------------------------
# SA004 - stack balance
# ----------------------------------------------------------------------
_UNKNOWN = object()


def _check_stack_balance(cfg: ControlFlowGraph) -> list[Diagnostic]:
    """Forward walk of (depth, frame_depth) states; a conflict at a join
    or a RET at nonzero depth is an imbalance.  States:

    * ``depth``  - 32-bit slots pushed since entry (entry = 0);
    * ``frame``  - depth snapshotted by ``mov ebp, esp`` (None before).

    Writes to ESP other than push/pop/``mov esp, ebp`` poison the state
    (depth becomes unknown) instead of producing noise.
    """
    diags: list[Diagnostic] = []
    states: dict[int, object] = {0: (0, None)}
    work = [0]
    seen_conflict: set[int] = set()
    while work:
        b = work.pop()
        state = states[b]
        if state is _UNKNOWN:
            for s in cfg.blocks[b].succs:
                if s not in states:
                    states[s] = _UNKNOWN
                    work.append(s)
            continue
        depth, frame = state
        for i in cfg.blocks[b].insn_indices():
            insn = cfg.insns[i]
            if insn.op is Op.MOV and insn.r1 == EBP and insn.r2 == ESP:
                frame = depth
            elif insn.op is Op.MOV and insn.r1 == ESP and insn.r2 == EBP:
                if frame is None:
                    depth = None  # restoring an unknown frame
                else:
                    depth = frame
            elif insn.op is Op.RET:
                if depth is not None and depth != 0:
                    diags.append(
                        Diagnostic(
                            "SA004",
                            cfg.name,
                            i,
                            f"RET with {depth} unpopped stack slot(s)",
                        )
                    )
            elif depth is not None:
                eff = semantics.effects(insn)
                if insn.op is Op.PUSH:
                    depth += 1
                elif insn.op is Op.POP:
                    depth -= 1
                    if depth < 0:
                        diags.append(
                            Diagnostic(
                                "SA004",
                                cfg.name,
                                i,
                                "POP below the function's entry stack depth",
                            )
                        )
                        depth = None
                elif ESP in eff.writes and insn.op not in (
                    Op.CALL,
                    Op.CALLR,
                    Op.RET,
                ):
                    depth = None  # arbitrary ESP arithmetic: give up
            if depth is None and frame is None:
                break
        new_state = _UNKNOWN if depth is None else (depth, frame)
        for s in cfg.blocks[b].succs:
            if s not in states:
                states[s] = new_state
                work.append(s)
            elif (
                states[s] is not _UNKNOWN
                and new_state is not _UNKNOWN
                and states[s] != new_state
                and s not in seen_conflict
            ):
                seen_conflict.add(s)
                diags.append(
                    Diagnostic(
                        "SA004",
                        cfg.name,
                        cfg.blocks[s].start,
                        f"inconsistent stack depth at join "
                        f"(B{s}: {states[s][0]} vs {new_state[0]})",
                    )
                )
    return diags


# ----------------------------------------------------------------------
# SA005 - branch to nowhere
# ----------------------------------------------------------------------
def _check_branch_targets(cfg: ControlFlowGraph) -> list[Diagnostic]:
    return [
        Diagnostic(
            "SA005",
            cfg.name,
            i,
            f"{cfg.insns[i].op.name} displacement {disp} leaves the "
            f"function body",
        )
        for i, disp in cfg.bad_branch_targets
    ]
