"""Validate predicted-outcome strata against dynamic ground truth.

The outcome predictor earns its strata the same way the masking oracle
earned its proofs: by running real campaign trials and checking the
prediction against the observed manifestation.  Three claims are
scored, per app:

* **masked precision** - every trial in the masked stratum must come
  back CORRECT.  The stratum is oracle-proof-only by construction, so
  the floor is 1.0: one counterexample means a proof rule is wrong;
* **crash enrichment** - the dynamic crash rate inside the crash-prone
  stratum over the app-wide base crash rate.  The stratified sampler
  only beats uniform Cochran sampling if the strata concentrate
  variance, so the floor is a real separation
  (:data:`ENRICHMENT_FLOOR`, 3x);
* **hang enrichment** - same ratio for the hang-prone stratum against
  the base hang rate.

Sites are drawn from the engine's own deterministic uniform spec
stream (``make_spec``), classified, and collected per stratum until a
quota fills - exactly the rejection walk the stratified campaign
performs - then every collected site is executed unpruned.  The base
rates come from a separate uniform prefix of the same stream, so both
sides of each ratio are measured, not assumed.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.injection.faults import Region
from repro.staticanalysis.outcomes.predictor import OutcomePredictor, Stratum

#: Minimum P(CORRECT | masked): the oracle-proof contract.
MASKED_PRECISION_FLOOR = 1.0
#: Minimum stratum-vs-base rate ratio for crash-prone and hang-prone.
ENRICHMENT_FLOOR = 3.0

#: Regions the validation samples: the statically steerable ones. HEAP
#: and STACK are uniformly uncertain (fire-time targets) and would only
#: dilute both sides of every ratio.
VALIDATION_REGIONS = (
    Region.REGULAR_REG,
    Region.FP_REG,
    Region.TEXT,
    Region.DATA,
    Region.BSS,
    Region.MESSAGE,
)

#: Manifestation groups of the confusion matrix, in render order.
_MANIFESTATIONS = (
    "correct",
    "crash",
    "hang",
    "incorrect",
    "app_detected",
    "mpi_detected",
)


@dataclass(frozen=True)
class StratumOutcomes:
    """One row of the per-app confusion matrix."""

    stratum: Stratum
    #: manifestation value -> dynamic count.
    outcomes: tuple[tuple[str, int], ...]

    @property
    def trials(self) -> int:
        return sum(n for _, n in self.outcomes)

    def count(self, manifestation: str) -> int:
        return dict(self.outcomes).get(manifestation, 0)

    def rate(self, manifestation: str) -> float:
        return self.count(manifestation) / self.trials if self.trials else 0.0


@dataclass(frozen=True)
class OutcomeValidation:
    """Confusion matrix + enrichment scores for one app."""

    app: str
    rows: tuple[StratumOutcomes, ...]
    #: Uniform-sample manifestation counts: the app-wide base rates.
    base: tuple[tuple[str, int], ...]

    def row(self, stratum: Stratum) -> StratumOutcomes | None:
        for r in self.rows:
            if r.stratum is stratum:
                return r
        return None

    def base_rate(self, manifestation: str) -> float:
        total = sum(n for _, n in self.base)
        return dict(self.base).get(manifestation, 0) / total if total else 0.0

    @property
    def masked_precision(self) -> float:
        """P(CORRECT | masked); vacuous 1.0 when nothing was masked."""
        row = self.row(Stratum.MASKED)
        if row is None or not row.trials:
            return 1.0
        return row.rate("correct")

    def enrichment(self, stratum: Stratum, manifestation: str) -> float:
        """Stratum rate over base rate; inf when the base never shows
        the manifestation but the stratum does, nan with no trials."""
        row = self.row(stratum)
        if row is None or not row.trials:
            return float("nan")
        base = self.base_rate(manifestation)
        rate = row.rate(manifestation)
        if base == 0.0:
            return float("inf") if rate > 0.0 else float("nan")
        return rate / base

    @property
    def crash_enrichment(self) -> float:
        return self.enrichment(Stratum.CRASH_PRONE, "crash")

    @property
    def hang_enrichment(self) -> float:
        return self.enrichment(Stratum.HANG_PRONE, "hang")

    @property
    def passed(self) -> bool:
        checks = [self.masked_precision >= MASKED_PRECISION_FLOOR]
        for value in (self.crash_enrichment, self.hang_enrichment):
            if value == value:  # stratum was sampled: enforce the floor
                checks.append(value >= ENRICHMENT_FLOOR)
        return all(checks)

    def render(self) -> str:
        lines = [
            f"[{self.app}] "
            + f"{'stratum':<12} {'trials':>6} "
            + " ".join(f"{m:>12}" for m in _MANIFESTATIONS)
        ]
        for r in self.rows:
            lines.append(
                f"{'':<{len(self.app) + 3}}{r.stratum.value:<12} "
                f"{r.trials:>6} "
                + " ".join(f"{r.count(m):>12}" for m in _MANIFESTATIONS)
            )
        lines.append(
            f"masked precision: {self.masked_precision:.3f} "
            f"(floor {MASKED_PRECISION_FLOOR})"
        )
        lines.append(
            f"crash enrichment: {self.crash_enrichment:.2f}x, "
            f"hang enrichment: {self.hang_enrichment:.2f}x "
            f"(floor {ENRICHMENT_FLOOR}x)"
        )
        lines.append("PASS" if self.passed else "FAIL")
        return "\n".join(lines)


def _manifestation_value(m) -> str:
    return m.value if hasattr(m, "value") else str(m)


def collect_stratum_specs(
    predictor: OutcomePredictor,
    eng,
    *,
    per_stratum: int,
    scan_limit: int,
    regions=VALIDATION_REGIONS,
):
    """Walk the engine's deterministic uniform spec stream per region,
    classify each site, and keep up to ``per_stratum`` sites per
    stratum.  Returns ``[(trial_spec, stratum), ...]`` in a stable
    order.  This is the same rejection walk the stratified campaign
    driver performs."""
    quota: dict[Stratum, list] = {s: [] for s in Stratum}
    for region in regions:
        for i in range(scan_limit):
            if all(len(v) >= per_stratum for v in quota.values()):
                break
            spec = eng.make_spec(region, i)
            stratum = predictor.stratum(spec.fault)
            if len(quota[stratum]) < per_stratum:
                quota[stratum].append((spec, stratum))
    out = []
    for s in Stratum:
        out.extend(quota[s])
    return out


def validate_app(
    app_name: str,
    *,
    nprocs: int = 2,
    seed: int = 20040607,
    per_stratum: int = 12,
    base_per_region: int = 15,
    scan_limit: int = 2000,
    regions=VALIDATION_REGIONS,
    jobs: int | None = 1,
) -> OutcomeValidation:
    """Score one app's strata against executed campaign trials."""
    from repro.injection.campaign import Campaign

    campaign = Campaign.from_registry(app_name, nprocs=nprocs, seed=seed)
    predictor = OutcomePredictor.from_campaign(campaign)
    with campaign.engine(jobs=jobs) as eng:
        picked = collect_stratum_specs(
            predictor,
            eng,
            per_stratum=per_stratum,
            scan_limit=scan_limit,
            regions=regions,
        )
        results = {r.key: r for r in eng.run_trials([s for s, _ in picked])}
        per_stratum_counts: dict[Stratum, Counter] = {s: Counter() for s in Stratum}
        for spec, stratum in picked:
            res = results.get(spec.key)
            if res is None:
                continue
            per_stratum_counts[stratum][
                _manifestation_value(res.manifestation)
            ] += 1

        base_specs = [
            eng.make_spec(region, i)
            for region in regions
            for i in range(base_per_region)
        ]
        base_results = eng.run_trials(base_specs)
        base = Counter(
            _manifestation_value(r.manifestation) for r in base_results
        )

    rows = tuple(
        StratumOutcomes(
            stratum=s,
            outcomes=tuple(sorted(per_stratum_counts[s].items())),
        )
        for s in Stratum
        if per_stratum_counts[s]
    )
    return OutcomeValidation(
        app=app_name, rows=rows, base=tuple(sorted(base.items()))
    )


def validate_suite(
    apps=("wavetoy", "moldyn", "climate"),
    **kwargs,
) -> tuple[OutcomeValidation, ...]:
    """The full benchmark over the paper's suite (EXPERIMENTS E18)."""
    return tuple(validate_app(app, **kwargs) for app in apps)
