"""Static outcome prediction: abstract interpretation over the CFG and
dataflow layers that classifies every injectable fault site into a
predicted-outcome stratum (crash-prone, hang-prone, detectable,
sdc-risk, masked, uncertain).

Layer map:

* :mod:`.intervals` - value-range domain over the register file proving
  address-bit flips escape every mapped segment;
* :mod:`.hangs` - natural-loop/counter analysis finding the sites whose
  corruption stalls a kernel past the engine budgets;
* :mod:`.predictor` - the per-spec join (plus message-stream strata);
* :mod:`.passes` - the SA3xx audit family over predictor probes;
* :mod:`.validation` - confusion matrix of predictions vs dynamic
  campaign ground truth.
"""

from repro.staticanalysis.outcomes.hangs import (
    HangAnalysis,
    Loop,
    hang_bit_floor,
)
from repro.staticanalysis.outcomes.intervals import (
    Interval,
    IntervalAnalysis,
    flip_escapes,
    stack_window,
)
from repro.staticanalysis.outcomes.passes import (
    OUTCOME_LINT_CODES,
    PredictorProbe,
    audit_outcomes,
    build_probe,
)
from repro.staticanalysis.outcomes.predictor import (
    OutcomePredictor,
    Stratum,
)
from repro.staticanalysis.outcomes.validation import (
    OutcomeValidation,
    validate_app,
    validate_suite,
)

__all__ = [
    "HangAnalysis",
    "Interval",
    "IntervalAnalysis",
    "Loop",
    "OUTCOME_LINT_CODES",
    "OutcomePredictor",
    "OutcomeValidation",
    "PredictorProbe",
    "Stratum",
    "audit_outcomes",
    "build_probe",
    "flip_escapes",
    "hang_bit_floor",
    "stack_window",
    "validate_app",
    "validate_suite",
]
