"""Static outcome prediction: every fault site gets a stratum.

The dynamic campaigns measure the paper's manifestation distribution by
executing tens of thousands of jobs.  This module *predicts* the likely
manifestation of each injectable site before any job runs, folding the
suite's static layers into one verdict:

* the interval domain (:mod:`.intervals`) proves that a flipped address
  bit sends a load/store outside every mapped segment -> *crash-prone*;
* the loop-bound analysis (:mod:`.hangs`) finds the counters, bounds,
  increments and back-edge branches whose corruption stalls a kernel
  past the :mod:`repro.engine.budgets` limits, and the channel-protocol
  header fields whose corruption strands a matching receive ->
  *hang-prone*;
* the taint cones plus detector placement (:mod:`..propagation`) split
  the remaining propagating sites into *detectable* vs *sdc-risk*;
* the PR 6 masking oracle contributes the *masked* stratum - and ONLY
  the oracle does, so the masked stratum keeps its precision-1.0
  contract by construction;
* everything the analyses cannot argue stays *uncertain*.

The strata drive two consumers: the SA3xx audit passes (:mod:`.passes`)
and the stratified campaign sampler (``campaign run --stratify``),
which allocates Cochran samples per stratum and importance-weights the
tallies back to unbiased region rates.
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass

from repro.cpu import semantics
from repro.cpu.isa import INSN_SIZE
from repro.cpu.registers import EBP, ESP, REG_NAMES
from repro.injection.faults import FaultSpec, Region
from repro.memory.layout import (
    DEFAULT_STACK_SIZE,
    STATIC_IMAGE_WINDOW,
)
from repro.mpi.adi import MSG_EAGER
from repro.mpi.channel import HEADER_SIZE
from repro.mpi.datatypes import INTERNAL_TAG_BASE
from repro.staticanalysis.avf import Predicted, block_weights, classify_bit
from repro.staticanalysis.cfg import ControlFlowGraph
from repro.staticanalysis.outcomes.hangs import HangAnalysis, hang_bit_floor
from repro.staticanalysis.outcomes.intervals import (
    Interval,
    IntervalAnalysis,
    flip_escapes,
    stack_window,
)
from repro.staticanalysis.propagation.coverage import AppCoverage
from repro.staticanalysis.propagation.pruning import FP_BOOKKEEPING, MaskingOracle
from repro.staticanalysis.propagation.sites import SiteClass, classify_cone
from repro.staticanalysis.propagation.taint import TaintAnalysis


class Stratum(str, enum.Enum):
    """Predicted-outcome stratum of one injectable fault site."""

    CRASH_PRONE = "crash-prone"
    HANG_PRONE = "hang-prone"
    DETECTABLE = "detectable"
    SDC_RISK = "sdc-risk"
    MASKED = "masked"
    UNCERTAIN = "uncertain"


#: Minimum fraction of a register's use weight that must be address
#: arithmetic before the register is treated as pointer-carrying.
POINTER_MASS_FLOOR = 0.25

#: Fraction of a pointer register's address-site weight that must carry
#: an interval escape proof before a bit is declared crash-prone.
ESCAPE_PROOF_FLOOR = 0.5

#: Wire layout of the 48-byte packet header: (field, start, end).
_HEADER_FIELDS = (
    ("magic", 0, 4),
    ("src", 4, 8),
    ("dst", 8, 12),
    ("tag", 12, 16),
    ("type", 16, 20),
    ("len", 20, 24),
    ("seq", 24, 28),
    ("comm_id", 28, 32),
    ("pad", 32, 48),
)


@dataclass(frozen=True)
class KernelOutcomes:
    """Per-kernel static analyses, joined once at predictor build."""

    name: str
    cfg: ControlFlowGraph
    taint: TaintAnalysis
    intervals: IntervalAnalysis
    hangs: HangAnalysis
    weights: tuple[float, ...]
    #: (insn_index, bit64) pairs predicted hang-prone in the text image.
    hang_bits: frozenset[tuple[int, int]]
    #: Per-instruction, per-bit (64) stratum of the text word.
    text_strata: tuple[tuple[Stratum, ...], ...]


def _aggregate_site_classes(classes: list[SiteClass]) -> Stratum:
    """Join taint site classes into one stratum.  CONTROL_FLOW_RISK maps
    to SDC_RISK: a statically unpredictable detour dilutes the crash
    stratum if claimed as a crash, so it stays on the silent side.
    PROVABLY_MASKED alone maps to UNCERTAIN, never MASKED - the masked
    stratum is the oracle's, and its precision floor is absolute."""
    if any(
        c in (SiteClass.SDC_RISK, SiteClass.CONTROL_FLOW_RISK) for c in classes
    ):
        return Stratum.SDC_RISK
    if any(c is SiteClass.DETECTOR_COVERED for c in classes):
        return Stratum.DETECTABLE
    return Stratum.UNCERTAIN


class OutcomePredictor:
    """Maps any :class:`~repro.injection.faults.FaultSpec` of one linked
    application to its predicted-outcome stratum."""

    def __init__(
        self,
        *,
        app_name: str,
        program,
        symtab,
        oracle: MaskingOracle,
        coverage: AppCoverage,
        block_limit: int,
        packets=None,
        received_bytes_per_rank: list[int] | None = None,
        message_classes: dict[int, str] | None = None,
        stack_size: int = DEFAULT_STACK_SIZE,
    ) -> None:
        self.app_name = app_name
        self.symtab = symtab
        self.oracle = oracle
        self.coverage = coverage
        self.block_limit = block_limit
        self.hang_floor = hang_bit_floor(block_limit)
        self.stack_window = stack_window(stack_size)
        self.windows = (STATIC_IMAGE_WINDOW, self.stack_window)
        self.message_classes = dict(message_classes or {})
        self.kernels: dict[str, KernelOutcomes] = {}
        self._symbol_strata: dict[str, Stratum] = {}
        self._build_kernels(program, symtab)
        self.register_table: tuple[tuple[Stratum, ...], ...] = (
            self._build_register_table()
        )
        self._streams = self._build_streams(packets, received_bytes_per_rank)

    # ------------------------------------------------------------------
    @classmethod
    def from_campaign(cls, campaign, *, with_messages: bool = True) -> "OutcomePredictor":
        """Build from a campaign's reference profile, oracle and
        coverage join - the same authorities the pruning path uses."""
        from repro.staticanalysis.mpicheck import extract_skeleton
        from repro.staticanalysis.propagation.coverage import coverage_for

        ref = campaign.reference()
        app = campaign.app_factory()
        packets = None
        if with_messages:
            skeleton = extract_skeleton(
                campaign.app_factory(),
                campaign.config.nprocs,
                seed=campaign.config.seed,
                round_limit=ref.round_limit,
            )
            packets = skeleton.packets
        return cls(
            app_name=campaign.app_name,
            program=app.program(),
            symtab=ref.symtab,
            oracle=campaign.masking_oracle(),
            coverage=coverage_for(campaign.app_name, campaign.app_params),
            block_limit=ref.block_limit,
            packets=packets,
            received_bytes_per_rank=list(ref.received_bytes_per_rank),
            message_classes=dict(app.message_classes()),
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_kernels(self, program, symtab) -> None:
        for name, fn in program.functions.items():
            cfg = ControlFlowGraph.from_function(fn)
            reloc_symbols = {r.insn_index: r.symbol for r in fn.relocations}
            reloc_addrs = {}
            for i, sym in reloc_symbols.items():
                try:
                    reloc_addrs[i] = symtab.lookup(sym).addr
                except KeyError:
                    pass  # unresolved: the static-window fallback applies
            taint = TaintAnalysis(cfg, reloc_symbols)
            intervals = IntervalAnalysis(cfg, reloc_addrs)
            hangs = HangAnalysis(cfg)
            hang_bits = hangs.hang_prone_text_bits(self.block_limit)
            weights = tuple(block_weights(cfg))
            text = self._text_strata(cfg, taint, hang_bits)
            self.kernels[name] = KernelOutcomes(
                name=name,
                cfg=cfg,
                taint=taint,
                intervals=intervals,
                hangs=hangs,
                weights=weights,
                hang_bits=hang_bits,
                text_strata=text,
            )

    def _text_strata(
        self,
        cfg: ControlFlowGraph,
        taint: TaintAnalysis,
        hang_bits: frozenset[tuple[int, int]],
    ) -> tuple[tuple[Stratum, ...], ...]:
        n = len(cfg.insns)
        out: list[tuple[Stratum, ...]] = []
        for i, insn in enumerate(cfg.insns):
            # One cone join per instruction: a corrupted encoding mangles
            # the values the instruction writes, so the written GPRs'
            # cones bound where the corruption can go.
            written = taint.written_gprs(i)
            if written:
                propagated = _aggregate_site_classes(
                    [
                        classify_cone(taint.cone_after(i, r), self.coverage)
                        for r in written
                    ]
                )
            else:
                # No GPR result: stores scribble memory, compares and
                # branches steer control - both silent-risk surfaces.
                propagated = Stratum.SDC_RISK
            relocated = i in cfg.relocated
            row = []
            for bit in range(64):
                predicted = classify_bit(insn, i, n, bit, relocated=relocated)
                if predicted is Predicted.CRASH:
                    row.append(Stratum.CRASH_PRONE)
                elif (i, bit) in hang_bits:
                    row.append(Stratum.HANG_PRONE)
                elif predicted is Predicted.BENIGN:
                    # The oracle prunes these as benign-text-bit; seen
                    # here only if the oracle was bypassed.
                    row.append(Stratum.UNCERTAIN)
                else:
                    row.append(propagated)
            out.append(tuple(row))
        return tuple(out)

    def _build_register_table(self) -> tuple[tuple[Stratum, ...], ...]:
        ptr_w = [0.0] * 8
        proof_w = [[0.0] * 32 for _ in range(8)]
        write_w = [0.0] * 8
        classes: list[list[SiteClass]] = [[] for _ in range(8)]
        hang_regs: set[int] = set()
        indexed_regs: set[int] = set()

        for kernel in self.kernels.values():
            cfg, weights = kernel.cfg, kernel.weights
            for i, insn in enumerate(cfg.insns):
                w = weights[i]
                if w <= 0:
                    continue
                for acc in semantics.memory_accesses(insn):
                    base = acc.base & 7
                    ptr_w[base] += w
                    iv = kernel.intervals.base_interval(i, base)
                    for bit in range(32):
                        if flip_escapes(iv, bit, self.windows):
                            proof_w[base][bit] += w
                for reg in kernel.taint.written_gprs(i):
                    write_w[reg] += w
                    classes[reg].append(
                        classify_cone(
                            kernel.taint.cone_after(i, reg), self.coverage
                        )
                    )
            for loop in kernel.hangs.loops:
                if loop.exact_exit:
                    hang_regs |= loop.pure_counters
                indexed_regs |= loop.memory_indexed_counters

        table: list[tuple[Stratum, ...]] = []
        for reg in range(8):
            if reg in (ESP, EBP):
                # The stack pointers live in the stack window whenever a
                # kernel is running; a flip that provably exits every
                # window faults on the next push/frame access.
                lo, hi = self.stack_window
                iv = Interval(lo, hi - 1)
                table.append(
                    tuple(
                        Stratum.CRASH_PRONE
                        if flip_escapes(iv, bit, self.windows)
                        else Stratum.UNCERTAIN
                        for bit in range(32)
                    )
                )
                continue
            use_w = ptr_w[reg] + write_w[reg]
            pointer_mass = ptr_w[reg] / use_w if use_w else 0.0
            fallback = (
                _aggregate_site_classes(classes[reg])
                if classes[reg]
                else Stratum.UNCERTAIN
            )
            row = []
            for bit in range(32):
                proven = (
                    proof_w[reg][bit] / ptr_w[reg] if ptr_w[reg] else 0.0
                )
                if (
                    pointer_mass >= POINTER_MASS_FLOOR
                    and proven >= ESCAPE_PROOF_FLOOR
                ):
                    row.append(Stratum.CRASH_PRONE)
                elif reg in hang_regs and reg not in indexed_regs:
                    row.append(Stratum.HANG_PRONE)
                else:
                    row.append(fallback)
            table.append(tuple(row))
        return tuple(table)

    def _build_streams(self, packets, received_bytes_per_rank):
        """Per-rank (starts, packets) for received-byte-stream lookup.
        A rank whose reconstructed volume disagrees with the reference
        profile is dropped: its MESSAGE faults stay uncertain."""
        if packets is None:
            return {}
        per_rank: dict[int, list] = {}
        for p in packets:
            per_rank.setdefault(p.dst, []).append(p)
        streams = {}
        for rank, plist in per_rank.items():
            plist.sort(key=lambda p: p.index)
            starts, total = [], 0
            for p in plist:
                starts.append(total)
                total += p.size
            if received_bytes_per_rank is not None and rank < len(
                received_bytes_per_rank
            ):
                if total != received_bytes_per_rank[rank]:
                    continue  # skeleton/reference drift: no predictions
            streams[rank] = (starts, plist)
        return streams

    # ------------------------------------------------------------------
    # per-spec classification
    # ------------------------------------------------------------------
    def stratum(self, spec: FaultSpec) -> Stratum:
        # The oracle goes first, unconditionally: MASKED is claimed only
        # on its proof, which is what keeps masked precision at 1.0.
        if self.oracle.verdict(spec).masked:
            return Stratum.MASKED
        region = spec.region
        if region is Region.TEXT:
            return self._text_stratum(spec)
        if region in (Region.DATA, Region.BSS):
            return self._static_data_stratum(spec)
        if region is Region.REGULAR_REG:
            return self.register_table[spec.reg_index][spec.bit]
        if region is Region.FP_REG:
            return self._fp_stratum(spec)
        if region is Region.MESSAGE:
            return self._message_stratum(spec)
        # HEAP and STACK resolve their targets at fire time against live
        # allocation state: statically out of reach.
        return Stratum.UNCERTAIN

    def _text_stratum(self, spec: FaultSpec) -> Stratum:
        sym = self.symtab.resolve(spec.address)
        if sym is None or sym.library != "user" or sym.name not in self.kernels:
            return Stratum.UNCERTAIN
        kernel = self.kernels[sym.name]
        word, byte = divmod(spec.address - sym.addr, INSN_SIZE)
        if word >= len(kernel.text_strata):
            return Stratum.UNCERTAIN  # padding the oracle did not claim
        return kernel.text_strata[word][byte * 8 + spec.bit]

    def _static_data_stratum(self, spec: FaultSpec) -> Stratum:
        sym = self.symtab.resolve(spec.address)
        if sym is None or sym.library != "user":
            return Stratum.UNCERTAIN
        if sym.name not in self._symbol_strata:
            self._symbol_strata[sym.name] = self._classify_symbol(sym.name)
        return self._symbol_strata[sym.name]

    def _classify_symbol(self, name: str) -> Stratum:
        token = f"sym:{name}"
        classes: list[SiteClass] = []
        for kernel in self.kernels.values():
            cone = kernel.taint.cone_from_tokens(frozenset({token}))
            if cone.tainted or cone.escapes:
                classes.append(classify_cone(cone, self.coverage))
        paths = self.coverage.paths_from_token(token)
        if paths:
            if all(p.covered for p in paths):
                classes.append(SiteClass.DETECTOR_COVERED)
            else:
                classes.append(SiteClass.SDC_RISK)
        if not classes:
            return Stratum.UNCERTAIN
        return _aggregate_site_classes(classes)

    def _fp_stratum(self, spec: FaultSpec) -> Stratum:
        if spec.fp_target in FP_BOOKKEEPING:
            # Oracle territory; reaching here means the oracle was not
            # consulted first - still never claim MASKED ourselves.
            return Stratum.UNCERTAIN
        if spec.fp_target and spec.fp_target.startswith("st"):
            # Data stack values feed the field updates directly; whether
            # a detector sees them is the coverage join's call on the
            # heap state they are stored to.
            return (
                Stratum.DETECTABLE
                if self._heap_covered()
                else Stratum.SDC_RISK
            )
        return Stratum.UNCERTAIN  # cwd/swd/twd steer the pipeline itself

    def _heap_covered(self) -> bool:
        paths = self.coverage.paths_from_token("heap")
        return bool(paths) and all(p.covered for p in paths)

    def _message_stratum(self, spec: FaultSpec) -> Stratum:
        stream = self._streams.get(spec.rank)
        if stream is None:
            return Stratum.UNCERTAIN
        starts, plist = stream
        i = bisect_right(starts, spec.target_byte) - 1
        if i < 0:
            return Stratum.UNCERTAIN
        packet = plist[i]
        offset = spec.target_byte - starts[i]
        if offset >= packet.size:
            return Stratum.UNCERTAIN  # past the final packet
        if offset >= HEADER_SIZE:
            return self._payload_stratum(packet)
        for name, start, end in _HEADER_FIELDS:
            if not start <= offset < end:
                continue
            if name in ("magic", "len"):
                return Stratum.CRASH_PRONE  # frame validation fails
            if name in ("src", "dst", "tag"):
                # Misrouted or unmatched: dropped while the matching
                # receive keeps waiting.
                return Stratum.HANG_PRONE
            if name == "type":
                # The two low bits toggle within the valid MSG_* range
                # (wrong protocol step -> drop -> hang); anything higher
                # leaves it -> frame rejected.
                if offset == start and spec.bit < 2:
                    return Stratum.HANG_PRONE
                return Stratum.CRASH_PRONE
            if name == "seq":
                # The rendezvous handle: orphaned handshake on the
                # frames that read it, dead state on eager frames.
                return (
                    Stratum.HANG_PRONE
                    if packet.mtype != MSG_EAGER
                    else Stratum.UNCERTAIN
                )
            return Stratum.UNCERTAIN  # comm_id / pad: never read
        return Stratum.UNCERTAIN

    def _payload_stratum(self, packet) -> Stratum:
        if packet.tag >= INTERNAL_TAG_BASE:
            cls = "collective"
        else:
            cls = self.message_classes.get(packet.tag, "data")
        return Stratum.DETECTABLE if cls == "checksummed" else Stratum.SDC_RISK

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def text_histogram(self) -> dict[str, dict[str, int]]:
        """Per-kernel stratum counts over every text bit."""
        out: dict[str, dict[str, int]] = {}
        for name, kernel in sorted(self.kernels.items()):
            counts = {s.value: 0 for s in Stratum}
            for row in kernel.text_strata:
                for stratum in row:
                    counts[stratum.value] += 1
            out[name] = counts
        return out

    def register_summary(self) -> dict[str, dict[str, int]]:
        """Per-register stratum counts over the 32 bits."""
        out: dict[str, dict[str, int]] = {}
        for reg, row in enumerate(self.register_table):
            counts = {s.value: 0 for s in Stratum}
            for stratum in row:
                counts[stratum.value] += 1
            out[REG_NAMES[reg]] = counts
        return out

    def to_dict(self) -> dict:
        return {
            "app": self.app_name,
            "block_limit": self.block_limit,
            "hang_bit_floor": self.hang_floor,
            "windows": {
                "static_image": list(STATIC_IMAGE_WINDOW),
                "stack": list(self.stack_window),
            },
            "kernels": {
                name: {
                    "n_insns": len(k.cfg.insns),
                    "loops": len(k.hangs.loops),
                    "hang_bits": len(k.hang_bits),
                }
                for name, k in sorted(self.kernels.items())
            },
            "text_bits": self.text_histogram(),
            "registers": self.register_summary(),
            "message_ranks": sorted(self._streams),
        }


__all__ = [
    "KernelOutcomes",
    "OutcomePredictor",
    "Stratum",
    "POINTER_MASS_FLOOR",
    "ESCAPE_PROOF_FLOOR",
]
