"""Interval (value-range) abstract domain over the register file.

The outcome predictor's crash stratum rests on one static claim: a
flipped bit turns an address the program is about to dereference (or
fetch) into one outside every mapped segment.  Proving that needs a
*range* for the address, not a taint bit - this module supplies it.

The domain is the classic non-wrapping unsigned-32 interval lattice:
``[lo, hi]`` with ``0 <= lo <= hi <= 2^32 - 1``, ``TOP`` the full
range.  Any operation whose concrete result could wrap (or that the
transfer does not model) goes straight to TOP, so the analysis only
ever **over**-approximates: the one claim consumers may build on is
``v in I`` for every concrete register value ``v`` - the same negative
contract as the taint layer's provably-masked verdict, checked by the
hypothesis differential suite against real VM execution.

Address provenance comes from two authorities, never re-derived:

* relocated ``MOVI`` immediates are link-time symbol addresses, so
  without an exact symbol table the value still provably lies in the
  Figure-1 static image window (:data:`repro.memory.layout.STATIC_IMAGE_WINDOW`);
* ``ESP``/``EBP`` enter the function inside the stack segment, whose
  window also comes from :mod:`repro.memory.layout`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.isa import Insn, Op
from repro.cpu.registers import EBP, ESP
from repro.memory.layout import (
    DEFAULT_STACK_SIZE,
    STACK_TOP,
    STATIC_IMAGE_WINDOW,
)
from repro.staticanalysis.cfg import ControlFlowGraph

U32_MAX = 0xFFFF_FFFF

#: GPR count (register file masks indices with & 7).
_NREGS = 8

#: Ops whose GPR result the transfer does not model: straight to TOP.
_OPAQUE_OPS = frozenset(
    {Op.IMUL, Op.IDIV, Op.IREM, Op.AND, Op.OR, Op.XOR,
     Op.SHL, Op.SHR, Op.NEG, Op.LOAD}
)


@dataclass(frozen=True)
class Interval:
    """A non-wrapping unsigned-32 range ``[lo, hi]`` (both inclusive)."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not 0 <= self.lo <= self.hi <= U32_MAX:
            raise ValueError(f"bad interval [{self.lo:#x}, {self.hi:#x}]")

    # ------------------------------------------------------------------
    @classmethod
    def const(cls, value: int) -> "Interval":
        v = value & U32_MAX
        return cls(v, v)

    @classmethod
    def top(cls) -> "Interval":
        return TOP

    @property
    def is_top(self) -> bool:
        return self.lo == 0 and self.hi == U32_MAX

    def contains(self, value: int) -> bool:
        return self.lo <= (value & U32_MAX) <= self.hi

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    # ------------------------------------------------------------------
    # arithmetic (wrap -> TOP keeps the non-wrapping lattice sound)
    # ------------------------------------------------------------------
    def add(self, other: "Interval") -> "Interval":
        lo, hi = self.lo + other.lo, self.hi + other.hi
        return Interval(lo, hi) if hi <= U32_MAX else TOP

    def sub(self, other: "Interval") -> "Interval":
        lo, hi = self.lo - other.hi, self.hi - other.lo
        return Interval(lo, hi) if lo >= 0 else TOP

    def add_const(self, value: int) -> "Interval":
        lo, hi = self.lo + value, self.hi + value
        if 0 <= lo and hi <= U32_MAX:
            return Interval(lo, hi)
        return TOP

    def intersects(self, lo: int, hi: int) -> bool:
        """Does the interval meet the half-open window ``[lo, hi)``?"""
        return self.lo < hi and self.hi >= lo


TOP = Interval(0, U32_MAX)

#: The stack segment window ``[base, top)`` every linked image places
#: its stack in (the linker maps ``align_up(stack_size)`` bytes ending
#: at ``STACK_TOP``; sizes beyond the default widen the window).
def stack_window(stack_size: int = DEFAULT_STACK_SIZE) -> tuple[int, int]:
    if stack_size <= 0:
        raise ValueError(f"stack size must be positive: {stack_size}")
    return (STACK_TOP - stack_size, STACK_TOP)


def flip_escapes(
    interval: Interval,
    bit: int,
    windows: tuple[tuple[int, int], ...],
) -> bool:
    """Can flipping ``bit`` of any value in ``interval`` be *proven* to
    land outside every mapped window?

    Flipping bit ``k`` of a value adds ``2^k`` when the bit is 0 and
    subtracts it when the bit is 1.  When every value in the interval
    agrees on bit ``k`` (``lo >> k == hi >> k``: the interval sits
    inside one aligned ``2^k`` granule's half), only that one direction
    is possible; otherwise both shifted ranges must be considered.  The
    proof succeeds only when every possible shifted range stays inside
    u32 (no wraparound) and intersects no window - TOP intervals
    therefore never prove anything.
    """
    if not 0 <= bit < 32:
        raise ValueError(f"bit must be in [0,32): {bit}")
    if interval.is_top:
        return False
    step = 1 << bit
    if (interval.lo >> bit) == (interval.hi >> bit):
        directions = (step,) if not (interval.lo >> bit) & 1 else (-step,)
    else:
        directions = (step, -step)
    for delta in directions:
        lo, hi = interval.lo + delta, interval.hi + delta
        if lo < 0 or hi > U32_MAX:
            return False  # wraps: could land anywhere
        shifted = Interval(lo, hi)
        if any(shifted.intersects(wlo, whi) for wlo, whi in windows):
            return False
    return True


class IntervalAnalysis:
    """Forward interval analysis of one kernel's register file.

    ``reloc_addrs`` maps relocated instruction indices to the exact
    linked address when a symbol table is available; relocated ``MOVI``
    instructions without an entry still get the static image window.
    """

    def __init__(
        self,
        cfg: ControlFlowGraph,
        reloc_addrs: dict[int, int] | None = None,
        stack_size: int = DEFAULT_STACK_SIZE,
    ) -> None:
        self.cfg = cfg
        self.reloc_addrs = dict(reloc_addrs or {})
        lo, hi = stack_window(stack_size)
        self._stack_entry = Interval(lo, hi - 1)
        self._static_window = Interval(
            STATIC_IMAGE_WINDOW[0], STATIC_IMAGE_WINDOW[1] - 1
        )
        self._reachable = cfg.reachable()
        #: Per-instruction register intervals *before* the instruction.
        self.before: list[tuple[Interval, ...]] = self._solve()

    # ------------------------------------------------------------------
    def _entry_state(self) -> tuple[Interval, ...]:
        state = [TOP] * _NREGS
        state[ESP] = self._stack_entry
        state[EBP] = self._stack_entry
        return tuple(state)

    def _step(self, state: tuple[Interval, ...], i: int) -> tuple[Interval, ...]:
        insn: Insn = self.cfg.insns[i]
        op = insn.op
        r1, r2 = insn.r1 & 7, insn.r2 & 7

        def put(reg: int, iv: Interval) -> tuple[Interval, ...]:
            out = list(state)
            out[reg] = iv
            return tuple(out)

        if op is Op.MOVI:
            if i in self.cfg.relocated:
                addr = self.reloc_addrs.get(i)
                iv = (
                    Interval.const(addr)
                    if addr is not None
                    else self._static_window
                )
            else:
                iv = Interval.const(insn.imm)
            return put(r1, iv)
        if op is Op.MOV:
            return put(r1, state[r2])
        if op is Op.LEA:
            return put(r1, state[r2].add_const(insn.imm))
        if op is Op.ADDI:
            return put(r1, state[r1].add_const(insn.imm))
        if op is Op.ADD:
            return put(r1, state[r1].add(state[r2]))
        if op is Op.SUB:
            return put(r1, state[r1].sub(state[r2]))
        if op in _OPAQUE_OPS:
            return put(r1, TOP)
        if op is Op.PUSH:
            return put(ESP, state[ESP].add_const(-4))
        if op is Op.POP:
            state = put(ESP, state[ESP].add_const(4))
            out = list(state)
            out[r1] = TOP  # popped value: whatever memory held
            return tuple(out)
        if op in (Op.CALL, Op.CALLR):
            # The callee executes inline on the same register file and
            # may clobber anything, stack pointers included.
            return tuple(TOP for _ in range(_NREGS))
        # Every other op writes no GPR (STORE, CMP/CMPI, branches, the
        # x87 and vector ops, NOP/RET/HLT).
        return state

    def _solve(self) -> list[tuple[Interval, ...]]:
        cfg = self.cfg
        entry = self._entry_state()

        def join(a, b):
            if a is None:
                return b
            if b is None:
                return a
            return tuple(x.join(y) for x, y in zip(a, b))

        def transfer(b: int, state):
            if state is None:
                state = entry if b == 0 else tuple([TOP] * _NREGS)
            for i in cfg.blocks[b].insn_indices():
                state = self._step(state, i)
            return state

        # dataflow.solve joins with ``|`` over frozensets; intervals
        # need their own join, so run the worklist directly here (the
        # graphs are a handful of blocks).
        block_in: list = [None] * len(cfg.blocks)
        block_in[0] = entry
        work = [b for b in range(len(cfg.blocks))]
        iterations = 0
        limit = 64 * max(1, len(cfg.blocks)) * _NREGS
        while work:
            b = work.pop(0)
            state = block_in[b]
            if b == 0:
                state = join(state, entry)
            out = transfer(b, state)
            for s in cfg.blocks[b].succs:
                merged = join(block_in[s], out)
                if merged != block_in[s]:
                    # Widen aggressively once the budget is spent: the
                    # lattice has unbounded ascending chains via joins
                    # of growing constants, TOP ends them.
                    iterations += 1
                    if iterations > limit:
                        merged = tuple(TOP for _ in range(_NREGS))
                    block_in[s] = merged
                    if s not in work:
                        work.append(s)

        before: list[tuple[Interval, ...]] = [
            tuple([TOP] * _NREGS)
        ] * len(cfg.insns)
        for block in cfg.blocks:
            state = block_in[block.index]
            if state is None:
                state = tuple([TOP] * _NREGS)  # unreachable: vacuous
            if block.index == 0:
                state = join(state, entry)
            for i in block.insn_indices():
                before[i] = state
                state = self._step(state, i)
        return before

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def base_interval(self, insn_index: int, reg: int) -> Interval:
        """Interval of ``reg`` just before ``insn_index`` executes."""
        return self.before[insn_index][reg]


__all__ = [
    "Interval",
    "IntervalAnalysis",
    "TOP",
    "U32_MAX",
    "flip_escapes",
    "stack_window",
]
