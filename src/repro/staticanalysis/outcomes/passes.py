"""SA3xx audit passes: is the outcome predictor delivering signal?

Each pass emits :class:`~repro.staticanalysis.lint.Diagnostic` entries
in the ``SA3xx`` family (``SA0xx`` are the per-kernel assembly lints,
``SA1xx`` the MPI communication checks, ``SA2xx`` the propagation
coverage audits):

======  ==============================================================
code    meaning
======  ==============================================================
SA301   interval-domain blindness: a kernel performs memory accesses
        but every base register's interval is TOP - no crash stratum
        can ever be proven for it
SA302   hang-analysis blindness: a kernel has natural loops but none
        with a recognized counter - loop-corruption sites cannot be
        steered into the hang stratum
SA303   masked-stratum leak: a probed region claims masked sites the
        masking oracle did not prove - the precision-1.0 contract of
        the masked stratum is broken
SA304   stratum starvation: a steerable region's probe sites are all
        uncertain - the predictor contributes nothing to stratified
        sampling there
SA305   hang-budget drift: the predictor's recorded hang-bit floor
        disagrees with recomputing it from the engine block budget
SA306   segment-layout drift: the predictor's address windows disagree
        with the layout authority in :mod:`repro.memory.layout`
======  ==============================================================

The passes run over a :class:`PredictorProbe` - a pure-data snapshot of
one predictor - so fixtures can ``dataclasses.replace`` a single defect
into the real probe without rebuilding analyses.  ``function`` carries
an ``app:token`` label and ``insn_index`` is 0, so the shared
``(function, position, code, message)`` report order applies unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.injection.faults import FaultSpec, Region
from repro.memory.layout import STATIC_IMAGE_WINDOW
from repro.staticanalysis.lint import Diagnostic, sort_diagnostics
from repro.staticanalysis.outcomes.intervals import stack_window
from repro.staticanalysis.outcomes.predictor import OutcomePredictor, Stratum

#: Stable diagnostic codes of the outcome-prediction audit passes.
OUTCOME_LINT_CODES = {
    "SA301": "interval-domain blindness: every access base is TOP",
    "SA302": "hang-analysis blindness: loops but no recognized counter",
    "SA303": "masked-stratum leak: masked claim without an oracle proof",
    "SA304": "stratum starvation: a steerable region is all uncertain",
    "SA305": "hang-bit floor drifted from the engine block budget",
    "SA306": "predictor windows drifted from the segment-layout authority",
}

#: Regions whose sampler the stratified campaign can steer; the probe
#: covers exactly these.
STEERABLE_REGIONS = ("regular_reg", "text", "data", "bss", "message")

#: Per-rank probe depth into the received byte stream (whole first
#: packet plus an early payload window covers every header field).
_MESSAGE_PROBE_BYTES = 96


@dataclass(frozen=True)
class KernelProbe:
    """Pure-data snapshot of one kernel's analysis yield."""

    name: str
    memory_sites: int
    blind_sites: int
    loops: int
    counterless_loops: int


@dataclass(frozen=True)
class RegionProbe:
    """Stratum histogram over one region's deterministic probe sites."""

    region: str
    #: (stratum value, count), sorted by stratum value.
    strata: tuple[tuple[str, int], ...]
    #: Of the masked count, how many the oracle itself proved.
    masked_oracle_proven: int

    def count(self, stratum: Stratum) -> int:
        return dict(self.strata).get(stratum.value, 0)

    @property
    def total(self) -> int:
        return sum(n for _, n in self.strata)


@dataclass(frozen=True)
class PredictorProbe:
    """Everything the SA3xx passes need from one predictor."""

    app: str
    kernels: tuple[KernelProbe, ...]
    regions: tuple[RegionProbe, ...]
    hang_floor: int
    block_limit: int
    #: ((static lo, static hi), (stack lo, stack hi)).
    windows: tuple[tuple[int, int], tuple[int, int]]


# ----------------------------------------------------------------------
# probe construction
# ----------------------------------------------------------------------
def _probe_kernels(predictor: OutcomePredictor) -> tuple[KernelProbe, ...]:
    from repro.cpu import semantics

    out = []
    for name, kernel in sorted(predictor.kernels.items()):
        memory_sites = blind_sites = 0
        for i, insn in enumerate(kernel.cfg.insns):
            for acc in semantics.memory_accesses(insn):
                memory_sites += 1
                if kernel.intervals.base_interval(i, acc.base & 7).is_top:
                    blind_sites += 1
        counterless = sum(1 for lp in kernel.hangs.loops if not lp.counters)
        out.append(
            KernelProbe(
                name=name,
                memory_sites=memory_sites,
                blind_sites=blind_sites,
                loops=len(kernel.hangs.loops),
                counterless_loops=counterless,
            )
        )
    return tuple(out)


def _probe_specs(predictor: OutcomePredictor, region: str) -> list[FaultSpec]:
    """The deterministic probe sites of one steerable region."""
    specs: list[FaultSpec] = []
    if region == "regular_reg":
        for reg in range(8):
            for bit in range(32):
                specs.append(
                    FaultSpec(
                        Region.REGULAR_REG, 0, time_blocks=1,
                        bit=bit, reg_index=reg,
                    )
                )
    elif region == "text":
        for name in sorted(predictor.kernels):
            try:
                sym = predictor.symtab.lookup(name)
            except KeyError:
                continue
            n_insns = len(predictor.kernels[name].cfg.insns)
            for byte_off in range(n_insns * 8):
                for bit in range(8):
                    specs.append(
                        FaultSpec(
                            Region.TEXT, 0, time_blocks=1,
                            bit=bit, address=sym.addr + byte_off,
                        )
                    )
    elif region in ("data", "bss"):
        for sym in predictor.symtab.symbols(region, "user"):
            for bit in range(8):
                specs.append(
                    FaultSpec(
                        getattr(Region, region.upper()), 0, time_blocks=1,
                        bit=bit, address=sym.addr,
                    )
                )
    elif region == "message":
        for rank, (starts, plist) in sorted(predictor._streams.items()):
            total = starts[-1] + plist[-1].size if plist else 0
            for byte in range(min(total, _MESSAGE_PROBE_BYTES)):
                for bit in (0, 7):
                    specs.append(
                        FaultSpec(
                            Region.MESSAGE, rank, bit=bit, target_byte=byte
                        )
                    )
    return specs


def _probe_regions(predictor: OutcomePredictor) -> tuple[RegionProbe, ...]:
    out = []
    for region in STEERABLE_REGIONS:
        counts = {s.value: 0 for s in Stratum}
        oracle_proven = 0
        for spec in _probe_specs(predictor, region):
            stratum = predictor.stratum(spec)
            counts[stratum.value] += 1
            if stratum is Stratum.MASKED and predictor.oracle.verdict(spec).masked:
                oracle_proven += 1
        out.append(
            RegionProbe(
                region=region,
                strata=tuple(sorted((k, v) for k, v in counts.items() if v)),
                masked_oracle_proven=oracle_proven,
            )
        )
    return tuple(out)


def build_probe(predictor: OutcomePredictor) -> PredictorProbe:
    """Snapshot one predictor for the SA3xx passes."""
    return PredictorProbe(
        app=predictor.app_name,
        kernels=_probe_kernels(predictor),
        regions=_probe_regions(predictor),
        hang_floor=predictor.hang_floor,
        block_limit=predictor.block_limit,
        windows=(
            (STATIC_IMAGE_WINDOW[0], STATIC_IMAGE_WINDOW[1]),
            predictor.stack_window,
        ),
    )


# ----------------------------------------------------------------------
# passes
# ----------------------------------------------------------------------
def _diag(app: str, code: str, token: str, message: str) -> Diagnostic:
    return Diagnostic(code, f"{app}:{token}", 0, message)


def _check_interval_blindness(probe: PredictorProbe) -> list[Diagnostic]:
    diags = []
    for k in probe.kernels:
        if k.memory_sites and k.blind_sites == k.memory_sites:
            diags.append(
                _diag(
                    probe.app,
                    "SA301",
                    k.name,
                    f"all {k.memory_sites} access bases of {k.name!r} are "
                    f"TOP: no crash stratum is provable for this kernel",
                )
            )
    return diags


def _check_hang_blindness(probe: PredictorProbe) -> list[Diagnostic]:
    diags = []
    for k in probe.kernels:
        if k.loops and k.counterless_loops == k.loops:
            diags.append(
                _diag(
                    probe.app,
                    "SA302",
                    k.name,
                    f"{k.name!r} has {k.loops} loop(s) but no recognized "
                    f"counter: loop corruption cannot be steered into the "
                    f"hang stratum",
                )
            )
    return diags


def _check_masked_leak(probe: PredictorProbe) -> list[Diagnostic]:
    diags = []
    for r in probe.regions:
        masked = r.count(Stratum.MASKED)
        if masked > r.masked_oracle_proven:
            diags.append(
                _diag(
                    probe.app,
                    "SA303",
                    r.region,
                    f"{r.region} claims {masked} masked probe sites but the "
                    f"oracle proved only {r.masked_oracle_proven}: masked "
                    f"precision is no longer guaranteed",
                )
            )
    return diags


def _check_starvation(probe: PredictorProbe) -> list[Diagnostic]:
    diags = []
    for r in probe.regions:
        if r.total and r.count(Stratum.UNCERTAIN) == r.total:
            diags.append(
                _diag(
                    probe.app,
                    "SA304",
                    r.region,
                    f"all {r.total} probe sites of {r.region} are uncertain: "
                    f"the predictor adds no stratification power there",
                )
            )
    return diags


def _check_budget_drift(probe: PredictorProbe) -> list[Diagnostic]:
    from repro.staticanalysis.outcomes.hangs import hang_bit_floor

    expected = hang_bit_floor(probe.block_limit)
    if probe.hang_floor != expected:
        return [
            _diag(
                probe.app,
                "SA305",
                "hang-floor",
                f"recorded hang-bit floor {probe.hang_floor} != {expected} "
                f"recomputed from block budget {probe.block_limit}",
            )
        ]
    return []


def _check_layout_drift(probe: PredictorProbe) -> list[Diagnostic]:
    diags = []
    static_w, stack_w = probe.windows
    if tuple(static_w) != STATIC_IMAGE_WINDOW:
        diags.append(
            _diag(
                probe.app,
                "SA306",
                "static-window",
                f"predictor static window {tuple(static_w)} != layout "
                f"authority {STATIC_IMAGE_WINDOW}",
            )
        )
    if tuple(stack_w) != stack_window():
        diags.append(
            _diag(
                probe.app,
                "SA306",
                "stack-window",
                f"predictor stack window {tuple(stack_w)} != layout "
                f"authority {stack_window()}",
            )
        )
    return diags


def audit_outcomes(probe: PredictorProbe) -> list[Diagnostic]:
    """Run every SA3xx pass over one probe; deterministic order."""
    raw: list[Diagnostic] = []
    raw += _check_interval_blindness(probe)
    raw += _check_hang_blindness(probe)
    raw += _check_masked_leak(probe)
    raw += _check_starvation(probe)
    raw += _check_budget_drift(probe)
    raw += _check_layout_drift(probe)
    return sort_diagnostics(raw)
