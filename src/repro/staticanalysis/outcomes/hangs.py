"""Loop-bound analysis: which fault sites can stall a kernel?

The paper's hang manifestation is an execution that exceeds its time
budget without crashing - in this suite, tripping the
:mod:`repro.engine.budgets` block or round limits.  Statistically the
cheapest way to get there is corrupting loop-termination state: the
counter register, its increment, its bound, or the back-edge branch
itself.  This module finds those sites from the CFG alone.

Two refinements keep the stratum honest:

* a counter that also *indexes memory* does not hang when corrupted -
  the very next iteration dereferences the corrupted value and faults.
  Those counters are handed to the interval/crash analysis instead
  (the ``memory_indexed`` set), matching the empirical behaviour of the
  suite's kernels, whose row counters feed address arithmetic;
* raising a loop bound only hangs if the *extra iterations* exceed the
  block budget; :func:`hang_bit_floor` converts the engine's budget
  into the minimum bit position worth flagging, so low immediate bits
  (bound 100 -> 101) stay out of the stratum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu import semantics
from repro.cpu.isa import BRANCH_OPS, Insn, Op
from repro.staticanalysis.cfg import ControlFlowGraph

#: Sign bit of the 32-bit immediate: flipping it negates (well, offsets
#: by 2^31) an increment or bound, which for an up-counting loop means
#: the exit test never fires.
_SIGN_BIT = 31


def hang_bit_floor(block_limit: int) -> int:
    """Minimum immediate bit ``k`` such that adding ``2^k`` iterations
    to a loop bound must exceed ``block_limit`` executed blocks, under
    the conservative assumption of one block per iteration."""
    if block_limit <= 0:
        raise ValueError(f"block limit must be positive: {block_limit}")
    return max(0, (block_limit - 1).bit_length())


@dataclass(frozen=True)
class Loop:
    """One natural loop of a kernel CFG."""

    header: int
    tail: int
    body: frozenset[int]
    depth: int
    #: Counter registers incremented in the body and tested by the
    #: loop-controlling comparison, split by whether they also feed
    #: address computations inside the body.
    pure_counters: frozenset[int]
    memory_indexed_counters: frozenset[int]
    #: Instruction indices of loop-control state in the text image.
    bound_cmp_insns: frozenset[int]
    increment_insns: frozenset[int]
    control_branch_insns: frozenset[int]
    #: True when iteration ends on an exact-match test (JZ/JNZ): a
    #: corrupted counter that skips past the bound then never equals it
    #: again, so the loop wraps the full u32 range - the one counter
    #: corruption that hangs rather than merely re-running a bounded
    #: number of iterations.
    exact_exit: bool = False

    @property
    def counters(self) -> frozenset[int]:
        return self.pure_counters | self.memory_indexed_counters


class HangAnalysis:
    """Natural-loop and counter analysis of one kernel CFG."""

    def __init__(self, cfg: ControlFlowGraph) -> None:
        self.cfg = cfg
        self.loops: list[Loop] = self._find_loops()

    # ------------------------------------------------------------------
    def _natural_loop_body(self, tail: int, header: int) -> frozenset[int]:
        """Blocks of the natural loop of back edge ``tail -> header``."""
        body = {header, tail}
        work = [tail]
        while work:
            b = work.pop()
            if b == header:
                continue
            for p in self.cfg.blocks[b].preds:
                if p not in body:
                    body.add(p)
                    work.append(p)
        return frozenset(body)

    def _address_regs(self, insn_ids: list[int]) -> frozenset[int]:
        """Registers feeding memory addresses within the loop body,
        closed under data flow inside the body (a reg copied into an
        address base is itself address-feeding)."""
        addr: set[int] = set()
        for i in insn_ids:
            for acc in semantics.memory_accesses(self.cfg.insns[i]):
                addr.add(acc.base & 7)
        changed = True
        while changed:
            changed = False
            for i in insn_ids:
                eff = semantics.effects(self.cfg.insns[i])
                if eff.writes & addr:
                    grown = eff.reads - addr
                    if grown:
                        addr |= grown
                        changed = True
        return frozenset(addr)

    def _find_loops(self) -> list[Loop]:
        cfg = self.cfg
        dom = cfg.dominators()
        loops: list[Loop] = []
        for block in cfg.blocks:
            for succ in block.succs:
                if succ not in dom[block.index]:
                    continue
                header, tail = succ, block.index
                body = self._natural_loop_body(tail, header)
                insn_ids = [
                    i for b in sorted(body)
                    for i in cfg.blocks[b].insn_indices()
                ]
                loops.append(self._analyze_loop(header, tail, body, insn_ids))
        loops.sort(key=lambda lp: (lp.header, lp.tail))
        return loops

    def _analyze_loop(
        self,
        header: int,
        tail: int,
        body: frozenset[int],
        insn_ids: list[int],
    ) -> Loop:
        cfg = self.cfg

        # 1. conditional branches that decide whether iteration continues:
        #    the back-edge branch itself plus any in-body conditional
        #    branch with a successor outside the body (a loop exit).
        control: set[int] = set()
        comparisons: dict[int, tuple[int, Insn]] = {}
        for b in sorted(body):
            block = cfg.blocks[b]
            last = block.end - 1
            insn = cfg.insns[last]
            is_back_edge = b == tail and header in block.succs
            exits = any(s not in body for s in block.succs)
            if insn.op in semantics.COND_BRANCH_OPS and (is_back_edge or exits):
                # The flag producer is the nearest preceding CMP/CMPI in
                # the same block (flags survive only within one block in
                # the kernels' codegen).
                control.add(last)
                for j in range(last - 1, block.start - 1, -1):
                    if cfg.insns[j].op in (Op.CMP, Op.CMPI):
                        comparisons[last] = (j, cfg.insns[j])
                        break

        # 2. registers tested by a loop-controlling comparison.
        tested: set[int] = set()
        bound_cmps: set[int] = set()
        for branch in control:
            if branch not in comparisons:
                continue
            cmp_idx, cmp_insn = comparisons[branch]
            tested.add(cmp_insn.r1 & 7)
            if cmp_insn.op is Op.CMP:
                tested.add(cmp_insn.r2 & 7)
            bound_cmps.add(cmp_idx)

        # 3. counters: tested registers stepped in the body.  ADDI is
        # the immediate-step form (its imm is a steerable text site);
        # ADD/SUB self-updates are variable-step counters (the vector
        # kernels' remaining-count pattern: ``sub ecx, eax``).
        increments: set[int] = set()
        counters: set[int] = set()
        for i in insn_ids:
            insn = cfg.insns[i]
            if (insn.r1 & 7) not in tested:
                continue
            if insn.op is Op.ADDI and insn.imm != 0:
                counters.add(insn.r1 & 7)
                increments.add(i)
            elif insn.op in (Op.ADD, Op.SUB):
                counters.add(insn.r1 & 7)

        addr_regs = self._address_regs(insn_ids)
        memory_indexed = frozenset(counters & addr_regs)
        exact = any(
            cfg.insns[b].op in (Op.JZ, Op.JNZ) for b in control
        )
        return Loop(
            header=header,
            tail=tail,
            body=body,
            depth=cfg.blocks[header].loop_depth,
            pure_counters=frozenset(counters - addr_regs),
            memory_indexed_counters=memory_indexed,
            bound_cmp_insns=frozenset(bound_cmps),
            increment_insns=frozenset(increments),
            control_branch_insns=frozenset(control),
            exact_exit=exact,
        )

    # ------------------------------------------------------------------
    # register-level summary
    # ------------------------------------------------------------------
    def pure_counter_regs(self) -> frozenset[int]:
        """Registers acting as a pure (non-address) loop counter in at
        least one loop and never indexing memory in any loop - the
        register stratum where a flip stalls rather than crashes."""
        pure: set[int] = set()
        indexed: set[int] = set()
        for loop in self.loops:
            pure |= loop.pure_counters
            indexed |= loop.memory_indexed_counters
        return frozenset(pure - indexed)

    def memory_indexed_counter_regs(self) -> frozenset[int]:
        out: set[int] = set()
        for loop in self.loops:
            out |= loop.memory_indexed_counters
        return frozenset(out)

    # ------------------------------------------------------------------
    # text-level summary
    # ------------------------------------------------------------------
    def hang_prone_text_bits(self, block_limit: int) -> frozenset[tuple[int, int]]:
        """(insn_index, bit) pairs in the text image whose flip is
        predicted to stall the kernel past ``block_limit`` blocks.

        Three mechanisms, all on loop-control instructions:

        * back-edge/exit **branch** opcode flips that decode to another
          branch (condition inversion or JMP: iteration decision breaks
          while control stays inside the function);
        * **bound** (CMPI) immediate bits that are currently 0 at or
          above :func:`hang_bit_floor` - setting one adds at least
          ``2^k >= block_limit`` iterations - plus the sign bit;
        * **increment** (ADDI) immediate flips that zero the step
          (``imm == 2^k``) or flip its sign.
        """
        floor = hang_bit_floor(block_limit)
        out: set[tuple[int, int]] = set()
        for loop in self.loops:
            for i in loop.control_branch_insns:
                op = int(self.cfg.insns[i].op)
                for b in range(8):
                    flipped = op ^ (1 << b)
                    try:
                        if Op(flipped) in BRANCH_OPS:
                            out.add((i, b))
                    except ValueError:
                        continue  # undefined opcode: crash, not hang
            for i in loop.bound_cmp_insns:
                insn = self.cfg.insns[i]
                if insn.op is not Op.CMPI:
                    continue  # register-register bound: no immediate to flip
                imm = insn.imm & 0xFFFF_FFFF
                for k in range(floor, 31):
                    if not imm & (1 << k):
                        out.add((i, 32 + k))
                out.add((i, 32 + _SIGN_BIT))
            for i in loop.increment_insns:
                imm = self.cfg.insns[i].imm & 0xFFFF_FFFF
                for k in range(32):
                    if imm == (1 << k):
                        out.add((i, 32 + k))
                out.add((i, 32 + _SIGN_BIT))
        return frozenset(out)


__all__ = ["HangAnalysis", "Loop", "hang_bit_floor"]
