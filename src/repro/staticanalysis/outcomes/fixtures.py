"""Deliberately broken predictor probes, one per SA3xx code.

Mirrors :mod:`repro.staticanalysis.propagation.fixtures`: the audit
passes are only trustworthy if each can be made to fire on demand.
Every builder starts from the real WaveToy probe and
``dataclasses.replace``-s one specific defect into it; the triggered
code is the builder's name, and :data:`FIXTURES` maps code -> builder
for the drift test that insists every documented code has a triggering
fixture.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache

from repro.staticanalysis.outcomes.passes import (
    KernelProbe,
    PredictorProbe,
    RegionProbe,
    build_probe,
)


@lru_cache(maxsize=1)
def _base() -> PredictorProbe:
    from repro.injection.campaign import Campaign
    from repro.staticanalysis.outcomes.predictor import OutcomePredictor

    campaign = Campaign.from_registry("wavetoy", nprocs=2)
    return build_probe(OutcomePredictor.from_campaign(campaign))


def interval_blindness() -> PredictorProbe:
    """SA301: a kernel whose every access base degraded to TOP."""
    base = _base()
    blind = KernelProbe(
        name="wt_blind_kernel",
        memory_sites=6,
        blind_sites=6,
        loops=1,
        counterless_loops=0,
    )
    return replace(base, kernels=base.kernels + (blind,))


def hang_blindness() -> PredictorProbe:
    """SA302: loops present, no counter recognized in any of them."""
    base = _base()
    blind = KernelProbe(
        name="wt_wild_loop",
        memory_sites=4,
        blind_sites=0,
        loops=2,
        counterless_loops=2,
    )
    return replace(base, kernels=base.kernels + (blind,))


def masked_leak() -> PredictorProbe:
    """SA303: a region claiming masked sites beyond the oracle's proof."""
    base = _base()
    leaky = RegionProbe(
        region="data",
        strata=(("masked", 5), ("sdc-risk", 3)),
        masked_oracle_proven=3,
    )
    regions = tuple(
        leaky if r.region == "data" else r for r in base.regions
    )
    return replace(base, regions=regions)


def starvation() -> PredictorProbe:
    """SA304: a steerable region that is uncertain wall to wall."""
    base = _base()
    starved = RegionProbe(
        region="message",
        strata=(("uncertain", 64),),
        masked_oracle_proven=0,
    )
    regions = tuple(
        starved if r.region == "message" else r for r in base.regions
    )
    return replace(base, regions=regions)


def budget_drift() -> PredictorProbe:
    """SA305: the recorded hang floor no longer matches the budget."""
    base = _base()
    return replace(base, hang_floor=base.hang_floor + 3)


def layout_drift() -> PredictorProbe:
    """SA306: predictor windows diverged from the layout authority."""
    base = _base()
    static_w, stack_w = base.windows
    return replace(
        base, windows=(static_w, (stack_w[0] - 0x1000, stack_w[1]))
    )


#: code -> builder whose audit must report that code.
FIXTURES = {
    "SA301": interval_blindness,
    "SA302": hang_blindness,
    "SA303": masked_leak,
    "SA304": starvation,
    "SA305": budget_drift,
    "SA306": layout_drift,
}
