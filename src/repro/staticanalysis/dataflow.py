"""Worklist dataflow analyses over the kernel CFG.

A single generic fixpoint engine (:func:`solve`) drives both directions;
the two client analyses are the classic pair:

* **register liveness** (backward, may): which registers hold a value
  that some path will still read - the static counterpart of the
  paper's section-6.1.1 observation that register faults manifest in
  proportion to live-register occupancy;
* **reaching definitions** (forward, may): which write of a register can
  still be the source of its current value - the basis of the
  use-before-def and dead-write diagnostics.

Both lattices are powersets with union as the join, so transfer
functions are gen/kill pairs composed per basic block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cpu import semantics
from repro.cpu.registers import EAX, EBP, ESP
from repro.staticanalysis.cfg import ControlFlowGraph

#: Registers treated as live when a kernel returns: the cdecl return
#: value plus the stack/frame pair the caller's epilogue relies on.
#: (The kernels clobber the callee-saved set freely, so extending this
#: to ebx/esi/edi would drown the liveness signal in convention.)
EXIT_LIVE: frozenset[int] = frozenset({EAX, ESP, EBP})

#: Registers defined before entry by the calling convention: ``VM.call``
#: materialises the stack pointer and frame pointer; everything else a
#: kernel reads it must first define (or the linter's SA002 fires).
ENTRY_DEFINED: frozenset[int] = frozenset({ESP, EBP})

#: Pseudo definition site for convention-provided registers.
ENTRY_DEF = -1


def solve(
    cfg: ControlFlowGraph,
    *,
    backward: bool,
    boundary: frozenset,
    transfer: Callable[[int, frozenset], frozenset],
) -> tuple[list[frozenset], list[frozenset]]:
    """Generic union-join worklist fixpoint.

    Returns ``(in_sets, out_sets)`` per block, where "in" is the edge
    facing the analysis direction (predecessors forward, successors
    backward) and ``transfer`` maps a block's in-set to its out-set.
    ``boundary`` seeds the direction's boundary blocks (entry block
    forward; exit blocks - those without successors - backward).
    """
    nblocks = len(cfg.blocks)
    in_sets: list[frozenset] = [frozenset()] * nblocks
    out_sets: list[frozenset] = [frozenset()] * nblocks

    def sources(b: int) -> list[int]:
        return cfg.blocks[b].succs if backward else cfg.blocks[b].preds

    def is_boundary(b: int) -> bool:
        return not sources(b) if backward else b == 0

    work = list(range(nblocks))
    while work:
        b = work.pop(0)
        gathered: frozenset = boundary if is_boundary(b) else frozenset()
        for s in sources(b):
            gathered = gathered | out_sets[s]
        new_out = transfer(b, gathered)
        if gathered == in_sets[b] and new_out == out_sets[b]:
            continue
        in_sets[b], out_sets[b] = gathered, new_out
        dests = (
            cfg.blocks[b].preds if backward else cfg.blocks[b].succs
        )
        for d in dests:
            if d not in work:
                work.append(d)
    return in_sets, out_sets


# ----------------------------------------------------------------------
# register liveness (backward)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Liveness:
    """Live register sets at block and instruction granularity."""

    cfg: ControlFlowGraph
    #: live-in / live-out per block index (register index sets).
    block_in: list[frozenset[int]]
    block_out: list[frozenset[int]]
    #: live set immediately *before* each instruction executes.
    before: list[frozenset[int]]
    #: live set immediately *after* each instruction executes.
    after: list[frozenset[int]]

    def live_registers(self) -> frozenset[int]:
        """Registers live at any program point (nonzero AVF support)."""
        live: frozenset[int] = frozenset()
        for s in self.before:
            live = live | s
        return live


def liveness(
    cfg: ControlFlowGraph, exit_live: frozenset[int] = EXIT_LIVE
) -> Liveness:
    """Backward may-analysis: ``live_in = use U (live_out - def)``."""

    def transfer(b: int, live_out: frozenset) -> frozenset:
        live = live_out
        for i in reversed(cfg.blocks[b].insn_indices()):
            eff = semantics.effects(cfg.insns[i])
            live = (live - eff.writes) | eff.reads
        return live

    # "in" faces successors for a backward problem: block_out first.
    block_out, block_in = solve(
        cfg, backward=True, boundary=exit_live, transfer=transfer
    )

    n = len(cfg.insns)
    before: list[frozenset[int]] = [frozenset()] * n
    after: list[frozenset[int]] = [frozenset()] * n
    for block in cfg.blocks:
        live = block_out[block.index]
        for i in reversed(block.insn_indices()):
            eff = semantics.effects(cfg.insns[i])
            after[i] = live
            live = (live - eff.writes) | eff.reads
            before[i] = live
    return Liveness(
        cfg=cfg,
        block_in=block_in,
        block_out=block_out,
        before=before,
        after=after,
    )


# ----------------------------------------------------------------------
# reaching definitions (forward)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReachingDefs:
    """Definitions (insn_index, reg) reaching each instruction.

    ``ENTRY_DEF`` (-1) marks the convention-provided definitions of
    ESP/EBP that exist before the first instruction.
    """

    cfg: ControlFlowGraph
    block_in: list[frozenset[tuple[int, int]]]
    block_out: list[frozenset[tuple[int, int]]]
    #: defs reaching the point just before each instruction.
    before: list[frozenset[tuple[int, int]]]

    def defs_of(self, insn_index: int, reg: int) -> frozenset[int]:
        """Instruction indices whose write of ``reg`` can reach
        ``insn_index`` (possibly including ``ENTRY_DEF``)."""
        return frozenset(
            d for d, r in self.before[insn_index] if r == reg
        )


def reaching_definitions(cfg: ControlFlowGraph) -> ReachingDefs:
    """Forward may-analysis: ``out = gen U (in - kill)``."""
    entry_defs = frozenset((ENTRY_DEF, r) for r in ENTRY_DEFINED)

    def step(defs: frozenset, i: int) -> frozenset:
        eff = semantics.effects(cfg.insns[i])
        if not eff.writes:
            return defs
        kept = frozenset(d for d in defs if d[1] not in eff.writes)
        return kept | frozenset((i, r) for r in eff.writes)

    def transfer(b: int, reach_in: frozenset) -> frozenset:
        defs = reach_in
        for i in cfg.blocks[b].insn_indices():
            defs = step(defs, i)
        return defs

    block_in, block_out = solve(
        cfg, backward=False, boundary=entry_defs, transfer=transfer
    )

    before: list[frozenset[tuple[int, int]]] = [frozenset()] * len(cfg.insns)
    for block in cfg.blocks:
        defs = block_in[block.index]
        for i in block.insn_indices():
            before[i] = defs
            defs = step(defs, i)
    return ReachingDefs(
        cfg=cfg, block_in=block_in, block_out=block_out, before=before
    )
