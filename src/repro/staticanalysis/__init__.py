"""Static fault-vulnerability analysis over the toy ISA.

The campaigns in :mod:`repro.injection` measure fault sensitivity by
*running* thousands of perturbed executions.  This package predicts the
same structural quantities without executing anything, the trade ZOFI
makes against full fault-injection runs:

* :mod:`repro.staticanalysis.cfg` - decode assembled bytes into a
  basic-block control-flow graph;
* :mod:`repro.staticanalysis.dataflow` - a worklist fixpoint engine with
  backward register liveness and forward reaching definitions;
* :mod:`repro.staticanalysis.avf` - an ACE/AVF-style estimator for
  per-register fault sensitivity and a per-bit text-segment
  vulnerability map;
* :mod:`repro.staticanalysis.lint` - diagnostics (``SA001``..) built on
  the analyses, run over every shipped kernel in CI;
* :mod:`repro.staticanalysis.validation` - cross-check of the static
  predictions against a dynamic register-injection campaign;
* :mod:`repro.staticanalysis.mpicheck` - MUST/MPI-Checker-style
  communication verification (``SA1xx``) over extracted skeletons;
* :mod:`repro.staticanalysis.propagation` - flow-sensitive taint cones,
  the per-app detector-coverage audit (``SA2xx``), and the masking
  oracle behind ``campaign run --prune-masked``.
"""

from repro.staticanalysis.avf import AVFReport, analyze_function, analyze_program
from repro.staticanalysis.cfg import BasicBlock, ControlFlowGraph
from repro.staticanalysis.dataflow import liveness, reaching_definitions
from repro.staticanalysis.lint import Diagnostic, lint_function, lint_program
from repro.staticanalysis.propagation import (
    MaskingOracle,
    PropagationCone,
    SiteClass,
    TaintAnalysis,
)

__all__ = [
    "AVFReport",
    "BasicBlock",
    "ControlFlowGraph",
    "Diagnostic",
    "MaskingOracle",
    "PropagationCone",
    "SiteClass",
    "TaintAnalysis",
    "analyze_function",
    "analyze_program",
    "lint_function",
    "lint_program",
    "liveness",
    "reaching_definitions",
]
