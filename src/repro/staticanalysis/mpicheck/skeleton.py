"""Communication-skeleton extraction by symbolic dry run.

The extractor runs the application under the normal cooperative
scheduler with two substitutions:

* every rank's VM is wrapped in a :class:`DryRunVM` that records kernel
  invocations and returns without executing them (payload *computation*
  is elided; payload *sizes* come from the application's own buffer
  arithmetic, so the message traffic is byte-faithful);
* every rank's communicator is wrapped in a
  :class:`~repro.mpi.pmpi.ProfilingComm` whose interceptors record one
  :class:`CommEvent` per MPI call, stamped with a job-global sequence
  number, and capture request handles and completion statuses.

The MPI stack itself - matching, eager/rendezvous framing, collective
algorithms - executes unmodified, and a channel tap records every packet
each rank receives.  ``ctx.symbolic`` is set so applications skip the
consistency checks that read kernel-produced memory.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.mpi.adi import ParsedMessage, parse_packet
from repro.mpi.api import Comm
from repro.mpi.datatypes import Datatype
from repro.mpi.pmpi import ProfilingComm
from repro.mpi.simulator import Job, JobConfig, JobStatus
from repro.mpi.status import Request, Status

#: Scheduler-round budget for a dry run: generous enough for any shipped
#: configuration, small enough that a livelocked fixture still halts.
DRY_RUN_ROUND_LIMIT = 200_000


class DryRunVM:
    """A VM stand-in that elides kernel execution.

    ``call`` records the invocation and returns 0 without running any
    instruction; every other attribute (``clock``, ``block_limit``, ...)
    is delegated to the wrapped real VM, so library code that charges
    simulated time (checksum verification, bound checks) still works.
    """

    def __init__(self, vm, on_call=None) -> None:
        self._vm = vm
        self._on_call = on_call

    def call(self, function, args: Sequence[int] = ()) -> int:
        if self._on_call is not None:
            self._on_call(str(function), tuple(args))
        return 0

    def __getattr__(self, name: str):
        return getattr(self._vm, name)


@dataclass
class CommEvent:
    """One recorded MPI call (or one half of a combined call)."""

    seq: int  #: job-global order stamp
    rank: int
    call: str  #: API name ("isend", "sendrecv", "allreduce", ...)
    kind: str  #: "send" | "recv" | "collective" | "probe"
    peer: int | None = None  #: dest/source; may be ANY_SOURCE
    tag: int | None = None  #: may be ANY_TAG
    count: int = 0
    dtype: str = ""  #: datatype name ("MPI_DOUBLE", ...)
    nbytes: int = 0  #: send payload / receive capacity in bytes
    blocking: bool = True
    root: int | None = None  #: collective root (None if rootless)
    op: str | None = None  #: reduction operator name
    request: Request | None = None  #: handle of a nonblocking call
    completed: bool = False
    status: Status | None = None  #: completion status of a receive
    waited: bool = False  #: request was passed to wait/waitall

    @property
    def collective_signature(self) -> tuple:
        """What every rank must agree on for this collective."""
        return (self.call, self.root, self.count, self.dtype, self.op)

    def __str__(self) -> str:
        where = f"rank {self.rank} @{self.seq}"
        if self.kind == "collective":
            return f"{where}: {self.call}(count={self.count})"
        return (
            f"{where}: {self.call}(peer={self.peer}, tag={self.tag}, "
            f"count={self.count} {self.dtype})"
        )


@dataclass(frozen=True)
class PacketRecord:
    """One packet delivered to a rank's channel endpoint."""

    index: int  #: delivery order within the destination rank
    dst: int  #: receiving rank
    size: int  #: wire bytes including the 48-byte header
    src: int
    tag: int
    mtype: int  #: MSG_EAGER / MSG_RTS / MSG_CTS / MSG_RNDV_DATA
    payload_len: int
    seq: int  #: sender-side sequence number (rendezvous handle)


@dataclass
class CommSkeleton:
    """Everything the static passes need from one dry run."""

    app_name: str
    nprocs: int
    status: JobStatus
    detail: str
    events: list[CommEvent]
    packets: list[PacketRecord]
    kernel_calls: list[tuple[int, str]]
    message_classes: dict[int, str] = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        return self.status is JobStatus.COMPLETED

    def sends(self) -> list[CommEvent]:
        return [e for e in self.events if e.kind == "send"]

    def recvs(self) -> list[CommEvent]:
        return [e for e in self.events if e.kind == "recv"]

    def collectives(self, rank: int | None = None) -> list[CommEvent]:
        return [
            e
            for e in self.events
            if e.kind == "collective" and (rank is None or e.rank == rank)
        ]

    def blocked_ops(self) -> dict[int, list[CommEvent]]:
        """Per rank, the operations it is still inside at job end: started
        blocking calls that never completed, plus nonblocking requests
        that were waited on but never finished."""
        out: dict[int, list[CommEvent]] = {}
        for e in self.events:
            if e.completed or e.kind == "probe":
                continue
            stuck = e.blocking or (
                e.waited and e.request is not None and not e.request.done
            )
            if stuck:
                out.setdefault(e.rank, []).append(e)
        return out


def _dtype_name(dtype: Any) -> str:
    return str(dtype) if isinstance(dtype, Datatype) else repr(dtype)


def _dtype_size(dtype: Any) -> int:
    return dtype.size if isinstance(dtype, Datatype) else 0


class SkeletonRecorder:
    """Wires one job's ranks for recording and assembles the skeleton."""

    def __init__(self, app_name: str, nprocs: int) -> None:
        self.app_name = app_name
        self.nprocs = nprocs
        self.events: list[CommEvent] = []
        self.packets: list[PacketRecord] = []
        self.kernel_calls: list[tuple[int, str]] = []
        self._seq = 0
        #: live (id(args) -> events) entries for in-flight calls
        self._pending: dict[int, list[CommEvent]] = {}
        #: id(Request) -> the event that created it
        self._req_events: dict[int, CommEvent] = {}
        self._sigs = {
            name: inspect.signature(getattr(Comm, name))
            for name in (
                "send", "isend", "recv", "irecv", "sendrecv",
                "bcast", "reduce", "allreduce", "gather", "scatter",
                "allgather", "alltoall", "probe", "iprobe",
            )
        }

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, job: Job) -> None:
        for rank, ctx in enumerate(job.contexts):
            ctx.symbolic = True
            ctx.vm = DryRunVM(
                ctx.vm,
                on_call=lambda name, args, r=rank: self.kernel_calls.append((r, name)),
            )
            prof = ProfilingComm(ctx.comm)
            prof.add_interceptor(
                lambda name, args, kwargs, r=rank: self._on_call(r, name, args, kwargs)
            )
            prof.add_return_interceptor(
                lambda name, args, kwargs, result, r=rank: self._on_return(
                    r, name, args, kwargs, result
                )
            )
            ctx.comm = prof
            job.endpoints[rank].tap = (
                lambda packet, r=rank: self._on_packet(r, packet)
            )

    # ------------------------------------------------------------------
    # call interception
    # ------------------------------------------------------------------
    def _bind(self, name: str, args: tuple, kwargs: dict) -> dict:
        bound = self._sigs[name].bind(None, *args, **kwargs)
        bound.apply_defaults()
        return dict(bound.arguments)

    def _new_event(self, **fields) -> CommEvent:
        event = CommEvent(seq=self._seq, **fields)
        self._seq += 1
        self.events.append(event)
        return event

    def _on_call(self, rank: int, name: str, args: tuple, kwargs: dict) -> None:
        if name in ("send", "isend"):
            a = self._bind(name, args, kwargs)
            self._pending[id(args)] = [
                self._new_event(
                    rank=rank,
                    call=name,
                    kind="send",
                    peer=a["dest"],
                    tag=a["tag"],
                    count=a["count"],
                    dtype=_dtype_name(a["dtype"]),
                    nbytes=a["count"] * _dtype_size(a["dtype"]),
                    blocking=(name == "send"),
                )
            ]
        elif name in ("recv", "irecv"):
            a = self._bind(name, args, kwargs)
            self._pending[id(args)] = [
                self._new_event(
                    rank=rank,
                    call=name,
                    kind="recv",
                    peer=a["source"],
                    tag=a["tag"],
                    count=a["count"],
                    dtype=_dtype_name(a["dtype"]),
                    nbytes=a["count"] * _dtype_size(a["dtype"]),
                    blocking=(name == "recv"),
                )
            ]
        elif name == "sendrecv":
            a = self._bind(name, args, kwargs)
            # The recv half posts first (mirroring the implementation),
            # then the send half; both complete when the call returns.
            recv = self._new_event(
                rank=rank,
                call=name,
                kind="recv",
                peer=a["source"],
                tag=a["recv_tag"],
                count=a["recv_count"],
                dtype=_dtype_name(a["recv_dtype"]),
                nbytes=a["recv_count"] * _dtype_size(a["recv_dtype"]),
            )
            send = self._new_event(
                rank=rank,
                call=name,
                kind="send",
                peer=a["dest"],
                tag=a["send_tag"],
                count=a["send_count"],
                dtype=_dtype_name(a["send_dtype"]),
                nbytes=a["send_count"] * _dtype_size(a["send_dtype"]),
            )
            self._pending[id(args)] = [recv, send]
        elif name == "barrier":
            self._pending[id(args)] = [
                self._new_event(rank=rank, call=name, kind="collective")
            ]
        elif name in (
            "bcast", "reduce", "allreduce", "gather", "scatter",
            "allgather", "alltoall",
        ):
            a = self._bind(name, args, kwargs)
            self._pending[id(args)] = [
                self._new_event(
                    rank=rank,
                    call=name,
                    kind="collective",
                    count=a["count"],
                    dtype=_dtype_name(a["dtype"]),
                    nbytes=a["count"] * _dtype_size(a["dtype"]),
                    root=a.get("root"),
                    op=getattr(a.get("op"), "name", None),
                )
            ]
        elif name in ("probe", "iprobe"):
            a = self._bind(name, args, kwargs)
            self._pending[id(args)] = [
                self._new_event(
                    rank=rank,
                    call=name,
                    kind="probe",
                    peer=a["source"],
                    tag=a["tag"],
                    blocking=(name == "probe"),
                )
            ]
        elif name == "wait":
            self._mark_waited(args[0] if args else kwargs.get("req"))
        elif name == "waitall":
            reqs = args[0] if args else kwargs.get("reqs", ())
            for req in list(reqs):
                self._mark_waited(req)

    def _mark_waited(self, req) -> None:
        event = self._req_events.get(id(req))
        if event is not None:
            event.waited = True

    def _on_return(
        self, rank: int, name: str, args: tuple, kwargs: dict, result
    ) -> None:
        events = self._pending.pop(id(args), [])
        for event in events:
            event.completed = True
        if name in ("isend", "irecv") and isinstance(result, Request):
            for event in events:
                event.request = result
                event.completed = False  # completion judged at job end
                self._req_events[id(result)] = event
        elif isinstance(result, Status):
            for event in events:
                if event.kind == "recv":
                    event.status = result

    def _on_packet(self, rank: int, packet: bytes) -> None:
        try:
            msg: ParsedMessage = parse_packet(packet)
        except Exception:  # corrupt frames cannot occur in a dry run
            return
        self.packets.append(
            PacketRecord(
                index=sum(1 for p in self.packets if p.dst == rank),
                dst=rank,
                size=len(packet),
                src=msg.src,
                tag=msg.tag,
                mtype=msg.mtype,
                payload_len=msg.payload_len,
                seq=msg.seq,
            )
        )

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def finish(self, status: JobStatus, detail: str, message_classes) -> CommSkeleton:
        for event in self.events:
            req = event.request
            if req is not None and req.done:
                event.completed = True
                if event.kind == "recv" and event.status is None:
                    event.status = req.status
        return CommSkeleton(
            app_name=self.app_name,
            nprocs=self.nprocs,
            status=status,
            detail=detail,
            events=list(self.events),
            packets=list(self.packets),
            kernel_calls=list(self.kernel_calls),
            message_classes=dict(message_classes),
        )


def extract_skeleton(
    app,
    nprocs: int = 4,
    *,
    seed: int = 12345,
    round_limit: int = DRY_RUN_ROUND_LIMIT,
) -> CommSkeleton:
    """Dry-run ``app`` on ``nprocs`` ranks and record its skeleton.

    The job is allowed to hang or crash - a deadlocked fixture *should*
    hang - and the termination condition is preserved on the skeleton
    for the passes to interpret.
    """
    job = Job(app, JobConfig(nprocs=nprocs, seed=seed, round_limit=round_limit))
    recorder = SkeletonRecorder(getattr(app, "name", type(app).__name__), nprocs)
    recorder.attach(job)
    result = job.run()
    return recorder.finish(result.status, result.detail, app.message_classes())
