"""Cross-validation of the message-vulnerability map.

The static side predicts, per ``(application, rank)``, the structural
(Crash + Hang) manifestation rate of a uniform single-bit flip in that
rank's incoming byte stream.  The dynamic side *measures* it: a
channel-layer injection campaign (``Region.MESSAGE``, the paper's
section 3.3 injector) flips one bit per run and classifies the outcome.
The two are compared with the same tie-aware Spearman used by the
register-side validation, over every ``(app, rank)`` point with at
least one delivered injection.

The headline prediction is the per-application ordering: the
control-dominated atmosphere model's stream is mostly critical framing
and so must rank above the molecular-dynamics code (moderate header
share), which ranks above the halo-exchange solver (payload-dominated,
near-zero structural rate) - ``climate > moldyn > wavetoy``, the
message-fault sensitivity ordering of the paper's Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.injection.campaign import Campaign
from repro.injection.faults import Region
from repro.injection.outcomes import Manifestation
from repro.mpi.simulator import JobConfig
from repro.staticanalysis.mpicheck.skeleton import extract_skeleton
from repro.staticanalysis.mpicheck.vulnmap import build_vulnerability_map
from repro.staticanalysis.validation import spearman

#: Outcomes counted as structural: the message fault broke the run's
#: control structure instead of (or before) corrupting its answer.
STRUCTURAL = (Manifestation.CRASH, Manifestation.HANG)


@dataclass
class MessageValidationReport:
    """Static prediction vs dynamic measurement, per app and rank."""

    nprocs: int
    trials_per_app: int
    static_scores: dict[tuple[str, int], float] = field(default_factory=dict)
    dynamic_rates: dict[tuple[str, int], float] = field(default_factory=dict)
    app_static: dict[str, float] = field(default_factory=dict)
    app_dynamic: dict[str, float] = field(default_factory=dict)
    rank_correlation: float = 0.0

    @property
    def predicted_ordering(self) -> list[str]:
        return sorted(self.app_static, key=self.app_static.get, reverse=True)

    @property
    def observed_ordering(self) -> list[str]:
        return sorted(self.app_dynamic, key=self.app_dynamic.get, reverse=True)

    @property
    def ordering_agrees(self) -> bool:
        return self.predicted_ordering == self.observed_ordering

    @property
    def text(self) -> str:
        lines = [
            f"message-vulnerability validation "
            f"({self.nprocs} ranks, {self.trials_per_app} injections/app)",
            f"  Spearman rho over (app, rank) points: "
            f"{self.rank_correlation:+.3f}",
            f"  predicted ordering: {' > '.join(self.predicted_ordering)}",
            f"  observed ordering:  {' > '.join(self.observed_ordering)}",
        ]
        for app in self.predicted_ordering:
            lines.append(
                f"  {app:8s} static {100 * self.app_static[app]:5.1f}%  "
                f"dynamic {100 * self.app_dynamic[app]:5.1f}%"
            )
        return "\n".join(lines)


def validate_message_vulnerability(
    trials: int = 60,
    nprocs: int = 4,
    *,
    seed: int = 20040607,
    dry_run_seed: int = 12345,
    apps: dict | None = None,
) -> MessageValidationReport:
    """Predict statically, measure dynamically, correlate.

    ``apps`` maps name -> zero-argument application factory; defaults to
    the shipped suite at its paper-default parameters.
    """
    if apps is None:
        from repro.apps import APPLICATION_SUITE

        apps = dict(APPLICATION_SUITE)
    report = MessageValidationReport(nprocs=nprocs, trials_per_app=trials)

    for name, factory in apps.items():
        # Static side: dry-run skeleton -> per-rank vulnerability map.
        skeleton = extract_skeleton(factory(), nprocs, seed=dry_run_seed)
        vmap = build_vulnerability_map(skeleton)
        for entry in vmap.ranks:
            report.static_scores[(name, entry.rank)] = entry.structural_score
        report.app_static[name] = vmap.structural_score

        # Dynamic side: one channel-layer injection campaign per app.
        campaign = Campaign(factory, JobConfig(nprocs=nprocs), seed=seed)
        region = campaign.run_region(Region.MESSAGE, trials)
        per_rank_total = [0] * nprocs
        per_rank_structural = [0] * nprocs
        for spec, _record, manifestation in region.records:
            per_rank_total[spec.rank] += 1
            per_rank_structural[spec.rank] += manifestation in STRUCTURAL
        for rank in range(nprocs):
            if per_rank_total[rank]:
                report.dynamic_rates[(name, rank)] = (
                    per_rank_structural[rank] / per_rank_total[rank]
                )
        report.app_dynamic[name] = sum(per_rank_structural) / max(trials, 1)

    points = sorted(set(report.static_scores) & set(report.dynamic_rates))
    report.rank_correlation = spearman(
        [report.static_scores[p] for p in points],
        [report.dynamic_rates[p] for p in points],
    )
    return report
