"""MUST/MPI-Checker-style verification passes over a skeleton.

Each pass emits :class:`~repro.staticanalysis.lint.Diagnostic` entries in
the ``SA1xx`` family (the ``SA0xx`` codes belong to the per-kernel
assembly lints, the ``SA2xx`` codes to the propagation audit):

======  ==============================================================
code    meaning
======  ==============================================================
SA101   communication deadlock: a wait-for cycle among blocked ranks
SA102   posted receive never matched by any send
SA103   sent message never received (orphan)
SA104   datatype signature mismatch between matched endpoints
SA105   message longer than the matched receive buffer (truncation)
SA106   nondeterministic wildcard receive (ANY_SOURCE race)
SA107   request never completed by a wait (leak)
SA108   collective sequence diverges across ranks
======  ==============================================================

``function`` carries the ``app:rankN`` label and
``insn_index`` the job-global event sequence number, so the shared
``(function, position, code, message)`` report order applies unchanged.

How the job *ended* gates which findings are meaningful:

* a **hung** job is exactly where deadlock cycles (SA101) live, and its
  unmatched endpoints are real findings;
* a **completed** job can still leak requests (SA107), strand messages
  (SA103), or have executed divergent collective *counts* (SA108);
* a **crashed or aborted** job is cut short mid-flight, so pending
  operations are artifacts of the stop, not bugs - only the structural
  checks (signature, truncation, wildcard, collective prefix) apply.
"""

from __future__ import annotations

from collections import defaultdict

from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG
from repro.mpi.simulator import JobStatus
from repro.staticanalysis.lint import Diagnostic, sort_diagnostics
from repro.staticanalysis.mpicheck.matchgraph import (
    MatchGraph,
    _signature_match,
    build_match_graph,
)
from repro.staticanalysis.mpicheck.skeleton import CommEvent, CommSkeleton

#: Stable diagnostic codes of the MPI communication passes.
MPI_LINT_CODES = {
    "SA101": "communication deadlock (wait-for cycle)",
    "SA102": "posted receive never matched by any send",
    "SA103": "sent message never received",
    "SA104": "datatype signature mismatch between matched endpoints",
    "SA105": "message longer than the matched receive buffer",
    "SA106": "nondeterministic wildcard receive",
    "SA107": "request never completed by a wait",
    "SA108": "collective sequence diverges across ranks",
}

#: Terminations the job reached on its own (queues fully drained).
_SETTLED = (JobStatus.COMPLETED,)
#: Terminations where pending operations are findings, not artifacts.
_PENDING_MEANINGFUL = (JobStatus.COMPLETED, JobStatus.HUNG)


def _src(peer: int | None) -> str:
    return "ANY_SOURCE" if peer == ANY_SOURCE else f"rank {peer}"


def _tag(tag: int | None) -> str:
    return "ANY_TAG" if tag == ANY_TAG else str(tag)


def _diag(skeleton: CommSkeleton, code: str, event: CommEvent, message: str) -> Diagnostic:
    return Diagnostic(
        code, f"{skeleton.app_name}:rank{event.rank}", event.seq, message
    )


# ----------------------------------------------------------------------
# SA101 - deadlock wait-for cycles
# ----------------------------------------------------------------------
def _cyclic_components(adjacency: dict[int, set[int]]) -> list[list[int]]:
    """Tarjan SCCs, keeping only components that contain a cycle."""
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    stack: list[int] = []
    on_stack: set[int] = set()
    out: list[list[int]] = []
    counter = [0]

    def strong(v: int) -> None:
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in sorted(adjacency.get(v, ())):
            if w not in index:
                strong(w)
                low[v] = min(low[v], low[w])
            elif w in on_stack:
                low[v] = min(low[v], index[w])
        if low[v] == index[v]:
            component = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                component.append(w)
                if w == v:
                    break
            if len(component) > 1 or v in adjacency.get(v, ()):
                out.append(sorted(component))
    for v in sorted(adjacency):
        if v not in index:
            strong(v)
    return out


def _check_deadlock(skeleton: CommSkeleton) -> list[Diagnostic]:
    if skeleton.status is not JobStatus.HUNG:
        return []
    blocked = skeleton.blocked_ops()
    adjacency: dict[int, set[int]] = defaultdict(set)
    anchor: dict[int, CommEvent] = {}
    for rank, events in blocked.items():
        anchor[rank] = min(events, key=lambda e: e.seq)
        for event in events:
            if event.peer is not None and 0 <= event.peer < skeleton.nprocs:
                adjacency[rank].add(event.peer)
    diags = []
    for component in _cyclic_components(adjacency):
        head = anchor[min(component)]
        waits = "; ".join(
            f"rank {r} blocked in {anchor[r].call}"
            f"(peer={_src(anchor[r].peer)}, tag={_tag(anchor[r].tag)})"
            for r in component
        )
        diags.append(
            _diag(
                skeleton,
                "SA101",
                head,
                f"wait-for cycle among ranks {component}: {waits}",
            )
        )
    return diags


# ----------------------------------------------------------------------
# SA102/SA103 - unmatched endpoints
# ----------------------------------------------------------------------
def _check_unmatched(skeleton: CommSkeleton, graph: MatchGraph) -> list[Diagnostic]:
    if skeleton.status not in _PENDING_MEANINGFUL:
        return []
    diags = []
    for recv in graph.unmatched_recvs:
        diags.append(
            _diag(
                skeleton,
                "SA102",
                recv,
                f"{recv.call} from {_src(recv.peer)}, tag {_tag(recv.tag)} "
                f"({recv.count} x {recv.dtype}) is never matched by any send",
            )
        )
    for send in graph.unmatched_sends:
        diags.append(
            _diag(
                skeleton,
                "SA103",
                send,
                f"{send.call} to {_src(send.peer)}, tag {_tag(send.tag)} "
                f"({send.nbytes} bytes) is never received",
            )
        )
    return diags


# ----------------------------------------------------------------------
# SA104/SA105 - matched-edge signature checks
# ----------------------------------------------------------------------
def _check_edges(skeleton: CommSkeleton, graph: MatchGraph) -> list[Diagnostic]:
    diags = []
    for edge in graph.edges:
        send, recv = edge.send, edge.recv
        if edge.signature_mismatch:
            diags.append(
                _diag(
                    skeleton,
                    "SA104",
                    recv,
                    f"receive of {recv.count} x {recv.dtype} is matched by a "
                    f"send of {send.count} x {send.dtype} from rank "
                    f"{send.rank} (tag {_tag(send.tag)})",
                )
            )
        if edge.truncated:
            diags.append(
                _diag(
                    skeleton,
                    "SA105",
                    recv,
                    f"{send.nbytes}-byte message from rank {send.rank} "
                    f"(tag {_tag(send.tag)}) overruns the {recv.nbytes}-byte "
                    f"receive buffer",
                )
            )
    return diags


# ----------------------------------------------------------------------
# SA106 - wildcard nondeterminism
# ----------------------------------------------------------------------
def _check_wildcards(skeleton: CommSkeleton) -> list[Diagnostic]:
    sends = skeleton.sends()
    diags = []
    seen: set[tuple] = set()
    for recv in skeleton.recvs():
        if recv.peer != ANY_SOURCE and recv.tag != ANY_TAG:
            continue
        signatures = {
            (s.tag, s.dtype, s.nbytes)
            for s in sends
            if _signature_match(s, recv)
        }
        if len(signatures) <= 1:
            continue
        site = (recv.rank, recv.peer, recv.tag, recv.count, recv.dtype)
        if site in seen:  # one finding per receive call site
            continue
        seen.add(site)
        diags.append(
            _diag(
                skeleton,
                "SA106",
                recv,
                f"wildcard receive (source={_src(recv.peer)}, "
                f"tag={_tag(recv.tag)}) can match {len(signatures)} "
                f"different message signatures",
            )
        )
    return diags


# ----------------------------------------------------------------------
# SA107 - leaked requests
# ----------------------------------------------------------------------
def _check_leaked_requests(skeleton: CommSkeleton) -> list[Diagnostic]:
    if skeleton.status not in _SETTLED:
        return []
    diags = []
    for event in skeleton.events:
        if event.request is None or event.waited:
            continue
        diags.append(
            _diag(
                skeleton,
                "SA107",
                event,
                f"{event.call} request (peer {_src(event.peer)}, tag "
                f"{_tag(event.tag)}) is never completed by a wait",
            )
        )
    return diags


# ----------------------------------------------------------------------
# SA108 - divergent collective sequences
# ----------------------------------------------------------------------
def _check_collectives(skeleton: CommSkeleton) -> list[Diagnostic]:
    sequences = {
        rank: skeleton.collectives(rank) for rank in range(skeleton.nprocs)
    }
    reference = sequences.get(0, [])
    diags = []
    for rank in range(1, skeleton.nprocs):
        mine = sequences[rank]
        for position, (ours, theirs) in enumerate(zip(mine, reference)):
            if ours.collective_signature != theirs.collective_signature:
                diags.append(
                    _diag(
                        skeleton,
                        "SA108",
                        ours,
                        f"collective #{position} is {ours.call}"
                        f"(count={ours.count}) but rank 0 executes "
                        f"{theirs.call}(count={theirs.count})",
                    )
                )
                break
        else:
            # Equal prefixes but different lengths only prove divergence
            # if the job ran to completion (a hang legitimately stops
            # ranks at different points in their sequences).
            if len(mine) != len(reference) and skeleton.status in _SETTLED:
                longer, other_rank = (
                    (mine, 0) if len(mine) > len(reference) else (reference, rank)
                )
                extra = longer[min(len(mine), len(reference))]
                diags.append(
                    _diag(
                        skeleton,
                        "SA108",
                        extra,
                        f"{extra.call}(count={extra.count}) has no "
                        f"counterpart on rank {other_rank}",
                    )
                )
    return diags


def check_skeleton(
    skeleton: CommSkeleton, graph: MatchGraph | None = None
) -> list[Diagnostic]:
    """Run every SA1xx pass and return the canonical, deduped report."""
    if graph is None:
        graph = build_match_graph(skeleton)
    diags: list[Diagnostic] = []
    diags += _check_deadlock(skeleton)
    diags += _check_unmatched(skeleton, graph)
    diags += _check_edges(skeleton, graph)
    diags += _check_wildcards(skeleton)
    diags += _check_leaked_requests(skeleton)
    diags += _check_collectives(skeleton)
    return sort_diagnostics(diags)
