"""Static MPI communication analysis (MUST/MPI-Checker-style).

The register/text analyses in :mod:`repro.staticanalysis` predict what a
fault does to one rank's *computation*.  This package predicts what the
communication structure does to a whole job, without running any kernel:

* :mod:`~repro.staticanalysis.mpicheck.skeleton` - extract an
  application's communication skeleton by a symbolic dry run: the MPI
  stack executes for real (matching, framing, rendezvous), while every
  numeric kernel is elided by a :class:`DryRunVM`;
* :mod:`~repro.staticanalysis.mpicheck.matchgraph` - pair the recorded
  sends and receives into a global match graph across ranks;
* :mod:`~repro.staticanalysis.mpicheck.passes` - the ``SA1xx``
  diagnostic family over the skeleton and match graph (deadlock cycles,
  unmatched endpoints, signature mismatches, wildcard nondeterminism,
  leaked requests, divergent collectives);
* :mod:`~repro.staticanalysis.mpicheck.vulnmap` - the per-byte message
  vulnerability map: classify every transmitted byte as framing header
  vs control/checksummed/unprotected payload and predict the structural
  (crash + hang) manifestation rate of channel-level faults;
* :mod:`~repro.staticanalysis.mpicheck.validation` - Spearman
  cross-check of those predictions against a dynamic channel-layer
  injection campaign;
* :mod:`~repro.staticanalysis.mpicheck.fixture` - a deliberately buggy
  application exercising every ``SA1xx`` diagnostic.
"""

from repro.staticanalysis.mpicheck.fixture import BuggyApp
from repro.staticanalysis.mpicheck.matchgraph import MatchEdge, MatchGraph, build_match_graph
from repro.staticanalysis.mpicheck.passes import MPI_LINT_CODES, check_skeleton
from repro.staticanalysis.mpicheck.skeleton import (
    CommEvent,
    CommSkeleton,
    DryRunVM,
    PacketRecord,
    extract_skeleton,
)
from repro.staticanalysis.mpicheck.validation import (
    MessageValidationReport,
    validate_message_vulnerability,
)
from repro.staticanalysis.mpicheck.vulnmap import (
    RankVulnerability,
    VulnerabilityMap,
    build_vulnerability_map,
)

__all__ = [
    "BuggyApp",
    "CommEvent",
    "CommSkeleton",
    "DryRunVM",
    "MatchEdge",
    "MatchGraph",
    "MessageValidationReport",
    "MPI_LINT_CODES",
    "PacketRecord",
    "RankVulnerability",
    "VulnerabilityMap",
    "build_match_graph",
    "build_vulnerability_map",
    "check_skeleton",
    "extract_skeleton",
    "validate_message_vulnerability",
]
