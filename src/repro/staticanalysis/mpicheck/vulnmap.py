"""Per-byte message-vulnerability map.

Every byte a rank receives during the dry run is classified, and each
class carries a *structural weight*: the predicted probability that a
single-bit flip in such a byte manifests structurally (Crash or Hang,
the paper's two non-semantic message-fault outcomes).  The weights are
read off the channel protocol in :mod:`repro.mpi.adi`:

* ``magic`` and ``len`` flips fail frame validation -> Crash (1.0);
* ``src``/``dst`` flips misroute the packet, which is dropped while the
  matching receive keeps waiting -> Hang (a low-bit flip can land on
  another valid rank, where an ``ANY_SOURCE`` receive may still accept
  it: slightly below 1);
* ``tag`` flips strand the message in the unexpected queue -> Hang
  (unless a wildcard-tag receive would take it);
* ``type`` flips either leave the valid ``MSG_*`` range -> Crash, or
  turn the packet into the wrong protocol step -> drop/Hang (two of the
  32 bits toggle between valid types with partially compatible
  handling);
* ``seq`` is the rendezvous handle: on RTS/CTS/RNDV_DATA frames a flip
  orphans the handshake -> Hang; on eager frames it is never read;
* ``comm_id`` and the padding are never read -> benign;
* payload bytes never break framing: they become wrong *values*
  (silent corruption, detected aborts, or incorrect output), so their
  structural weight is 0 regardless of class.

The payload classes still matter for the rest of the prediction: a
``checksummed`` byte is predicted Application Detected, a ``control``
byte steers execution (wrong work descriptor -> Incorrect Output), and
``data``/``collective`` bytes are predicted silent-or-incorrect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mpi.adi import MSG_EAGER, MSG_RNDV_DATA, MSG_RTS
from repro.mpi.datatypes import INTERNAL_TAG_BASE
from repro.staticanalysis.mpicheck.skeleton import CommSkeleton

#: (field name, byte width, structural weight) of the 48-byte header,
#: in wire order.  ``seq`` is special-cased per message type below.
HEADER_FIELD_WEIGHTS = (
    ("magic", 4, 1.0),
    ("src", 4, 0.9),
    ("dst", 4, 0.9),
    ("tag", 4, 0.95),
    ("type", 4, 0.9),
    ("len", 4, 1.0),
    ("seq", 4, 0.0),  # rendezvous frames override this to RNDV_SEQ_WEIGHT
    ("comm_id", 4, 0.0),
    ("pad", 16, 0.0),
)

#: ``seq`` weight on the frames where the rendezvous state machine
#: actually reads it (RTS/CTS/RNDV_DATA): a flipped handle orphans the
#: handshake and the transfer never finishes.
RNDV_SEQ_WEIGHT = 0.9

#: Predicted dominant manifestation per payload class (none structural).
PAYLOAD_CLASS_PREDICTIONS = {
    "checksummed": "application detected",
    "control": "incorrect output",
    "collective": "incorrect output",
    "data": "silent or incorrect output",
}


@dataclass
class RankVulnerability:
    """Byte classification of one rank's incoming stream."""

    rank: int
    total_bytes: int = 0
    structural_weighted: float = 0.0
    byte_classes: dict[str, int] = field(default_factory=dict)

    def add(self, klass: str, nbytes: int, weight: float = 0.0) -> None:
        if nbytes <= 0:
            return
        self.total_bytes += nbytes
        self.structural_weighted += weight * nbytes
        self.byte_classes[klass] = self.byte_classes.get(klass, 0) + nbytes

    @property
    def structural_score(self) -> float:
        """Predicted Crash+Hang rate of a uniform single-bit flip in
        this rank's received stream."""
        if self.total_bytes == 0:
            return 0.0
        return self.structural_weighted / self.total_bytes

    @property
    def detected_score(self) -> float:
        """Predicted Application Detected rate (checksummed payload)."""
        if self.total_bytes == 0:
            return 0.0
        return self.byte_classes.get("checksummed", 0) / self.total_bytes

    @property
    def header_fraction(self) -> float:
        header = sum(
            count
            for klass, count in self.byte_classes.items()
            if klass.startswith("header_")
        )
        return header / self.total_bytes if self.total_bytes else 0.0


@dataclass
class VulnerabilityMap:
    """The whole job's message-vulnerability prediction."""

    app_name: str
    nprocs: int
    ranks: list[RankVulnerability]
    message_classes: dict[int, str] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return sum(r.total_bytes for r in self.ranks)

    @property
    def structural_score(self) -> float:
        """Mean of the per-rank scores - the campaign picks the target
        rank uniformly, so the app-level rate is the unweighted mean,
        not the byte-weighted one."""
        if not self.ranks:
            return 0.0
        return sum(r.structural_score for r in self.ranks) / len(self.ranks)

    @property
    def detected_score(self) -> float:
        if not self.ranks:
            return 0.0
        return sum(r.detected_score for r in self.ranks) / len(self.ranks)

    def byte_class_totals(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for rank in self.ranks:
            for klass, count in rank.byte_classes.items():
                totals[klass] = totals.get(klass, 0) + count
        return dict(sorted(totals.items()))

    def report(self) -> str:
        lines = [
            f"message-vulnerability map: {self.app_name} "
            f"({self.nprocs} ranks, {self.total_bytes} received bytes)",
            f"  predicted structural (crash+hang) rate: "
            f"{100 * self.structural_score:.1f}%",
            f"  predicted application-detected rate:    "
            f"{100 * self.detected_score:.1f}%",
        ]
        for klass, count in self.byte_class_totals().items():
            prediction = PAYLOAD_CLASS_PREDICTIONS.get(klass, "crash or hang")
            if klass == "header_benign":
                prediction = "benign (field never read)"
            lines.append(f"  {klass:16s} {count:10d} bytes -> {prediction}")
        for rank in self.ranks:
            lines.append(
                f"  rank {rank.rank}: {rank.total_bytes:8d} bytes, "
                f"{100 * rank.header_fraction:5.1f}% header, "
                f"structural {100 * rank.structural_score:5.1f}%"
            )
        return "\n".join(lines)


def build_vulnerability_map(skeleton: CommSkeleton) -> VulnerabilityMap:
    ranks = [RankVulnerability(rank=r) for r in range(skeleton.nprocs)]
    #: tag of each rendezvous handshake, keyed by (dst, src, seq): the
    #: RTS frame carries the application tag, the RNDV_DATA frame that
    #: follows it does not.
    rendezvous_tags: dict[tuple[int, int, int], int] = {}
    for packet in skeleton.packets:
        entry = ranks[packet.dst]
        if packet.mtype == MSG_RTS:
            rendezvous_tags[(packet.dst, packet.src, packet.seq)] = packet.tag
        for name, width, weight in HEADER_FIELD_WEIGHTS:
            if name == "seq" and packet.mtype != MSG_EAGER:
                weight = RNDV_SEQ_WEIGHT
            klass = "header_critical" if weight > 0 else "header_benign"
            entry.add(klass, width, weight)
        if packet.payload_len <= 0:
            continue
        tag = packet.tag
        if packet.mtype == MSG_RNDV_DATA:
            tag = rendezvous_tags.get((packet.dst, packet.src, packet.seq), tag)
        if tag >= INTERNAL_TAG_BASE:
            klass = "collective"
        else:
            klass = skeleton.message_classes.get(tag, "data")
        entry.add(klass, packet.payload_len)
    return VulnerabilityMap(
        app_name=skeleton.app_name,
        nprocs=skeleton.nprocs,
        ranks=ranks,
        message_classes=dict(skeleton.message_classes),
    )
