"""Global send/receive match graph over a communication skeleton.

Matching happens in two stages:

1. **Observed matches.**  Every receive that completed during the dry
   run carries its :class:`~repro.mpi.status.Status` (actual source and
   tag), so it is paired with the k-th send of the same
   ``(source, dest, tag)`` stream - the ADI delivers each such stream in
   FIFO order, making the k-th-to-k-th pairing exact.
2. **Replayed matches.**  Whatever remains (operations cut short by a
   hang or crash) is replayed in global sequence order through the MPI
   matching rules - posted-receive list first, then the unexpected
   queue, wildcards honoured - so the passes can still reason about
   messages that were in flight when the job stopped.

Anything left after both stages is genuinely unmatched: a receive no
send can satisfy, or a message no rank ever asks for.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG
from repro.staticanalysis.mpicheck.skeleton import CommEvent, CommSkeleton


@dataclass(frozen=True)
class MatchEdge:
    """One send paired with the receive that consumes it."""

    send: CommEvent
    recv: CommEvent

    @property
    def truncated(self) -> bool:
        """The message carries more bytes than the receive can hold."""
        return self.send.nbytes > self.recv.nbytes

    @property
    def signature_mismatch(self) -> bool:
        """Endpoints disagree on the element datatype."""
        return self.send.dtype != self.recv.dtype


@dataclass
class MatchGraph:
    edges: list[MatchEdge] = field(default_factory=list)
    unmatched_sends: list[CommEvent] = field(default_factory=list)
    unmatched_recvs: list[CommEvent] = field(default_factory=list)


def _signature_match(send: CommEvent, recv: CommEvent) -> bool:
    return (
        send.peer == recv.rank
        and (recv.peer == ANY_SOURCE or recv.peer == send.rank)
        and (recv.tag == ANY_TAG or recv.tag == send.tag)
    )


def build_match_graph(skeleton: CommSkeleton) -> MatchGraph:
    graph = MatchGraph()
    sends = skeleton.sends()
    recvs = skeleton.recvs()

    # Stage 1: pair completed receives with their FIFO stream position.
    streams: dict[tuple, list[CommEvent]] = defaultdict(list)
    for send in sends:
        streams[(send.rank, send.peer, send.tag)].append(send)
    positions: dict[tuple, int] = defaultdict(int)
    matched: set[int] = set()
    for recv in recvs:
        if not recv.completed or recv.status is None:
            continue
        key = (recv.status.source, recv.rank, recv.status.tag)
        stream = streams.get(key, [])
        pos = positions[key]
        if pos < len(stream):
            send = stream[pos]
            positions[key] = pos + 1
            graph.edges.append(MatchEdge(send, recv))
            matched.add(id(send))
            matched.add(id(recv))

    # Stage 2: replay the leftovers through the MPI matching rules.
    leftovers = sorted(
        (e for e in sends + recvs if id(e) not in matched),
        key=lambda e: e.seq,
    )
    posted: dict[int, list[CommEvent]] = defaultdict(list)
    unexpected: dict[int, list[CommEvent]] = defaultdict(list)
    for event in leftovers:
        if event.kind == "send":
            if event.peer is None or not 0 <= event.peer < skeleton.nprocs:
                graph.unmatched_sends.append(event)
                continue
            queue = posted[event.peer]
            for i, recv in enumerate(queue):
                if _signature_match(event, recv):
                    graph.edges.append(MatchEdge(event, recv))
                    del queue[i]
                    break
            else:
                unexpected[event.peer].append(event)
        else:
            queue = unexpected[event.rank]
            for i, send in enumerate(queue):
                if _signature_match(send, event):
                    graph.edges.append(MatchEdge(send, event))
                    del queue[i]
                    break
            else:
                posted[event.rank].append(event)
    for rank in sorted(unexpected):
        graph.unmatched_sends.extend(unexpected[rank])
    for rank in sorted(posted):
        graph.unmatched_recvs.extend(posted[rank])
    graph.edges.sort(key=lambda e: (e.recv.seq, e.send.seq))
    return graph
