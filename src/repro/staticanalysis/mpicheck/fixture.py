"""A deliberately buggy application exercising every SA1xx diagnostic.

``BuggyApp`` is the negative test fixture behind the analyzer's CI gate:
the three shipped applications must analyze clean, while each ``bug``
variant here must trigger its diagnostic.  The variants:

===================  ===============================================
bug                  seeded defect (primary diagnostic)
===================  ===============================================
``deadlock``         ranks 0 and 1 Recv from each other first (SA101)
``orphan``           rank 0 sends a message nobody receives (SA103)
``type-mismatch``    4 x MPI_INT sent into 2 x MPI_DOUBLE (SA104)
``truncation``       64-byte message into a 32-byte receive (SA105)
``wildcard``         ANY_SOURCE receive fed two different message
                     signatures (SA106)
``leak``             an irecv whose request is never waited (SA107)
``collective``       rank 0 calls Bcast where everyone else calls
                     Barrier (SA108)
``salad``            orphan + type-mismatch + wildcard + leak in one
                     *completing* run - the CLI's nonzero-exit fixture
===================  ===============================================

Ranks beyond the two that stage a defect idle (joining the final
barrier where the variant has one), so every variant runs at any
``nprocs >= 2``.
"""

from __future__ import annotations

from typing import Generator

from repro.apps.base import MPIApplication, register_error_handler
from repro.memory.symbols import Linker
from repro.mpi.datatypes import ANY_SOURCE, MPI_DOUBLE, MPI_INT
from repro.mpi.simulator import RankContext

#: Tags used by the seeded defects (one per bug family).
_TAG_ORPHAN = 12
_TAG_TYPED = 13
_TAG_TRUNC = 14
_TAG_WILD = 15
_TAG_LEAK = 16
_TAG_DEADLOCK = 11

BUG_VARIANTS = (
    "deadlock",
    "orphan",
    "type-mismatch",
    "truncation",
    "wildcard",
    "leak",
    "collective",
    "salad",
)


class BuggyApp(MPIApplication):
    """Seeded-defect application for the MPI analyzer's negative tests."""

    name = "buggy"

    DEFAULTS = {"bug": "salad"}

    heap_size = 1 << 16
    stack_size = 16 << 10

    def kernel_sources(self) -> dict[str, str]:
        return {"bug_noop": "    movi eax, 0\n    ret"}

    def add_static_objects(self, linker: Linker) -> None:
        linker.add_data("bug_scratch", 64)

    def build_process(self, rank, nprocs, config):
        if self.params["bug"] not in BUG_VARIANTS:
            raise ValueError(
                f"unknown bug {self.params['bug']!r}; pick one of {BUG_VARIANTS}"
            )
        if nprocs < 2:
            raise ValueError("BuggyApp needs at least 2 ranks to miscommunicate")
        return super().build_process(rank, nprocs, config)

    # ------------------------------------------------------------------
    def main(self, ctx: RankContext) -> Generator:
        bug = self.params["bug"]
        rank, comm = ctx.rank, ctx.comm
        buf = ctx.image.heap.malloc(64)
        stage = ctx.image.heap.malloc(64)
        register_error_handler(ctx)
        yield  # settle into the scheduler before misbehaving

        if bug == "deadlock":
            # Classic head-to-head: both ranks Recv before either Sends.
            if rank == 0:
                yield from comm.recv(buf, 1, MPI_DOUBLE, 1, _TAG_DEADLOCK)
                yield from comm.send(buf, 1, MPI_DOUBLE, 1, _TAG_DEADLOCK)
            elif rank == 1:
                yield from comm.recv(buf, 1, MPI_DOUBLE, 0, _TAG_DEADLOCK)
                yield from comm.send(buf, 1, MPI_DOUBLE, 0, _TAG_DEADLOCK)

        elif bug == "orphan":
            if rank == 0:
                yield from comm.send(buf, 2, MPI_DOUBLE, 1, _TAG_ORPHAN)

        elif bug == "type-mismatch":
            # Same byte count, different type signature.
            if rank == 0:
                yield from comm.send(buf, 4, MPI_INT, 1, _TAG_TYPED)
            elif rank == 1:
                yield from comm.recv(buf, 2, MPI_DOUBLE, 0, _TAG_TYPED)

        elif bug == "truncation":
            if rank == 0:
                yield from comm.send(buf, 8, MPI_DOUBLE, 1, _TAG_TRUNC)
            elif rank == 1:
                yield from comm.recv(buf, 4, MPI_DOUBLE, 0, _TAG_TRUNC)

        elif bug == "wildcard":
            # Two same-tag messages with different sizes race into one
            # wildcard receive pair.
            if rank == 0:
                yield from comm.recv(buf, 8, MPI_DOUBLE, ANY_SOURCE, _TAG_WILD)
                yield from comm.recv(buf, 8, MPI_DOUBLE, ANY_SOURCE, _TAG_WILD)
            elif rank == 1:
                yield from comm.send(stage, 2, MPI_DOUBLE, 0, _TAG_WILD)
                yield from comm.send(stage, 8, MPI_DOUBLE, 0, _TAG_WILD)

        elif bug == "leak":
            if rank == 0:
                comm.irecv(buf, 2, MPI_DOUBLE, 1, _TAG_LEAK)  # never waited
            elif rank == 1:
                yield from comm.send(stage, 2, MPI_DOUBLE, 0, _TAG_LEAK)
            yield from comm.barrier()

        elif bug == "collective":
            if rank == 0:
                yield from comm.bcast(buf, 2, MPI_DOUBLE, 0)
            else:
                yield from comm.barrier()

        elif bug == "salad":
            # Every non-fatal defect at once; the job still completes.
            if rank == 0:
                yield from comm.send(buf, 4, MPI_INT, 1, _TAG_TYPED)
                yield from comm.send(buf, 2, MPI_DOUBLE, 1, _TAG_ORPHAN)
                yield from comm.recv(buf, 8, MPI_DOUBLE, ANY_SOURCE, _TAG_WILD)
                yield from comm.recv(buf, 8, MPI_DOUBLE, ANY_SOURCE, _TAG_WILD)
                comm.irecv(stage, 2, MPI_DOUBLE, 1, _TAG_LEAK)  # never waited
            elif rank == 1:
                yield from comm.recv(buf, 2, MPI_DOUBLE, 0, _TAG_TYPED)
                yield from comm.send(stage, 2, MPI_DOUBLE, 0, _TAG_WILD)
                yield from comm.send(stage, 8, MPI_DOUBLE, 0, _TAG_WILD)
                yield from comm.send(stage, 2, MPI_DOUBLE, 0, _TAG_LEAK)
            yield from comm.barrier()

        if rank == 0:
            ctx.print(f"bug variant '{bug}' staged")
