"""Access-pattern utilities over the per-granule trace records.

Complements :mod:`repro.trace.working_set` with the spatial queries the
paper's section 6.1.2 analysis makes: how much of a section was ever
touched, how accesses distribute across it, and which granules were
written after their last read (the overwrite-before-read masking
conjecture).
"""

from __future__ import annotations

import numpy as np

from repro.memory.layout import GRANULE
from repro.memory.segments import Segment


def _track_array(segment: Segment, kind: str) -> np.ndarray:
    arr = {
        "load": segment.last_load,
        "store": segment.last_store,
        "exec": segment.last_exec,
    }.get(kind)
    if kind not in ("load", "store", "exec"):
        raise ValueError(f"kind must be load/store/exec, got {kind!r}")
    if arr is None:
        raise ValueError(f"segment {segment.name!r} was not created with track=True")
    return arr


def touched_fraction(segment: Segment, kind: str = "load") -> float:
    """Fraction of the segment's granules ever accessed this run."""
    arr = _track_array(segment, kind)
    return float(np.count_nonzero(arr >= 0)) / arr.size if arr.size else 0.0


def never_accessed_bytes(segment: Segment, kind: str = "load") -> int:
    """Bytes with no recorded access - where a fault cannot manifest."""
    arr = _track_array(segment, kind)
    return int(np.count_nonzero(arr < 0)) * GRANULE


def access_histogram(
    segment: Segment, kind: str = "load", bins: int = 16
) -> np.ndarray:
    """Spatial histogram: per address-range bin, the fraction of granules
    accessed (shows hot arrays against cold bulk)."""
    if bins <= 0:
        raise ValueError(f"bins must be positive: {bins}")
    arr = _track_array(segment, kind)
    if arr.size == 0:
        return np.zeros(bins)
    edges = np.linspace(0, arr.size, bins + 1).astype(int)
    out = np.empty(bins)
    for i in range(bins):
        chunk = arr[edges[i] : edges[i + 1]]
        out[i] = float(np.count_nonzero(chunk >= 0)) / max(chunk.size, 1)
    return out


def overwritten_after_read_fraction(segment: Segment) -> float:
    """Of the granules that were both read and written, the fraction
    whose *last* event was a store - cells where a post-store fault is
    masked until the next read, the paper's overwrite conjecture for the
    low Data/BSS/Heap rates."""
    loads = _track_array(segment, "load")
    stores = _track_array(segment, "store")
    both = (loads >= 0) & (stores >= 0)
    if not np.count_nonzero(both):
        return 0.0
    return float(np.count_nonzero(stores[both] >= loads[both])) / int(
        np.count_nonzero(both)
    )


def liveness_summary(segment: Segment) -> dict:
    """One-segment roll-up used by the analysis notebooks and tests."""
    return {
        "name": segment.name,
        "size": segment.size,
        "loaded_fraction": touched_fraction(segment, "load"),
        "stored_fraction": touched_fraction(segment, "store"),
        "cold_bytes": never_accessed_bytes(segment, "load"),
        "overwrite_masked_fraction": overwritten_after_read_fraction(segment),
    }
