"""Per-process application profiles (paper Table 1).

"We profiled three test applications to quantify their memory use and
communication frequency and volume."  Memory section sizes come from the
symbol table (the ``objdump``/``nm`` measurement), the heap size from the
malloc wrapper, the stack size from the ESP extent, and the message
profile from the Channel/ADI traffic counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mpi.simulator import Job, JobConfig
from repro.mpi.traffic import job_traffic


@dataclass(frozen=True)
class ApplicationProfile:
    """One column of Table 1."""

    app_name: str
    nprocs: int
    # memory, bytes (per process)
    text_size: int
    data_size: int
    bss_size: int
    heap_size_min: int
    heap_size_max: int
    stack_size_min: int
    stack_size_max: int
    # messages, received bytes (per process)
    message_bytes_min: int
    message_bytes_max: int
    header_percent: float
    user_percent: float
    control_message_percent: float

    def as_rows(self) -> list[tuple[str, str]]:
        """Rendered rows in Table 1's layout."""
        mb = 1.0 / (1 << 20)

        def mrange(lo: int, hi: int) -> str:
            if hi - lo < 1024:
                return f"{hi * mb:.3g}"
            return f"{lo * mb:.3g}-{hi * mb:.3g}"

        return [
            ("Text Size (MB)", f"{self.text_size * mb:.3g}"),
            ("Data Size (MB)", f"{self.data_size * mb:.3g}"),
            ("BSS Size (MB)", f"{self.bss_size * mb:.3g}"),
            ("Heap Size (MB)", mrange(self.heap_size_min, self.heap_size_max)),
            ("Stack Size (KB)", f"{self.stack_size_max / 1024:.3g}"),
            ("Message (MB)", mrange(self.message_bytes_min, self.message_bytes_max)),
            ("Header %", f"{self.header_percent:.0f}"),
            ("User %", f"{self.user_percent:.0f}"),
        ]


def profile_application(app, config: JobConfig) -> ApplicationProfile:
    """Run the application fault-free and collect its Table-1 profile."""
    job = Job(app, config)
    result = job.run()
    if not result.completed:
        raise RuntimeError(f"profiling run failed: {result.detail}")
    sizes = [im.section_sizes() for im in job.images]
    heaps = [im.heap.high_water for im in job.images]
    # Stack: peak is not tracked continuously; the live extent at exit
    # underestimates, so report the deepest extent seen via the segment
    # store marks when tracking, else the exit extent.
    stacks = [im.stack.used_bytes() for im in job.images]
    traffic = job_traffic(job)
    totals = [t.total_bytes for t in traffic]
    n = config.nprocs
    return ApplicationProfile(
        app_name=getattr(app, "name", type(app).__name__),
        nprocs=n,
        text_size=sizes[0]["text"],
        data_size=sizes[0]["data"],
        bss_size=sizes[0]["bss"],
        heap_size_min=min(heaps),
        heap_size_max=max(heaps),
        stack_size_min=min(stacks),
        stack_size_max=max(stacks),
        message_bytes_min=min(totals),
        message_bytes_max=max(totals),
        header_percent=sum(t.header_percent for t in traffic) / n,
        user_percent=sum(t.user_percent for t in traffic) / n,
        control_message_percent=sum(t.control_message_percent for t in traffic) / n,
    )
