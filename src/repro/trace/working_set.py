"""Working-set analysis (paper section 6.1.2, Tables 5-7).

The paper defines: "the 'working set size at time t' is the size of
accessed memory since t.  The working set size, therefore, is a
non-increasing function of t."  Because every granule's *last* access
time is recorded, the working set at t is simply the set of granules
whose last access is at or after t - computed here with one sort and a
vectorized ``searchsorted``.

Text accesses are instruction fetches; data accesses are memory *loads*
in the Data, BSS and Heap sections, matching the paper's Valgrind
measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.memory.layout import GRANULE
from repro.memory.segments import Segment
from repro.mpi.simulator import Job, JobConfig


@dataclass(frozen=True)
class WorkingSetCurve:
    """WSS(t) sampled at ``times`` (block counts), as section percent."""

    name: str
    times: np.ndarray  # int64 block counts, ascending
    sizes_bytes: np.ndarray  # WSS in bytes at each time
    section_bytes: int  # denominator for the percentage

    @property
    def percent(self) -> np.ndarray:
        if self.section_bytes == 0:
            return np.zeros_like(self.sizes_bytes, dtype=float)
        return 100.0 * self.sizes_bytes / self.section_bytes

    def at(self, t: int) -> float:
        """WSS percentage at the sample nearest to block count ``t``."""
        idx = int(np.argmin(np.abs(self.times - t)))
        return float(self.percent[idx])

    def is_nonincreasing(self) -> bool:
        return bool(np.all(np.diff(self.sizes_bytes) <= 0))


def working_set_sizes(last_access: np.ndarray, times: np.ndarray) -> np.ndarray:
    """WSS in *granules* at each query time.

    ``last_access`` holds, per granule, the block count of its final
    access (-1 = never accessed).  WSS(t) = #{granules: last >= t}.
    """
    finite = np.sort(last_access[last_access >= 0])
    # count of elements >= t == n - (index of first element >= t)
    return finite.size - np.searchsorted(finite, times, side="left")


def _times(total_blocks: int, samples: int) -> np.ndarray:
    return np.linspace(0, max(total_blocks, 1), samples, dtype=np.int64)


def section_curve(
    segment: Segment,
    *,
    kind: str,
    total_blocks: int,
    samples: int = 64,
    section_bytes: int | None = None,
) -> WorkingSetCurve:
    """Working-set curve of one segment.

    ``kind`` is ``"exec"`` for text (instruction fetches) or ``"load"``
    for data sections.  ``section_bytes`` defaults to the segment size;
    pass the symbol-table section size to match the paper's denominators.
    """
    arr = segment.last_exec if kind == "exec" else segment.last_load
    if arr is None:
        raise ValueError(
            f"segment {segment.name!r} was not created with track=True"
        )
    times = _times(total_blocks, samples)
    sizes = working_set_sizes(arr, times) * GRANULE
    return WorkingSetCurve(
        name=segment.name,
        times=times,
        sizes_bytes=sizes,
        section_bytes=section_bytes if section_bytes is not None else segment.size,
    )


def combined_curve(
    segments: list[Segment],
    *,
    kind: str,
    total_blocks: int,
    samples: int = 64,
    section_bytes: int | None = None,
    name: str = "combined",
) -> WorkingSetCurve:
    """Working-set curve over several segments (the paper's
    Data+BSS+Heap plots)."""
    arrays = []
    total_section = 0
    for seg in segments:
        arr = seg.last_exec if kind == "exec" else seg.last_load
        if arr is None:
            raise ValueError(f"segment {seg.name!r} was not created with track=True")
        arrays.append(arr)
        total_section += seg.size
    last = np.concatenate(arrays) if arrays else np.empty(0, dtype=np.int64)
    times = _times(total_blocks, samples)
    sizes = working_set_sizes(last, times) * GRANULE
    return WorkingSetCurve(
        name=name,
        times=times,
        sizes_bytes=sizes,
        section_bytes=section_bytes if section_bytes is not None else total_section,
    )


@dataclass
class MemoryTraceReport:
    """The Tables 5-7 artifact for one application: text and
    data+BSS+heap working-set curves of one (representative) rank."""

    app_name: str
    rank: int
    total_blocks: int
    text: WorkingSetCurve
    data: WorkingSetCurve
    bss: WorkingSetCurve
    heap: WorkingSetCurve
    data_bss_heap: WorkingSetCurve

    def initial_percent(self, which: str = "text") -> float:
        """WSS% at time 0 (the whole-run footprint)."""
        return getattr(self, which).at(0)

    def compute_phase_percent(self, which: str = "text", frac: float = 0.5) -> float:
        """WSS% once the computation phase is underway (sampled at
        ``frac`` of the run, past initialization)."""
        return getattr(self, which).at(int(self.total_blocks * frac))


def trace_memory(
    app,
    config: JobConfig,
    *,
    rank: int = 0,
    samples: int = 64,
) -> MemoryTraceReport:
    """Run the application fault-free with tracking enabled and return
    the working-set report for one rank.

    The paper instruments "a randomly selected MPI process, with the
    application executed on a smaller number of processors" because of
    Valgrind overhead; tracing here is cheap enough to use the full
    configuration, but the single-rank report matches the paper's.
    """
    cfg = JobConfig(
        nprocs=config.nprocs,
        seed=config.seed,
        track_memory=True,
        eager_threshold=config.eager_threshold,
        app_params=dict(config.app_params),
    )
    job = Job(app, cfg)
    result = job.run()
    if not result.completed:
        raise RuntimeError(f"fault-free traced run failed: {result.detail}")
    image = job.images[rank]
    total = image.clock.blocks
    text_size = image.symtab.section_size("text")
    data_size = image.symtab.section_size("data")
    bss_size = image.symtab.section_size("bss")
    heap_size = max(image.heap.high_water, 1)
    return MemoryTraceReport(
        app_name=getattr(app, "name", type(app).__name__),
        rank=rank,
        total_blocks=total,
        text=section_curve(
            image.text, kind="exec", total_blocks=total, samples=samples,
            section_bytes=text_size,
        ),
        data=section_curve(
            image.data, kind="load", total_blocks=total, samples=samples,
            section_bytes=data_size,
        ),
        bss=section_curve(
            image.bss, kind="load", total_blocks=total, samples=samples,
            section_bytes=bss_size,
        ),
        heap=section_curve(
            image.heap_segment, kind="load", total_blocks=total, samples=samples,
            section_bytes=heap_size,
        ),
        data_bss_heap=combined_curve(
            [image.data, image.bss, image.heap_segment],
            kind="load",
            total_blocks=total,
            samples=samples,
            section_bytes=data_size + bss_size + heap_size,
            name="data+bss+heap",
        ),
    )
