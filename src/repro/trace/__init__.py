"""Valgrind-style memory tracing and application profiling.

The segments record a last-access block count per granule while a job
runs; this package turns those records into the working-set curves of
Tables 5-7 and the per-process application profiles of Table 1.
"""

from repro.trace.accesses import (
    access_histogram,
    liveness_summary,
    never_accessed_bytes,
    overwritten_after_read_fraction,
    touched_fraction,
)
from repro.trace.working_set import (
    WorkingSetCurve,
    working_set_sizes,
    section_curve,
    combined_curve,
    MemoryTraceReport,
    trace_memory,
)
from repro.trace.profiles import ApplicationProfile, profile_application

__all__ = [
    "access_histogram",
    "liveness_summary",
    "never_accessed_bytes",
    "overwritten_after_read_fraction",
    "touched_fraction",
    "WorkingSetCurve",
    "working_set_sizes",
    "section_curve",
    "combined_curve",
    "MemoryTraceReport",
    "trace_memory",
    "ApplicationProfile",
    "profile_application",
]
