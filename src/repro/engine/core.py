"""The single-trial execution authority.

Everything that runs one faulty job now flows through this module:
budget derivation (via :mod:`repro.engine.budgets`), injector install,
execution, and outcome classification.  ``Campaign.run_injection`` and
``repro.harness.runner.run_with_fault`` are thin wrappers over
:func:`run_single`; the executors call :func:`execute_trial`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.engine.budgets import hang_budgets
from repro.engine.trial import TrialResult, TrialSpec, restore_rng
from repro.injection.faults import FaultSpec, InjectionRecord
from repro.injection.outcomes import Manifestation, classify, default_compare
from repro.injection.wrappers import install
from repro.mpi.simulator import Job, JobConfig, JobResult


@dataclass
class ExecutionContext:
    """Everything needed to execute and classify one trial.

    Picklable whenever ``factory`` and ``compare`` are (module-level
    callables, classes, :func:`functools.partial` of either); the
    parallel executor ships one context per worker.
    """

    app: str
    factory: Callable[[], object]
    config: JobConfig
    reference: JobResult
    round_limit: int
    block_limit: int
    #: ``None`` means "derive from a fresh application instance"
    #: (``compare_outputs`` when present, else bitwise equality) - the
    #: derivation then happens on the worker, so the callable never
    #: crosses a process boundary.
    compare: Callable | None = None
    _resolved_compare: Callable | None = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def from_reference(
        cls,
        factory: Callable[[], object],
        config: JobConfig,
        reference: JobResult,
        *,
        app: str | None = None,
        compare: Callable | None = None,
    ) -> "ExecutionContext":
        """Build a context from a completed fault-free run, deriving the
        hang budgets from the one formula home."""
        round_limit, block_limit = hang_budgets(
            reference.rounds, reference.blocks_per_rank
        )
        probe = None
        if app is None:
            probe = factory()
            app = getattr(probe, "name", type(probe).__name__)
        ctx = cls(
            app=app,
            factory=factory,
            config=config,
            reference=reference,
            round_limit=round_limit,
            block_limit=block_limit,
            compare=compare,
        )
        if compare is None and probe is not None:
            # Reuse the probe instance for comparator derivation rather
            # than building a second application; stays local to this
            # process (never pickled - see ``__getstate__``).
            ctx._resolved_compare = (
                getattr(probe, "compare_outputs", None) or default_compare
            )
        return ctx

    def resolved_compare(self) -> Callable:
        if self._resolved_compare is None:
            compare = self.compare
            if compare is None:
                app = self.factory()
                compare = getattr(app, "compare_outputs", None) or default_compare
            self._resolved_compare = compare
        return self._resolved_compare

    def job_config(self) -> JobConfig:
        return JobConfig(
            nprocs=self.config.nprocs,
            seed=self.config.seed,
            track_memory=False,
            eager_threshold=self.config.eager_threshold,
            round_limit=self.round_limit,
            block_limit=self.block_limit,
            app_params=dict(self.config.app_params),
        )

    def __getstate__(self):
        state = self.__dict__.copy()
        # Never ship a resolved comparator (it may be a bound method of
        # an application instance); workers re-derive their own.
        state["_resolved_compare"] = None
        return state


def run_single(
    ctx: ExecutionContext,
    fault: FaultSpec,
    rng: np.random.Generator,
) -> tuple[Manifestation, InjectionRecord, JobResult]:
    """Execute one fresh job with one fault armed and classify it."""
    job = Job(ctx.factory(), ctx.job_config())
    record = install(job, fault, rng)
    result = job.run()
    manifestation = classify(result, ctx.reference, ctx.resolved_compare())
    return manifestation, record, result


def execute_trial(ctx: ExecutionContext, spec: TrialSpec) -> TrialResult:
    """Execute one :class:`TrialSpec`, resuming its captured RNG stream."""
    manifestation, record, _ = run_single(ctx, spec.fault, restore_rng(spec.rng_state))
    return TrialResult(
        key=spec.key,
        app=spec.app,
        region=spec.region,
        index=spec.index,
        manifestation=manifestation,
        delivered=record.delivered,
        detail=record.detail,
        record=record,
    )
