"""The single-trial execution authority.

Everything that runs one faulty job now flows through this module:
budget derivation (via :mod:`repro.engine.budgets`), injector install,
execution, and outcome classification.  ``Campaign.run_injection`` and
``repro.harness.runner.run_with_fault`` are thin wrappers over
:func:`run_single`; the executors call :func:`execute_trial`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.engine import checkpoint as _checkpoint
from repro.engine.budgets import hang_budgets
from repro.engine.trial import TrialResult, TrialSpec, restore_rng
from repro.injection.faults import FaultSpec, InjectionRecord
from repro.injection.outcomes import Manifestation, classify, default_compare
from repro.injection.wrappers import install
from repro.mpi.simulator import Job, JobConfig, JobResult
from repro.observability import runtime as _obs_runtime
from repro.observability.metrics import MetricsRegistry, MetricsSnapshot
from repro.observability.timeline import PropagationTimeline, TimelineEvent
from repro.observability.tracer import Tracer


@dataclass
class ExecutionContext:
    """Everything needed to execute and classify one trial.

    Picklable whenever ``factory`` and ``compare`` are (module-level
    callables, classes, :func:`functools.partial` of either); the
    parallel executor ships one context per worker.
    """

    app: str
    factory: Callable[[], object]
    config: JobConfig
    reference: JobResult
    round_limit: int
    block_limit: int
    #: ``None`` means "derive from a fresh application instance"
    #: (``compare_outputs`` when present, else bitwise equality) - the
    #: derivation then happens on the worker, so the callable never
    #: crosses a process boundary.
    compare: Callable | None = None
    #: Collect per-trial trace events / metrics snapshots.  Plain flags
    #: (set by the campaign engine from ``--trace`` / ``--metrics``) so
    #: they ship to workers inside the pickled context; each trial then
    #: activates exactly the observability scope these request.
    trace: bool = False
    collect_metrics: bool = False
    #: Golden-prefix replay stride in blocks (``None`` = checkpointing
    #: off, the default - existing callers are untouched).
    checkpoint_stride: int | None = None
    #: Execute via translated basic blocks wherever no observer needs
    #: per-instruction state (``--fastpath``).  Off by default; trial
    #: outcomes are bit-identical either way.
    fastpath: bool = False
    #: The shared :class:`~repro.engine.checkpoint.GoldenRecording`.
    #: Deliberately *kept* by ``__getstate__``: the driver attaches it
    #: before the executor pickles the context, so every fork worker
    #: receives the one recording exactly once.
    checkpoint: object | None = field(default=None, repr=False, compare=False)
    _resolved_compare: Callable | None = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def from_reference(
        cls,
        factory: Callable[[], object],
        config: JobConfig,
        reference: JobResult,
        *,
        app: str | None = None,
        compare: Callable | None = None,
    ) -> "ExecutionContext":
        """Build a context from a completed fault-free run, deriving the
        hang budgets from the one formula home."""
        round_limit, block_limit = hang_budgets(
            reference.rounds, reference.blocks_per_rank
        )
        probe = None
        if app is None:
            probe = factory()
            app = getattr(probe, "name", type(probe).__name__)
        ctx = cls(
            app=app,
            factory=factory,
            config=config,
            reference=reference,
            round_limit=round_limit,
            block_limit=block_limit,
            compare=compare,
        )
        if compare is None and probe is not None:
            # Reuse the probe instance for comparator derivation rather
            # than building a second application; stays local to this
            # process (never pickled - see ``__getstate__``).
            ctx._resolved_compare = (
                getattr(probe, "compare_outputs", None) or default_compare
            )
        return ctx

    def resolved_compare(self) -> Callable:
        if self._resolved_compare is None:
            compare = self.compare
            if compare is None:
                app = self.factory()
                compare = getattr(app, "compare_outputs", None) or default_compare
            self._resolved_compare = compare
        return self._resolved_compare

    def job_config(self) -> JobConfig:
        return JobConfig(
            nprocs=self.config.nprocs,
            seed=self.config.seed,
            track_memory=False,
            eager_threshold=self.config.eager_threshold,
            round_limit=self.round_limit,
            block_limit=self.block_limit,
            fastpath=self.fastpath,
            app_params=dict(self.config.app_params),
        )

    def describe(self) -> dict:
        """JSON-ready execution-config snapshot for run manifests: every
        knob that decides trial outcomes, none of the runtime state."""
        return {
            "app": self.app,
            "nprocs": self.config.nprocs,
            "config_seed": self.config.seed,
            "app_params": dict(self.config.app_params),
            "eager_threshold": self.config.eager_threshold,
            "round_limit": self.round_limit,
            "block_limit": self.block_limit,
            "checkpoint_stride": self.checkpoint_stride,
            "fastpath": self.fastpath,
        }

    def __getstate__(self):
        state = self.__dict__.copy()
        # Never ship a resolved comparator (it may be a bound method of
        # an application instance); workers re-derive their own.
        state["_resolved_compare"] = None
        return state


@dataclass
class TrialObservation:
    """Observability artifacts of one executed trial."""

    timeline: PropagationTimeline
    metrics: MetricsSnapshot | None = None
    trace_events: list | None = None


def _finalize_timeline(
    timeline: PropagationTimeline,
    manifestation: Manifestation,
    result: JobResult,
) -> None:
    """Stamp the weakest divergence evidence - an output mismatch found
    only at classification time - at the end-of-run clock.  Correct runs
    keep ``divergence = None``."""
    if manifestation is Manifestation.INCORRECT and timeline.divergence is None:
        end = max(result.blocks_per_rank) if result.blocks_per_rank else None
        timeline.note_divergence(
            TimelineEvent(kind="output_mismatch", rank=None, blocks=end)
        )


def _harvest_job_metrics(
    registry: MetricsRegistry,
    job: Job,
    result: JobResult,
    ctx: ExecutionContext,
) -> None:
    """End-of-job counter sweep (per-trial registry, merged in the
    driver): VM work, channel traffic, per-worker throughput, and
    hang-budget consumption."""
    registry.counter("repro_worker_trials_total", worker=f"pid{os.getpid()}").inc()
    for vm in job.vms:
        registry.counter("repro_vm_instructions_total").inc(vm.instructions_retired)
        registry.counter("repro_vm_blocks_total").inc(vm.clock.blocks)
        if vm.fastpath:
            # Emitted only in fastpath mode so that default-mode metric
            # snapshots stay byte-identical to earlier releases.
            for key, value in vm.fastpath_stats.items():
                registry.counter(
                    "repro_vm_fastpath_total", kind=key
                ).inc(value)
    for endpoint in job.endpoints:
        stats = endpoint.stats
        registry.counter("repro_channel_packets_total", kind="control").inc(
            stats.control_packets
        )
        registry.counter("repro_channel_packets_total", kind="data").inc(
            stats.data_packets
        )
        registry.counter("repro_channel_bytes_total", kind="header").inc(
            stats.header_bytes
        )
        registry.counter("repro_channel_bytes_total", kind="payload").inc(
            stats.payload_bytes
        )
    if ctx.round_limit:
        registry.histogram(
            "repro_hang_budget_consumed_percent",
            buckets=(5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0),
        ).observe(100.0 * result.rounds / ctx.round_limit)


def run_observed(
    ctx: ExecutionContext,
    fault: FaultSpec,
    rng: np.random.Generator,
) -> tuple[Manifestation, InjectionRecord, JobResult, TrialObservation]:
    """Execute one fresh job with one fault armed, under the
    observability scope the context requests, and classify it.

    The propagation timeline is always collected (it costs a handful of
    dataclass appends per trial); the tracer and metrics registry exist
    only when the context's ``trace`` / ``collect_metrics`` flags are
    set.
    """
    # Plan the golden-prefix replay *outside* the trial's observability
    # scope: a cold cache records the golden run here, and that
    # recording's events must not leak into this trial's tracer.
    plan = None
    if ctx.checkpoint_stride is not None:
        plan = _checkpoint.prepare_replay(ctx, fault)
    tracer = Tracer() if ctx.trace else None
    registry = MetricsRegistry() if ctx.collect_metrics else None
    timeline = PropagationTimeline()
    with _obs_runtime.activate(
        tracer=tracer, metrics=registry, timeline=timeline
    ):
        job = Job(ctx.factory(), ctx.job_config())
        if plan is not None:
            _checkpoint.install_replay(job, plan)
            _obs_runtime.note_checkpoint_restore(
                switch_round=plan.switch_round,
                blocks_skipped=plan.blocks_skipped,
                calls_skipped=plan.calls_skipped,
            )
        record = install(job, fault, rng)
        result = job.run()
        manifestation = classify(result, ctx.reference, ctx.resolved_compare())
        _finalize_timeline(timeline, manifestation, result)
        if registry is not None:
            _harvest_job_metrics(registry, job, result, ctx)
    observation = TrialObservation(
        timeline=timeline,
        metrics=registry.snapshot() if registry is not None else None,
        trace_events=tracer.events if tracer is not None else None,
    )
    return manifestation, record, result, observation


def run_single(
    ctx: ExecutionContext,
    fault: FaultSpec,
    rng: np.random.Generator,
) -> tuple[Manifestation, InjectionRecord, JobResult]:
    """Execute one fresh job with one fault armed and classify it."""
    manifestation, record, result, _ = run_observed(ctx, fault, rng)
    return manifestation, record, result


def execute_trial(ctx: ExecutionContext, spec: TrialSpec) -> TrialResult:
    """Execute one :class:`TrialSpec`, resuming its captured RNG stream."""
    manifestation, record, _, observation = run_observed(
        ctx, spec.fault, restore_rng(spec.rng_state)
    )
    digest = observation.timeline.summary()
    return TrialResult(
        key=spec.key,
        app=spec.app,
        region=spec.region,
        index=spec.index,
        manifestation=manifestation,
        delivered=record.delivered,
        detail=record.detail,
        record=record,
        injected_at_blocks=digest.get("injected_at_blocks"),
        injected_at_insns=digest.get("injected_at_insns"),
        injected_byte=digest.get("injected_byte"),
        diverged_at_blocks=digest.get("diverged_at_blocks"),
        divergence_kind=digest.get("divergence_kind"),
        latency_blocks=digest.get("latency_blocks"),
        metrics=observation.metrics,
        trace_events=observation.trace_events,
    )
