"""Trial executors: serial and process-pool parallel dispatch.

Both executors consume lists of :class:`~repro.engine.trial.TrialSpec`
and yield :class:`~repro.engine.trial.TrialResult` objects as trials
finish.  Because every trial carries its own derived RNG state and
results are keyed by ``(region, index)``, aggregate campaign results
are bit-identical regardless of executor choice, worker count, or
completion order.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Iterator

from repro.engine.core import ExecutionContext, execute_trial
from repro.engine.trial import TrialResult, TrialSpec

#: Environment variable consulted for the default worker count.
JOBS_ENV = "REPRO_CAMPAIGN_JOBS"


def default_jobs() -> int:
    """Worker count from ``REPRO_CAMPAIGN_JOBS`` (default 1: serial)."""
    try:
        return max(1, int(os.environ.get(JOBS_ENV, "1")))
    except ValueError:
        return 1


class SerialExecutor:
    """In-process execution: no pickling constraints, deterministic
    completion order (trial index order)."""

    jobs = 1

    def __init__(self, context: ExecutionContext) -> None:
        self.context = context

    def run(self, specs: Iterable[TrialSpec]) -> Iterator[TrialResult]:
        for spec in specs:
            yield execute_trial(self.context, spec)

    def close(self) -> None:  # symmetry with ParallelExecutor
        pass


# ----------------------------------------------------------------------
# worker-side state for the parallel executor
# ----------------------------------------------------------------------
_WORKER_CONTEXT: ExecutionContext | None = None


def _init_worker(context: ExecutionContext) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context
    # Resolve the output comparator once per worker (it may require an
    # application instance, which we do not ship across processes).
    context.resolved_compare()


def _worker_execute(spec: TrialSpec) -> TrialResult:
    assert _WORKER_CONTEXT is not None, "worker initialized without context"
    return execute_trial(_WORKER_CONTEXT, spec)


class ParallelExecutor:
    """``ProcessPoolExecutor``-backed dispatch with ``jobs`` workers.

    The execution context (application factory, reference profile, hang
    budgets) is shipped once per worker via the pool initializer; each
    task then costs one pickled :class:`TrialSpec`.  Results stream back
    in submission (trial index) order, matching the serial executor.
    """

    def __init__(self, context: ExecutionContext, jobs: int) -> None:
        if jobs < 2:
            raise ValueError(f"ParallelExecutor needs jobs >= 2, got {jobs}")
        try:
            pickle.dumps(context)
        except Exception as exc:  # pragma: no cover - message matters, not type
            raise TypeError(
                "parallel campaign execution requires a picklable "
                "application factory (a module-level class/function or a "
                "functools.partial of one) and comparator; got "
                f"unpicklable execution context: {exc}"
            ) from exc
        self.context = context
        self.jobs = jobs
        import multiprocessing as mp

        method = "fork" if "fork" in mp.get_all_start_methods() else None
        self._pool = ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=mp.get_context(method) if method else None,
            initializer=_init_worker,
            initargs=(context,),
        )

    def run(self, specs: Iterable[TrialSpec]) -> Iterator[TrialResult]:
        # Yield in submission order, not completion order: workers still
        # execute concurrently, but the driver ingests results in the
        # same sequence as the serial executor.  Float histogram sums
        # are not associative, so completion-order merging would let
        # scheduling jitter (or an engine-speed change) move the merged
        # metric series by an ulp.
        futures = [self._pool.submit(_worker_execute, spec) for spec in specs]
        try:
            for future in futures:
                yield future.result()
        finally:
            for future in futures:
                future.cancel()

    def close(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)


def make_executor(
    context: ExecutionContext, jobs: int | None
) -> SerialExecutor | ParallelExecutor:
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    if jobs == 1:
        return SerialExecutor(context)
    return ParallelExecutor(context, jobs)
