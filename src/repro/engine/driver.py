"""The campaign engine: parallel, resumable, adaptive trial dispatch.

:class:`CampaignEngine` owns everything between "a sampled fault plan"
and "a filled-in :class:`~repro.injection.campaign.RegionResult`":

* trial specs are sampled in the parent (one deterministic RNG stream
  per ``(campaign seed, region, index)``) and executed through a
  pluggable executor - serial, or a process pool with ``jobs`` workers -
  with bit-identical results either way;
* an optional append-only :class:`~repro.engine.store.ResultStore`
  records every finished trial, enabling ``resume`` of interrupted or
  extended campaigns (only missing trials execute);
* fixed-n mode runs the plan's sample size; adaptive mode keeps
  dispatching batches until the observed Cochran half-width *d* drops
  below ``target_d`` (capped by the section-4.3 oversampling bound,
  which guarantees termination);
* a ``progress`` callback emits per-region
  :class:`~repro.engine.progress.ProgressEvent` lines every
  ``log_interval`` trials.

The layers above delegate here: ``Campaign.run_region``/``run`` build
an engine per call, the CLI ``campaign`` subcommand drives it directly.
"""

from __future__ import annotations

import math
import os
from contextlib import nullcontext
from typing import Any, Callable, Iterable

import numpy as np

from repro.engine import checkpoint
from repro.engine.core import ExecutionContext
from repro.engine.executors import make_executor
from repro.engine.progress import ProgressEmitter, ProgressEvent
from repro.engine.store import ResultStore, open_store
from repro.observability.export import TraceCollector
from repro.observability.metrics import MetricsRegistry
from repro.engine.trial import (
    TrialResult,
    TrialSpec,
    canonical_params,
    trial_rng,
)
from repro.injection.faults import FaultSpec, Region
from repro.sampling.plans import CampaignPlan, default_plan
from repro.sampling.theory import sample_size_oversampled, z_alpha

#: Default adaptive batch size multiplier (trials per dispatch wave are
#: ``max(MIN_ADAPTIVE_BATCH, 2 * jobs)`` unless overridden).
MIN_ADAPTIVE_BATCH = 8

#: Stratified mode: pilot trials per stratum (enough for a first
#: variance estimate), trials per Neyman wave, and the classification
#: pool floor.  The wave size is deliberately *not* scaled by ``jobs``:
#: allocation decisions depend only on complete-wave tallies, so the
#: executed trial set - and therefore every tally - is bit-identical
#: for any worker count.
STRATIFIED_PILOT = 8
STRATIFIED_BATCH = 32
STRATIFIED_MIN_POOL = 512

#: Strata whose error rate is statically proven zero and which are
#: therefore never executed.  The outcome predictor only labels a site
#: ``masked`` on a masking-oracle proof, the same contract that lets
#: ``--prune-masked`` tally synthetic CORRECTs.
KNOWN_ZERO_STRATA = frozenset({"masked"})


def observed_half_width(errors: int, n: int, alpha: float = 0.05) -> float:
    """Cochran half-width d for the observed error proportion.

    The proportion is clamped away from the degenerate 0/1 endpoints
    (where the normal approximation collapses to zero width) so small
    all-correct batches cannot stop an adaptive campaign prematurely.
    """
    if n <= 0:
        return float("inf")
    floor = 1.0 / (n + 1)
    p = min(max(errors / n, floor), 1.0 - floor)
    return z_alpha(alpha) * math.sqrt(p * (1.0 - p) / n)


class _RegionState:
    """Mutable aggregation state for one region's run."""

    def __init__(self, result) -> None:
        self.result = result  # RegionResult
        self.executed = 0
        #: ``(trial index, (fault, record, manifestation))`` pairs,
        #: re-sorted by index before landing in ``result.records``.
        self.pending_records: list[tuple[int, tuple[FaultSpec, Any, Any]]] = []


class CampaignEngine:
    """Executes injection trials for one application campaign.

    Parameters
    ----------
    context:
        The single-trial execution authority (factory, reference run,
        hang budgets, comparator policy).
    sampler:
        ``(region, rng) -> FaultSpec``; usually
        ``Campaign.sample_spec``.  Runs in the parent process only.
    seed:
        Campaign seed: the root of every per-trial RNG stream.
    app_params:
        Application build parameters, recorded in trial keys so stores
        from different configurations never alias.
    plan:
        Default per-region sample sizes (fixed-n mode).
    jobs:
        Worker processes; ``None`` reads ``REPRO_CAMPAIGN_JOBS``
        (default 1 = serial in-process).
    store:
        ``ResultStore`` or path; every finished trial is appended.
    progress / log_interval:
        Deprecated callback shim, kept for pre-observability callers:
        both now feed a :class:`~repro.engine.progress.ProgressEmitter`
        that throttles by completed-trial count per region and also
        mirrors every event into ``metrics`` when given.
    metrics:
        A :class:`~repro.observability.metrics.MetricsRegistry`; workers
        collect per-trial snapshots which the driver merges here, plus
        driver-side error-latency histograms and outcome tallies.
    trace:
        A :class:`~repro.observability.export.TraceCollector`; each
        fresh trial's event list is filed under its (region, index).
    checkpoint_stride:
        Golden-prefix replay stride in blocks (see
        :mod:`repro.engine.checkpoint`); ``None`` disables
        checkpointing.  The golden recording is made once, lazily, and
        shipped inside the pickled context so fork workers share it.
    fastpath:
        Execute trials through the translated block engine
        (:mod:`repro.cpu.translate`).  Outcomes, tallies and metrics
        are bit-identical to the interpreter; the flag only changes
        throughput (plus fastpath-mode counters in ``metrics``).
    prune:
        ``FaultSpec -> PruneVerdict`` masking oracle (see
        :mod:`repro.staticanalysis.propagation.pruning`).  Specs with a
        masked verdict are not executed: a synthetic CORRECT result
        (``detail="pruned:<reason>"``) is tallied and stored in their
        place.  Because the pruned stratum is statically proven
        outcome-free, crediting its samples as correct keeps every
        region rate unbiased - this is the stratified estimator with a
        known-zero stratum, which is what an importance-weighted tally
        correction reduces to under uniform sampling.
    stratifier:
        ``FaultSpec -> stratum name`` (usually the outcome predictor's
        ``stratum(...).value``).  When given, ``run_region`` switches to
        stratified mode: a classification pool is labeled up front,
        trials are Neyman-allocated across strata per wave, and the
        region estimate is the importance-weighted
        :class:`~repro.sampling.theory.StratifiedEstimate`.  Runs in the
        parent process only, like ``sampler``.
    telemetry:
        A :class:`~repro.observability.serve.TelemetryHub`; every
        finished trial is folded into its live summary under its lock,
        and (when no ``metrics`` registry was passed) the hub's own
        registry becomes the campaign registry, so the ``/metrics``
        endpoint scrapes the same state ``--metrics`` writes at exit.
    artifacts:
        A :class:`~repro.observability.artifacts.RunArtifacts`; every
        trial, progress event and region-final lands in its
        ``events.jsonl``, with periodic metrics snapshots flushed to
        ``metrics.jsonl``.  The caller finalizes the directory after
        the campaign returns.
    """

    def __init__(
        self,
        context: ExecutionContext,
        *,
        sampler: Callable[[Region, np.random.Generator], FaultSpec],
        seed: int,
        app_params: dict | None = None,
        plan: CampaignPlan | None = None,
        jobs: int | None = 1,
        store: ResultStore | str | os.PathLike | None = None,
        progress: Callable[[ProgressEvent], None] | None = None,
        log_interval: int = 0,
        metrics: MetricsRegistry | None = None,
        trace: TraceCollector | None = None,
        checkpoint_stride: int | None = None,
        fastpath: bool = False,
        prune: Callable[[FaultSpec], Any] | None = None,
        stratifier: Callable[[FaultSpec], str] | None = None,
        telemetry=None,
        artifacts=None,
    ) -> None:
        self.context = context
        self.sampler = sampler
        self.seed = seed
        self.app_params = canonical_params(app_params)
        self.plan = plan or default_plan()
        self.jobs = jobs
        if store is not None:
            store = open_store(store)
        self.store = store
        self.telemetry = telemetry
        self.artifacts = artifacts
        if telemetry is not None and metrics is None:
            # One registry serves both the live ``/metrics`` endpoint
            # and the end-of-run exports; scrapes and final files agree
            # by construction.
            metrics = telemetry.registry
        self.metrics = metrics
        self.trace = trace
        if trace is not None:
            # Dropped-trial accounting lands on the scrape path too.
            trace.metrics = metrics
        self.prune = prune
        self.stratifier = stratifier
        # The context ships to workers; flags must be set before the
        # executor pickles it.
        if metrics is not None:
            context.collect_metrics = True
        if trace is not None:
            context.trace = True
        context.checkpoint_stride = checkpoint_stride
        context.fastpath = fastpath
        self.emitter = ProgressEmitter(
            callback=progress, log_interval=log_interval, metrics=metrics
        )
        self._executor = None
        self._stored: dict[str, TrialResult] | None = None

    @property
    def progress(self) -> Callable[[ProgressEvent], None] | None:
        """Deprecated: the old callback, now held by the emitter."""
        return self.emitter.callback

    @property
    def log_interval(self) -> int:
        return self.emitter.log_interval

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def executor(self):
        if self._executor is None:
            context = self.context
            if context.checkpoint_stride is not None and context.checkpoint is None:
                # Record the golden run once, *before* the executor
                # pickles the context: serial trials and every fork
                # worker then share the same recording.
                context.checkpoint = checkpoint.default_store().get(context)
            self._executor = make_executor(context, self.jobs)
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.close()
            self._executor = None
        if self.store is not None:
            self.store.close()

    def __enter__(self) -> "CampaignEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # trial planning
    # ------------------------------------------------------------------
    def make_spec(self, region: Region, index: int) -> TrialSpec:
        """Sample trial ``index`` of ``region``: fault first, then the
        RNG state is captured so the injector resumes the same stream."""
        rng = trial_rng(self.seed, region, index)
        fault = self.sampler(region, rng)
        return TrialSpec(
            app=self.context.app,
            app_params=self.app_params,
            nprocs=self.context.config.nprocs,
            config_seed=self.context.config.seed,
            campaign_seed=self.seed,
            region=region,
            index=index,
            fault=fault,
            rng_state=rng.bit_generator.state,
        )

    def _stored_results(self, resume: bool) -> dict[str, TrialResult]:
        if not resume or self.store is None:
            return {}
        if self._stored is None:
            self._stored = self.store.load()
        return self._stored

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _sink_lock(self):
        """The lock shared with concurrent telemetry readers.

        Every driver-side write to the metrics registry / live summary
        happens under it (an RLock: progress emission nests inside
        trial ingestion); without a telemetry hub there are no
        concurrent readers and this is free.
        """
        return self.telemetry.lock if self.telemetry is not None else nullcontext()

    def _emit(self, state: _RegionState, planned, target_d, alpha, final) -> None:
        if not self.emitter.active and self.artifacts is None:
            return
        row = state.result
        n = row.executions
        event = ProgressEvent(
            app=self.context.app,
            region=row.region.value,
            done=n,
            planned=planned,
            resumed=row.resumed,
            errors=row.tally.errors,
            achieved_d=observed_half_width(row.tally.errors, n, alpha),
            target_d=target_d,
            final=final,
        )
        if self.emitter.active:
            with self._sink_lock():
                self.emitter.emit(event)
        if self.artifacts is not None:
            self.artifacts.note_progress(event)

    def _ingest(
        self,
        state: _RegionState,
        result: TrialResult,
        spec: TrialSpec | None,
        keep_records: bool,
        planned: int | None,
        target_d: float | None,
        alpha: float,
    ) -> None:
        row = state.result
        row.tally.add(result.manifestation)
        row.delivered += int(result.delivered)
        if result.detail.startswith("pruned:") and not result.resumed:
            # Counted off the detail string (the marker survives the
            # store round-trip); a rehydrated pruned trial counts as
            # resumed, like any other stored result.
            row.pruned += 1
        if result.resumed:
            row.resumed += 1
        else:
            state.executed += 1
            if self.store is not None:
                self.store.append(result)
            if keep_records and spec is not None and result.record is not None:
                state.pending_records.append(
                    (spec.index, (spec.fault, result.record, result.manifestation))
                )
        with self._sink_lock():
            self._observe(result)
            if self.telemetry is not None:
                self.telemetry.note_trial(result)
            if self.artifacts is not None:
                self.artifacts.note_trial(result)
                if self.metrics is not None and self.artifacts.metrics_flush_due():
                    self.artifacts.flush_metrics(self.metrics.snapshot())
        due = self.emitter.note_trial(self.context.app, row.region.value)
        # When log_interval divides the planned count, the last trial's
        # periodic event would duplicate the region-final event emitted
        # by run_region (same done count) - a legacy callback would see
        # the region-complete state twice.  Suppress the periodic one.
        if due and not (planned is not None and row.executions >= planned):
            self._emit(state, planned, target_d, alpha, final=False)

    def _observe(self, result: TrialResult) -> None:
        """Fold one trial's observability payload into the driver sinks.

        Counters/histograms are sums over the trial set, so the merged
        registry is identical regardless of worker count or completion
        order; latency comes from the serialized timeline digest, so
        resumed trials contribute exactly like fresh ones.
        """
        registry = self.metrics
        if registry is not None:
            registry.counter(
                "repro_trial_outcomes_total",
                manifestation=result.manifestation.value,
            ).inc()
            if result.detail.startswith("pruned:"):
                registry.counter(
                    "repro_trials_pruned_total",
                    region=result.region.value,
                    reason=result.detail.split(":", 1)[1],
                ).inc()
            if result.latency_blocks is not None:
                registry.histogram(
                    "repro_error_latency_blocks", region=result.region.value
                ).observe(result.latency_blocks)
            if result.metrics is not None:
                registry.merge(result.metrics)
        if self.trace is not None and result.trace_events is not None:
            self.trace.add_trial(
                result.region.value,
                result.index,
                f"{result.app} {result.region.value}#{result.index}",
                result.trace_events,
            )

    def _pruned_result(self, spec: TrialSpec, reason: str) -> TrialResult:
        """The synthetic outcome of a statically-proven-masked trial.
        Delivered is True - the flip would have landed (static regions
        resolve their address up front); the proof is that landing
        changes nothing."""
        from repro.injection.outcomes import Manifestation

        return TrialResult(
            key=spec.key,
            app=spec.app,
            region=spec.region,
            index=spec.index,
            manifestation=Manifestation.CORRECT,
            delivered=True,
            detail=f"pruned:{reason}",
        )

    def _run_range(
        self,
        state: _RegionState,
        region: Region,
        start: int,
        stop: int,
        *,
        resume: bool,
        keep_records: bool,
        planned: int | None,
        target_d: float | None,
        alpha: float,
    ) -> None:
        """Execute trials ``start..stop-1``, satisfying what it can from
        the store and dispatching the rest through the executor."""
        self._run_specs(
            state,
            [self.make_spec(region, index) for index in range(start, stop)],
            resume=resume,
            keep_records=keep_records,
            planned=planned,
            target_d=target_d,
            alpha=alpha,
        )

    def _run_specs(
        self,
        state: _RegionState,
        specs: list[TrialSpec],
        *,
        resume: bool,
        keep_records: bool,
        planned: int | None,
        target_d: float | None,
        alpha: float,
    ) -> None:
        """Execute an explicit spec list into ``state``, satisfying what
        it can from the store (and the masking oracle) and dispatching
        the rest through the executor.  Tally ingestion commutes, so the
        aggregated counts are identical for any worker count."""
        stored = self._stored_results(resume)
        missing: list[TrialSpec] = []
        for spec in specs:
            hit = stored.get(spec.key)
            if hit is not None:
                self._ingest(
                    state, hit, None, keep_records, planned, target_d, alpha
                )
                continue
            if self.prune is not None:
                verdict = self.prune(spec.fault)
                if verdict.masked:
                    self._ingest(
                        state,
                        self._pruned_result(spec, verdict.reason),
                        spec,
                        keep_records,
                        planned,
                        target_d,
                        alpha,
                    )
                    continue
            missing.append(spec)
        by_key = {spec.key: spec for spec in missing}
        for result in self.executor().run(missing):
            self._ingest(
                state,
                result,
                by_key.get(result.key),
                keep_records,
                planned,
                target_d,
                alpha,
            )

    def run_trials(self, specs: list[TrialSpec]) -> list[TrialResult]:
        """Execute explicit trial specs through the executor, folding
        each result into the observability sinks (no tallying, no store
        resume); returns results in trial order.  The ``trace``
        CLI uses this to trace a single chosen trial."""
        out = []
        for result in self.executor().run(specs):
            with self._sink_lock():
                self._observe(result)
                if self.telemetry is not None:
                    self.telemetry.note_trial(result)
                if self.artifacts is not None:
                    self.artifacts.note_trial(result)
            if self.store is not None and not result.resumed:
                self.store.append(result)
            out.append(result)
        return out

    def run_region(
        self,
        region: Region,
        n: int | None = None,
        *,
        target_d: float | None = None,
        batch: int | None = None,
        max_n: int | None = None,
        resume: bool = False,
        keep_records: bool | None = None,
    ):
        """Run one region; returns a filled
        :class:`~repro.injection.campaign.RegionResult`.

        Fixed-n mode (``target_d is None``) runs exactly ``n`` trials
        (default: the plan's sample size).  Adaptive mode dispatches
        batches until the observed half-width drops below ``target_d``
        or the oversampling bound ``max_n`` is reached.

        ``keep_records`` defaults to True only for serial fixed-n runs;
        adaptive and parallel campaigns keep tallies (and the store)
        instead of retaining every per-trial record tuple.
        """
        from repro.injection.campaign import RegionResult

        if self.stratifier is not None:
            return self.run_region_stratified(
                region,
                n,
                target_d=target_d,
                batch=batch,
                max_n=max_n,
                resume=resume,
            )
        alpha = self.plan.alpha
        if keep_records is None:
            keep_records = target_d is None and self.executor().jobs == 1
        state = _RegionState(RegionResult(region))

        if target_d is None:
            if n is None:
                n = self.plan.n_for(region.value)
            if self.telemetry is not None:
                self.telemetry.note_region(self.context.app, region.value, n)
            self._run_range(
                state,
                region,
                0,
                n,
                resume=resume,
                keep_records=keep_records,
                planned=n,
                target_d=None,
                alpha=alpha,
            )
        else:
            if not 0.0 < target_d < 1.0:
                raise ValueError(f"target_d must be in (0, 1): {target_d}")
            if self.telemetry is not None:
                # Adaptive runs are open-ended; /progress reports no ETA.
                self.telemetry.note_region(self.context.app, region.value, None)
            cap = max_n or sample_size_oversampled(target_d, alpha)
            step = batch or max(MIN_ADAPTIVE_BATCH, 2 * self.executor().jobs)
            planned = 0
            while planned < cap:
                next_planned = min(planned + step, cap)
                self._run_range(
                    state,
                    region,
                    planned,
                    next_planned,
                    resume=resume,
                    keep_records=keep_records,
                    planned=None,
                    target_d=target_d,
                    alpha=alpha,
                )
                planned = next_planned
                row = state.result
                d = observed_half_width(row.tally.errors, row.executions, alpha)
                if d <= target_d:
                    break
            state.result.adaptive_d = observed_half_width(
                state.result.tally.errors, state.result.executions, alpha
            )

        # Deterministic record order: stored/pruned results are ingested
        # before executed ones, so re-sort by trial index.
        if keep_records and state.pending_records:
            state.pending_records.sort(key=lambda item: item[0])
            state.result.records.extend(rec for _, rec in state.pending_records)
        self._emit(
            state,
            None if target_d is not None else state.result.executions,
            target_d,
            alpha,
            final=True,
        )
        if self.artifacts is not None:
            self.artifacts.note_region_final(self.context.app, state.result)
        return state.result

    def run_region_stratified(
        self,
        region: Region,
        n: int | None = None,
        *,
        target_d: float | None = None,
        batch: int | None = None,
        max_n: int | None = None,
        resume: bool = False,
        pool: int | None = None,
    ):
        """Run one region with predicted-outcome stratified sampling.

        1. **Classify** a uniform pool of sampled trial specs (free:
           the stratifier is static analysis, no execution) giving the
           stratum weights ``W_h`` and, per stratum, a deterministic
           ordered stream of concrete specs.
        2. **Pilot** :data:`STRATIFIED_PILOT` trials in every stratum
           whose rate is not statically known, for first variance
           estimates.  The oracle-proven masked stratum
           (:data:`KNOWN_ZERO_STRATA`) keeps its weight but executes
           nothing.
        3. **Waves** of :data:`STRATIFIED_BATCH` trials, Neyman-
           allocated by observed per-stratum variance, until the
           importance-weighted half-width drops below ``target_d``
           (adaptive) or the budget ``n`` is spent (fixed-n).

        The returned :class:`~repro.injection.campaign.RegionResult`
        carries the raw (allocation-biased) tally plus the unbiased
        :class:`~repro.sampling.theory.StratifiedEstimate` in its
        ``stratified`` field.  Every allocation decision is a pure
        function of complete-wave tallies, which are order-independent
        sums, so the executed trial set and all counts are bit-identical
        for any ``jobs``; the store/resume path applies to each wave's
        specs exactly as in uniform mode.
        """
        from repro.injection.campaign import RegionResult
        from repro.sampling.theory import (
            StratifiedEstimate,
            StratumCell,
            neyman_allocation,
        )

        alpha = self.plan.alpha
        if target_d is None:
            budget = n if n is not None else self.plan.n_for(region.value)
        else:
            if not 0.0 < target_d < 1.0:
                raise ValueError(f"target_d must be in (0, 1): {target_d}")
            budget = max_n or sample_size_oversampled(target_d, alpha)
        if self.telemetry is not None:
            self.telemetry.note_region(self.context.app, region.value, budget)
        pool_n = pool or max(STRATIFIED_MIN_POOL, 4 * budget)

        specs_by: dict[str, list[TrialSpec]] = {}
        for index in range(pool_n):
            spec = self.make_spec(region, index)
            specs_by.setdefault(self.stratifier(spec.fault), []).append(spec)
        names = sorted(specs_by)
        done = {nm: 0 for nm in names}
        errs = {nm: 0 for nm in names}
        state = _RegionState(RegionResult(region))

        def cells() -> tuple[StratumCell, ...]:
            return tuple(
                StratumCell(
                    name=nm,
                    population=len(specs_by[nm]),
                    executed=done[nm],
                    errors=errs[nm],
                    known_zero=nm in KNOWN_ZERO_STRATA,
                )
                for nm in names
            )

        def run_wave(alloc: dict[str, int]) -> None:
            for nm in names:
                k = alloc.get(nm, 0)
                if k <= 0 or nm in KNOWN_ZERO_STRATA:
                    continue
                lo = done[nm]
                hi = min(lo + k, len(specs_by[nm]))
                if hi <= lo:
                    continue
                before = state.result.tally.errors
                self._run_specs(
                    state,
                    specs_by[nm][lo:hi],
                    resume=resume,
                    keep_records=False,
                    planned=None,
                    target_d=target_d,
                    alpha=alpha,
                )
                done[nm] = hi
                errs[nm] += state.result.tally.errors - before

        pilot: dict[str, int] = {}
        remaining = budget
        for nm in names:
            if nm in KNOWN_ZERO_STRATA:
                continue
            k = min(STRATIFIED_PILOT, len(specs_by[nm]), remaining)
            pilot[nm] = k
            remaining -= k
        run_wave(pilot)

        step = batch or STRATIFIED_BATCH
        while True:
            spent = sum(done.values())
            if spent >= budget:
                break
            estimate = StratifiedEstimate(pool_n, cells(), alpha)
            if target_d is not None and estimate.half_width <= target_d:
                break
            alloc = neyman_allocation(
                estimate.cells, pool_n, min(step, budget - spent)
            )
            if not any(alloc.values()):
                break  # every live stratum exhausted its pool
            run_wave(alloc)

        estimate = StratifiedEstimate(pool_n, cells(), alpha)
        state.result.stratified = estimate
        if target_d is not None:
            state.result.adaptive_d = estimate.half_width
        self._emit(
            state,
            None if target_d is not None else state.result.executions,
            target_d,
            alpha,
            final=True,
        )
        if self.artifacts is not None:
            self.artifacts.note_region_final(self.context.app, state.result)
        return state.result

    def run(
        self,
        regions: Iterable[Region] = tuple(Region),
        n: int | None = None,
        *,
        target_d: float | None = None,
        batch: int | None = None,
        max_n: int | None = None,
        resume: bool = False,
        keep_records: bool | None = None,
    ):
        """Run a set of regions; returns a
        :class:`~repro.injection.campaign.CampaignResult`."""
        from repro.injection.campaign import CampaignResult

        result = CampaignResult(
            app_name=self.context.app,
            nprocs=self.context.config.nprocs,
            seed=self.seed,
        )
        for region in regions:
            result.regions[region] = self.run_region(
                region,
                n,
                target_d=target_d,
                batch=batch,
                max_n=max_n,
                resume=resume,
                keep_records=keep_records,
            )
        return result
