"""Distributed campaign coordination: leased trial batches over HTTP.

The campaign engine already has everything a fleet needs *except* the
transport: picklable :class:`~repro.engine.trial.TrialSpec`s, one
deterministic ``execute_trial`` authority, content-hash-keyed stores,
and an order-independent tally fold.  This module adds the coordination
plane on top of the PR 9 telemetry HTTP stack:

* :class:`LeaseBook` - the pure lease state machine.  Batches move
  ``pending -> leased(deadline) -> done``; a lease that outlives its
  deadline is requeued, so a dead or hung worker's batch is eventually
  re-served to a live one.  Time is injected explicitly, which makes
  the machine property-testable under arbitrary interleavings.
* :class:`CampaignCoordinator` - plans every trial spec up front
  (satisfying what it can from the store and the masking oracle, like a
  local run), partitions the rest into batches, folds submitted results
  idempotently by trial key, and finalizes per-region results in trial
  index order - bit-identical to a local ``jobs=N`` run by the same
  determinism argument that makes worker count irrelevant locally.
* :class:`CoordinatorService` - the telemetry facade bound to a
  :class:`~repro.observability.serve.TelemetryServer`: the PR 9 scrape
  endpoints (``/metrics`` ``/status`` ``/progress``) plus ``/manifest``
  (GET, JSON), ``/work`` (GET, JSON lease accounting), ``/lease`` and
  ``/submit`` (POST).
* :class:`WorkerClient` - ``campaign work COORD:PORT``: pulls a batch,
  executes through the one ``execute_trial`` authority (flags inherited
  from the coordinator's manifest), pushes results back as plain JSON.

Wire-format trust is asymmetric by design: workers unpickle lease
payloads from the coordinator they chose to connect to, but the
coordinator never unpickles worker data - submissions are JSON, result
keys are validated against the leased batch, and duplicate keys (a
requeued batch delivered twice) are dropped, so a confused or duplicate
worker cannot corrupt or double-count a tally.
"""

from __future__ import annotations

import json
import os
import pickle
import socket
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.engine.trial import TrialResult, TrialSpec
from repro.injection.faults import Region

#: Version stamped into the ``/manifest`` and ``/work`` payloads and
#: checked by workers before executing anything.
WORK_SCHEMA_VERSION = 1

#: Default trials per leased batch.
DEFAULT_BATCH_SIZE = 8

#: Default lease deadline in seconds: a batch not acknowledged within
#: this window is requeued for another worker.
DEFAULT_LEASE_TIMEOUT = 60.0

#: Seconds a worker waits between polls when no batch is pending.
DEFAULT_POLL_INTERVAL = 0.5

#: Consecutive connection failures a worker tolerates (the coordinator
#: may not be up yet, or may be briefly unreachable) before giving up.
CONNECT_RETRIES = 40

#: Test hook: a worker sleeps this many seconds after leasing a batch
#: and before executing it.  Lets the chaos suite park a worker
#: mid-batch deterministically, then SIGKILL it.
HOLD_ENV = "REPRO_WORK_HOLD_SECONDS"

PENDING = "pending"
LEASED = "leased"
DONE = "done"


@dataclass
class _Lease:
    state: str = PENDING
    worker: str | None = None
    deadline: float | None = None
    #: Times this batch was granted (first lease plus every regrant).
    grants: int = 0


class LeaseBook:
    """Deadline-leased batch bookkeeping with injected time.

    Guarantees (property-tested in ``tests/props``):

    * a batch is never granted to two workers at once *within* a lease
      window - a regrant happens only after the previous deadline;
    * every batch is eventually grantable while not done (expiry always
      returns it to pending), so no trial is ever lost to a dead
      worker;
    * ``ack`` is idempotent and accepts late acknowledgements from
      presumed-dead workers (their results are valid by determinism;
      the coordinator's key-dedup fold prevents double counting).
    """

    def __init__(
        self, batch_ids: Iterable[int], lease_timeout: float = DEFAULT_LEASE_TIMEOUT
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be positive: {lease_timeout}")
        self.lease_timeout = lease_timeout
        self._leases: dict[int, _Lease] = {
            bid: _Lease() for bid in sorted(batch_ids)
        }
        #: Leases returned to pending after their deadline passed.
        self.requeues = 0

    # -- state transitions --------------------------------------------
    def expire(self, now: float) -> list[int]:
        """Requeue every lease whose deadline has passed; returns the
        requeued batch ids."""
        requeued = []
        for bid, lease in self._leases.items():
            if lease.state == LEASED and lease.deadline is not None and (
                now >= lease.deadline
            ):
                lease.state = PENDING
                lease.worker = None
                lease.deadline = None
                self.requeues += 1
                requeued.append(bid)
        return requeued

    def lease(self, worker: str, now: float) -> int | None:
        """Grant the lowest pending batch to ``worker``, or ``None``
        when nothing is pending (outstanding leases may still expire
        and become grantable later)."""
        self.expire(now)
        for bid in sorted(self._leases):
            lease = self._leases[bid]
            if lease.state == PENDING:
                lease.state = LEASED
                lease.worker = worker
                lease.deadline = now + self.lease_timeout
                lease.grants += 1
                return bid
        return None

    def ack(self, batch_id: int, now: float) -> bool:
        """Mark a batch done; returns False when it already was.

        Accepted from any state: a worker whose lease expired (and
        whose batch may have been regranted) still completed real,
        deterministic work - the batch is done either way.
        """
        lease = self._leases[batch_id]
        if lease.state == DONE:
            return False
        lease.state = DONE
        lease.worker = None
        lease.deadline = None
        return True

    # -- accounting ---------------------------------------------------
    def _count(self, state: str) -> int:
        return sum(1 for lease in self._leases.values() if lease.state == state)

    @property
    def pending(self) -> int:
        return self._count(PENDING)

    @property
    def leased(self) -> int:
        return self._count(LEASED)

    @property
    def done(self) -> int:
        return self._count(DONE)

    @property
    def all_done(self) -> bool:
        return all(lease.state == DONE for lease in self._leases.values())

    def state(self, batch_id: int) -> str:
        return self._leases[batch_id].state

    def snapshot(self, now: float) -> dict:
        """JSON-ready accounting for the ``/work`` endpoint."""
        return {
            "batches": len(self._leases),
            "pending": self.pending,
            "leased": self.leased,
            "done": self.done,
            "requeues": self.requeues,
            "lease_timeout": self.lease_timeout,
            "leases": [
                {
                    "batch": bid,
                    "worker": lease.worker,
                    "expires_in": (
                        max(0.0, lease.deadline - now)
                        if lease.deadline is not None
                        else None
                    ),
                }
                for bid, lease in sorted(self._leases.items())
                if lease.state == LEASED
            ],
        }


def _chunks(specs: Sequence[TrialSpec], size: int) -> list[list[TrialSpec]]:
    return [list(specs[i : i + size]) for i in range(0, len(specs), size)]


class CampaignCoordinator:
    """Partitions one campaign into leased batches and folds results.

    Wraps a fully configured :class:`~repro.engine.driver.CampaignEngine`
    (sampler, store, telemetry hub, prune oracle, fastpath/checkpoint
    flags): the coordinator does everything the local driver does except
    execute - trials proven masked are tallied synthetically, stored
    trials are resumed, and only the rest are served to workers.

    The fold is idempotent by trial key, so requeued batches delivered
    twice (once by the presumed-dead worker, once by its replacement)
    count once; :meth:`finalize` rebuilds the per-region results in
    trial index order, making every tally bit-identical to a local
    ``jobs=N`` run over the same campaign.
    """

    def __init__(
        self,
        engine,
        regions: Iterable[Region],
        n: int | None = None,
        *,
        batch_size: int = DEFAULT_BATCH_SIZE,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        resume: bool = False,
        clock=time.monotonic,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1: {batch_size}")
        if engine.stratifier is not None:
            raise ValueError(
                "serve-work campaigns are fixed-n uniform; stratified "
                "Neyman waves need complete-wave feedback and stay local"
            )
        self.engine = engine
        self.clock = clock
        self.lock = threading.RLock()
        self._results: dict[str, TrialResult] = {}
        self._specs_by_region: dict[Region, list[TrialSpec]] = {}
        self._batches: dict[int, list[TrialSpec]] = {}
        self._batch_keys: dict[int, frozenset[str]] = {}

        stored = engine._stored_results(resume)
        for region in regions:
            count = n if n is not None else engine.plan.n_for(region.value)
            specs = [engine.make_spec(region, i) for i in range(count)]
            self._specs_by_region[region] = specs
            if engine.telemetry is not None:
                engine.telemetry.note_region(
                    engine.context.app, region.value, count
                )
            missing: list[TrialSpec] = []
            for spec in specs:
                hit = stored.get(spec.key)
                if hit is not None:
                    self._accept_local(hit, append=False)
                    continue
                if engine.prune is not None:
                    verdict = engine.prune(spec.fault)
                    if verdict.masked:
                        self._accept_local(
                            engine._pruned_result(spec, verdict.reason),
                            append=True,
                        )
                        continue
                missing.append(spec)
            for chunk in _chunks(missing, batch_size):
                bid = len(self._batches)
                self._batches[bid] = chunk
                self._batch_keys[bid] = frozenset(s.key for s in chunk)
        self.book = LeaseBook(self._batches, lease_timeout)

    # ------------------------------------------------------------------
    # result fold (one key, one count - ever)
    # ------------------------------------------------------------------
    def _accept_local(self, result: TrialResult, *, append: bool) -> None:
        """Fold a coordinator-side result (stored-resumed or pruned)."""
        self._results[result.key] = result
        if append and self.engine.store is not None:
            self.engine.store.append(result)
        with self.engine._sink_lock():
            self.engine._observe(result)
            if self.engine.telemetry is not None:
                self.engine.telemetry.note_trial(result)

    @property
    def trials(self) -> int:
        return sum(len(s) for s in self._specs_by_region.values())

    @property
    def done(self) -> bool:
        return self.book.all_done

    # ------------------------------------------------------------------
    # protocol payloads
    # ------------------------------------------------------------------
    def manifest(self) -> dict:
        """Everything a worker needs to rebuild the one execution
        authority this campaign runs under."""
        ctx = self.engine.context
        return {
            "schema_version": WORK_SCHEMA_VERSION,
            "app": ctx.app,
            "nprocs": ctx.config.nprocs,
            "app_params": dict(self.engine.app_params),
            "seed": self.engine.seed,
            "config_seed": ctx.config.seed,
            "checkpoint_stride": ctx.checkpoint_stride,
            "fastpath": ctx.fastpath,
            "regions": [r.value for r in self._specs_by_region],
            "trials": self.trials,
            "batches": len(self._batches),
            "lease_timeout": self.book.lease_timeout,
        }

    def lease_payload(self, worker: str) -> dict:
        """One worker's next unit of work: a batch grant, a wait hint,
        or the done signal."""
        with self.lock:
            bid = self.book.lease(worker, self.clock())
            if bid is None:
                if self.book.all_done:
                    return {"done": True}
                return {"wait": min(self.book.lease_timeout / 2, 2.0)}
            return {
                "batch": bid,
                "attempt": self.book._leases[bid].grants,
                "specs": self._batches[bid],
            }

    def submit(self, worker: str, batch_id: int, payloads: list[dict]) -> dict:
        """Fold one batch's submitted results; idempotent per key.

        Results are accepted only for keys belonging to the named
        batch; the batch is acknowledged once every one of its keys has
        been folded (by this submission or an earlier duplicate).
        """
        with self.lock:
            keys = self._batch_keys.get(batch_id)
            if keys is None:
                return {"error": f"unknown batch {batch_id}", "accepted": 0}
            accepted = duplicate = rejected = 0
            for obj in payloads:
                try:
                    result = TrialResult.from_json(obj)
                except (KeyError, ValueError, TypeError, AttributeError):
                    rejected += 1
                    continue
                if result.key not in keys:
                    rejected += 1
                    continue
                if result.key in self._results:
                    duplicate += 1
                    continue
                # Rehydration marks results resumed; these were freshly
                # executed, just remotely.
                result.resumed = False
                self._results[result.key] = result
                if self.engine.store is not None:
                    self.engine.store.append(result)
                with self.engine._sink_lock():
                    self.engine._observe(result)
                    if self.engine.telemetry is not None:
                        self.engine.telemetry.note_trial(result)
                accepted += 1
            if keys <= self._results.keys():
                self.book.ack(batch_id, self.clock())
            return {
                "worker": worker,
                "accepted": accepted,
                "duplicate": duplicate,
                "rejected": rejected,
                "done": self.book.all_done,
            }

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def wait(self, poll_interval: float = 0.2, timeout: float | None = None) -> bool:
        """Block until every batch is done; returns False on timeout."""
        deadline = None if timeout is None else self.clock() + timeout
        while not self.done:
            if deadline is not None and self.clock() >= deadline:
                return False
            time.sleep(poll_interval)
        return True

    def finalize(self):
        """Fold the complete result set into a
        :class:`~repro.injection.campaign.CampaignResult`.

        Ingests per region in trial index order - a fixed order chosen
        once, independent of which worker produced which result and
        when - so the tallies are bit-identical to a local run's.
        """
        from repro.injection.campaign import CampaignResult, RegionResult

        if not self.done:
            raise RuntimeError(
                f"campaign incomplete: {self.book.pending} pending, "
                f"{self.book.leased} leased of {len(self._batches)} batches"
            )
        ctx = self.engine.context
        campaign_result = CampaignResult(
            app_name=ctx.app, nprocs=ctx.config.nprocs, seed=self.engine.seed
        )
        for region, specs in self._specs_by_region.items():
            row = RegionResult(region)
            for spec in specs:
                result = self._results[spec.key]
                row.tally.add(result.manifestation)
                row.delivered += int(result.delivered)
                if result.resumed:
                    row.resumed += 1
                elif result.detail.startswith("pruned:"):
                    row.pruned += 1
            campaign_result.regions[region] = row
        return campaign_result


class CoordinatorService:
    """The telemetry source a coordinator binds to its HTTP server.

    Scrape endpoints delegate to the engine's
    :class:`~repro.observability.serve.TelemetryHub` (which the
    coordinator's fold feeds, so ``/status`` totals track submissions
    live); the coordination routes are served via the handler's
    ``handle_get``/``handle_post`` extension points.
    """

    def __init__(self, coordinator: CampaignCoordinator) -> None:
        hub = coordinator.engine.telemetry
        if hub is None:
            raise ValueError("CoordinatorService needs an engine telemetry hub")
        self.coordinator = coordinator
        self.hub = hub

    # -- scrape endpoints (delegated) ---------------------------------
    def metrics_text(self) -> str:
        return self.hub.metrics_text()

    def status_payload(self) -> dict:
        return self.hub.status_payload()

    def progress_payload(self) -> dict:
        return self.hub.progress_payload()

    # -- coordination routes ------------------------------------------
    def handle_get(self, path: str):
        if path == "/manifest":
            body = json.dumps(
                self.coordinator.manifest(), indent=2, sort_keys=True
            )
            return (body + "\n").encode(), "application/json"
        if path == "/work":
            with self.coordinator.lock:
                payload = self.coordinator.book.snapshot(
                    self.coordinator.clock()
                )
            payload["schema_version"] = WORK_SCHEMA_VERSION
            body = json.dumps(payload, indent=2, sort_keys=True)
            return (body + "\n").encode(), "application/json"
        return None

    def handle_post(self, path: str, body: bytes):
        if path == "/lease":
            obj = json.loads(body.decode() or "{}")
            payload = self.coordinator.lease_payload(
                str(obj.get("worker", "anonymous"))
            )
            return pickle.dumps(payload), "application/octet-stream"
        if path == "/submit":
            obj = json.loads(body.decode())
            payload = self.coordinator.submit(
                str(obj.get("worker", "anonymous")),
                int(obj["batch"]),
                obj.get("results", []),
            )
            return (
                json.dumps(payload, sort_keys=True) + "\n"
            ).encode(), "application/json"
        return None


class WorkerError(RuntimeError):
    """The coordinator is unreachable or served an unusable payload."""


def coordinator_url(endpoint: str) -> str:
    """``HOST:PORT``/``PORT``/full URL -> a base ``http://`` URL."""
    if "://" in endpoint:
        return endpoint.rstrip("/")
    from repro.observability.serve import parse_endpoint

    host, port = parse_endpoint(endpoint)
    return f"http://{host}:{port}"


@dataclass
class WorkerStats:
    batches: int = 0
    trials: int = 0
    duplicates: int = 0


class WorkerClient:
    """One campaign worker: lease, execute, submit, repeat.

    Builds its campaign from the coordinator's ``/manifest`` through
    the same registry path the local CLI uses, so
    ``execute_trial`` runs under a context equal to the coordinator's -
    the precondition for bit-identical results.  ``jobs`` forwards to
    the worker's own engine, so one worker can drive a local process
    pool between HTTP round-trips.

    Run one client per OS process (``campaign work`` does): trial
    execution scopes the per-process observability runtime, so two
    clients executing concurrently on threads of one process would
    cross their propagation timelines.
    """

    def __init__(
        self,
        endpoint: str,
        *,
        jobs: int | None = 1,
        name: str | None = None,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        max_batches: int | None = None,
        hold_seconds: float | None = None,
        log=None,
    ) -> None:
        self.url = coordinator_url(endpoint)
        self.jobs = jobs
        self.name = name or f"{socket.gethostname()}:{os.getpid()}"
        self.poll_interval = poll_interval
        self.max_batches = max_batches
        if hold_seconds is None:
            hold_seconds = float(os.environ.get(HOLD_ENV, "0") or 0)
        self.hold_seconds = hold_seconds
        self.log = log or (lambda _msg: None)
        self.stats = WorkerStats()

    # -- transport ----------------------------------------------------
    def _request(
        self, path: str, data: bytes | None = None, retries: int = CONNECT_RETRIES
    ) -> bytes:
        request = urllib.request.Request(
            self.url + path,
            data=data,
            headers={"Content-Type": "application/json"} if data else {},
        )
        last: Exception | None = None
        for _ in range(retries):
            try:
                with urllib.request.urlopen(request, timeout=30) as response:
                    return response.read()
            except urllib.error.HTTPError as exc:
                # The endpoint answered; a non-200 is a protocol error,
                # not a transient outage.
                raise WorkerError(
                    f"{self.url}{path}: HTTP {exc.code} {exc.reason}"
                ) from exc
            except (urllib.error.URLError, OSError, TimeoutError) as exc:
                last = exc
                time.sleep(self.poll_interval)
        raise WorkerError(
            f"coordinator unreachable after {retries} attempts: "
            f"{self.url}{path}: {last}"
        )

    def _get_json(self, path: str) -> dict:
        return json.loads(self._request(path).decode())

    def _post_json(self, path: str, payload: dict) -> bytes:
        return self._request(path, json.dumps(payload).encode())

    # -- the work loop ------------------------------------------------
    def _build_engine(self, manifest: dict):
        from repro.injection.campaign import Campaign

        if manifest.get("schema_version") != WORK_SCHEMA_VERSION:
            raise WorkerError(
                f"coordinator speaks work schema "
                f"{manifest.get('schema_version')!r}, worker expects "
                f"{WORK_SCHEMA_VERSION}"
            )
        campaign = Campaign.from_registry(
            manifest["app"],
            nprocs=int(manifest["nprocs"]),
            app_params=manifest.get("app_params") or {},
            seed=int(manifest["seed"]),
        )
        return campaign.engine(
            jobs=self.jobs,
            checkpoint_stride=manifest.get("checkpoint_stride"),
            fastpath=bool(manifest.get("fastpath", False)),
        )

    def _check_specs(self, engine, specs: list[TrialSpec]) -> None:
        """A leased spec must match the worker's rebuilt execution
        identity exactly; anything else would execute (and store) under
        the wrong trial keys."""
        ctx = engine.context
        for spec in specs:
            if (
                spec.app != ctx.app
                or spec.nprocs != ctx.config.nprocs
                or spec.config_seed != ctx.config.seed
                or spec.campaign_seed != engine.seed
            ):
                raise WorkerError(
                    f"leased spec {spec.key} does not match the "
                    f"manifest-built context (app/nprocs/seed drift)"
                )

    def run(self) -> WorkerStats:
        manifest = self._get_json("/manifest")
        self.log(
            f"worker {self.name}: joined {manifest['app']} campaign at "
            f"{self.url} ({manifest['trials']} trials, "
            f"{manifest['batches']} batches)"
        )
        with self._build_engine(manifest) as engine:
            while True:
                if (
                    self.max_batches is not None
                    and self.stats.batches >= self.max_batches
                ):
                    return self.stats
                try:
                    grant = pickle.loads(
                        self._request(
                            "/lease",
                            json.dumps({"worker": self.name}).encode(),
                            retries=6,
                        )
                    )
                except WorkerError:
                    # Unreachable while holding no work: the campaign
                    # finished (the coordinator stopped serving after
                    # its linger window) or died - either way nothing
                    # is lost; any lease we never took requeues.
                    self.log(
                        f"worker {self.name}: coordinator gone; exiting"
                    )
                    return self.stats
                if grant.get("done"):
                    self.log(f"worker {self.name}: campaign complete")
                    return self.stats
                if "batch" not in grant:
                    time.sleep(float(grant.get("wait", self.poll_interval)))
                    continue
                specs = grant["specs"]
                self._check_specs(engine, specs)
                if self.hold_seconds:
                    time.sleep(self.hold_seconds)
                results = engine.run_trials(specs)
                reply = json.loads(self._post_json("/submit", {
                    "worker": self.name,
                    "batch": grant["batch"],
                    "results": [result.to_json() for result in results],
                }).decode())
                self.stats.batches += 1
                self.stats.trials += len(results)
                self.stats.duplicates += int(reply.get("duplicate", 0))
                self.log(
                    f"worker {self.name}: batch {grant['batch']} "
                    f"(attempt {grant.get('attempt', 1)}): "
                    f"{reply.get('accepted', 0)} accepted, "
                    f"{reply.get('duplicate', 0)} duplicate"
                )
                if reply.get("done"):
                    # Exit on the submit acknowledgement rather than an
                    # extra lease round: the coordinator may stop
                    # serving shortly after the campaign completes.
                    self.log(f"worker {self.name}: campaign complete")
                    return self.stats
