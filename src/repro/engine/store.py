"""Append-only JSONL result store: resume, merge, status.

One line per completed trial, keyed by the trial content hash (see
:func:`repro.engine.trial.trial_key`).  Appends are flushed per line so
an interrupted campaign loses at most the trial in flight; a partially
written final line is tolerated (and skipped) on load.  Because trial
execution is deterministic, duplicate keys always carry identical
results, and every reader deduplicates by key.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable

from repro.engine.trial import TrialResult
from repro.injection.outcomes import Manifestation
from repro.sampling.theory import achieved_error


@dataclass
class StoreStatus:
    """Per-(app, region) summary of stored trials."""

    app: str
    region: str
    trials: int
    errors: int
    #: Trial count per manifestation class (``correct``, ``crash``, ...).
    manifestations: dict[str, int] = field(default_factory=dict)
    #: Trials satisfied by the static masking oracle (``--prune-masked``),
    #: recognisable by their ``pruned:<reason>`` detail marker.
    pruned: int = 0

    @property
    def error_rate_percent(self) -> float:
        return 100.0 * self.errors / self.trials if self.trials else 0.0

    @property
    def achieved_d_percent(self) -> float:
        return 100.0 * achieved_error(self.trials) if self.trials else float("nan")


class ResultStore:
    """Append-only JSONL store of :class:`TrialResult` records."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._fh: IO[str] | None = None

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, result: TrialResult) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # A crash mid-write leaves a partial line with no trailing
            # newline; appending straight after it would glue the new
            # record onto the fragment and corrupt both.  Terminate the
            # fragment first so only the interrupted trial is lost.
            needs_newline = False
            if self.path.exists() and self.path.stat().st_size > 0:
                with open(self.path, "rb") as fh:
                    fh.seek(-1, os.SEEK_END)
                    needs_newline = fh.read(1) != b"\n"
            self._fh = open(self.path, "a")
            if needs_newline:
                self._fh.write("\n")
        self._fh.write(json.dumps(result.to_json(), sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def load(self) -> dict[str, TrialResult]:
        """All stored results, deduplicated by trial key.

        Unparseable lines (e.g. a write cut short by the interruption
        that ``--resume`` exists to recover from) are skipped.
        """
        results: dict[str, TrialResult] = {}
        if not self.path.exists():
            return results
        with open(self.path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                    result = TrialResult.from_json(obj)
                except (ValueError, KeyError, TypeError, AttributeError):
                    # ValueError covers truncated JSON and bad enum
                    # values; TypeError/AttributeError cover lines that
                    # parse as valid JSON of the wrong shape (a bare
                    # number, a list) - both mean "corrupt record":
                    # skip it and let --resume re-run that trial.
                    continue
                results[result.key] = result
        return results

    def status(self) -> list[StoreStatus]:
        """Stored-trial summaries grouped by (app, region), sorted."""
        groups: dict[tuple[str, str], list[TrialResult]] = {}
        for result in self.load().values():
            groups.setdefault((result.app, result.region.value), []).append(result)
        out = []
        for (app, region), results in sorted(groups.items()):
            errors = sum(
                1 for r in results if r.manifestation is not Manifestation.CORRECT
            )
            tally: dict[str, int] = {}
            for r in results:
                name = r.manifestation.value
                tally[name] = tally.get(name, 0) + 1
            out.append(
                StoreStatus(
                    app=app,
                    region=region,
                    trials=len(results),
                    errors=errors,
                    manifestations=dict(sorted(tally.items())),
                    pruned=sum(
                        1 for r in results if r.detail.startswith("pruned:")
                    ),
                )
            )
        return out

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------
    @staticmethod
    def merge(inputs: Iterable[str | os.PathLike], output: str | os.PathLike) -> int:
        """Merge stores into ``output``, deduplicating by key; returns
        the number of unique trials written."""
        merged: dict[str, TrialResult] = {}
        for path in inputs:
            merged.update(ResultStore(path).load())
        ordered = sorted(
            merged.values(), key=lambda r: (r.app, r.region.value, r.index)
        )
        out_path = Path(output)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        with open(out_path, "w") as fh:
            for result in ordered:
                fh.write(json.dumps(result.to_json(), sort_keys=True) + "\n")
        return len(ordered)
