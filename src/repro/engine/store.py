"""Result stores: resume, merge, status, incremental following.

Two interchangeable backends sit behind one interface (``append``,
``load``, ``iter_results``, ``status``, ``follower``, context-manager
close):

* :class:`ResultStore` - append-only JSONL, one line per completed
  trial.  Appends are flushed per line so an interrupted campaign loses
  at most the trial in flight; a partially written final line is
  tolerated (and skipped) on load.
* :class:`~repro.engine.store_sqlite.SQLiteResultStore` - a WAL-mode
  SQLite table keyed by the trial content hash, for many concurrent
  writer processes (distributed workers) merging without append-file
  contention.

Both are keyed by the trial content hash (see
:func:`repro.engine.trial.trial_key`).  Because trial execution is
deterministic, duplicate keys always carry identical results, and every
reader deduplicates by key.  :func:`open_store` picks the backend from
the path (``.sqlite``/``.sqlite3``/``.db`` suffixes or the SQLite file
magic); :func:`merge_stores` merges any mix of backends into either.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.engine.trial import TrialResult
from repro.injection.outcomes import Manifestation
from repro.sampling.theory import achieved_error


def parse_result_line(line: str) -> TrialResult | None:
    """One stored line -> a rehydrated result, or ``None`` for corrupt
    records (truncated JSON, wrong shape, bad enum values) - the
    interruption cases ``--resume`` exists to recover from."""
    line = line.strip()
    if not line:
        return None
    try:
        return TrialResult.from_json(json.loads(line))
    except (ValueError, KeyError, TypeError, AttributeError):
        return None


@dataclass
class StoreStatus:
    """Per-(app, region) summary of stored trials."""

    app: str
    region: str
    trials: int
    errors: int
    #: Trial count per manifestation class (``correct``, ``crash``, ...).
    manifestations: dict[str, int] = field(default_factory=dict)
    #: Trials satisfied by the static masking oracle (``--prune-masked``),
    #: recognisable by their ``pruned:<reason>`` detail marker.
    pruned: int = 0

    @property
    def error_rate_percent(self) -> float:
        return 100.0 * self.errors / self.trials if self.trials else 0.0

    @property
    def achieved_d_percent(self) -> float:
        return 100.0 * achieved_error(self.trials) if self.trials else float("nan")

    def to_json(self) -> dict:
        return {
            "app": self.app,
            "region": self.region,
            "trials": self.trials,
            "errors": self.errors,
            "error_rate_percent": self.error_rate_percent,
            "achieved_d_percent": self.achieved_d_percent,
            "manifestations": self.manifestations,
            "pruned": self.pruned,
        }


class StoreSummary:
    """Incremental, order-independent fold of trial results.

    ``add`` ingests one result at a time into per-``(app, region)``
    counters plus a fixed-bucket error-latency histogram, so a summary
    over a million-trial store holds a handful of dicts - not the
    results.  Both ``campaign status`` and the live telemetry server
    fold through this one authority; because every field is a sum, the
    fold is identical for any ingestion order (streaming a store,
    driver completion order at any worker count, or a merge of both).
    """

    def __init__(self) -> None:
        #: ``(app, region) -> {"trials": n, "errors": n, "pruned": n,
        #: "manifestations": {class: n}}``
        self._groups: dict[tuple[str, str], dict] = {}
        #: ``(app, region) -> latency Histogram`` (only trials whose
        #: timeline recorded a divergence latency contribute).
        self._latency: dict[tuple[str, str], object] = {}

    @classmethod
    def from_results(cls, results: Iterable[TrialResult]) -> "StoreSummary":
        summary = cls()
        for result in results:
            summary.add(result)
        return summary

    def add(self, result: TrialResult) -> None:
        key = (result.app, result.region.value)
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = {
                "trials": 0,
                "errors": 0,
                "pruned": 0,
                "manifestations": {},
            }
        group["trials"] += 1
        if result.manifestation is not Manifestation.CORRECT:
            group["errors"] += 1
        if result.detail.startswith("pruned:"):
            group["pruned"] += 1
        name = result.manifestation.value
        tally = group["manifestations"]
        tally[name] = tally.get(name, 0) + 1
        if result.latency_blocks is not None:
            from repro.observability.metrics import Histogram

            hist = self._latency.get(key)
            if hist is None:
                hist = self._latency[key] = Histogram()
            hist.observe(result.latency_blocks)

    @property
    def trials(self) -> int:
        return sum(g["trials"] for g in self._groups.values())

    @property
    def errors(self) -> int:
        return sum(g["errors"] for g in self._groups.values())

    def rows(self) -> list[StoreStatus]:
        """Per-(app, region) summaries, sorted - the exact rows the
        legacy full-load ``status`` produced."""
        return [
            StoreStatus(
                app=app,
                region=region,
                trials=group["trials"],
                errors=group["errors"],
                manifestations=dict(sorted(group["manifestations"].items())),
                pruned=group["pruned"],
            )
            for (app, region), group in sorted(self._groups.items())
        ]

    def fill_registry(self, registry) -> None:
        """Mirror the fold into a metrics registry using the same
        metric names a live campaign emits, so a store-backed
        ``/metrics`` endpoint is scrape-compatible with a live one."""
        for (app, region), group in sorted(self._groups.items()):
            registry.gauge(
                "repro_campaign_trials_done", app=app, region=region
            ).set(group["trials"])
            registry.gauge(
                "repro_campaign_errors", app=app, region=region
            ).set(group["errors"])
            for name, count in sorted(group["manifestations"].items()):
                counter = registry.counter(
                    "repro_trial_outcomes_total", manifestation=name
                )
                counter.value += count
        for (app, region), hist in sorted(self._latency.items()):
            mirror = registry.histogram(
                "repro_error_latency_blocks", region=region
            )
            for i, count in enumerate(hist.counts):
                mirror.counts[i] += count
            mirror.sum += hist.sum
            mirror.count += hist.count


class ResultStore:
    """Append-only JSONL store of :class:`TrialResult` records."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._fh: IO[str] | None = None

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, result: TrialResult) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # A crash mid-write leaves a partial line with no trailing
            # newline; appending straight after it would glue the new
            # record onto the fragment and corrupt both.  Terminate the
            # fragment first so only the interrupted trial is lost.
            needs_newline = False
            if self.path.exists() and self.path.stat().st_size > 0:
                with open(self.path, "rb") as fh:
                    fh.seek(-1, os.SEEK_END)
                    needs_newline = fh.read(1) != b"\n"
            self._fh = open(self.path, "a")
            if needs_newline:
                self._fh.write("\n")
        self._fh.write(json.dumps(result.to_json(), sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def load(self) -> dict[str, TrialResult]:
        """All stored results, deduplicated by trial key.

        Unparseable lines (e.g. a write cut short by the interruption
        that ``--resume`` exists to recover from) are skipped.
        """
        results: dict[str, TrialResult] = {}
        if not self.path.exists():
            return results
        with open(self.path) as fh:
            for line in fh:
                result = parse_result_line(line)
                if result is not None:
                    results[result.key] = result
        return results

    def iter_results(self) -> Iterator[TrialResult]:
        """Stream stored results one at a time, deduplicated by key.

        Unlike :meth:`load`, only the *keys* of already-seen trials stay
        resident - never the parsed records - so folding a million-trial
        store (see :class:`StoreSummary`) runs in memory bounded by the
        key set, not the result set.  Duplicate keys always carry
        identical payloads (trial execution is deterministic), so
        first-wins streaming dedup and :meth:`load`'s last-wins dict
        produce identical tallies.
        """
        if not self.path.exists():
            return
        seen: set[str] = set()
        with open(self.path) as fh:
            for line in fh:
                result = parse_result_line(line)
                if result is None or result.key in seen:
                    continue
                seen.add(result.key)
                yield result

    def status(self) -> list[StoreStatus]:
        """Stored-trial summaries grouped by (app, region), sorted.

        Streams through :meth:`iter_results`: the full store is never
        loaded, so ``campaign status`` (and the live ``/status``
        endpoint) stay bounded-memory on arbitrarily large stores.
        """
        return StoreSummary.from_results(self.iter_results()).rows()

    def follower(self) -> "JSONLFollower":
        """An incremental reader over this store's path (see
        :class:`JSONLFollower`)."""
        return JSONLFollower(self.path)

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------
    @staticmethod
    def merge(inputs: Iterable[str | os.PathLike], output: str | os.PathLike) -> int:
        """Merge stores into ``output``, deduplicating by key; returns
        the number of unique trials written.  Inputs and output may be
        any backend mix (see :func:`merge_stores`)."""
        return merge_stores(inputs, output)


class JSONLFollower:
    """Incremental reader over an append-only JSONL store.

    ``poll`` parses only the bytes appended since the previous call
    (complete lines only - a partial trailing write is left for the
    next poll, the same tolerance the store's readers apply) and
    reports whether the file shrank, which means the store was
    rewritten and any fold over previous polls must restart from zero.
    Results are *not* key-deduplicated here; the consumer owns the seen
    set so it can clear it on reset.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._offset = 0

    def poll(self) -> tuple[list[TrialResult], bool]:
        """``(newly appended results in file order, reset_flag)``."""
        reset = False
        try:
            size = self.path.stat().st_size
        except OSError:
            size = 0
        if size < self._offset:  # truncated/rewritten: start over
            self._offset = 0
            reset = True
        if size == self._offset:
            return [], reset
        with open(self.path, "rb") as fh:
            fh.seek(self._offset)
            data = fh.read()
        last_newline = data.rfind(b"\n")
        if last_newline < 0:
            return [], reset
        self._offset += last_newline + 1
        results = []
        for raw in data[: last_newline + 1].splitlines():
            result = parse_result_line(raw.decode("utf-8", "replace"))
            if result is not None:
                results.append(result)
        return results, reset


#: Path suffixes that select the SQLite backend in :func:`open_store`.
SQLITE_SUFFIXES = frozenset({".sqlite", ".sqlite3", ".db"})

#: The first 16 bytes of every SQLite database file.
SQLITE_MAGIC = b"SQLite format 3\x00"


def is_sqlite_path(path: str | os.PathLike) -> bool:
    """Should ``path`` be opened as a SQLite store?  Decided by suffix
    for new files, and by the file magic for existing ones (so a
    renamed store still opens with the right backend)."""
    p = Path(path)
    if p.suffix.lower() in SQLITE_SUFFIXES:
        return True
    try:
        with open(p, "rb") as fh:
            return fh.read(len(SQLITE_MAGIC)) == SQLITE_MAGIC
    except OSError:
        return False


def open_store(store):
    """Coerce a path (or pass through an existing store object) to a
    result-store backend.  The one factory every store consumer - the
    campaign engine, ``campaign status``/``merge``, ``repro serve``,
    the distributed coordinator - resolves paths through."""
    if isinstance(store, ResultStore) or hasattr(store, "iter_results"):
        return store
    if is_sqlite_path(store):
        from repro.engine.store_sqlite import SQLiteResultStore

        return SQLiteResultStore(store)
    return ResultStore(store)


def merge_stores(
    inputs: Iterable[str | os.PathLike], output: str | os.PathLike
) -> int:
    """Merge stores (any backend mix) into ``output`` (backend chosen
    by its path), deduplicating by key; returns the number of unique
    trials written.  The output is rewritten from scratch in sorted
    ``(app, region, index)`` order, so merging the same inputs always
    produces byte-identical output."""
    merged: dict[str, TrialResult] = {}
    for path in inputs:
        store = open_store(path)
        merged.update(store.load())
        store.close()
    ordered = sorted(
        merged.values(), key=lambda r: (r.app, r.region.value, r.index)
    )
    out_path = Path(output)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    # Rewrite from scratch; stale WAL sidecars must go with the old db,
    # or a fresh database behind them would fail to open.
    for stale in (out_path, *(
        out_path.with_name(out_path.name + ext) for ext in ("-wal", "-shm")
    )):
        if stale.exists():
            stale.unlink()
    with open_store(out_path) as out:
        for result in ordered:
            out.append(result)
    return len(ordered)
