"""The campaign execution engine.

One authority for single-trial execution (budgets, install, classify),
pluggable serial/parallel executors, an append-only JSONL result store
with resume/merge, adaptive Cochran-half-width sampling, and progress
callbacks.  ``Campaign``, ``run_with_fault``, the experiment registry
and the ``python -m repro campaign`` CLI all flow through this package.
"""

from repro.engine.budgets import (
    HANG_BLOCK_FACTOR,
    HANG_BLOCK_SLACK,
    HANG_ROUND_FACTOR,
    HANG_ROUND_SLACK,
    block_budget,
    hang_budgets,
    round_budget,
)
from repro.engine.checkpoint import (
    CheckpointStore,
    GoldenRecording,
    MachineSnapshot,
    ReplayPlan,
    plan_replay,
    record_golden,
)
from repro.engine.coordination import (
    CampaignCoordinator,
    CoordinatorService,
    LeaseBook,
    WorkerClient,
)
from repro.engine.core import ExecutionContext, execute_trial, run_single
from repro.engine.driver import CampaignEngine, observed_half_width
from repro.engine.executors import (
    JOBS_ENV,
    ParallelExecutor,
    SerialExecutor,
    default_jobs,
    make_executor,
)
from repro.engine.progress import ProgressEvent, format_progress
from repro.engine.store import (
    ResultStore,
    StoreStatus,
    StoreSummary,
    merge_stores,
    open_store,
)
from repro.engine.store_sqlite import SQLiteResultStore
from repro.engine.trial import (
    TrialResult,
    TrialSpec,
    canonical_params,
    region_salt,
    restore_rng,
    trial_key,
    trial_rng,
)

__all__ = [
    "HANG_BLOCK_FACTOR",
    "HANG_BLOCK_SLACK",
    "HANG_ROUND_FACTOR",
    "HANG_ROUND_SLACK",
    "block_budget",
    "hang_budgets",
    "round_budget",
    "CheckpointStore",
    "GoldenRecording",
    "MachineSnapshot",
    "ReplayPlan",
    "plan_replay",
    "record_golden",
    "CampaignCoordinator",
    "CoordinatorService",
    "LeaseBook",
    "WorkerClient",
    "ExecutionContext",
    "execute_trial",
    "run_single",
    "CampaignEngine",
    "observed_half_width",
    "JOBS_ENV",
    "ParallelExecutor",
    "SerialExecutor",
    "default_jobs",
    "make_executor",
    "ProgressEvent",
    "format_progress",
    "ResultStore",
    "SQLiteResultStore",
    "StoreStatus",
    "StoreSummary",
    "merge_stores",
    "open_store",
    "TrialResult",
    "TrialSpec",
    "canonical_params",
    "region_salt",
    "restore_rng",
    "trial_key",
    "trial_rng",
]
