"""SQLite-backed result store: idempotent multi-writer merge.

The JSONL store is ideal for one appender per file, but a fleet of
distributed workers funneling results through one coordinator - or
several coordinators sharing one database - needs concurrent writers
without append-file contention.  This backend keeps the exact record
payload the JSONL store writes (the sorted-keys JSON line) in a WAL-mode
SQLite table whose primary key is the trial content hash:

* ``INSERT OR IGNORE`` makes every append idempotent - two writers
  landing the same deterministic trial store exactly one row, the same
  first-wins semantics JSONL readers apply at parse time;
* WAL mode + a busy timeout let writers from different processes
  interleave at row granularity, and readers (``campaign status``, the
  ``serve`` follower) scrape concurrently without blocking them;
* a crash mid-append rolls the open transaction back, so at most the
  trial in flight is lost - the same contract as a torn JSONL line,
  recovered the same way (``--resume`` re-executes it).

Interface-compatible with :class:`~repro.engine.store.ResultStore`:
``append``, ``load``, ``iter_results``, ``status``, ``follower``,
context-manager close.  :func:`~repro.engine.store.open_store` selects
this backend for ``.sqlite``/``.sqlite3``/``.db`` paths or any file
carrying the SQLite magic.
"""

from __future__ import annotations

import json
import os
import sqlite3
from pathlib import Path
from typing import Iterator

from repro.engine.store import StoreStatus, StoreSummary, parse_result_line
from repro.engine.trial import TrialResult

#: Writers wait this long (ms) for a competing writer's transaction.
BUSY_TIMEOUT_MS = 30_000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS trials (
    key     TEXT PRIMARY KEY,
    app     TEXT NOT NULL,
    region  TEXT NOT NULL,
    idx     INTEGER NOT NULL,
    payload TEXT NOT NULL
)
"""


def _configure(conn: sqlite3.Connection) -> sqlite3.Connection:
    conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
    conn.execute("PRAGMA journal_mode=WAL")
    conn.execute("PRAGMA synchronous=NORMAL")
    return conn


class SQLiteResultStore:
    """Content-hash-keyed SQLite store of :class:`TrialResult` records."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._conn: sqlite3.Connection | None = None

    # ------------------------------------------------------------------
    # connection
    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # Autocommit (isolation_level=None): every append is its own
            # transaction, so a crash loses at most the trial in flight.
            # check_same_thread off: the coordinator appends from HTTP
            # handler threads (serialized under its own lock).
            conn = sqlite3.connect(
                self.path,
                timeout=BUSY_TIMEOUT_MS / 1000.0,
                isolation_level=None,
                check_same_thread=False,
            )
            _configure(conn).execute(_SCHEMA)
            self._conn = conn
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "SQLiteResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, result: TrialResult) -> None:
        payload = json.dumps(result.to_json(), sort_keys=True)
        self._connect().execute(
            "INSERT OR IGNORE INTO trials (key, app, region, idx, payload) "
            "VALUES (?, ?, ?, ?, ?)",
            (result.key, result.app, result.region.value, result.index, payload),
        )

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def load(self) -> dict[str, TrialResult]:
        """All stored results, keyed by trial key."""
        return {result.key: result for result in self.iter_results()}

    def iter_results(self) -> Iterator[TrialResult]:
        """Stream stored results in insertion order.

        Keys are unique by construction (primary key), so no seen-set
        is needed: memory stays bounded by the cursor window.
        """
        if not self.path.exists():
            return
        cursor = self._connect().execute(
            "SELECT payload FROM trials ORDER BY rowid"
        )
        for (payload,) in cursor:
            result = parse_result_line(payload)
            if result is not None:
                yield result

    def status(self) -> list[StoreStatus]:
        """Stored-trial summaries grouped by (app, region), sorted -
        the same rows the JSONL backend produces for the same trials."""
        return StoreSummary.from_results(self.iter_results()).rows()

    def follower(self) -> "SQLiteFollower":
        return SQLiteFollower(self.path)


class SQLiteFollower:
    """Incremental reader over a SQLite store: the ``rowid`` analogue of
    the JSONL byte-offset follower.

    Each ``poll`` opens a fresh read connection (robust against the
    database file being replaced underneath a long-lived server) and
    fetches only rows appended since the previous poll.  A max rowid
    below the remembered high-water mark means the store was rebuilt;
    the poll reports a reset so the consumer restarts its fold.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._last_rowid = 0

    def poll(self) -> tuple[list[TrialResult], bool]:
        """``(newly appended results in rowid order, reset_flag)``."""
        if not self.path.exists():
            reset = self._last_rowid > 0
            self._last_rowid = 0
            return [], reset
        try:
            conn = sqlite3.connect(self.path, timeout=BUSY_TIMEOUT_MS / 1000.0)
            try:
                conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
                (max_rowid,) = conn.execute(
                    "SELECT COALESCE(MAX(rowid), 0) FROM trials"
                ).fetchone()
                reset = False
                if max_rowid < self._last_rowid:  # rebuilt: start over
                    self._last_rowid = 0
                    reset = True
                rows = conn.execute(
                    "SELECT rowid, payload FROM trials WHERE rowid > ? "
                    "ORDER BY rowid",
                    (self._last_rowid,),
                ).fetchall()
            finally:
                conn.close()
        except sqlite3.Error:
            # Mid-creation or foreign file; leave state for the next poll.
            return [], False
        results = []
        for rowid, payload in rows:
            self._last_rowid = rowid
            result = parse_result_line(payload)
            if result is not None:
                results.append(result)
        return results, reset
