"""Hang-budget formulas: the single authority.

The paper waited "one minute beyond the expected execution completion
time" before declaring a Hang.  The simulated analogue scales the
fault-free profile (scheduler rounds, per-rank basic blocks) by a
generous factor and adds a constant slack so that short runs still get
a usable margin.

Historically this formula lived twice - in
``repro.injection.campaign.ReferenceProfile`` and again inline in
``repro.harness.runner.run_with_fault`` - and the two copies had begun
to drift.  Both now delegate here; a regression test pins them to these
functions.
"""

from __future__ import annotations

#: Multiplier applied to the fault-free scheduler-round count.
HANG_ROUND_FACTOR = 3.0
#: Constant slack added to the round budget (covers very short runs).
HANG_ROUND_SLACK = 300
#: Multiplier applied to the fault-free per-rank basic-block maximum.
HANG_BLOCK_FACTOR = 2.5
#: Constant slack added to the block budget.
HANG_BLOCK_SLACK = 2000


def round_budget(reference_rounds: int) -> int:
    """Scheduler-round hang budget for a job whose fault-free execution
    took ``reference_rounds`` rounds."""
    if reference_rounds < 0:
        raise ValueError(f"reference rounds must be non-negative: {reference_rounds}")
    return int(reference_rounds * HANG_ROUND_FACTOR) + HANG_ROUND_SLACK


def block_budget(reference_max_blocks: int) -> int:
    """Per-rank basic-block hang budget for a job whose busiest rank
    executed ``reference_max_blocks`` blocks fault-free."""
    if reference_max_blocks < 0:
        raise ValueError(
            f"reference block count must be non-negative: {reference_max_blocks}"
        )
    return int(reference_max_blocks * HANG_BLOCK_FACTOR) + HANG_BLOCK_SLACK


def hang_budgets(reference_rounds: int, blocks_per_rank) -> tuple[int, int]:
    """``(round_limit, block_limit)`` for one fault-free profile."""
    return round_budget(reference_rounds), block_budget(max(blocks_per_rank))
