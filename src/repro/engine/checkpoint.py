"""Checkpointed trial execution: record the golden run once, replay its
prefix for every trial.

Every injection trial executes the same fault-free prefix from block 0
up to the injection instant (the paper's three-axis space samples the
injection *time* uniformly, so on average half of every trial is an
exact re-run of the golden execution).  This module makes that prefix
cheap without changing a single observable bit:

**Effects replay, not state teleportation.**  Each rank's ``main`` is a
Python generator; its locals (loop counters, kernel results read back
into Python, live ``Request`` objects) cannot be serialized and grafted
onto a fresh job.  Instead, one *golden recording* run wraps every
rank's VM in a :class:`_RecordingVM` that captures, per kernel call,
the call's complete machine effect: the exact bytes it changed in the
writable segments (a NumPy diff), the post-call register file and FPU,
the clock and retirement counters, the post-call stack pointers and
segment versions, and the EAX return value.  A trial then wraps its VMs
in :class:`_ReplayVM` objects that *apply* those recorded effects
instead of interpreting instructions.  All Python-side orchestration -
the scheduler, the MPI stack, heap bookkeeping, application logic,
detector sweeps, RNG draws - still runs for real, and because the
machine state it reads is bit-identical to the golden run, it behaves
bit-identically.  Only the dominant cost (the per-instruction
interpreter loop) is skipped.

**The causally safe switch point.**  Replay is only valid while the
trial is provably identical to the golden run.  Injection hooks fire
exclusively inside ``VM.step()`` - i.e. during *real* kernel execution
- so for a time-`t` fault on rank `k` the first call that can observe
the fault is rank `k`'s first recorded call whose end-of-call clock
reaches `t`; under round-robin scheduling nothing in any earlier
*round* can depend on it.  Every call from that round on runs real
(:func:`natural_switch_round`).  MESSAGE faults corrupt a packet inside
``ChannelEndpoint.recv`` - which replay executes for real - so the
switch round is the round in which the rank's received-byte counter
first passes the target byte.

**Stride.**  The recording itself is stride-independent (it stores
every call); ``checkpoint_stride`` is applied at restore time by
quantizing the switch round down to the last round boundary at which
the golden block clock crossed a multiple of ``stride`` blocks
(:func:`quantize_switch_round`).  ``stride=1`` replays everything it
safely can; larger strides trade replay coverage for coarser restore
points, exactly like an on-disk checkpoint interval would.

**Drift guards.**  Every elided call asserts the recorded function
name, normalized arguments, start clock and start retirement count
against the live machine; any mismatch raises
:class:`~repro.errors.CheckpointDesync`, which the simulator re-raises
out of the trial instead of classifying it as a Crash.

:class:`MachineSnapshot` is the complementary full-state container: a
picklable capture of every deterministic machine field of a paused job
(used by the snapshot round-trip property suite, and for debugging
desyncs).  :class:`CheckpointStore` caches one golden recording per
``(app, JobConfig)`` key so serial drivers and every forked worker
share a single recording.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import CheckpointDesync
from repro.injection.faults import FaultSpec, Region
from repro.mpi.simulator import Job

_U32 = 0xFFFF_FFFF

#: Fixed order of the writable segments a kernel call can touch; delta
#: records index into this tuple.  Text is read/execute-only to the VM
#: (a store there faults), so it never needs diffing.
_RW_SEGMENT_COUNT = 4


def _rw_segments(image) -> tuple:
    return (image.data, image.bss, image.heap_segment, image.stack_segment)


def _all_segments(image) -> tuple:
    return (image.text,) + _rw_segments(image)


def _norm_function(function) -> str | int:
    return function if isinstance(function, str) else int(function)


def _norm_args(args) -> tuple[int, ...]:
    # Mirror VM.call's own argument normalization so recorded and live
    # argument tuples compare equal for any int-like input.
    return tuple(int(a) & _U32 for a in args)


# ----------------------------------------------------------------------
# golden recording
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SegDelta:
    """Bytes one kernel call changed in one writable segment."""

    seg: int  #: index into the fixed RW segment order
    indices: bytes  #: changed positions, int64 little-endian
    values: bytes  #: new byte values, uint8

    def apply(self, segment) -> None:
        idx = np.frombuffer(self.indices, dtype=np.int64)
        segment.buf[idx] = np.frombuffer(self.values, dtype=np.uint8)


@dataclass(frozen=True)
class CallRecord:
    """The complete machine effect of one recorded kernel call."""

    round: int  #: scheduler round the call executed in
    name: str | int
    args: tuple[int, ...]
    start_blocks: int
    end_blocks: int
    start_insns: int
    end_insns: int
    eax: int
    regs: tuple  #: post-call RegisterFile.capture_state()
    fpu: tuple  #: post-call FPU.capture_state()
    esp: int  #: post-call StackManager.esp
    ebp: int  #: post-call StackManager.ebp
    #: Post-call version of each RW segment (absolute, so replayed state
    #: stays version-identical to a real run forever).
    seg_versions: tuple[int, ...]
    deltas: tuple[SegDelta, ...]


@dataclass(frozen=True)
class GoldenRecording:
    """One fault-free execution, recorded call-by-call.

    Picklable and immutable: the parallel executor ships it to each
    fork worker exactly once inside the execution context.
    """

    app: str
    nprocs: int
    rounds: int
    #: Per-rank, in execution order.
    calls: tuple[tuple[CallRecord, ...], ...]
    #: Max block clock over all ranks at the end of each round.
    round_end_blocks: tuple[int, ...]
    #: Per-round, per-rank cumulative received bytes at round end.
    round_recv_bytes: tuple[tuple[int, ...], ...]
    blocks_per_rank: tuple[int, ...]

    @property
    def total_calls(self) -> int:
        return sum(len(per_rank) for per_rank in self.calls)


class _RecordingVM:
    """Transparent VM wrapper that records each call's machine effect.

    Only ``call`` is intercepted; every other attribute delegates to
    the real VM, so detectors, injector plumbing and the apps see an
    ordinary virtual CPU.
    """

    def __init__(self, vm, job: Job, sink: list) -> None:
        self._vm = vm
        self._job = job
        self._sink = sink

    def call(self, function, args=()) -> int:
        vm = self._vm
        image = vm.image
        segments = _rw_segments(image)
        before = [seg.buf.copy() for seg in segments]
        start_blocks = vm.clock.blocks
        start_insns = vm.instructions_retired
        eax = vm.call(function, args)
        deltas = []
        for i, (seg, old) in enumerate(zip(segments, before)):
            changed = np.flatnonzero(seg.buf != old)
            if changed.size:
                deltas.append(
                    SegDelta(
                        seg=i,
                        indices=changed.astype(np.int64).tobytes(),
                        values=seg.buf[changed].tobytes(),
                    )
                )
        self._sink.append(
            CallRecord(
                round=self._job.rounds,
                name=_norm_function(function),
                args=_norm_args(args),
                start_blocks=start_blocks,
                end_blocks=vm.clock.blocks,
                start_insns=start_insns,
                end_insns=vm.instructions_retired,
                eax=eax,
                regs=vm.regs.capture_state(),
                fpu=vm.fpu.capture_state(),
                esp=image.stack.esp,
                ebp=image.stack.ebp,
                seg_versions=tuple(seg.version for seg in segments),
                deltas=tuple(deltas),
            )
        )
        return eax

    def __getattr__(self, name):
        return getattr(self._vm, name)


def record_golden(context) -> GoldenRecording:
    """Execute one fault-free job under recording VMs.

    ``context`` is an :class:`~repro.engine.core.ExecutionContext` (duck
    typed: anything with ``app``, ``factory`` and ``job_config()``).
    """
    job = Job(context.factory(), context.job_config())
    sinks: list[list[CallRecord]] = [[] for _ in range(job.config.nprocs)]
    for rank, ctx in enumerate(job.contexts):
        ctx.vm = _RecordingVM(ctx.vm, job, sinks[rank])
    startup = job.begin()
    if startup is not None:
        raise RuntimeError(
            f"golden recording failed at startup: {startup.detail}"
        )
    round_end_blocks: list[int] = []
    round_recv: list[tuple[int, ...]] = []
    while True:
        result = job.step_round()
        round_end_blocks.append(max(im.clock.blocks for im in job.images))
        round_recv.append(tuple(ep.bytes_received for ep in job.endpoints))
        if result is not None:
            break
    if not result.completed:
        raise RuntimeError(
            f"golden recording did not complete "
            f"({result.status.value}): {result.detail}"
        )
    return GoldenRecording(
        app=context.app,
        nprocs=job.config.nprocs,
        rounds=result.rounds,
        calls=tuple(tuple(sink) for sink in sinks),
        round_end_blocks=tuple(round_end_blocks),
        round_recv_bytes=tuple(round_recv),
        blocks_per_rank=tuple(result.blocks_per_rank),
    )


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------
class _ReplayVM:
    """Applies recorded call effects until its prefix is exhausted,
    then delegates to the real interpreter for the trial's suffix."""

    def __init__(self, vm, records: tuple[CallRecord, ...]) -> None:
        self._vm = vm
        self._records = records
        self._idx = 0

    def call(self, function, args=()) -> int:
        i = self._idx
        if i >= len(self._records):
            return self._vm.call(function, args)
        rec = self._records[i]
        vm = self._vm
        name = _norm_function(function)
        norm = _norm_args(args)
        if (
            rec.name != name
            or rec.args != norm
            or rec.start_blocks != vm.clock.blocks
            or rec.start_insns != vm.instructions_retired
        ):
            raise CheckpointDesync(
                f"replay diverged on rank {vm.image.rank} call #{i}: "
                f"recorded {rec.name!r}(args={rec.args}) at "
                f"{rec.start_blocks} blocks / {rec.start_insns} insns, "
                f"live {name!r}(args={norm}) at "
                f"{vm.clock.blocks} blocks / {vm.instructions_retired} insns"
            )
        self._idx += 1
        image = vm.image
        segments = _rw_segments(image)
        for delta in rec.deltas:
            delta.apply(segments[delta.seg])
        for seg, version in zip(segments, rec.seg_versions):
            seg.version = version
        vm.regs.restore_state(rec.regs)
        vm.fpu.restore_state(rec.fpu)
        vm.clock.restore(rec.end_blocks)
        vm.instructions_retired = rec.end_insns
        image.stack.esp = rec.esp
        image.stack.ebp = rec.ebp
        return rec.eax

    @property
    def replayed_calls(self) -> int:
        return self._idx

    def __getattr__(self, name):
        return getattr(self._vm, name)


def natural_switch_round(recording: GoldenRecording, fault: FaultSpec) -> int:
    """First scheduler round that must execute for real.

    Time-based faults fire inside ``VM.step()`` on the target rank, so
    the earliest affected call is that rank's first recorded call whose
    end clock reaches ``time_blocks`` (detector-driven clock ticks
    between calls never fire hooks; the next call's first step does).
    MESSAGE faults corrupt a packet inside the (always-real) channel
    recv, so the switch is the round during which the target rank's
    received-byte counter passes ``target_byte``.  A fault beyond the
    recorded activity never fires at all, which makes the whole run
    golden: every round may be replayed.
    """
    rank = fault.rank
    if fault.region is Region.MESSAGE:
        target = fault.target_byte or 0
        for r in range(recording.rounds):
            if recording.round_recv_bytes[r][rank] > target:
                return r
        return recording.rounds
    t = fault.time_blocks
    for rec in recording.calls[rank]:
        if rec.end_blocks >= t:
            return rec.round
    return recording.rounds


def quantize_switch_round(
    recording: GoldenRecording, natural: int, stride: int
) -> int:
    """Largest restorable round ≤ ``natural``.

    Round ``r`` is restorable when it is round 0 or when the golden
    block clock crossed a multiple of ``stride`` during round ``r-1`` -
    the discrete analogue of "the nearest checkpoint at or before the
    injection instant" for a checkpoint interval of ``stride`` blocks.
    """
    if stride < 1:
        raise ValueError(f"checkpoint stride must be >= 1: {stride}")
    if natural <= 0:
        return 0
    blocks = recording.round_end_blocks
    for r in range(min(natural, recording.rounds), 0, -1):
        prev = blocks[r - 2] if r >= 2 else 0
        if blocks[r - 1] // stride > prev // stride:
            return r
    return 0


@dataclass(frozen=True)
class ReplayPlan:
    """The replayable prefix chosen for one trial."""

    switch_round: int
    records: tuple[tuple[CallRecord, ...], ...]
    blocks_skipped: int
    insns_skipped: int
    calls_skipped: int


def plan_replay(
    recording: GoldenRecording, fault: FaultSpec, stride: int
) -> ReplayPlan | None:
    """Choose the prefix of the recording this trial may replay, or
    ``None`` when the fault lands too early for any replay to help."""
    natural = natural_switch_round(recording, fault)
    switch = quantize_switch_round(recording, natural, stride)
    if switch <= 0:
        return None
    records = tuple(
        tuple(rec for rec in per_rank if rec.round < switch)
        for per_rank in recording.calls
    )
    blocks = insns = calls = 0
    for per_rank in records:
        for rec in per_rank:
            blocks += rec.end_blocks - rec.start_blocks
            insns += rec.end_insns - rec.start_insns
            calls += 1
    if calls == 0:
        return None
    return ReplayPlan(
        switch_round=switch,
        records=records,
        blocks_skipped=blocks,
        insns_skipped=insns,
        calls_skipped=calls,
    )


def install_replay(job: Job, plan: ReplayPlan) -> None:
    """Arrange for the job's VMs to replay the planned prefix.

    Installed as a pre-run hook so the ``ctx.vm`` swap happens before
    any rank's generator is constructed (generators capture ``ctx.vm``
    on first advance).
    """

    def _wrap(job: Job) -> None:
        for rank, ctx in enumerate(job.contexts):
            ctx.vm = _ReplayVM(ctx.vm, plan.records[rank])

    job.pre_run_hooks.append(_wrap)


def prepare_replay(ctx, fault: FaultSpec) -> ReplayPlan | None:
    """Resolve the context's recording (from its shipped copy or the
    process-wide store) and plan this trial's replay.  Returns ``None``
    when checkpointing is off or nothing can be replayed."""
    stride = getattr(ctx, "checkpoint_stride", None)
    if stride is None:
        return None
    recording = ctx.checkpoint
    if recording is None:
        recording = default_store().get(ctx)
        ctx.checkpoint = recording
    return plan_replay(recording, fault, stride)


# ----------------------------------------------------------------------
# recording cache
# ----------------------------------------------------------------------
class CheckpointStore:
    """In-memory cache of golden recordings keyed per ``(app, JobConfig)``.

    One recording serves every trial of every region of a campaign:
    the driver attaches it to the execution context *before* the
    executor pickles the context, so fork workers receive it exactly
    once; direct ``execute_trial`` callers fall back to this
    process-wide cache.
    """

    def __init__(self) -> None:
        self._cache: dict[tuple, GoldenRecording] = {}

    @staticmethod
    def key_for(context) -> tuple:
        cfg = context.config
        params = tuple(sorted((k, repr(v)) for k, v in cfg.app_params.items()))
        return (context.app, cfg.nprocs, cfg.seed, cfg.eager_threshold, params)

    def get(self, context) -> GoldenRecording:
        key = self.key_for(context)
        recording = self._cache.get(key)
        if recording is None:
            recording = self._cache[key] = record_golden(context)
        return recording

    def clear(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)


_DEFAULT_STORE = CheckpointStore()


def default_store() -> CheckpointStore:
    return _DEFAULT_STORE


# ----------------------------------------------------------------------
# full-state snapshots
# ----------------------------------------------------------------------
@dataclass
class RankSnapshot:
    """Deterministic machine state of one rank, picklable."""

    vm: tuple  #: VM.capture_state()
    #: ``(bytes, version)`` per segment, in text/data/bss/heap/stack order.
    segments: tuple[tuple[bytes, int], ...]
    heap_free: tuple
    heap_live: tuple  #: sorted (addr, ChunkInfo) pairs
    heap_mpi_depth: int
    heap_high_water: int
    heap_in_use: int
    stack_esp: int
    stack_ebp: int
    channel: tuple  #: ChannelEndpoint.capture_state()
    adi_seq: int
    adi_messages_control: int
    adi_messages_data: int
    rng_state: dict


@dataclass
class MachineSnapshot:
    """Complete deterministic state of a paused job.

    Capture between scheduler rounds, pickle it anywhere, and
    :meth:`restore` it onto the *same live job* to rewind every machine
    field in place (generator frames keep their references to the
    mutated objects, so execution resumes bit-identically).  In-flight
    MPI match state (posted receives, unexpected queues) lives in
    ``Request`` objects aliased by generator locals and is therefore
    owned by the generators themselves - it is deliberately not part of
    the snapshot, which is exactly why restore targets the same job.
    """

    rounds: int
    current_rank: int
    stdout: tuple[str, ...]
    stderr: tuple[str, ...]
    outputs: tuple[tuple[str, Any], ...]
    ranks: tuple[RankSnapshot, ...]

    @classmethod
    def capture(cls, job: Job) -> "MachineSnapshot":
        ranks = []
        for r in range(job.config.nprocs):
            image = job.images[r]
            adi = job.adis[r]
            heap = image.heap
            ranks.append(
                RankSnapshot(
                    vm=job.vms[r].capture_state(),
                    segments=tuple(
                        (seg.buf.tobytes(), seg.version)
                        for seg in _all_segments(image)
                    ),
                    heap_free=tuple(heap._free),
                    heap_live=tuple(sorted(heap._live.items())),
                    heap_mpi_depth=heap._mpi_depth,
                    heap_high_water=heap.high_water,
                    heap_in_use=heap.in_use,
                    stack_esp=image.stack.esp,
                    stack_ebp=image.stack.ebp,
                    channel=job.endpoints[r].capture_state(),
                    adi_seq=adi._seq,
                    adi_messages_control=adi.messages_control,
                    adi_messages_data=adi.messages_data,
                    rng_state=job.contexts[r].rng.bit_generator.state,
                )
            )
        return cls(
            rounds=job.rounds,
            current_rank=job._current_rank,
            stdout=tuple(job.stdout),
            stderr=tuple(job.stderr),
            outputs=tuple(job.outputs.items()),
            ranks=tuple(ranks),
        )

    def restore(self, job: Job) -> None:
        """Rewind ``job``'s machine state in place (see class docs)."""
        if len(self.ranks) != job.config.nprocs:
            raise ValueError(
                f"snapshot has {len(self.ranks)} ranks, job has "
                f"{job.config.nprocs}"
            )
        for r, snap in enumerate(self.ranks):
            image = job.images[r]
            job.vms[r].restore_state(snap.vm)
            for seg, (blob, version) in zip(_all_segments(image), snap.segments):
                seg.buf[:] = np.frombuffer(blob, dtype=np.uint8)
                seg.version = version
            heap = image.heap
            heap._free = list(snap.heap_free)
            heap._live = dict(snap.heap_live)
            heap._mpi_depth = snap.heap_mpi_depth
            heap.high_water = snap.heap_high_water
            heap.in_use = snap.heap_in_use
            image.stack.esp = snap.stack_esp
            image.stack.ebp = snap.stack_ebp
            job.endpoints[r].restore_state(snap.channel)
            adi = job.adis[r]
            adi._seq = snap.adi_seq
            adi.messages_control = snap.adi_messages_control
            adi.messages_data = snap.adi_messages_data
            job.contexts[r].rng.bit_generator.state = snap.rng_state
        job.rounds = self.rounds
        job._current_rank = self.current_rank
        # Mutate the existing console/output containers in place:
        # JobResult aliases them.
        job.stdout[:] = self.stdout
        job.stderr[:] = self.stderr
        job.outputs.clear()
        job.outputs.update(self.outputs)

    def digest(self) -> str:
        """Stable content hash of the captured state (for equivalence
        assertions in the round-trip suite)."""
        canonical = (
            self.rounds,
            self.current_rank,
            self.stdout,
            self.stderr,
            self.outputs,
            tuple(
                (
                    snap.vm,
                    snap.segments,
                    snap.heap_free,
                    snap.heap_live,
                    snap.heap_mpi_depth,
                    snap.heap_high_water,
                    snap.heap_in_use,
                    snap.stack_esp,
                    snap.stack_ebp,
                    snap.channel,
                    snap.adi_seq,
                    snap.adi_messages_control,
                    snap.adi_messages_data,
                    sorted(
                        (k, repr(v)) for k, v in snap.rng_state.items()
                    ),
                )
                for snap in self.ranks
            ),
        )
        return hashlib.sha256(
            pickle.dumps(canonical, protocol=4)
        ).hexdigest()
