"""Campaign observability: per-region progress events.

The engine fires a :class:`ProgressEvent` through its ``progress``
callback every ``log_interval`` completed trials (and once at region
end), so long campaigns are observable from the CLI without a debugger.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProgressEvent:
    """Snapshot of one region's campaign progress."""

    app: str
    region: str
    #: Trials finished so far (executed + resumed from the store).
    done: int
    #: Planned trials, or ``None`` in adaptive mode (open-ended).
    planned: int | None
    #: Trials satisfied from the result store without execution.
    resumed: int
    #: Manifested errors among the finished trials.
    errors: int
    #: Achieved Cochran half-width d (fraction, not percent).
    achieved_d: float
    #: Adaptive-mode target half-width, or ``None`` for fixed-n runs.
    target_d: float | None = None
    #: True for the final event of a region.
    final: bool = False

    @property
    def error_rate_percent(self) -> float:
        return 100.0 * self.errors / self.done if self.done else 0.0


def format_progress(event: ProgressEvent) -> str:
    """One human-readable progress line."""
    total = f"/{event.planned}" if event.planned is not None else ""
    line = (
        f"[{event.app}:{event.region}] {event.done}{total} trials"
        f" ({event.resumed} resumed), error rate "
        f"{event.error_rate_percent:.1f}%, d = {100 * event.achieved_d:.1f}%"
    )
    if event.target_d is not None:
        line += f" (target {100 * event.target_d:.1f}%)"
    if event.final:
        line += " [done]"
    return line
