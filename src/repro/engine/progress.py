"""Campaign observability: per-region progress events.

The engine routes progress through a :class:`ProgressEmitter`: every
``log_interval`` *completed trials* per ``(app, region)`` (and once at
region end) it builds a :class:`ProgressEvent`, mirrors it into the
campaign's metrics registry when one is attached, and forwards it to
the legacy ``progress`` callback when one is set.  The callback is a
deprecated shim - new consumers should read the registry
(``repro_campaign_trials_done`` et al.) instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.observability.metrics import MetricsRegistry


@dataclass(frozen=True)
class ProgressEvent:
    """Snapshot of one region's campaign progress."""

    app: str
    region: str
    #: Trials finished so far (executed + resumed from the store).
    done: int
    #: Planned trials, or ``None`` in adaptive mode (open-ended).
    planned: int | None
    #: Trials satisfied from the result store without execution.
    resumed: int
    #: Manifested errors among the finished trials.
    errors: int
    #: Achieved Cochran half-width d (fraction, not percent).
    achieved_d: float
    #: Adaptive-mode target half-width, or ``None`` for fixed-n runs.
    target_d: float | None = None
    #: True for the final event of a region.
    final: bool = False

    @property
    def error_rate_percent(self) -> float:
        return 100.0 * self.errors / self.done if self.done else 0.0


@dataclass
class ProgressEmitter:
    """Trial-count-driven progress throttle and fan-out.

    ``note_trial`` counts completed trials per ``(app, region)`` and
    reports when a periodic event is due; ``emit`` publishes an event to
    the metrics registry (gauges + an event counter) and to the
    deprecated ``callback`` shim.  Emission works with either sink
    absent, so a campaign run with only ``--metrics`` still surfaces
    progress without any callback wired.
    """

    #: Deprecated: pre-observability consumers passed a callable here
    #: (the engine's old ``progress=`` argument routes to it unchanged).
    callback: Callable[[ProgressEvent], None] | None = None
    #: Completed trials per region between periodic events (0 = only
    #: final events).
    log_interval: int = 0
    metrics: MetricsRegistry | None = None
    _since: dict[tuple[str, str], int] = field(default_factory=dict)
    #: Regions whose final event has already been published; a second
    #: region-complete emission for the same ``(app, region)`` is
    #: swallowed so the deprecated callback shim can never double-fire.
    _final_sent: set[tuple[str, str]] = field(default_factory=set)

    @property
    def active(self) -> bool:
        return self.callback is not None or self.metrics is not None

    def note_trial(self, app: str, region: str) -> bool:
        """Count one completed trial; True when a periodic emission is
        due for that region."""
        if not self.log_interval or not self.active:
            return False
        key = (app, region)
        count = self._since.get(key, 0) + 1
        if count >= self.log_interval:
            self._since[key] = 0
            return True
        self._since[key] = count
        return False

    def emit(self, event: ProgressEvent) -> None:
        if event.final:
            key = (event.app, event.region)
            if key in self._final_sent:
                return
            self._final_sent.add(key)
        metrics = self.metrics
        if metrics is not None:
            labels = {"app": event.app, "region": event.region}
            metrics.gauge("repro_campaign_trials_done", **labels).set(event.done)
            metrics.gauge("repro_campaign_errors", **labels).set(event.errors)
            metrics.gauge("repro_campaign_achieved_d", **labels).set(
                event.achieved_d
            )
            metrics.counter(
                "repro_campaign_progress_events_total", **labels
            ).inc()
        if self.callback is not None:
            self.callback(event)


def format_progress(event: ProgressEvent) -> str:
    """One human-readable progress line."""
    total = f"/{event.planned}" if event.planned is not None else ""
    line = (
        f"[{event.app}:{event.region}] {event.done}{total} trials"
        f" ({event.resumed} resumed), error rate "
        f"{event.error_rate_percent:.1f}%, d = {100 * event.achieved_d:.1f}%"
    )
    if event.target_d is not None:
        line += f" (target {100 * event.target_d:.1f}%)"
    if event.final:
        line += " [done]"
    return line
