"""Trial descriptions: the picklable unit of campaign work.

A :class:`TrialSpec` carries everything a worker process needs to
execute one injection experiment deterministically: the application
identity, the sampled :class:`~repro.injection.faults.FaultSpec`, the
seed path that produced it, and the exact RNG state the injector must
resume from (so results are bit-identical to the serial driver no
matter which worker runs the trial, or in what order).

Every trial also has a stable *key* - a content hash of
``(app, params, nprocs, config seed, campaign seed, region, index)`` -
used by the :class:`~repro.engine.store.ResultStore` to resume
interrupted or extended campaigns.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.injection.faults import FaultSpec, InjectionRecord, Region
from repro.injection.outcomes import Manifestation
from repro.observability.metrics import MetricsSnapshot


def region_salt(region: Region) -> int:
    """Per-region seed-stream salt.

    crc32, not ``hash()``: str hashing is salted per process and would
    make campaigns irreproducible across runs (and across workers).
    """
    return zlib.crc32(region.value.encode())


def trial_rng(campaign_seed: int, region: Region, index: int) -> np.random.Generator:
    """The deterministic per-trial generator: sampling draws from it
    first, then the injector continues the same stream."""
    return np.random.default_rng([campaign_seed, region_salt(region), index])


def restore_rng(state: dict) -> np.random.Generator:
    """Rebuild a generator from a captured ``bit_generator.state``."""
    rng = np.random.default_rng()
    rng.bit_generator.state = state
    return rng


def canonical_params(params: dict[str, Any] | None) -> tuple[tuple[str, Any], ...]:
    """Sorted, hash-stable view of the application parameters."""
    return tuple(sorted((params or {}).items()))


def trial_key(
    app: str,
    app_params: tuple[tuple[str, Any], ...] | dict[str, Any] | None,
    nprocs: int,
    config_seed: int,
    campaign_seed: int,
    region: Region,
    index: int,
) -> str:
    """Content hash identifying one trial of one campaign."""
    if isinstance(app_params, dict) or app_params is None:
        app_params = canonical_params(app_params)
    payload = json.dumps(
        {
            "app": app,
            "params": [[k, v] for k, v in app_params],
            "nprocs": nprocs,
            "config_seed": config_seed,
            "campaign_seed": campaign_seed,
            "region": region.value,
            "index": index,
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:20]


@dataclass(frozen=True)
class TrialSpec:
    """One planned injection trial, fully self-describing and picklable."""

    app: str
    app_params: tuple[tuple[str, Any], ...]
    nprocs: int
    config_seed: int
    campaign_seed: int
    region: Region
    index: int
    fault: FaultSpec
    #: Captured ``bit_generator.state`` after fault sampling; the
    #: injector resumes this exact stream (bit-identical to the serial
    #: path, independent of worker count and completion order).
    rng_state: dict = field(hash=False)

    @property
    def key(self) -> str:
        return trial_key(
            self.app,
            self.app_params,
            self.nprocs,
            self.config_seed,
            self.campaign_seed,
            self.region,
            self.index,
        )


@dataclass
class TrialResult:
    """The classified outcome of one trial.

    ``record`` holds the full :class:`InjectionRecord` for freshly
    executed trials; results rehydrated from a store carry only the
    summary fields (enough to rebuild tallies and delivery counts).
    """

    key: str
    app: str
    region: Region
    index: int
    manifestation: Manifestation
    delivered: bool
    detail: str = ""
    record: InjectionRecord | None = None
    #: True when this result was loaded from a store instead of executed.
    resumed: bool = False
    #: Fault-propagation timeline digest (see
    #: :mod:`repro.observability.timeline`).  Serialized with the result
    #: so resumed campaigns rebuild identical error-latency histograms.
    injected_at_blocks: int | None = None
    injected_at_insns: int | None = None
    injected_byte: int | None = None
    diverged_at_blocks: int | None = None
    divergence_kind: str | None = None
    latency_blocks: int | None = None
    #: Worker-side metrics snapshot (fresh trials under ``--metrics``
    #: only; merged by the driver, never serialized to the store).
    metrics: MetricsSnapshot | None = None
    #: Per-trial trace events (fresh trials under ``--trace`` only).
    trace_events: list | None = None

    def to_json(self) -> dict:
        return {
            "key": self.key,
            "app": self.app,
            "region": self.region.value,
            "index": self.index,
            "manifestation": self.manifestation.value,
            "delivered": self.delivered,
            "detail": self.detail,
            "injected_at_blocks": self.injected_at_blocks,
            "injected_at_insns": self.injected_at_insns,
            "injected_byte": self.injected_byte,
            "diverged_at_blocks": self.diverged_at_blocks,
            "divergence_kind": self.divergence_kind,
            "latency_blocks": self.latency_blocks,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "TrialResult":
        def _opt_int(name: str) -> int | None:
            value = obj.get(name)
            return int(value) if value is not None else None

        return cls(
            key=obj["key"],
            app=obj["app"],
            region=Region(obj["region"]),
            index=int(obj["index"]),
            manifestation=Manifestation(obj["manifestation"]),
            delivered=bool(obj["delivered"]),
            detail=obj.get("detail", ""),
            record=None,
            resumed=True,
            injected_at_blocks=_opt_int("injected_at_blocks"),
            injected_at_insns=_opt_int("injected_at_insns"),
            injected_byte=_opt_int("injected_byte"),
            diverged_at_blocks=_opt_int("diverged_at_blocks"),
            divergence_kind=obj.get("divergence_kind"),
            latency_blocks=_opt_int("latency_blocks"),
        )
