"""Working-set vs error-rate correlation (paper section 6.1.2).

"Compared to the text injection error rates, which are 6.7, 8.4, and
14.8 percent, the small working set size is the cause of the low error
rates. ... These results strongly correlate with the low error rates in
Data+BSS+Heap injections."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.injection.campaign import CampaignResult
from repro.injection.faults import Region
from repro.trace.working_set import MemoryTraceReport


@dataclass(frozen=True)
class WorkingSetCorrelation:
    app_name: str
    text_wss_compute: float
    text_error_rate: float
    dbh_wss_compute: float
    dbh_error_rate: float
    text: str

    @property
    def consistent(self) -> bool:
        """The paper's qualitative claim: the error rate of a region is
        bounded by (and of the same order as) its compute-phase working
        set - faults outside the working set cannot manifest.  A modest
        slack factor absorbs sampling noise and overwrite-before-read
        masking."""
        return (
            self.text_error_rate <= 2.5 * self.text_wss_compute + 5.0
            and self.dbh_error_rate <= 2.5 * self.dbh_wss_compute + 5.0
        )


def correlate_working_set(
    report: MemoryTraceReport, campaign: CampaignResult
) -> WorkingSetCorrelation:
    """Join a memory trace with a campaign's static-region error rates."""
    text_wss = report.compute_phase_percent("text")
    dbh_wss = report.compute_phase_percent("data_bss_heap")
    text_err = campaign.regions[Region.TEXT].error_rate_percent
    dbh_rows = [Region.DATA, Region.BSS, Region.HEAP]
    dbh_execs = sum(campaign.regions[r].executions for r in dbh_rows)
    dbh_errors = sum(campaign.regions[r].tally.errors for r in dbh_rows)
    dbh_err = 100.0 * dbh_errors / dbh_execs if dbh_execs else 0.0
    text = (
        f"{report.app_name}: text WSS (compute) {text_wss:.1f}% vs text "
        f"error rate {text_err:.1f}%; data+bss+heap WSS {dbh_wss:.1f}% vs "
        f"combined error rate {dbh_err:.1f}%"
    )
    return WorkingSetCorrelation(
        app_name=report.app_name,
        text_wss_compute=text_wss,
        text_error_rate=text_err,
        dbh_wss_compute=dbh_wss,
        dbh_error_rate=dbh_err,
        text=text,
    )
