"""Control-flow-checking effectiveness study (paper §8.2, Oh et al.).

Injects single-bit faults into the *text* of a hot kernel and compares
the outcome with and without the control-flow signature monitor armed:
the monitor converts a slice of the silent corruptions and wild jumps
into explicit detections, at zero cost to fault-free runs (the signature
is pre-generated).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.liveness import N_ITER, OPTIMIZED_SOURCE, _EXPECTED, _build
from repro.cpu.isa import INSN_SIZE
from repro.detectors.cfcheck import ControlFlowViolation, install
from repro.errors import SimulationError


@dataclass(frozen=True)
class CfcReport:
    text: str
    metrics: dict


def _run_once(flip_byte: int, flip_bit: int, *, checked: bool) -> str:
    image, vm, _ = _build(OPTIMIZED_SOURCE)
    if checked:
        install(vm)
    sym = image.symtab.lookup("kernel")
    image.text.flip_bit(sym.addr + flip_byte, flip_bit)
    vm.block_limit = 10_000
    try:
        result = vm.call("kernel")
    except ControlFlowViolation:
        return "detected"
    except SimulationError as exc:
        return type(exc).__name__
    return "correct" if result == _EXPECTED else "wrong"


def control_flow_study(trials: int = 80, seed: int = 3) -> CfcReport:
    """Identical text faults with and without the signature monitor."""
    rng = np.random.default_rng(seed)
    image, _, _ = _build(OPTIMIZED_SOURCE)
    size = image.symtab.lookup("kernel").size
    outcomes = {"checked": {}, "unchecked": {}}
    faults = [
        (int(rng.integers(size)), int(rng.integers(8))) for _ in range(trials)
    ]
    for label, checked in (("checked", True), ("unchecked", False)):
        for byte, bit in faults:
            outcome = _run_once(byte, bit, checked=checked)
            outcomes[label][outcome] = outcomes[label].get(outcome, 0) + 1

    checked = outcomes["checked"]
    unchecked = outcomes["unchecked"]
    detected = checked.get("detected", 0)
    silent_unchecked = unchecked.get("wrong", 0)
    silent_checked = checked.get("wrong", 0)

    def fmt(d: dict) -> str:
        return ", ".join(f"{k}={v}" for k, v in sorted(d.items()))

    text = (
        f"{trials} text faults into a hot kernel "
        f"({size // INSN_SIZE} instructions, {N_ITER} iterations):\n"
        f"  without CFC: {fmt(unchecked)}\n"
        f"  with CFC   : {fmt(checked)}\n"
        f"CFC converts wild control transfers into explicit detections "
        f"({detected} of {trials}); faults that corrupt *operands* without "
        f"diverting control ({silent_checked} silent) are outside its "
        f"model - the technique's documented limitation."
    )
    return CfcReport(
        text=text,
        metrics={
            "trials": trials,
            "detected": detected,
            "silent_unchecked": silent_unchecked,
            "silent_checked": silent_checked,
            "checked_outcomes": dict(checked),
            "unchecked_outcomes": dict(unchecked),
        },
    )
