"""Failure-mode analysis tools (paper section 6): register-liveness
ablations and working-set / error-rate correlation."""

from repro.analysis.liveness import (
    LivenessReport,
    register_usage_report,
    register_sensitivity,
)
from repro.analysis.correlation import correlate_working_set
from repro.analysis.duration_study import DurationReport, fault_duration_study
from repro.analysis.natural_ft import (
    JacobiResult,
    ResilienceReport,
    jacobi_solve,
    make_system,
    resilience_experiment,
)

__all__ = [
    "LivenessReport",
    "register_usage_report",
    "register_sensitivity",
    "correlate_working_set",
    "DurationReport",
    "fault_duration_study",
    "JacobiResult",
    "ResilienceReport",
    "jacobi_solve",
    "make_system",
    "resilience_experiment",
]
