"""Register-liveness ablation (paper section 6.1.1, citing Springer [23]).

"Springer investigated the register usage of an image processing kernel
on a PowerPC 750 system and found that only 4-5 of 64 available registers
were used during execution.  If the code were compiled with the
optimization switch -O, then the number of live registers jumped to
14-15.  The suggests that a program could be made more robust if it is
compiled without register optimizations, albeit with possible performance
loss."

This module builds the same comparison for the virtual CPU: an
*optimized* kernel that carries its state in registers across the loop,
and an *unoptimized* variant that spills every value to stack slots after
each use (what ``-O0`` code looks like).  It measures static register
usage and the register-fault sensitivity of each variant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.assembler import Program
from repro.cpu.vm import VM
from repro.errors import SimulationError
from repro.memory.process import ProcessImage
from repro.memory.symbols import Linker

#: Loop count for the ablation kernel (sum of squares 0..N-1).
N_ITER = 64
_EXPECTED = sum(i * i for i in range(N_ITER)) & 0xFFFF_FFFF

#: Optimized: accumulator, counter and temporary all live in registers
#: across the entire loop.
OPTIMIZED_SOURCE = f"""
    push ebp
    mov ebp, esp
    movi eax, 0          ; acc (live whole loop)
    movi ecx, 0          ; i   (live whole loop)
    movi esi, 0          ; bound register kept live
    addi esi, {N_ITER}
loop:
    mov edx, ecx         ; tmp = i
    imul edx, ecx        ; tmp = i*i
    add eax, edx
    addi ecx, 1
    cmp ecx, esi
    jl loop
    mov esp, ebp
    pop ebp
    ret
"""

#: Unoptimized (-O0 style): every value round-trips through a stack slot,
#: so registers hold live data only momentarily.
UNOPTIMIZED_SOURCE = f"""
    push ebp
    mov ebp, esp
    movi eax, 0
    store [ebp-8], eax   ; acc spill slot
    store [ebp-12], eax  ; i spill slot
loop:
    load eax, [ebp-12]   ; i
    mov ecx, eax
    imul ecx, eax        ; i*i
    load eax, [ebp-8]
    add eax, ecx
    store [ebp-8], eax   ; spill acc
    load eax, [ebp-12]
    addi eax, 1
    store [ebp-12], eax  ; spill i
    cmpi eax, {N_ITER}
    jl loop
    load eax, [ebp-8]
    mov esp, ebp
    pop ebp
    ret
"""


def _build(source: str) -> tuple[ProcessImage, VM, Program]:
    prog = Program()
    prog.add("kernel", source)
    linker = Linker()
    prog.add_to_linker(linker)
    linker.add_bss("pad", 64)
    image = ProcessImage.from_linker(linker, heap_size=1 << 14, stack_size=1 << 14)
    prog.relocate(image)
    return image, VM(image), prog


def register_sensitivity(
    source: str, trials: int, rng: np.random.Generator
) -> float:
    """Fraction of single register bit flips that change the kernel's
    outcome (wrong result, crash or hang)."""
    # Fault-free reference and block count.
    image, vm, _ = _build(source)
    reference = vm.call("kernel")
    total_blocks = image.clock.blocks
    if reference != _EXPECTED:
        raise AssertionError(
            f"ablation kernel broken: got {reference}, want {_EXPECTED}"
        )
    errors = 0
    for _ in range(trials):
        image, vm, _ = _build(source)
        vm.block_limit = total_blocks * 4 + 64
        reg = int(rng.integers(8))
        bit = int(rng.integers(32))
        at = int(rng.integers(1, total_blocks + 1))
        vm.schedule_hook(at, lambda v, r=reg, b=bit: v.regs.flip_bit(r, b))
        try:
            result = vm.call("kernel")
        except SimulationError:
            errors += 1
            continue
        if result != _EXPECTED:
            errors += 1
    return errors / trials


@dataclass(frozen=True)
class LivenessReport:
    text: str
    metrics: dict


def register_usage_report(trials: int = 150, seed: int = 11) -> LivenessReport:
    """Static register usage and dynamic fault sensitivity of the two
    compilation styles."""
    rng = np.random.default_rng(seed)
    _, _, prog_opt = _build(OPTIMIZED_SOURCE)
    _, _, prog_unopt = _build(UNOPTIMIZED_SOURCE)
    static_opt = sorted(prog_opt.functions["kernel"].registers_used())
    static_unopt = sorted(prog_unopt.functions["kernel"].registers_used())
    sens_opt = register_sensitivity(OPTIMIZED_SOURCE, trials, rng)
    sens_unopt = register_sensitivity(UNOPTIMIZED_SOURCE, trials, rng)
    text = (
        f"optimized   : {len(static_opt)} registers used {static_opt}, "
        f"register-fault error rate {100 * sens_opt:.1f}%\n"
        f"unoptimized : {len(static_unopt)} registers used {static_unopt}, "
        f"register-fault error rate {100 * sens_unopt:.1f}%\n"
        f"(the paper's inference: fewer live registers -> more robust, at "
        f"a performance cost)"
    )
    return LivenessReport(
        text=text,
        metrics={
            "static_optimized": len(static_opt),
            "static_unoptimized": len(static_unopt),
            "sensitivity_optimized": sens_opt,
            "sensitivity_unoptimized": sens_unopt,
        },
    )
