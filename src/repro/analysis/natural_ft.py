"""Naturally fault-tolerant algorithms (paper §8.2).

"In some cases, one can exploit naturally fault tolerant algorithms
whose outputs are resilient to perturbation during the calculations.
For example, iterative algorithms for solving systems of linear
equations use successive approximations to obtain more accurate
solutions at each step.  A small error or lost data only slow
convergence rather than leading to wrong results."

This module makes that claim measurable: a Jacobi iterative solver and a
direct (factorization-style) solver are run under identical mid-solve
single-bit upsets.  The iterative solver self-corrects (converging to
the true solution, possibly in a few extra sweeps); the direct method,
whose intermediate state is never revisited, silently produces a wrong
answer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detectors.abft import flip_float_bit


def make_system(
    n: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """A strictly diagonally dominant system (Jacobi converges)."""
    if n < 2:
        raise ValueError(f"system size must be >= 2: {n}")
    a = rng.standard_normal((n, n))
    a += np.diag(np.abs(a).sum(axis=1) + 1.0)
    b = rng.standard_normal(n)
    return a, b


@dataclass
class JacobiResult:
    x: np.ndarray
    iterations: int
    converged: bool
    residual: float


def jacobi_solve(
    a: np.ndarray,
    b: np.ndarray,
    *,
    tol: float = 1e-10,
    max_iter: int = 2000,
    fault_iteration: int | None = None,
    fault_index: int = 0,
    fault_bit: int = 55,
) -> JacobiResult:
    """Jacobi iteration with an optional single-bit upset on one
    component of the iterate at ``fault_iteration``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    d = np.diag(a)
    if np.any(d == 0):
        raise ValueError("zero diagonal: Jacobi splitting undefined")
    r = a - np.diag(d)
    x = np.zeros_like(b)
    for k in range(1, max_iter + 1):
        if fault_iteration is not None and k == fault_iteration:
            x = x.copy()
            x[fault_index] = flip_float_bit(float(x[fault_index]), fault_bit)
            if not np.isfinite(x[fault_index]):
                x[fault_index] = 0.0  # Inf/NaN upset: component lost
        x = (b - r @ x) / d
        residual = float(np.abs(a @ x - b).max())
        if residual < tol:
            return JacobiResult(x, k, True, residual)
    return JacobiResult(x, max_iter, False, residual)


def direct_solve_with_fault(
    a: np.ndarray,
    b: np.ndarray,
    *,
    fault_index: tuple[int, int] = (0, 0),
    fault_bit: int = 55,
) -> np.ndarray:
    """A direct method whose intermediate state is corrupted mid-solve:
    the upset lands in the factor and is consumed, never re-checked."""
    a = np.asarray(a, dtype=np.float64).copy()
    i, j = fault_index
    a[i, j] = flip_float_bit(float(a[i, j]), fault_bit)
    return np.linalg.solve(a, b)


@dataclass
class ResilienceReport:
    clean_iterations: int
    faulty_iterations: int
    iterative_error: float  # vs the true solution, after the upset
    direct_error: float  # the direct method's error with the same upset
    text: str

    @property
    def iterative_self_corrected(self) -> bool:
        return self.iterative_error < 1e-6

    @property
    def delay_iterations(self) -> int:
        return self.faulty_iterations - self.clean_iterations


def resilience_experiment(
    n: int = 32,
    *,
    seed: int = 0,
    fault_bit: int = 58,
) -> ResilienceReport:
    """The §8.2 comparison on one system."""
    rng = np.random.default_rng(seed)
    a, b = make_system(n, rng)
    truth = np.linalg.solve(a, b)
    clean = jacobi_solve(a, b)
    mid = max(clean.iterations // 2, 1)
    faulty = jacobi_solve(
        a, b, fault_iteration=mid, fault_index=n // 2, fault_bit=fault_bit
    )
    direct = direct_solve_with_fault(a, b, fault_index=(n // 2, n // 2),
                                     fault_bit=fault_bit)
    it_err = float(np.abs(faulty.x - truth).max())
    dir_err = float(np.abs(direct - truth).max())
    text = (
        f"Jacobi: {clean.iterations} clean sweeps; upset at sweep {mid} -> "
        f"{faulty.iterations} sweeps "
        f"(+{faulty.iterations - clean.iterations}), final error {it_err:.2e}\n"
        f"direct method with the same upset: error {dir_err:.2e} "
        f"(silently wrong)"
    )
    return ResilienceReport(
        clean_iterations=clean.iterations,
        faulty_iterations=faulty.iterations,
        iterative_error=it_err,
        direct_error=dir_err,
        text=text,
    )
