"""Fault-duration study (paper §8.1).

"Overall, Constantinescu found the error detection rate on the compute
nodes was 80-84 percent, though error detection was dependent on the
fault duration.  Transients proved more difficult to detect, whereas
longer faults led to application failures (hangs)."

This study injects the *same sampled fault targets* as transients and as
stuck-at faults (the injector re-forces the bit periodically, so the
application cannot heal it by overwriting) and compares manifestation
rates: persistent faults defeat the overwrite-before-read masking that
makes transients so often benign.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.injection.campaign import Campaign
from repro.injection.faults import Persistence, Region
from repro.injection.outcomes import Manifestation
from repro.mpi.simulator import JobConfig


@dataclass(frozen=True)
class DurationReport:
    text: str
    metrics: dict


def fault_duration_study(
    trials: int = 24,
    *,
    nprocs: int = 8,
    seed: int = 9,
    region: Region = Region.REGULAR_REG,
) -> DurationReport:
    """Identical targets under transient vs stuck-at persistence."""
    from repro.apps import WavetoyApp

    campaign = Campaign(WavetoyApp, JobConfig(nprocs=nprocs), seed=seed)
    specs = [
        campaign.sample_spec(region, np.random.default_rng([seed, i]))
        for i in range(trials)
    ]
    results: dict[str, dict] = {}
    for persistence in (
        Persistence.TRANSIENT,
        Persistence.STUCK_AT_0,
        Persistence.STUCK_AT_1,
    ):
        counts = {m: 0 for m in Manifestation}
        for i, base in enumerate(specs):
            spec = dataclasses.replace(base, persistence=persistence)
            manifestation, _, _ = campaign.run_injection(
                spec, np.random.default_rng([seed, 1000 + i])
            )
            counts[manifestation] += 1
        errors = trials - counts[Manifestation.CORRECT]
        results[persistence.value] = {
            "error_rate": 100.0 * errors / trials,
            "hangs": counts[Manifestation.HANG],
            "crashes": counts[Manifestation.CRASH],
        }

    t = results["transient"]
    s0 = results["stuck_at_0"]
    s1 = results["stuck_at_1"]
    text = (
        f"{trials} identical {region.value} targets under three duration "
        f"models:\n"
        f"  transient : {t['error_rate']:5.1f}% manifested "
        f"({t['crashes']} crash, {t['hangs']} hang)\n"
        f"  stuck-at-0: {s0['error_rate']:5.1f}% manifested "
        f"({s0['crashes']} crash, {s0['hangs']} hang)\n"
        f"  stuck-at-1: {s1['error_rate']:5.1f}% manifested "
        f"({s1['crashes']} crash, {s1['hangs']} hang)\n"
        f"(Constantinescu's observation: transients slip through where "
        f"longer-duration faults force failures)"
    )
    return DurationReport(
        text=text,
        metrics={
            "transient_rate": t["error_rate"],
            "stuck0_rate": s0["error_rate"],
            "stuck1_rate": s1["error_rate"],
            "transient_hangs": t["hangs"],
            "stuck_hangs": s0["hangs"] + s1["hangs"],
        },
    )
