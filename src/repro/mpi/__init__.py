"""Simulated MPI-1.1 runtime (MPICH-style API / ADI / Channel layering).

The stack mirrors the paper's Figure 2: the user application calls the
:class:`~repro.mpi.api.Comm` API; the ADI implements matching and the
eager/rendezvous protocols; the Channel carries raw header+payload byte
packets and is the point where the message fault injector flips bits in
incoming traffic.
"""

from repro.mpi.datatypes import (
    ANY_SOURCE,
    ANY_TAG,
    INTERNAL_TAG_BASE,
    MPI_BYTE,
    MPI_CHAR,
    MPI_DOUBLE,
    MPI_FLOAT,
    MPI_INT,
    MPI_LONG,
    MPI_MAX,
    MPI_MIN,
    MPI_PROD,
    MPI_SUM,
    PREDEFINED_DATATYPES,
    PREDEFINED_OPS,
    TAG_UB,
    Datatype,
    ReduceOp,
)
from repro.mpi.status import CompletedRequest, Request, Status
from repro.mpi.errhandler import (
    MPI_ERRORS_ARE_FATAL,
    MPI_ERRORS_RETURN,
    ErrhandlerSlot,
    ErrorClass,
)
from repro.mpi.channel import HEADER_SIZE, ChannelEndpoint, ChannelStats
from repro.mpi.adi import (
    AdiConfig,
    AdiEngine,
    ChannelProtocolError,
    MSG_CTS,
    MSG_EAGER,
    MSG_RNDV_DATA,
    MSG_RTS,
    ParsedMessage,
    pack_header,
    parse_packet,
)
from repro.mpi.api import Comm
from repro.mpi.simulator import Job, JobConfig, JobResult, JobStatus, RankContext
from repro.mpi.library import add_mpi_library
from repro.mpi.pmpi import ProfilingComm
from repro.mpi.traffic import RankTraffic, TrafficSummary, job_traffic, rank_traffic, summarize

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "INTERNAL_TAG_BASE",
    "MPI_BYTE",
    "MPI_CHAR",
    "MPI_DOUBLE",
    "MPI_FLOAT",
    "MPI_INT",
    "MPI_LONG",
    "MPI_MAX",
    "MPI_MIN",
    "MPI_PROD",
    "MPI_SUM",
    "PREDEFINED_DATATYPES",
    "PREDEFINED_OPS",
    "TAG_UB",
    "Datatype",
    "ReduceOp",
    "CompletedRequest",
    "Request",
    "Status",
    "MPI_ERRORS_ARE_FATAL",
    "MPI_ERRORS_RETURN",
    "ErrhandlerSlot",
    "ErrorClass",
    "HEADER_SIZE",
    "ChannelEndpoint",
    "ChannelStats",
    "AdiConfig",
    "AdiEngine",
    "ChannelProtocolError",
    "MSG_CTS",
    "MSG_EAGER",
    "MSG_RNDV_DATA",
    "MSG_RTS",
    "ParsedMessage",
    "pack_header",
    "parse_packet",
    "Comm",
    "Job",
    "JobConfig",
    "JobResult",
    "JobStatus",
    "RankContext",
    "add_mpi_library",
    "ProfilingComm",
    "RankTraffic",
    "TrafficSummary",
    "job_traffic",
    "rank_traffic",
    "summarize",
]
