"""MPI error handlers with the semantics the paper measured.

MPI-1.1 specifies that by default an error during an MPI call aborts the
application (MPI_ERRORS_ARE_FATAL).  A user may register a handler via
``MPI_Errhandler_set``.  Crucially, section 6.2 of the paper reports that
in MPICH (and LAM/MPI and LA-MPI) the registered handler is invoked *only*
when incorrect arguments are passed to MPI routines; abnormal termination
of peer processes aborts the job without invoking it.  This module encodes
exactly that behaviour, which is what lets stack faults - which corrupt
the arguments of pending MPI calls - surface as "MPI Detected" while
everything else becomes a Crash.
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.errors import MPIAbort, MPIError


class ErrorClass(str, enum.Enum):
    """MPI-1.1 error classes raised by argument checking."""

    MPI_ERR_BUFFER = "MPI_ERR_BUFFER"
    MPI_ERR_COUNT = "MPI_ERR_COUNT"
    MPI_ERR_TYPE = "MPI_ERR_TYPE"
    MPI_ERR_TAG = "MPI_ERR_TAG"
    MPI_ERR_COMM = "MPI_ERR_COMM"
    MPI_ERR_RANK = "MPI_ERR_RANK"
    MPI_ERR_ROOT = "MPI_ERR_ROOT"
    MPI_ERR_OP = "MPI_ERR_OP"
    MPI_ERR_ARG = "MPI_ERR_ARG"


#: ``handler(comm, error) -> None``; may raise to abort.
Handler = Callable[[object, MPIError], None]


class ErrorsAreFatal:
    """The MPI-1.1 default: print an MPICH-style diagnostic and abort."""

    name = "MPI_ERRORS_ARE_FATAL"

    def __call__(self, comm, error: MPIError) -> None:
        rank = getattr(comm, "rank", "?")
        raise MPIAbort(
            f"MPI process rank {rank} killed by fatal error: {error}", exit_code=1
        )


class ErrorsReturn:
    """MPI_ERRORS_RETURN: the call reports the error to the caller."""

    name = "MPI_ERRORS_RETURN"

    def __call__(self, comm, error: MPIError) -> None:
        # The caller receives the MPIError as the operation's result.
        raise error


MPI_ERRORS_ARE_FATAL = ErrorsAreFatal()
MPI_ERRORS_RETURN = ErrorsReturn()


class ErrhandlerSlot:
    """Per-communicator handler slot (MPI_Errhandler_set /_get)."""

    def __init__(self) -> None:
        self._handler: Handler = MPI_ERRORS_ARE_FATAL
        #: Number of times a *user* handler was invoked (the campaign's
        #: "MPI Detected" signal).
        self.user_invocations = 0

    def set(self, handler: Handler) -> None:
        self._handler = handler

    def get(self) -> Handler:
        return self._handler

    @property
    def is_user_handler(self) -> bool:
        return self._handler not in (MPI_ERRORS_ARE_FATAL, MPI_ERRORS_RETURN)

    def invoke(self, comm, error: MPIError) -> None:
        """Dispatch an *argument-check* failure to the installed handler."""
        if self.is_user_handler:
            self.user_invocations += 1
        self._handler(comm, error)
