"""PMPI-style profiling interposition.

The paper's injector is linked in as a library of MPI wrapper functions:
each wrapper "performs fault injection tasks and then calls the actual MPI
function via the MPI profiling interface (PMPI)".  :class:`ProfilingComm`
is the same mechanism: it exposes the full :class:`~repro.mpi.api.Comm`
surface, runs registered interceptors around each call, and forwards to
the underlying communicator (the ``PMPI_*`` entry points).

The fault-injection wrapper in :mod:`repro.injection.wrappers` builds on
this layer, exactly mirroring the paper's ``MPI_Init`` wrapper that parses
a configuration file and spawns the memory fault injector.
"""

from __future__ import annotations

import inspect
from typing import Callable

from repro.mpi.api import Comm

#: ``interceptor(call_name, args, kwargs) -> None`` invoked before the
#: underlying PMPI routine.
Interceptor = Callable[[str, tuple, dict], None]

#: ``interceptor(call_name, args, kwargs, result) -> None`` invoked after
#: the underlying PMPI routine returns.  For generator-returning calls
#: (the blocking operations), ``result`` is delivered only when the
#: generator actually completes, and carries its return value (e.g. the
#: :class:`~repro.mpi.status.Status` of a blocking receive) - a wrapper
#: that never finishes (deadlock) never reports a result, which is
#: exactly the observation the static deadlock passes need.
ReturnInterceptor = Callable[[str, tuple, dict, object], None]

#: The generator-returning Comm methods that must be forwarded verbatim.
_FORWARDED = (
    "send",
    "recv",
    "isend",
    "irecv",
    "wait",
    "waitall",
    "sendrecv",
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "allgather",
    "alltoall",
    "probe",
    "iprobe",
    "get_rank",
    "get_size",
    "set_errhandler",
)


class ProfilingComm:
    """A communicator wrapper in the shape of the PMPI shim library."""

    def __init__(self, comm: Comm) -> None:
        self._pmpi = comm
        self._interceptors: list[Interceptor] = []
        self._return_interceptors: list[ReturnInterceptor] = []
        self.call_counts: dict[str, int] = {}
        for name in _FORWARDED:
            setattr(self, name, self._make_wrapper(name))

    # attribute passthrough for rank/size/errhandler/etc.
    def __getattr__(self, name: str):
        return getattr(self._pmpi, name)

    def add_interceptor(self, fn: Interceptor) -> None:
        self._interceptors.append(fn)

    def add_return_interceptor(self, fn: ReturnInterceptor) -> None:
        """Observe call results too (request handles, receive statuses)."""
        self._return_interceptors.append(fn)

    def _notify_return(self, name: str, args: tuple, kwargs: dict, result):
        for fn in self._return_interceptors:
            fn(name, args, kwargs, result)

    def _make_wrapper(self, name: str):
        target = getattr(self._pmpi, name)

        def wrapper(*args, **kwargs):
            self.call_counts[name] = self.call_counts.get(name, 0) + 1
            for fn in self._interceptors:
                fn(name, args, kwargs)
            result = target(*args, **kwargs)
            if self._return_interceptors and inspect.isgenerator(result):
                return self._wrap_generator(name, args, kwargs, result)
            self._notify_return(name, args, kwargs, result)
            return result

        wrapper.__name__ = name
        wrapper.__doc__ = f"PMPI wrapper for MPI {name}"
        return wrapper

    def _wrap_generator(self, name: str, args: tuple, kwargs: dict, gen):
        """Forward a blocking operation's yields; report its return value
        to the return interceptors once (and only if) it completes."""
        result = yield from gen
        self._notify_return(name, args, kwargs, result)
        return result

    @property
    def pmpi(self) -> Comm:
        """The underlying 'real' MPI implementation (PMPI_* symbols)."""
        return self._pmpi
