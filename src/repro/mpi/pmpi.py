"""PMPI-style profiling interposition.

The paper's injector is linked in as a library of MPI wrapper functions:
each wrapper "performs fault injection tasks and then calls the actual MPI
function via the MPI profiling interface (PMPI)".  :class:`ProfilingComm`
is the same mechanism: it exposes the full :class:`~repro.mpi.api.Comm`
surface, runs registered interceptors around each call, and forwards to
the underlying communicator (the ``PMPI_*`` entry points).

The fault-injection wrapper in :mod:`repro.injection.wrappers` builds on
this layer, exactly mirroring the paper's ``MPI_Init`` wrapper that parses
a configuration file and spawns the memory fault injector.
"""

from __future__ import annotations

from typing import Callable

from repro.mpi.api import Comm

#: ``interceptor(call_name, args, kwargs) -> None`` invoked before the
#: underlying PMPI routine.
Interceptor = Callable[[str, tuple, dict], None]

#: The generator-returning Comm methods that must be forwarded verbatim.
_FORWARDED = (
    "send",
    "recv",
    "isend",
    "irecv",
    "wait",
    "waitall",
    "sendrecv",
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "allgather",
    "alltoall",
    "probe",
    "iprobe",
    "get_rank",
    "get_size",
    "set_errhandler",
)


class ProfilingComm:
    """A communicator wrapper in the shape of the PMPI shim library."""

    def __init__(self, comm: Comm) -> None:
        self._pmpi = comm
        self._interceptors: list[Interceptor] = []
        self.call_counts: dict[str, int] = {}
        for name in _FORWARDED:
            setattr(self, name, self._make_wrapper(name))

    # attribute passthrough for rank/size/errhandler/etc.
    def __getattr__(self, name: str):
        return getattr(self._pmpi, name)

    def add_interceptor(self, fn: Interceptor) -> None:
        self._interceptors.append(fn)

    def _make_wrapper(self, name: str):
        target = getattr(self._pmpi, name)

        def wrapper(*args, **kwargs):
            self.call_counts[name] = self.call_counts.get(name, 0) + 1
            for fn in self._interceptors:
                fn(name, args, kwargs)
            return target(*args, **kwargs)

        wrapper.__name__ = name
        wrapper.__doc__ = f"PMPI wrapper for MPI {name}"
        return wrapper

    @property
    def pmpi(self) -> Comm:
        """The underlying 'real' MPI implementation (PMPI_* symbols)."""
        return self._pmpi
