"""The ADI layer (Abstract Device Interface).

Sits between the user-facing API and the Channel, exactly as in MPICH's
three-layer architecture (paper Figure 2).  Responsibilities:

* message framing: a 48-byte header (magic, src, dst, tag, type, payload
  length, sequence number, communicator id, padding) followed by the
  payload bytes;
* the eager/rendezvous protocols: small messages travel in one data
  packet; large ones negotiate with header-only RTS/CTS control packets
  (this is what makes control traffic a measurable fraction of volume,
  as in Table 1);
* receive-side matching: posted receives vs the unexpected-message queue,
  with (source, tag) matching and MPI_ANY_SOURCE / MPI_ANY_TAG wildcards;
* staging unexpected payloads in simulated-heap buffers tagged *MPI*
  (these are the allocations the paper's malloc wrapper marks so the
  heap injector can skip them).

Corrupted headers are handled the way a real ch_p4 device would fail:
bad magic / length mismatch / unknown type abort the process (crash);
a flipped source, destination or tag leaves the message unmatchable or
misdelivered, so the posted receive never completes and the job deadlocks
(hang).  Flips in the sequence/communicator/padding fields are benign -
which is why only roughly 40 percent of header flips corrupt execution,
the fraction the paper measures for Cactus.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.memory.heap import ChunkTag
from repro.observability import runtime as _obs
from repro.memory.process import ProcessImage
from repro.mpi.channel import HEADER_SIZE, ChannelEndpoint
from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG, Datatype
from repro.mpi.status import Request, Status

_HEADER = struct.Struct("<IiiiIIII16s")
assert _HEADER.size == HEADER_SIZE

#: Header magic ('MPIH' little-endian).
MAGIC = 0x4849_504D

# Message types.
MSG_EAGER = 1
MSG_RTS = 2
MSG_CTS = 3
MSG_RNDV_DATA = 4
_VALID_TYPES = (MSG_EAGER, MSG_RTS, MSG_CTS, MSG_RNDV_DATA)


class ChannelProtocolError(SimulationError):
    """An unrecoverable framing error - the device aborts the process
    (surfaces as an application crash with a p4_error diagnostic)."""


def pack_header(
    src: int,
    dst: int,
    tag: int,
    mtype: int,
    payload_len: int,
    seq: int,
    comm_id: int = 0,
) -> bytes:
    return _HEADER.pack(MAGIC, src, dst, tag, mtype, payload_len, seq, comm_id, b"")


@dataclass
class ParsedMessage:
    src: int
    dst: int
    tag: int
    mtype: int
    payload_len: int
    seq: int
    comm_id: int
    payload: bytes


def parse_packet(packet: bytes | bytearray) -> ParsedMessage:
    """Parse one packet; raises :class:`ChannelProtocolError` for damage
    that a real device could not survive."""
    if len(packet) < HEADER_SIZE:
        raise ChannelProtocolError(f"short packet ({len(packet)} bytes)")
    magic, src, dst, tag, mtype, plen, seq, comm_id, _pad = _HEADER.unpack_from(
        bytes(packet)
    )
    if magic != MAGIC:
        raise ChannelProtocolError(f"bad message magic 0x{magic:08x}")
    payload = bytes(packet[HEADER_SIZE:])
    if plen != len(payload):
        raise ChannelProtocolError(
            f"header/payload length mismatch ({plen} != {len(payload)})"
        )
    if mtype not in _VALID_TYPES:
        raise ChannelProtocolError(f"unknown message type {mtype}")
    return ParsedMessage(src, dst, tag, mtype, plen, seq, comm_id, payload)


@dataclass
class PostedRecv:
    source: int
    tag: int
    buf_addr: int
    capacity: int  # bytes
    request: Request

    def matches(self, src: int, tag: int) -> bool:
        return (self.source in (ANY_SOURCE, src)) and (self.tag in (ANY_TAG, tag))


@dataclass
class _Unexpected:
    src: int
    tag: int
    seq: int
    heap_addr: int | None  # staged payload in simulated heap (MPI-tagged)
    length: int
    is_rts: bool = False


@dataclass
class AdiConfig:
    #: Payloads at or below this many bytes travel eagerly.
    eager_threshold: int = 2048


class AdiEngine:
    """Per-rank ADI state machine."""

    def __init__(
        self,
        rank: int,
        nprocs: int,
        image: ProcessImage,
        endpoint: ChannelEndpoint,
        config: AdiConfig | None = None,
    ) -> None:
        self.rank = rank
        self.nprocs = nprocs
        self.image = image
        self.endpoint = endpoint
        self.config = config or AdiConfig()
        self._router = None  # set by the job: rank -> ChannelEndpoint
        self._posted: list[PostedRecv] = []
        self._unexpected: list[_Unexpected] = []
        self._seq = 0
        #: sender side: seq -> (payload bytes, SendRequest)
        self._rndv_pending: dict[int, tuple[bytes, Request]] = {}
        #: receiver side: seq -> PostedRecv awaiting RNDV_DATA
        self._rndv_expected: dict[int, PostedRecv] = {}
        #: messages received at ADI level, by kind (Table-1 profiling)
        self.messages_control = 0
        self.messages_data = 0

    def attach_router(self, router) -> None:
        """``router(dst_rank) -> ChannelEndpoint`` of the destination."""
        self._router = router

    # ------------------------------------------------------------------
    # send path
    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _push(self, dst: int, packet: bytes) -> None:
        self._router(dst).push(packet)

    def send(self, dst: int, tag: int, payload: bytes) -> Request:
        """Start a send; the returned request is complete immediately for
        eager messages, or when the CTS arrives for rendezvous."""
        seq = self._next_seq()
        if len(payload) <= self.config.eager_threshold:
            header = pack_header(self.rank, dst, tag, MSG_EAGER, len(payload), seq)
            self._push(dst, header + payload)
            req = Request(kind="send")
            req.complete()
            return req
        # Rendezvous: RTS control packet announces the message; the
        # payload is parked until the receiver's CTS.
        header = pack_header(self.rank, dst, tag, MSG_RTS, 0, seq)
        self._push(dst, header)
        req = Request(kind="send")
        self._rndv_pending[seq] = (payload, req)
        return req

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def post_recv(
        self, source: int, tag: int, buf_addr: int, capacity: int
    ) -> Request:
        req = Request(kind="recv")
        posted = PostedRecv(source, tag, buf_addr, capacity, req)
        # Try the unexpected queue first (arrival order).
        for i, u in enumerate(self._unexpected):
            if posted.matches(u.src, u.tag):
                del self._unexpected[i]
                if u.is_rts:
                    self._grant_rts(u, posted)
                else:
                    self._deliver_staged(u, posted)
                return req
        self._posted.append(posted)
        return req

    def probe_unexpected(self, source: int, tag: int):
        """Non-destructive match against the unexpected queue (the
        engine behind MPI_Iprobe): returns ``(src, tag, length)`` of the
        first matching parked message, or None."""
        for u in self._unexpected:
            if (source in (ANY_SOURCE, u.src)) and (tag in (ANY_TAG, u.tag)):
                return u.src, u.tag, u.length
        return None

    # ------------------------------------------------------------------
    # progress engine
    # ------------------------------------------------------------------
    def progress(self) -> bool:
        """Drain and dispatch all pending channel packets.  Returns True
        if anything was consumed.  Raises ChannelProtocolError on fatal
        framing damage."""
        progressed = False
        while True:
            packet = self.endpoint.recv()
            if packet is None:
                return progressed
            progressed = True
            msg = parse_packet(packet)
            self._dispatch(msg)

    _MSG_NAMES = {
        MSG_EAGER: "eager",
        MSG_RTS: "rts",
        MSG_CTS: "cts",
        MSG_RNDV_DATA: "rndv_data",
    }

    def _dispatch(self, msg: ParsedMessage) -> None:
        tracer = _obs.TRACER
        if tracer is not None:
            tracer.instant(
                f"adi:{self._MSG_NAMES[msg.mtype]}",
                "adi",
                self.image.clock.blocks,
                tid=self.rank,
                args={"src": msg.src, "tag": msg.tag, "len": msg.payload_len},
            )
        # Misrouted or nonsensical addressing: a real device drops the
        # packet on the floor; whoever was waiting for it deadlocks.
        if msg.dst != self.rank or not 0 <= msg.src < self.nprocs:
            self.endpoint.note_drop()
            return
        if msg.mtype == MSG_EAGER:
            self.messages_data += 1 if msg.payload_len else 0
            self.messages_control += 1 if not msg.payload_len else 0
            self._on_eager(msg)
        elif msg.mtype == MSG_RTS:
            self.messages_control += 1
            self._on_rts(msg)
        elif msg.mtype == MSG_CTS:
            self.messages_control += 1
            self._on_cts(msg)
        elif msg.mtype == MSG_RNDV_DATA:
            self.messages_data += 1
            self._on_rndv_data(msg)

    def _match_posted(self, src: int, tag: int) -> PostedRecv | None:
        for i, p in enumerate(self._posted):
            if p.matches(src, tag):
                del self._posted[i]
                return p
        return None

    def _on_eager(self, msg: ParsedMessage) -> None:
        posted = self._match_posted(msg.src, msg.tag)
        if posted is not None:
            self._copy_in(posted, msg.src, msg.tag, msg.payload)
            return
        # Unexpected: stage the payload in an MPI-tagged heap buffer.
        heap_addr = None
        if msg.payload:
            heap_addr = self.image.heap.malloc(len(msg.payload), ChunkTag.MPI)
            self.image.heap_segment.write_bytes(heap_addr, msg.payload)
        self._unexpected.append(
            _Unexpected(msg.src, msg.tag, msg.seq, heap_addr, len(msg.payload))
        )

    def _on_rts(self, msg: ParsedMessage) -> None:
        posted = self._match_posted(msg.src, msg.tag)
        if posted is not None:
            self._send_cts(msg.src, msg.seq, posted)
            return
        self._unexpected.append(
            _Unexpected(msg.src, msg.tag, msg.seq, None, 0, is_rts=True)
        )

    def _grant_rts(self, u: _Unexpected, posted: PostedRecv) -> None:
        self._send_cts(u.src, u.seq, posted)

    def _send_cts(self, src: int, seq: int, posted: PostedRecv) -> None:
        self._rndv_expected[seq] = posted
        header = pack_header(self.rank, src, seq, MSG_CTS, 0, seq)
        self._push(src, header)

    def _on_cts(self, msg: ParsedMessage) -> None:
        pending = self._rndv_pending.pop(msg.seq, None)
        if pending is None:
            # CTS for an unknown rendezvous (corrupted seq): dropped; the
            # original sender keeps waiting -> deadlock.
            self.endpoint.note_drop()
            return
        payload, req = pending
        header = pack_header(self.rank, msg.src, 0, MSG_RNDV_DATA, len(payload), msg.seq)
        self._push(msg.src, header + payload)
        req.complete()

    def _on_rndv_data(self, msg: ParsedMessage) -> None:
        posted = self._rndv_expected.pop(msg.seq, None)
        if posted is None:
            self.endpoint.note_drop()
            return
        self._copy_in(posted, msg.src, posted.tag, msg.payload)

    def _deliver_staged(self, u: _Unexpected, posted: PostedRecv) -> None:
        payload = b""
        if u.heap_addr is not None:
            payload = self.image.heap_segment.read_bytes(u.heap_addr, u.length)
            self.image.heap.free(u.heap_addr)
        self._copy_in(posted, u.src, u.tag, payload)

    def _copy_in(self, posted: PostedRecv, src: int, tag: int, payload: bytes) -> None:
        if len(payload) > posted.capacity:
            # ch_p4 cannot recover from an over-long body: internal abort.
            raise ChannelProtocolError(
                f"message truncation: {len(payload)} bytes into "
                f"{posted.capacity}-byte buffer"
            )
        if payload:
            self.image.address_space.store_bytes(posted.buf_addr, payload)
        posted.request.complete(
            Status(source=src, tag=tag, count_bytes=len(payload))
        )

    # ------------------------------------------------------------------
    # quiescence test (deadlock detection)
    # ------------------------------------------------------------------
    def idle(self) -> bool:
        """True when nothing is pending or in flight for this rank."""
        return not self.endpoint.pending()

    def has_blockers(self) -> bool:
        """True when the rank has posted receives or parked rendezvous
        state that could still complete."""
        return bool(self._posted or self._rndv_pending or self._rndv_expected)
