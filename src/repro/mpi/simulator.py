"""Deterministic cooperative MPI job simulator.

Runs every rank of an MPI application as a generator coroutine under a
round-robin scheduler.  All blocking MPI semantics are expressed as
yielded :class:`~repro.mpi.status.Request` objects; a rank resumes when
its request becomes ready.  Determinism (fixed scheduling order, seeded
RNGs) is what lets the outcome classifier compare a faulty run against a
fault-free reference - the paper's "little variability in execution
times" under exclusive cluster access.

Failure semantics mirror the paper's experimental set-up:

* a simulated signal (SIGSEGV/SIGILL/SIGBUS/SIGFPE) in any rank makes the
  runtime print an MPICH-style ``p4_error`` line to the captured stderr
  and abort the whole job - the classifier recognises a Crash by exactly
  those messages (section 5.1);
* an :class:`~repro.errors.AppAbort` (internal consistency check) prints
  to the console and aborts - Application Detected;
* an :class:`~repro.errors.MPIAbort` raised from a *user* error handler
  is MPI Detected; from the default fatal handler, it is a Crash;
* deadlock (no rank can advance, no packet in flight) or an exceeded
  block/round budget is a Hang (the paper waited "one minute beyond the
  expected execution completion time").
"""

from __future__ import annotations

import enum
import io
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Sequence

import numpy as np

from repro.errors import (
    AppAbort,
    CheckpointDesync,
    HangDetected,
    MPIAbort,
    SimSignal,
    SimulationError,
)
from repro.memory.heap import HeapCorruption
from repro.memory.process import ProcessImage
from repro.memory.stack import StackOverflow
from repro.mpi.adi import AdiConfig, AdiEngine, ChannelProtocolError
from repro.mpi.api import Comm
from repro.mpi.channel import ChannelEndpoint
from repro.cpu.vm import VM
from repro.observability import runtime as _obs


class JobStatus(enum.Enum):
    """Raw termination condition of one simulated job execution."""

    COMPLETED = "completed"
    CRASHED = "crashed"
    HUNG = "hung"
    APP_DETECTED = "app_detected"
    MPI_DETECTED = "mpi_detected"


@dataclass
class JobConfig:
    """Execution parameters for one job."""

    nprocs: int
    seed: int = 12345
    track_memory: bool = False
    eager_threshold: int = 2048
    #: Scheduler-round budget (None: derive nothing; the runner sets it
    #: from a fault-free profile).
    round_limit: int | None = None
    #: Per-rank basic-block budget applied to every VM.
    block_limit: int | None = None
    #: Run kernels through the translated fast path where no observer
    #: needs per-instruction events (see :mod:`repro.cpu.translate`).
    fastpath: bool = False
    #: Extra keyword parameters forwarded to the application build.
    app_params: dict[str, Any] = field(default_factory=dict)


class RankContext:
    """Everything one rank's ``main`` generator can touch."""

    def __init__(self, rank: int, job: "Job", image: ProcessImage, vm: VM, comm: Comm):
        self.rank = rank
        self.nprocs = job.config.nprocs
        self.job = job
        self.image = image
        self.vm = vm
        self.comm = comm
        self.rng = np.random.default_rng([job.config.seed, rank])
        #: True while the static analyzer drives a symbolic dry run: the
        #: VM elides kernel execution, so applications must skip the
        #: consistency checks that read kernel-produced values.
        self.symbolic = False

    def print(self, text: str) -> None:
        """Write a line to the job's captured console (stdout)."""
        self.job.stdout.append(f"[{self.rank}] {text}")

    def write_output(self, name: str, content: str | bytes) -> None:
        """Record an application output artifact (e.g. rank 0's result
        file); the classifier compares these against the reference."""
        self.job.outputs[name] = content

    def abort(self, check: str, message: str = "") -> None:
        """Fail an internal consistency check and abort the application."""
        raise AppAbort(check, message)


@dataclass
class JobResult:
    """Externally visible artifacts of one execution."""

    status: JobStatus
    detail: str
    stdout: list[str]
    stderr: list[str]
    outputs: dict[str, str | bytes]
    rounds: int
    blocks_per_rank: list[int]
    error: BaseException | None = None
    faulting_rank: int | None = None

    @property
    def completed(self) -> bool:
        return self.status is JobStatus.COMPLETED


class Job:
    """One simulated MPI job: N ranks of one application."""

    def __init__(self, app, config: JobConfig) -> None:
        self.app = app
        self.config = config
        n = config.nprocs
        if n < 1:
            raise ValueError(f"nprocs must be >= 1, got {n}")
        self.stdout: list[str] = []
        self.stderr: list[str] = []
        self.outputs: dict[str, str | bytes] = {}
        self.images: list[ProcessImage] = []
        self.vms: list[VM] = []
        self.endpoints: list[ChannelEndpoint] = []
        self.adis: list[AdiEngine] = []
        self.comms: list[Comm] = []
        self.contexts: list[RankContext] = []
        adi_cfg = AdiConfig(eager_threshold=config.eager_threshold)
        for rank in range(n):
            image, vm = app.build_process(rank, n, config)
            if config.block_limit is not None:
                vm.block_limit = config.block_limit
            vm.fastpath = config.fastpath
            endpoint = ChannelEndpoint(rank)
            endpoint.clock = image.clock
            adi = AdiEngine(rank, n, image, endpoint, adi_cfg)
            adi.attach_router(self._route)
            comm = Comm(rank, n, adi, image)
            self.images.append(image)
            self.vms.append(vm)
            self.endpoints.append(endpoint)
            self.adis.append(adi)
            self.comms.append(comm)
            self.contexts.append(RankContext(rank, self, image, vm, comm))
        self._current_rank: int = 0
        #: Hooks run once, immediately before the first scheduler round
        #: (the injector uses this to arm per-rank faults after MPI_Init).
        self.pre_run_hooks: list[Callable[["Job"], None]] = []
        #: Scheduler state, live once :meth:`begin` has run.  Exposed as
        #: instance state (rather than locals of ``run``) so checkpoint
        #: recording and the snapshot machinery can pause between rounds.
        self.rounds: int = 0
        self._gens: list[Generator | None] = []
        self._waiting: list[Any] = []
        self._done: list[bool] = []

    def _route(self, dst: int) -> ChannelEndpoint:
        # Out-of-range destinations can only be produced by corrupted
        # arguments that slipped past validation; a real sender's writev
        # to a closed socket aborts the process.
        if not 0 <= dst < len(self.endpoints):
            raise ChannelProtocolError(f"send to nonexistent rank {dst}")
        return self.endpoints[dst]

    # ------------------------------------------------------------------
    # scheduler
    # ------------------------------------------------------------------
    def begin(self) -> JobResult | None:
        """Run the pre-run hooks and construct every rank's generator.

        Returns a :class:`JobResult` when startup itself crashes (a
        construction failure), ``None`` when the job is ready to step.
        """
        n = self.config.nprocs
        for hook in self.pre_run_hooks:
            hook(self)
        self._gens = []
        self.rounds = 0
        try:
            for ctx in self.contexts:
                self._gens.append(self.app.main(ctx))
        except Exception as exc:  # construction failure = startup crash
            return self._result_for_exception(exc, rounds=0)
        self._waiting = [None] * n  # pending Request per rank
        self._done = [False] * n
        return None

    def step_round(self) -> JobResult | None:
        """Execute one scheduler round.

        Returns ``None`` while the job is still running, or the final
        :class:`JobResult` when it terminated (normally or not) during
        this round.  Exception and classification semantics are exactly
        those of the former monolithic loop: any raise inside the round
        - including the hang budget and deadlock sweep - is classified
        here with the current round count.
        """
        n = self.config.nprocs
        try:
            progressed = False
            for rank in range(n):
                if self._done[rank]:
                    continue
                self._current_rank = rank
                if self.adis[rank].progress():
                    progressed = True
                req = self._waiting[rank]
                if req is not None and not req.ready():
                    continue
                self._waiting[rank] = None
                try:
                    item = next(self._gens[rank])
                except StopIteration:
                    self._done[rank] = True
                    progressed = True
                    continue
                self._waiting[rank] = item  # None = voluntary yield
                progressed = True
            self.rounds += 1
            if all(self._done):
                return JobResult(
                    status=JobStatus.COMPLETED,
                    detail="all ranks exited",
                    stdout=self.stdout,
                    stderr=self.stderr,
                    outputs=self.outputs,
                    rounds=self.rounds,
                    blocks_per_rank=[im.clock.blocks for im in self.images],
                )
            if self.config.round_limit is not None and self.rounds > self.config.round_limit:
                raise HangDetected("scheduler round budget exceeded", self.rounds)
            if not progressed:
                # One last progress sweep before declaring deadlock.
                if not any(adi.progress() for adi in self.adis):
                    raise HangDetected("deadlock: all ranks blocked")
            return None
        except BaseException as exc:
            return self._result_for_exception(exc, self.rounds)

    def run(self) -> JobResult:
        """Execute the job to termination and classify how it ended."""
        result = self.begin()
        if result is not None:
            return result
        while True:
            result = self.step_round()
            if result is not None:
                return result

    # ------------------------------------------------------------------
    # failure classification (raw job level)
    # ------------------------------------------------------------------
    def _result_for_exception(self, exc: BaseException, rounds: int) -> JobResult:
        rank = self._current_rank
        if isinstance(exc, (KeyboardInterrupt, SystemExit, CheckpointDesync)):
            raise exc
        status, detail = self._classify(exc, rank)
        if _obs.TIMELINE is not None or _obs.TRACER is not None:
            _obs.note_termination(
                self._termination_kind(exc),
                rank=rank,
                blocks=self.images[rank].clock.blocks,
                detail=detail,
            )
        return JobResult(
            status=status,
            detail=detail,
            stdout=self.stdout,
            stderr=self.stderr,
            outputs=self.outputs,
            rounds=rounds,
            blocks_per_rank=[im.clock.blocks for im in self.images],
            error=exc,
            faulting_rank=rank,
        )

    @staticmethod
    def _termination_kind(exc: BaseException) -> str:
        """Short timeline tag for an abnormal termination."""
        if isinstance(exc, SimSignal):
            return f"signal:{exc.signame}"
        if isinstance(exc, (ChannelProtocolError, HeapCorruption, StackOverflow)):
            return "protocol"
        if isinstance(exc, AppAbort):
            return "app_abort"
        if isinstance(exc, MPIAbort):
            return "mpi_abort"
        if isinstance(exc, HangDetected):
            return "hang"
        return "unhandled"

    def _classify(self, exc: BaseException, rank: int) -> tuple[JobStatus, str]:
        if isinstance(exc, SimSignal):
            # MPICH catches the fatal signal and prints its diagnostic.
            self.stderr.append(
                f"p4_error: interrupt {exc.signame}: rank {rank}: {exc}"
            )
            self.stderr.append(
                f"p4_error: latest msg from perror: killing all MPI processes"
            )
            return JobStatus.CRASHED, f"{exc.signame} on rank {rank}"
        if isinstance(exc, (ChannelProtocolError, HeapCorruption, StackOverflow)):
            self.stderr.append(f"p4_error: net_recv failed on rank {rank}: {exc}")
            return JobStatus.CRASHED, f"runtime fault on rank {rank}: {exc}"
        if isinstance(exc, MemoryError):
            self.stderr.append(f"p4_error: out of memory on rank {rank}: {exc}")
            return JobStatus.CRASHED, f"heap exhaustion on rank {rank}"
        if isinstance(exc, AppAbort):
            self.stdout.append(f"[{rank}] ABORT {exc}")
            return JobStatus.APP_DETECTED, str(exc)
        if isinstance(exc, MPIAbort):
            if self.comms[rank].errhandler.user_invocations > 0:
                self.stdout.append(f"[{rank}] MPI error handler invoked: {exc}")
                return JobStatus.MPI_DETECTED, str(exc)
            self.stderr.append(f"p4_error: {exc} (rank {rank})")
            return JobStatus.CRASHED, str(exc)
        if isinstance(exc, HangDetected):
            return JobStatus.HUNG, str(exc)
        if isinstance(exc, SimulationError):
            self.stderr.append(f"p4_error: {type(exc).__name__} on rank {rank}: {exc}")
            return JobStatus.CRASHED, f"{type(exc).__name__}: {exc}"
        # Anything else is a genuine bug in the *simulator or application
        # harness* unless a fault was injected, in which case corrupted
        # values reaching orchestration code are also a crash (e.g. a
        # flipped size feeding a negative array length into a kernel).
        buf = io.StringIO()
        traceback.print_exception(exc, file=buf)
        self.stderr.append(f"p4_error: unhandled {type(exc).__name__} on rank {rank}")
        self.stderr.append(buf.getvalue())
        return JobStatus.CRASHED, f"unhandled {type(exc).__name__}: {exc}"

    # ------------------------------------------------------------------
    # aggregate queries
    # ------------------------------------------------------------------
    def total_blocks(self) -> int:
        return sum(im.clock.blocks for im in self.images)

    def received_bytes(self, rank: int) -> int:
        return self.endpoints[rank].bytes_received
