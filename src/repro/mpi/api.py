"""The user-facing MPI-1.1 API layer.

``Comm`` mirrors the MPI-1.1 point-to-point and collective operations the
paper's application suite exercises.  All methods are *generators*: they
``yield`` pending requests to the cooperative scheduler and resume when
the operation completes, which is how blocking MPI semantics are realised
deterministically.

Fidelity notes:

* Argument checking happens at the top of every call, and a failed check
  is the **only** event dispatched to the registered error handler -
  matching the MPICH behaviour the paper documents in section 6.2.  All
  buffers live in *simulated* memory, and the buffer-pointer, count, rank
  and tag arguments are plain integers that applications deliberately
  keep in stack-resident locals; a stack bit flip therefore corrupts a
  future MPI call's arguments and surfaces here as "MPI Detected".
* Every call runs with the heap allocator's *inside-MPI* flag set (the
  paper's malloc-wrapper flag), so staging buffers allocated during the
  call are tagged as MPI chunks and skipped by the heap injector.
* Collectives are built from point-to-point messages (binomial trees,
  dissemination barrier), so control/data traffic mixes emerge from
  application structure as they do under MPICH.
"""

from __future__ import annotations

from typing import Generator, Iterable

import numpy as np

from repro.errors import MPIError
from repro.memory.heap import ChunkTag
from repro.observability import runtime as _obs
from repro.memory.process import ProcessImage
from repro.mpi.adi import AdiEngine
from repro.mpi.datatypes import (
    ANY_SOURCE,
    ANY_TAG,
    INTERNAL_TAG_BASE,
    PREDEFINED_DATATYPES,
    PREDEFINED_OPS,
    TAG_UB,
    Datatype,
    ReduceOp,
)
from repro.mpi.errhandler import ErrhandlerSlot, ErrorClass
from repro.mpi.status import Request, Status

Yield = Generator[Request, None, None]


class Comm:
    """MPI_COMM_WORLD for one rank."""

    def __init__(
        self,
        rank: int,
        size: int,
        adi: AdiEngine,
        image: ProcessImage,
    ) -> None:
        self.rank = rank
        self.size = size
        self.adi = adi
        self.image = image
        self.errhandler = ErrhandlerSlot()
        #: MPI call counter (per profiling layer / PMPI introspection).
        self.calls: dict[str, int] = {}

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _count_call(self, name: str) -> None:
        self.calls[name] = self.calls.get(name, 0) + 1
        tracer = _obs.TRACER
        if tracer is not None:
            tracer.instant(
                f"mpi:{name}", "mpi", self.image.clock.blocks, tid=self.rank
            )
        metrics = _obs.METRICS
        if metrics is not None:
            metrics.counter("repro_mpi_calls_total", call=name).inc()

    def _error(self, klass: ErrorClass, message: str) -> None:
        """Argument-check failure: dispatch to the error handler (the only
        path that can produce an 'MPI Detected' outcome)."""
        self.errhandler.invoke(self, MPIError(klass.value, message, self.rank))

    def _check_buffer(self, addr: int, nbytes: int, what: str) -> None:
        if nbytes and not self.image.address_space.is_mapped(addr, nbytes):
            self._error(
                ErrorClass.MPI_ERR_BUFFER,
                f"{what} buffer 0x{addr:08x}+{nbytes} is not addressable",
            )

    def _check_count(self, count: int) -> None:
        if count < 0:
            self._error(ErrorClass.MPI_ERR_COUNT, f"negative count {count}")

    def _check_dtype(self, dtype) -> None:
        if dtype not in PREDEFINED_DATATYPES:
            self._error(ErrorClass.MPI_ERR_TYPE, f"invalid datatype {dtype!r}")

    def _check_rank(self, rank: int, *, wildcard: bool, what: str) -> None:
        if wildcard and rank == ANY_SOURCE:
            return
        if not 0 <= rank < self.size:
            self._error(
                ErrorClass.MPI_ERR_RANK, f"invalid {what} rank {rank} (size {self.size})"
            )

    def _check_tag(self, tag: int, *, wildcard: bool) -> None:
        if wildcard and tag == ANY_TAG:
            return
        if not 0 <= tag <= TAG_UB:
            self._error(ErrorClass.MPI_ERR_TAG, f"invalid tag {tag}")

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            self._error(ErrorClass.MPI_ERR_ROOT, f"invalid root {root}")

    def _check_op(self, op) -> None:
        if op not in PREDEFINED_OPS:
            self._error(ErrorClass.MPI_ERR_OP, f"invalid reduce op {op!r}")

    @staticmethod
    def _wait(req: Request) -> Generator[Request, None, Status]:
        while not req.ready():
            yield req
        if req.error is not None:
            raise req.error
        return req.status

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def isend(
        self, buf_addr: int, count: int, dtype: Datatype, dest: int, tag: int
    ) -> Request:
        """Nonblocking send; returns a request immediately."""
        self._count_call("MPI_Isend")
        with self.image.heap.inside_mpi():
            self._check_count(count)
            self._check_dtype(dtype)
            self._check_rank(dest, wildcard=False, what="destination")
            self._check_tag(tag, wildcard=False)
            nbytes = count * dtype.size
            self._check_buffer(buf_addr, nbytes, "send")
            payload = (
                self.image.address_space.load_bytes(buf_addr, nbytes) if nbytes else b""
            )
            return self.adi.send(dest, tag, payload)

    def send(
        self, buf_addr: int, count: int, dtype: Datatype, dest: int, tag: int
    ) -> Yield:
        """Blocking standard-mode send."""
        self._count_call("MPI_Send")
        req = self.isend(buf_addr, count, dtype, dest, tag)
        yield from self._wait(req)

    def irecv(
        self, buf_addr: int, count: int, dtype: Datatype, source: int, tag: int
    ) -> Request:
        """Nonblocking receive; returns a request immediately."""
        self._count_call("MPI_Irecv")
        with self.image.heap.inside_mpi():
            self._check_count(count)
            self._check_dtype(dtype)
            self._check_rank(source, wildcard=True, what="source")
            self._check_tag(tag, wildcard=True)
            nbytes = count * dtype.size
            self._check_buffer(buf_addr, nbytes, "receive")
            return self.adi.post_recv(source, tag, buf_addr, nbytes)

    def recv(
        self, buf_addr: int, count: int, dtype: Datatype, source: int, tag: int
    ) -> Generator[Request, None, Status]:
        """Blocking receive; returns the :class:`Status`."""
        self._count_call("MPI_Recv")
        req = self.irecv(buf_addr, count, dtype, source, tag)
        return (yield from self._wait(req))

    def wait(self, req: Request) -> Generator[Request, None, Status]:
        self._count_call("MPI_Wait")
        return (yield from self._wait(req))

    def waitall(self, reqs: Iterable[Request]) -> Generator[Request, None, list[Status]]:
        self._count_call("MPI_Waitall")
        out = []
        for req in reqs:
            out.append((yield from self._wait(req)))
        return out

    def sendrecv(
        self,
        send_addr: int,
        send_count: int,
        send_dtype: Datatype,
        dest: int,
        send_tag: int,
        recv_addr: int,
        recv_count: int,
        recv_dtype: Datatype,
        source: int,
        recv_tag: int,
    ) -> Generator[Request, None, Status]:
        """Combined send/receive (deadlock-free halo exchange primitive)."""
        self._count_call("MPI_Sendrecv")
        rreq = self.irecv(recv_addr, recv_count, recv_dtype, source, recv_tag)
        sreq = self.isend(send_addr, send_count, send_dtype, dest, send_tag)
        yield from self._wait(sreq)
        return (yield from self._wait(rreq))

    # ------------------------------------------------------------------
    # collectives (built on point-to-point, MPICH-style algorithms)
    # ------------------------------------------------------------------
    def barrier(self) -> Yield:
        """Dissemination barrier: ceil(log2(n)) rounds of header-only
        control messages."""
        self._count_call("MPI_Barrier")
        n = self.size
        if n == 1:
            return
        scratch = self._mpi_scratch(8)
        k, round_no = 1, 0
        while k < n:
            dst = (self.rank + k) % n
            src = (self.rank - k + n) % n
            tag = INTERNAL_TAG_BASE + 0x100 + round_no
            rreq = self.adi.post_recv(src, tag, scratch, 0)
            self.adi.send(dst, tag, b"")
            yield from self._wait(rreq)
            k <<= 1
            round_no += 1
        self._free_scratch(scratch)

    def bcast(
        self, buf_addr: int, count: int, dtype: Datatype, root: int
    ) -> Yield:
        """Binomial-tree broadcast."""
        self._count_call("MPI_Bcast")
        self._check_root(root)
        self._check_count(count)
        self._check_dtype(dtype)
        nbytes = count * dtype.size
        self._check_buffer(buf_addr, nbytes, "broadcast")
        n = self.size
        if n == 1 or nbytes == 0:
            return
        rel = (self.rank - root) % n
        tag = INTERNAL_TAG_BASE + 0x200
        mask = 1
        while mask < n:
            if rel & mask:
                src = (rel - mask + root) % n
                req = self.adi.post_recv(src, tag, buf_addr, nbytes)
                yield from self._wait(req)
                break
            mask <<= 1
        mask >>= 1
        payload = None
        while mask > 0:
            if rel + mask < n:
                dst = (rel + mask + root) % n
                if payload is None:
                    payload = self.image.address_space.load_bytes(buf_addr, nbytes)
                req = self.adi.send(dst, tag, payload)
                yield from self._wait(req)
            mask >>= 1

    def reduce(
        self,
        send_addr: int,
        recv_addr: int,
        count: int,
        dtype: Datatype,
        op: ReduceOp,
        root: int,
    ) -> Yield:
        """Binomial-tree reduction to ``root``."""
        self._count_call("MPI_Reduce")
        self._check_root(root)
        self._check_count(count)
        self._check_dtype(dtype)
        self._check_op(op)
        nbytes = count * dtype.size
        self._check_buffer(send_addr, nbytes, "reduce send")
        if self.rank == root:
            self._check_buffer(recv_addr, nbytes, "reduce recv")
        space = self.image.address_space
        acc = dtype.to_numpy(space.load_bytes(send_addr, nbytes)) if nbytes else None
        n = self.size
        rel = (self.rank - root) % n
        tag = INTERNAL_TAG_BASE + 0x300
        mask = 1
        while mask < n and nbytes:
            if rel & mask == 0:
                src_rel = rel | mask
                if src_rel < n:
                    src = (src_rel + root) % n
                    scratch = self._mpi_scratch(nbytes)
                    req = self.adi.post_recv(src, tag, scratch, nbytes)
                    yield from self._wait(req)
                    partial = dtype.to_numpy(space.load_bytes(scratch, nbytes))
                    self._free_scratch(scratch)
                    acc = op(acc, partial)
            else:
                dst = ((rel & ~mask) + root) % n
                req = self.adi.send(dst, tag, dtype.to_bytes(acc))
                yield from self._wait(req)
                break
            mask <<= 1
        if self.rank == root and nbytes:
            space.store_bytes(recv_addr, dtype.to_bytes(acc))

    def allreduce(
        self,
        send_addr: int,
        recv_addr: int,
        count: int,
        dtype: Datatype,
        op: ReduceOp,
    ) -> Yield:
        """Reduce to rank 0 followed by broadcast (MPICH-1 algorithm)."""
        self._count_call("MPI_Allreduce")
        yield from self.reduce(send_addr, recv_addr, count, dtype, op, 0)
        yield from self.bcast(recv_addr, count, dtype, 0)

    def gather(
        self,
        send_addr: int,
        count: int,
        dtype: Datatype,
        recv_addr: int,
        root: int,
    ) -> Yield:
        """Linear gather: each rank's block lands at
        ``recv_addr + rank * count * dtype.size`` on the root."""
        self._count_call("MPI_Gather")
        self._check_root(root)
        self._check_count(count)
        self._check_dtype(dtype)
        nbytes = count * dtype.size
        self._check_buffer(send_addr, nbytes, "gather send")
        tag = INTERNAL_TAG_BASE + 0x400
        space = self.image.address_space
        if self.rank != root:
            req = self.adi.send(root, tag, space.load_bytes(send_addr, nbytes))
            yield from self._wait(req)
            return
        self._check_buffer(recv_addr, nbytes * self.size, "gather recv")
        space.store_bytes(
            recv_addr + self.rank * nbytes, space.load_bytes(send_addr, nbytes)
        )
        for src in range(self.size):
            if src == root:
                continue
            req = self.adi.post_recv(src, tag, recv_addr + src * nbytes, nbytes)
            yield from self._wait(req)

    def scatter(
        self,
        send_addr: int,
        count: int,
        dtype: Datatype,
        recv_addr: int,
        root: int,
    ) -> Yield:
        """Linear scatter of ``count``-element blocks from the root."""
        self._count_call("MPI_Scatter")
        self._check_root(root)
        self._check_count(count)
        self._check_dtype(dtype)
        nbytes = count * dtype.size
        self._check_buffer(recv_addr, nbytes, "scatter recv")
        tag = INTERNAL_TAG_BASE + 0x500
        space = self.image.address_space
        if self.rank == root:
            self._check_buffer(send_addr, nbytes * self.size, "scatter send")
            for dst in range(self.size):
                block = space.load_bytes(send_addr + dst * nbytes, nbytes)
                if dst == root:
                    space.store_bytes(recv_addr, block)
                else:
                    req = self.adi.send(dst, tag, block)
                    yield from self._wait(req)
        else:
            req = self.adi.post_recv(root, tag, recv_addr, nbytes)
            yield from self._wait(req)

    def allgather(
        self, send_addr: int, count: int, dtype: Datatype, recv_addr: int
    ) -> Yield:
        """Gather to rank 0, then broadcast the assembled buffer."""
        self._count_call("MPI_Allgather")
        yield from self.gather(send_addr, count, dtype, recv_addr, 0)
        yield from self.bcast(recv_addr, count * self.size, dtype, 0)

    def alltoall(
        self, send_addr: int, count: int, dtype: Datatype, recv_addr: int
    ) -> Yield:
        """Pairwise-exchange all-to-all: rank ``i`` sends its ``j``-th
        ``count``-element block to rank ``j`` (the MPICH-1 algorithm for
        transposes, e.g. CAM's spectral transforms)."""
        self._count_call("MPI_Alltoall")
        self._check_count(count)
        self._check_dtype(dtype)
        nbytes = count * dtype.size
        self._check_buffer(send_addr, nbytes * self.size, "alltoall send")
        self._check_buffer(recv_addr, nbytes * self.size, "alltoall recv")
        tag = INTERNAL_TAG_BASE + 0x600
        space = self.image.address_space
        if nbytes == 0:
            return
        # own block
        space.store_bytes(
            recv_addr + self.rank * nbytes,
            space.load_bytes(send_addr + self.rank * nbytes, nbytes),
        )
        # pairwise rounds: in round k, exchange with rank ^ k is ideal for
        # powers of two; the general form pairs (rank + k) / (rank - k).
        for k in range(1, self.size):
            dst = (self.rank + k) % self.size
            src = (self.rank - k + self.size) % self.size
            rreq = self.adi.post_recv(src, tag + k, recv_addr + src * nbytes, nbytes)
            sreq = self.adi.send(
                dst, tag + k, space.load_bytes(send_addr + dst * nbytes, nbytes)
            )
            yield from self._wait(sreq)
            yield from self._wait(rreq)

    def iprobe(self, source: int, tag: int) -> Status | None:
        """MPI_Iprobe: non-blocking check for a matching message; returns
        a Status (source/tag/byte count) without receiving it."""
        self._count_call("MPI_Iprobe")
        self._check_rank(source, wildcard=True, what="source")
        self._check_tag(tag, wildcard=True)
        self.adi.progress()
        hit = self.adi.probe_unexpected(source, tag)
        if hit is None:
            return None
        src, mtag, length = hit
        return Status(source=src, tag=mtag, count_bytes=length)

    def probe(self, source: int, tag: int) -> Generator[Request, None, Status]:
        """MPI_Probe: block until a matching message is pending.

        Implemented as a busy-wait (yielding to the scheduler between
        polls), like a real single-threaded MPI progress engine; a probe
        that can never match is bounded only by the job's round budget,
        not by the deadlock detector."""
        self._count_call("MPI_Probe")
        while True:
            status = self.iprobe(source, tag)
            if status is not None:
                return status
            yield None

    # ------------------------------------------------------------------
    # environment
    # ------------------------------------------------------------------
    def get_rank(self) -> int:
        self._count_call("MPI_Comm_rank")
        return self.rank

    def get_size(self) -> int:
        self._count_call("MPI_Comm_size")
        return self.size

    def set_errhandler(self, handler) -> None:
        """MPI_Errhandler_set on MPI_COMM_WORLD."""
        self._count_call("MPI_Errhandler_set")
        self.errhandler.set(handler)

    def abort(self, errorcode: int = 1) -> None:
        """MPI_Abort: terminate all tasks of the job.

        MPI-1.1 makes a "best effort" to abort every task; in MPICH the
        whole job dies with the caller's error code - here the raised
        :class:`MPIAbort` unwinds to the scheduler, which stops every
        rank."""
        self._count_call("MPI_Abort")
        from repro.errors import MPIAbort

        raise MPIAbort(
            f"MPI_Abort called on rank {self.rank}", exit_code=errorcode
        )

    # ------------------------------------------------------------------
    # internal scratch buffers (MPI-tagged heap chunks)
    # ------------------------------------------------------------------
    def _mpi_scratch(self, nbytes: int) -> int:
        return self.image.heap.malloc(max(nbytes, 8), ChunkTag.MPI)

    def _free_scratch(self, addr: int) -> None:
        self.image.heap.free(addr)
