"""Link-map objects for the simulated MPI library.

The paper's fault dictionary is built from ``nm`` listings of *both* the
application and the MPI library, and every address whose symbol appears in
the MPI library's list is removed as an injection point.  For that filter
to be meaningful, the linked image must actually contain MPI-library text,
data and BSS objects at real addresses.  This module contributes them:
opaque code/data blobs with the classic MPICH symbol names, sized so the
library occupies a realistic share of the image.

The blobs are never executed or read by the simulator (the MPI logic runs
natively in :mod:`repro.mpi`), exactly as the paper's injector never
targets them - but a *mis-targeted* injection (e.g. a wild pointer) can
still land there harmlessly, as on the real system.
"""

from __future__ import annotations

from repro.cpu.isa import Insn, Op, encode
from repro.memory.symbols import Linker

#: (symbol, text bytes) - sizes loosely follow MPICH 1.2's objects.
MPI_TEXT_SYMBOLS: tuple[tuple[str, int], ...] = (
    ("MPI_Init", 1024),
    ("MPI_Finalize", 512),
    ("MPI_Send", 2048),
    ("MPI_Recv", 2048),
    ("MPI_Isend", 1536),
    ("MPI_Irecv", 1536),
    ("MPI_Wait", 768),
    ("MPI_Waitall", 1024),
    ("MPI_Sendrecv", 1024),
    ("MPI_Bcast", 3072),
    ("MPI_Reduce", 3072),
    ("MPI_Allreduce", 1536),
    ("MPI_Barrier", 1024),
    ("MPI_Gather", 2048),
    ("MPI_Scatter", 2048),
    ("MPI_Allgather", 1536),
    ("MPI_Comm_rank", 256),
    ("MPI_Comm_size", 256),
    ("MPI_Errhandler_set", 512),
    ("MPI_Abort", 512),
    ("MPID_ADI_Init", 4096),
    ("MPID_RecvComplete", 2048),
    ("MPID_SendControl", 2048),
    ("MPID_CH_Eagerb_send", 3072),
    ("MPID_CH_Rndvb_isend", 3072),
    ("p4_initenv", 4096),
    ("p4_send", 3072),
    ("p4_recv", 3072),
    ("net_recv", 2048),
    ("net_send", 2048),
)

MPI_DATA_SYMBOLS: tuple[tuple[str, int], ...] = (
    ("MPID_DevSet", 2048),
    ("MPIR_ToPointer_table", 4096),
    ("p4_global", 8192),
)

MPI_BSS_SYMBOLS: tuple[tuple[str, int], ...] = (
    ("MPID_recv_buffer_pool", 32768),
    ("p4_procgroup", 8192),
    ("MPIR_errhandler_storage", 1024),
)


def _opaque_code(size: int) -> bytes:
    """Fill library text with valid encoded instructions (NOP sleds ending
    in RET) so the bytes look like code to any tool that decodes them."""
    nwords = size // 8
    body = encode(Insn(Op.NOP)) * max(nwords - 1, 0)
    return body + encode(Insn(Op.RET))


def add_mpi_library(
    linker: Linker,
    *,
    text_scale: float = 1.0,
    data_scale: float = 1.0,
) -> None:
    """Contribute the MPI library's objects to a link.

    ``text_scale``/``data_scale`` let application builders adjust how much
    of the image the library occupies (NAMD links far more library code
    than Wavetoy does).
    """
    for name, size in MPI_TEXT_SYMBOLS:
        scaled = max(64, int(size * text_scale)) & ~7
        linker.add_text(name, _opaque_code(scaled), library="mpi")
    for name, size in MPI_DATA_SYMBOLS:
        scaled = max(64, int(size * data_scale))
        linker.add_data(name, scaled, library="mpi")
    for name, size in MPI_BSS_SYMBOLS:
        scaled = max(64, int(size * data_scale))
        linker.add_bss(name, scaled, library="mpi")
