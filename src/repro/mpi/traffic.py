"""Traffic measurement at the Channel and ADI levels.

Section 4.2 of the paper: "For messages, we modified the MPICH library to
measure and classify the incoming traffic at the Channel and ADI levels."
This module aggregates those measurements into the per-process profiles
reported in Table 1 (message volume, and the header vs user-data split of
received bytes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mpi.simulator import Job


@dataclass(frozen=True)
class RankTraffic:
    """Received-traffic profile of one MPI process."""

    rank: int
    total_bytes: int
    header_bytes: int
    payload_bytes: int
    packets: int
    control_packets: int
    data_packets: int
    messages_control: int  # ADI-level classification
    messages_data: int
    dropped_packets: int

    @property
    def header_percent(self) -> float:
        """Percent of received volume that is header bytes - Table 1's
        'Header' distribution column."""
        return 100.0 * self.header_bytes / self.total_bytes if self.total_bytes else 0.0

    @property
    def user_percent(self) -> float:
        """Percent of received volume that is user payload."""
        return 100.0 * self.payload_bytes / self.total_bytes if self.total_bytes else 0.0

    @property
    def control_message_percent(self) -> float:
        total = self.messages_control + self.messages_data
        return 100.0 * self.messages_control / total if total else 0.0


def rank_traffic(job: Job, rank: int) -> RankTraffic:
    """Snapshot the traffic counters of one rank."""
    ep = job.endpoints[rank]
    adi = job.adis[rank]
    s = ep.stats
    return RankTraffic(
        rank=rank,
        total_bytes=s.total_bytes,
        header_bytes=s.header_bytes,
        payload_bytes=s.payload_bytes,
        packets=s.packets,
        control_packets=s.control_packets,
        data_packets=s.data_packets,
        messages_control=adi.messages_control,
        messages_data=adi.messages_data,
        dropped_packets=s.dropped_packets,
    )


def job_traffic(job: Job) -> list[RankTraffic]:
    return [rank_traffic(job, r) for r in range(job.config.nprocs)]


@dataclass(frozen=True)
class TrafficSummary:
    """Aggregate over ranks (per-process mean and range, as Table 1
    reports e.g. 'Message (MB) 2.4-4.8')."""

    mean_bytes: float
    min_bytes: int
    max_bytes: int
    mean_header_percent: float
    mean_user_percent: float
    mean_control_message_percent: float


def summarize(job: Job) -> TrafficSummary:
    per_rank = job_traffic(job)
    totals = [t.total_bytes for t in per_rank]
    n = len(per_rank)
    return TrafficSummary(
        mean_bytes=sum(totals) / n,
        min_bytes=min(totals),
        max_bytes=max(totals),
        mean_header_percent=sum(t.header_percent for t in per_rank) / n,
        mean_user_percent=sum(t.user_percent for t in per_rank) / n,
        mean_control_message_percent=sum(t.control_message_percent for t in per_rank)
        / n,
    )
