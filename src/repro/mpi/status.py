"""MPI_Status and request objects."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Status:
    """Completion information for a receive (MPI_Status)."""

    source: int = -1
    tag: int = -1
    count_bytes: int = 0
    error: int = 0

    def get_count(self, datatype) -> int:
        """Number of whole elements received (MPI_Get_count)."""
        return self.count_bytes // datatype.size


@dataclass
class Request:
    """A nonblocking communication request (MPI_Request).

    The scheduler treats a yielded request as a blocking condition: the
    rank resumes when :meth:`ready` is true.
    """

    kind: str = "null"
    done: bool = False
    status: Status = field(default_factory=Status)
    #: Set by the ADI when the operation failed in a way that must be
    #: surfaced on the wait (rare; most failures abort directly).
    error: Exception | None = None

    def ready(self) -> bool:
        return self.done

    def complete(self, status: Status | None = None) -> None:
        if status is not None:
            self.status = status
        self.done = True


class CompletedRequest(Request):
    """A request that is born complete (eager sends)."""

    def __init__(self, kind: str = "send"):
        super().__init__(kind=kind, done=True)
