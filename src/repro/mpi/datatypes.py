"""MPI datatypes and reduction operations (MPI-1.1 subset).

Datatypes map between simulated-memory byte buffers and NumPy dtypes;
reduction operations implement the predefined MPI_Op set over NumPy
arrays with x87-style masked arithmetic (Inf/NaN propagate silently).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class Datatype:
    """A predefined MPI datatype."""

    name: str
    size: int  # bytes per element
    np_dtype: str  # numpy dtype string

    def to_numpy(self, raw: bytes) -> np.ndarray:
        return np.frombuffer(raw, dtype=self.np_dtype).copy()

    def to_bytes(self, values: np.ndarray) -> bytes:
        return np.asarray(values, dtype=self.np_dtype).tobytes()

    def __repr__(self) -> str:
        return f"MPI_{self.name}"


MPI_DOUBLE = Datatype("DOUBLE", 8, "<f8")
MPI_FLOAT = Datatype("FLOAT", 4, "<f4")
MPI_INT = Datatype("INT", 4, "<i4")
MPI_LONG = Datatype("LONG", 8, "<i8")
MPI_BYTE = Datatype("BYTE", 1, "u1")
MPI_CHAR = Datatype("CHAR", 1, "u1")

#: All predefined datatypes, for argument validation.
PREDEFINED_DATATYPES = (
    MPI_DOUBLE,
    MPI_FLOAT,
    MPI_INT,
    MPI_LONG,
    MPI_BYTE,
    MPI_CHAR,
)


@dataclass(frozen=True)
class ReduceOp:
    """A predefined MPI reduction operation."""

    name: str
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray]

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        with np.errstate(all="ignore"):
            return self.fn(a, b)

    def __repr__(self) -> str:
        return f"MPI_{self.name}"


MPI_SUM = ReduceOp("SUM", np.add)
MPI_PROD = ReduceOp("PROD", np.multiply)
MPI_MIN = ReduceOp("MIN", np.minimum)
MPI_MAX = ReduceOp("MAX", np.maximum)

PREDEFINED_OPS = (MPI_SUM, MPI_PROD, MPI_MIN, MPI_MAX)

#: Wildcards and limits from MPI-1.1.
ANY_SOURCE = -1
ANY_TAG = -1
TAG_UB = 32767

#: Tags at or above this value are reserved for the library's internal
#: collective algorithms (invisible to user-level matching).
INTERNAL_TAG_BASE = 1 << 20
