"""The Channel layer (the analogue of MPICH's ch_p4 device).

This is the lowest software layer of the simulated MPI stack - the
interface to the "underlying communication software" in the paper's
Figure 2, and the exact place its message fault injector operates:
"We chose to inject the faults into incoming traffic immediately after
MPICH invokes the recv socket routine."

Each rank owns a :class:`ChannelEndpoint` holding a FIFO of raw byte
packets.  When the ADI drains a packet (the ``recv`` call), the endpoint:

1. advances the received-byte counter that the paper's injector watches,
2. offers the raw bytes to the registered injection hook, which may flip
   a bit anywhere in the packet (header or payload), and
3. records traffic statistics (header vs payload bytes, control vs data
   packets) for the Table-1 profiles.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.observability import runtime as _obs

#: Hook signature: ``hook(packet, start_byte_offset) -> packet`` where
#: ``start_byte_offset`` is the rank's cumulative received-byte count at
#: the start of this packet.  Returns the (possibly corrupted) packet.
InjectHook = Callable[[bytearray, int], bytearray]

#: Read-only observer signature: ``tap(packet_bytes)`` called for every
#: drained packet *after* injection and accounting.  The static message
#: analyzer uses this to classify each received byte without disturbing
#: the stream.
TapHook = Callable[[bytes], None]

#: Header size in bytes (within the paper's 32-64 byte range).
HEADER_SIZE = 48


@dataclass
class ChannelStats:
    """Per-rank receive-side traffic accounting (Channel level)."""

    packets: int = 0
    control_packets: int = 0  # header-only
    data_packets: int = 0
    header_bytes: int = 0
    payload_bytes: int = 0
    dropped_packets: int = 0

    @property
    def total_bytes(self) -> int:
        return self.header_bytes + self.payload_bytes

    def header_fraction(self) -> float:
        total = self.total_bytes
        return self.header_bytes / total if total else 0.0


class ChannelEndpoint:
    """Receive queue plus counters for one MPI process."""

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self._queue: deque[bytes] = deque()
        self.bytes_received = 0
        self.stats = ChannelStats()
        self.inject_hook: InjectHook | None = None
        self.tap: TapHook | None = None
        #: Simulated clock of the owning rank; attached by the Job so
        #: channel events carry block-accurate timestamps.
        self.clock = None

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def push(self, packet: bytes) -> None:
        """Enqueue a packet arriving from the network."""
        self._queue.append(packet)

    def pending(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # receiver side (where injection happens)
    # ------------------------------------------------------------------
    def recv(self) -> bytearray | None:
        """Drain one packet, applying the injection hook and counters.

        Returns ``None`` when the queue is empty.
        """
        if not self._queue:
            return None
        packet = bytearray(self._queue.popleft())
        start = self.bytes_received
        self.bytes_received += len(packet)
        if self.inject_hook is not None:
            packet = self.inject_hook(packet, start)
        self._account(packet)
        if _obs.TRACER is not None and self.clock is not None:
            payload = len(packet) - min(HEADER_SIZE, len(packet))
            _obs.TRACER.instant(
                "channel:recv",
                "channel",
                self.clock.blocks,
                tid=self.rank,
                args={
                    "bytes": len(packet),
                    "kind": "data" if payload else "control",
                },
            )
        if self.tap is not None:
            self.tap(bytes(packet))
        return packet

    def _account(self, packet: bytearray) -> None:
        stats = self.stats
        stats.packets += 1
        header = min(HEADER_SIZE, len(packet))
        payload = len(packet) - header
        stats.header_bytes += header
        stats.payload_bytes += payload
        if payload == 0:
            stats.control_packets += 1
        else:
            stats.data_packets += 1

    def note_drop(self) -> None:
        self.stats.dropped_packets += 1

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def capture_state(self) -> tuple:
        """Picklable queue + counter state (hooks/clock are wiring, not
        state: the owning Job re-attaches them)."""
        return (tuple(self._queue), self.bytes_received, replace(self.stats))

    def restore_state(self, state: tuple) -> None:
        queue, bytes_received, stats = state
        self._queue = deque(queue)
        self.bytes_received = bytes_received
        self.stats = replace(stats)
