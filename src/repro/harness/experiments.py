"""Experiment registry: every table and figure of the paper, runnable.

Each :class:`Experiment` knows the paper artifact it reproduces, the
paper's headline values (for EXPERIMENTS.md), and how to run the
reproduction.  The benchmark suite (``benchmarks/``) contains one bench
per registry entry; this module is the single source of truth both use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.apps import ClimateApp, MoldynApp, WavetoyApp
from repro.harness.figures import render_working_set_table
from repro.harness.tables import render_campaign_table, render_profile_table
from repro.injection.campaign import Campaign
from repro.injection.faults import Region
from repro.mpi.simulator import JobConfig
from repro.sampling.plans import default_plan
from repro.trace.profiles import profile_application
from repro.trace.working_set import trace_memory

#: Default job size for the suite (the paper used 64-196 ranks on real
#: clusters; 8 simulated ranks keep the geometry while staying fast).
DEFAULT_NPROCS = 8


@dataclass(frozen=True)
class Experiment:
    """One paper artifact and its reproduction."""

    id: str
    paper_artifact: str
    description: str
    #: ``run(n) -> (artifact_text, metrics)`` where ``n`` scales the
    #: campaign size / trial count where applicable.  Campaign-backed
    #: experiments (``supports_jobs``) additionally accept keyword
    #: ``jobs`` (parallel workers) and ``store`` (JSONL result store).
    run: Callable[..., tuple[str, dict]]
    #: True when ``run`` accepts the engine's ``jobs``/``store`` kwargs
    #: (the benchmark suite forwards ``REPRO_CAMPAIGN_JOBS`` to these).
    supports_jobs: bool = False


def _config(app_cls) -> JobConfig:
    return JobConfig(nprocs=DEFAULT_NPROCS)


# ----------------------------------------------------------------------
# T1: application profiles
# ----------------------------------------------------------------------
def _run_table1(n: int | None) -> tuple[str, dict]:
    profiles = [
        profile_application(cls(), _config(cls))
        for cls in (WavetoyApp, MoldynApp, ClimateApp)
    ]
    metrics = {
        p.app_name: {
            "header_percent": p.header_percent,
            "user_percent": p.user_percent,
            "control_message_percent": p.control_message_percent,
            "text": p.text_size,
            "data": p.data_size,
            "bss": p.bss_size,
            "heap": p.heap_size_max,
        }
        for p in profiles
    }
    return render_profile_table(profiles), metrics


# ----------------------------------------------------------------------
# T2-T4: injection campaigns
# ----------------------------------------------------------------------
def _campaign_runner(app_cls, detection_columns: bool):
    def run(
        n: int | None,
        *,
        jobs: int | None = None,
        store=None,
        resume: bool = False,
    ) -> tuple[str, dict]:
        plan = default_plan(n)
        campaign = Campaign(app_cls, _config(app_cls), plan=plan)
        result = campaign.run(jobs=jobs, store=store, resume=resume)
        text = render_campaign_table(
            result,
            include_detection_columns=detection_columns,
            title=f"Fault Injection Results ({app_cls.name})",
        )
        metrics = {
            region.value: {
                "executions": row.executions,
                "error_rate_percent": row.error_rate_percent,
                **{m.value: row.manifestation_percent(m) for m in row.tally.counts},
            }
            for region, row in result.regions.items()
        }
        return text, metrics

    return run


# ----------------------------------------------------------------------
# T5-T7: working-set traces
# ----------------------------------------------------------------------
def _trace_runner(app_cls):
    def run(n: int | None) -> tuple[str, dict]:
        report = trace_memory(app_cls(), _config(app_cls))
        metrics = {
            "text_initial": report.initial_percent("text"),
            "text_compute": report.compute_phase_percent("text"),
            "dbh_initial": report.initial_percent("data_bss_heap"),
            "dbh_compute": report.compute_phase_percent("data_bss_heap"),
            "nonincreasing": report.text.is_nonincreasing()
            and report.data_bss_heap.is_nonincreasing(),
        }
        return render_working_set_table(report), metrics

    return run


# ----------------------------------------------------------------------
# E1: reliability arithmetic
# ----------------------------------------------------------------------
def _run_reliability(n: int | None) -> tuple[str, dict]:
    from repro.cluster.reliability import (
        CONSERVATIVE_FIT_PER_MB,
        asci_q_escaped_errors,
        days_between_errors,
        fit_to_mtbf_hours,
    )

    days = days_between_errors(1.0, CONSERVATIVE_FIT_PER_MB)
    asciq = asci_q_escaped_errors()
    mtbf_years = fit_to_mtbf_hours(CONSERVATIVE_FIT_PER_MB) / (24 * 365.25)
    text = (
        f"1 GB at {CONSERVATIVE_FIT_PER_MB:.0f} FIT/Mb: one soft error every "
        f"{days:.1f} days (paper: ~10)\n"
        f"ASCI Q (33 TB, 95% ECC coverage): {asciq:.0f} escaped errors per "
        f"10 days (paper: ~1,650)\n"
        f"per-Mb MTBF at that rate: {mtbf_years:.1f} years"
    )
    return text, {"days_per_error_gb": days, "asciq_escaped": asciq}


# ----------------------------------------------------------------------
# E2: SECDED coverage
# ----------------------------------------------------------------------
def _run_ecc(n: int | None) -> tuple[str, dict]:
    from repro.cluster.ecc import coverage_experiment

    trials = n or 300
    rng = np.random.default_rng(42)
    rows, metrics = [], {}
    for flips in (1, 2, 3):
        stats = coverage_experiment(trials, flips, rng)
        rows.append(
            f"{flips}-bit upsets: coverage {100 * stats.coverage:.1f}% "
            f"(corrected {stats.corrected}, detected {stats.detected}, "
            f"escaped {stats.escaped} of {stats.trials})"
        )
        metrics[f"coverage_{flips}"] = stats.coverage
        metrics[f"escape_{flips}"] = stats.escape_rate
    return "\n".join(rows), metrics


# ----------------------------------------------------------------------
# E3: checksum escapes (Stone & Partridge)
# ----------------------------------------------------------------------
def _run_checksum_escape(n: int | None) -> tuple[str, dict]:
    from repro.cluster.netchecksum import escape_experiment, host_corruption_experiment

    trials = n or 2000
    rng = np.random.default_rng(7)
    wire = escape_experiment(trials, 256, 2, rng)
    host = host_corruption_experiment(trials, 256, 2, rng)
    text = (
        f"wire corruption  : CRC32 escapes {wire.escape_rate('crc'):.2e}, "
        f"TCP-16 escapes {wire.escape_rate('tcp'):.2e}\n"
        f"host corruption  : CRC sees nothing (escape rate 1.0); TCP-16 "
        f"escapes {host.escape_rate('tcp'):.2e} of errors it alone guards"
    )
    return text, {
        "wire_tcp_escape": wire.escape_rate("tcp"),
        "wire_crc_escape": wire.escape_rate("crc"),
        "host_tcp_escape": host.escape_rate("tcp"),
    }


# ----------------------------------------------------------------------
# E4: sampling theory
# ----------------------------------------------------------------------
def _run_sampling(n: int | None) -> tuple[str, dict]:
    from repro.sampling.theory import (
        achieved_error,
        injection_space_size,
        sample_size_oversampled,
    )

    d400 = achieved_error(400)
    d500 = achieved_error(500)
    space = injection_space_size(512, 64, 120)
    n_for_5pct = sample_size_oversampled(0.05)
    text = (
        f"injection space >= 512 x 64 x 120 = {space:.3g} points "
        f"(paper: ~3.9e6)\n"
        f"400 injections -> d = {100 * d400:.1f}% ; 500 -> d = "
        f"{100 * d500:.1f}% (paper: 4.4-4.9%)\n"
        f"n for d = 5% at 95% confidence: {n_for_5pct} (paper uses 400-500)"
    )
    return text, {"d400": d400, "d500": d500, "space": space, "n5": n_for_5pct}


# ----------------------------------------------------------------------
# E5: Cactus message-fault decomposition
# ----------------------------------------------------------------------
def _run_cactus_messages(n: int | None) -> tuple[str, dict]:
    from repro.injection.outcomes import Manifestation

    trials = n or 60
    campaign = Campaign(WavetoyApp, _config(WavetoyApp))
    row = campaign.run_region(Region.MESSAGE, trials)
    header_hits = [r for r in row.records if r[1].detail == "header"]
    payload_hits = [r for r in row.records if r[1].detail == "payload"]

    def corrupt_rate(records):
        if not records:
            return 0.0
        bad = sum(1 for _, _, m in records if m is not Manifestation.CORRECT)
        return bad / len(records)

    hfrac = len(header_hits) / max(row.executions, 1)
    text = (
        f"message faults on wavetoy (n={row.executions}): error rate "
        f"{row.error_rate_percent:.1f}% (paper: 3.1%)\n"
        f"header hits: {100 * hfrac:.0f}% of injections (paper: ~6% of "
        f"traffic), corrupting {100 * corrupt_rate(header_hits):.0f}% of the "
        f"time (paper: ~40%)\n"
        f"payload hits corrupt {100 * corrupt_rate(payload_hits):.1f}% of the "
        f"time (masked by plain-text output)"
    )
    return text, {
        "error_rate": row.error_rate_percent,
        "header_fraction": hfrac,
        "header_corrupt_rate": corrupt_rate(header_hits),
        "payload_corrupt_rate": corrupt_rate(payload_hits),
    }


# ----------------------------------------------------------------------
# E6: checksum overhead and effectiveness (NAMD)
# ----------------------------------------------------------------------
def _run_checksum_overhead(n: int | None) -> tuple[str, dict]:
    from repro.harness.runner import run_fault_free

    cfg = _config(MoldynApp)
    with_ck = run_fault_free(lambda: MoldynApp(checksums=True), cfg)
    without = run_fault_free(lambda: MoldynApp(checksums=False), cfg)
    blocks_with = max(with_ck.blocks_per_rank)
    blocks_without = max(without.blocks_per_rank)
    overhead = 100.0 * (blocks_with - blocks_without) / blocks_without
    text = (
        f"moldyn blocks: {blocks_without} unchecked vs {blocks_with} "
        f"checksummed -> {overhead:.1f}% overhead (paper: ~3%)"
    )
    return text, {"overhead_percent": overhead}


# ----------------------------------------------------------------------
# E7: register-liveness ablation (Springer [23])
# ----------------------------------------------------------------------
def _run_register_ablation(n: int | None) -> tuple[str, dict]:
    from repro.analysis.liveness import register_usage_report

    report = register_usage_report()
    return report.text, report.metrics


# ----------------------------------------------------------------------
# E9: output-format ablation (binary detects more, section 6.2)
# ----------------------------------------------------------------------
def _run_output_format_ablation(n: int | None) -> tuple[str, dict]:
    from repro.sampling.plans import CampaignPlan

    trials = n or 40
    rates = {}
    for fmt in ("text", "binary"):
        campaign = Campaign(
            lambda f=fmt: WavetoyApp(output_format=f),
            _config(WavetoyApp),
            plan=CampaignPlan(per_region={"message": trials}),
            seed=777,  # identical fault sample under both formats
        )
        row = campaign.run_region(Region.MESSAGE, trials)
        rates[fmt] = row.error_rate_percent
    text = (
        f"message-fault manifestation: {rates['text']:.1f}% with plain-text "
        f"output vs {rates['binary']:.1f}% with binary output\n"
        f'(the paper: "A binary output format would detect more cases of '
        f'incorrect output")'
    )
    return text, {
        "text_rate": rates["text"],
        "binary_rate": rates["binary"],
    }


# ----------------------------------------------------------------------
# E10: ABFT coverage and overhead (section 8.2)
# ----------------------------------------------------------------------
def _run_abft(n: int | None) -> tuple[str, dict]:
    from repro.detectors.abft import coverage_experiment, overhead_ratio

    trials = n or 200
    stats = coverage_experiment(trials, 12, np.random.default_rng(8))
    oh = overhead_ratio(20)
    text = (
        f"ABFT checked matmul: {stats.corrected} corrected, "
        f"{stats.detected} detected, {stats.benign} benign, "
        f"{stats.escaped} escaped of {stats.trials} upsets -> coverage "
        f"{100 * stats.coverage:.1f}%\n"
        f"encoding overhead at n=20: {100 * oh:.1f}% "
        f"(Silva: almost-all detection at ~10% cost)"
    )
    return text, {
        "coverage": stats.coverage,
        "escaped": stats.escaped,
        "overhead_n20": oh,
    }


# ----------------------------------------------------------------------
# E11: control-flow signature checking (section 8.2)
# ----------------------------------------------------------------------
def _run_cfcheck(n: int | None) -> tuple[str, dict]:
    from repro.analysis.cfc_study import control_flow_study

    report = control_flow_study(trials=n or 80)
    return report.text, report.metrics


# ----------------------------------------------------------------------
# E12: naturally fault-tolerant algorithms (section 8.2)
# ----------------------------------------------------------------------
def _run_natural_ft(n: int | None) -> tuple[str, dict]:
    from repro.analysis.natural_ft import resilience_experiment

    report = resilience_experiment()
    return report.text, {
        "delay_iterations": report.delay_iterations,
        "iterative_error": report.iterative_error,
        "direct_error": report.direct_error,
        "self_corrected": report.iterative_self_corrected,
    }


# ----------------------------------------------------------------------
# E13: fault-duration study (section 8.1, Constantinescu)
# ----------------------------------------------------------------------
def _run_duration(n: int | None) -> tuple[str, dict]:
    from repro.analysis.duration_study import fault_duration_study

    report = fault_duration_study(trials=n or 24)
    return report.text, report.metrics


# ----------------------------------------------------------------------
# E8: progress-metric hang detection
# ----------------------------------------------------------------------
def _run_progress(n: int | None) -> tuple[str, dict]:
    from repro.detectors.progress import ProgressMonitor, ProgressSample

    monitor = ProgressMonitor(window=4, threshold=0.1, metric="blocks")
    # Healthy execution: steady block rate; calibration.
    for tick in range(1, 11):
        monitor.record(ProgressSample(tick=tick, blocks=1000 * tick))
    rate = monitor.calibrate()
    # The application then enters a non-terminating mode (a corrupted
    # loop bound): blocks stop advancing.
    stall_start = 10
    for tick in range(11, 31):
        monitor.record(ProgressSample(tick=tick, blocks=1000 * stall_start))
    detected_at = monitor.detection_tick()
    latency = (detected_at - stall_start) if detected_at else None
    text = (
        f"calibrated rate {rate:.0f} blocks/tick; stall at tick "
        f"{stall_start}; detected at tick {detected_at} "
        f"(latency {latency} ticks)"
    )
    return text, {"detected_at": detected_at, "latency": latency}


EXPERIMENTS: dict[str, Experiment] = {
    e.id: e
    for e in (
        Experiment(
            "T1",
            "Table 1",
            "Per-process application profiles (memory sections, message "
            "volume, header vs user distribution)",
            _run_table1,
        ),
        Experiment(
            "T2",
            "Table 2",
            "Fault injection results for Cactus Wavetoy (no internal "
            "detection: crash/hang/incorrect only)",
            _campaign_runner(WavetoyApp, detection_columns=False),
            supports_jobs=True,
        ),
        Experiment(
            "T3",
            "Table 3",
            "Fault injection results for NAMD (checksums and NaN checks "
            "add App/MPI Detected columns)",
            _campaign_runner(MoldynApp, detection_columns=True),
            supports_jobs=True,
        ),
        Experiment(
            "T4",
            "Table 4",
            "Fault injection results for CAM",
            _campaign_runner(ClimateApp, detection_columns=True),
            supports_jobs=True,
        ),
        Experiment(
            "T5",
            "Table 5",
            "Wavetoy working-set curves (text and data+BSS+heap)",
            _trace_runner(WavetoyApp),
        ),
        Experiment(
            "T6",
            "Table 6",
            "NAMD working-set curves",
            _trace_runner(MoldynApp),
        ),
        Experiment(
            "T7",
            "Table 7",
            "CAM working-set curves",
            _trace_runner(ClimateApp),
        ),
        Experiment(
            "E1",
            "Sections 1-2",
            "Reliability arithmetic: FIT rates, errors per 10 days, the "
            "ASCI Q escaped-error estimate",
            _run_reliability,
        ),
        Experiment(
            "E2",
            "Section 2.1",
            "SECDED (72,64) coverage under 1/2/3-bit upsets",
            _run_ecc,
        ),
        Experiment(
            "E3",
            "Section 2.2",
            "Checksum escape rates (Stone & Partridge host-corruption "
            "mechanism)",
            _run_checksum_escape,
        ),
        Experiment(
            "E4",
            "Section 4.3",
            "Sampling-theory campaign sizing (oversampled Cochran bound)",
            _run_sampling,
        ),
        Experiment(
            "E5",
            "Section 6.2",
            "Cactus message-fault decomposition: header vs payload hits "
            "and text-output masking",
            _run_cactus_messages,
        ),
        Experiment(
            "E6",
            "Sections 6.2/7",
            "NAMD message-checksum runtime overhead",
            _run_checksum_overhead,
        ),
        Experiment(
            "E7",
            "Section 6.1.1",
            "Register liveness vs optimization level (Springer [23])",
            _run_register_ablation,
        ),
        Experiment(
            "E8",
            "Section 7",
            "Progress-metric hang detection",
            _run_progress,
        ),
        Experiment(
            "E9",
            "Section 6.2 (ablation)",
            "Wavetoy output-format ablation: plain text masks message "
            "faults that binary output exposes",
            _run_output_format_ablation,
        ),
        Experiment(
            "E10",
            "Section 8.2 (extension)",
            "Algorithm-based fault tolerance: checksum-matrix coverage "
            "and overhead",
            _run_abft,
        ),
        Experiment(
            "E11",
            "Section 8.2 (extension)",
            "Control-flow signature checking of text faults",
            _run_cfcheck,
        ),
        Experiment(
            "E12",
            "Section 8.2 (extension)",
            "Naturally fault-tolerant iterative solvers vs direct methods",
            _run_natural_ft,
        ),
        Experiment(
            "E13",
            "Section 8.1 (extension)",
            "Fault duration: transient vs stuck-at manifestation rates "
            "(Constantinescu)",
            _run_duration,
        ),
    )
}


def get_experiment(exp_id: str) -> Experiment:
    try:
        return EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
