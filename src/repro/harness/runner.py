"""Single-execution helpers for examples and tests.

Thin wrappers over the engine's single-trial authority
(:func:`repro.engine.core.run_single`): budget derivation, injector
install, and outcome classification all live in :mod:`repro.engine`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.engine.core import ExecutionContext, TrialObservation, run_observed, run_single
from repro.injection.faults import FaultSpec, InjectionRecord
from repro.injection.outcomes import Manifestation
from repro.mpi.simulator import Job, JobConfig, JobResult


def run_fault_free(app_factory: Callable[[], object], config: JobConfig) -> JobResult:
    """One clean execution; raises if it does not complete."""
    result = Job(app_factory(), config).run()
    if not result.completed:
        raise RuntimeError(f"fault-free run failed ({result.status}): {result.detail}")
    return result


def run_with_fault(
    app_factory: Callable[[], object],
    config: JobConfig,
    spec: FaultSpec,
    *,
    reference: JobResult | None = None,
    seed: int = 0,
    compare=None,
) -> tuple[Manifestation, InjectionRecord, JobResult]:
    """Execute once with one fault armed and classify the outcome.

    The reference run (for output comparison and hang budgets) is
    computed on demand when not supplied.
    """
    if reference is None:
        reference = run_fault_free(app_factory, config)
    ctx = ExecutionContext.from_reference(
        app_factory, config, reference, compare=compare
    )
    return run_single(ctx, spec, np.random.default_rng(seed))


def run_with_fault_observed(
    app_factory: Callable[[], object],
    config: JobConfig,
    spec: FaultSpec,
    *,
    reference: JobResult | None = None,
    seed: int = 0,
    compare=None,
    trace: bool = False,
    metrics: bool = False,
    checkpoint_stride: int | None = None,
) -> tuple[Manifestation, InjectionRecord, JobResult, TrialObservation]:
    """:func:`run_with_fault` plus the trial's observability record.

    The returned observation always carries the fault-propagation
    timeline (injection instant, first divergence, latency in blocks);
    ``trace=True``/``metrics=True`` additionally attach the Chrome
    trace events and the metrics snapshot for this one execution.
    ``checkpoint_stride`` enables golden-prefix replay (see
    :mod:`repro.engine.checkpoint`) for this single trial, sharing the
    process-wide recording cache.
    """
    if reference is None:
        reference = run_fault_free(app_factory, config)
    ctx = ExecutionContext.from_reference(
        app_factory, config, reference, compare=compare
    )
    ctx.trace = trace
    ctx.collect_metrics = metrics
    ctx.checkpoint_stride = checkpoint_stride
    return run_observed(ctx, spec, np.random.default_rng(seed))
