"""Single-execution helpers for examples and tests."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.injection.campaign import BLOCK_BUDGET_FACTOR, ROUND_BUDGET_FACTOR
from repro.injection.faults import FaultSpec, InjectionRecord
from repro.injection.outcomes import Manifestation, classify, default_compare
from repro.injection.wrappers import install
from repro.mpi.simulator import Job, JobConfig, JobResult


def run_fault_free(app_factory: Callable[[], object], config: JobConfig) -> JobResult:
    """One clean execution; raises if it does not complete."""
    result = Job(app_factory(), config).run()
    if not result.completed:
        raise RuntimeError(f"fault-free run failed ({result.status}): {result.detail}")
    return result


def run_with_fault(
    app_factory: Callable[[], object],
    config: JobConfig,
    spec: FaultSpec,
    *,
    reference: JobResult | None = None,
    seed: int = 0,
    compare=None,
) -> tuple[Manifestation, InjectionRecord, JobResult]:
    """Execute once with one fault armed and classify the outcome.

    The reference run (for output comparison and hang budgets) is
    computed on demand when not supplied.
    """
    if reference is None:
        reference = run_fault_free(app_factory, config)
    app = app_factory()
    if compare is None:
        compare = getattr(app, "compare_outputs", None) or default_compare
    cfg = JobConfig(
        nprocs=config.nprocs,
        seed=config.seed,
        eager_threshold=config.eager_threshold,
        round_limit=int(reference.rounds * ROUND_BUDGET_FACTOR) + 300,
        block_limit=int(max(reference.blocks_per_rank) * BLOCK_BUDGET_FACTOR) + 2000,
        app_params=dict(config.app_params),
    )
    job = Job(app, cfg)
    record = install(job, spec, np.random.default_rng(seed))
    result = job.run()
    return classify(result, reference, compare), record, result
