"""Rendering of the paper's working-set figures (Tables 5-7).

The paper presents these as plots of working-set-size percentage against
basic-block time, one pair per application (text accesses, and
Data+BSS+Heap loads broken out by section).  The renderer prints the
same series as aligned columns, which is the form the benchmark harness
records.
"""

from __future__ import annotations

import numpy as np

from repro.trace.working_set import MemoryTraceReport


def render_working_set_table(
    report: MemoryTraceReport, *, samples: int = 16
) -> str:
    """Print the Tables 5-7 series for one application."""
    idx = np.linspace(0, report.text.times.size - 1, samples).astype(int)
    header = (
        f"{'blocks':>12}{'text %':>10}{'d+b+h %':>10}"
        f"{'data %':>10}{'bss %':>10}{'heap %':>10}"
    )
    lines = [
        f"Memory trace of {report.app_name} (rank {report.rank}, "
        f"{report.total_blocks} blocks)",
        header,
        "-" * len(header),
    ]
    for i in idx:
        lines.append(
            f"{int(report.text.times[i]):>12}"
            f"{report.text.percent[i]:>10.1f}"
            f"{report.data_bss_heap.percent[i]:>10.1f}"
            f"{report.data.percent[i]:>10.1f}"
            f"{report.bss.percent[i]:>10.1f}"
            f"{report.heap.percent[i]:>10.1f}"
        )
    lines.append(
        f"text: {report.initial_percent('text'):.1f}% at t=0 -> "
        f"{report.compute_phase_percent('text'):.1f}% in the compute phase; "
        f"data+bss+heap: {report.initial_percent('data_bss_heap'):.1f}% -> "
        f"{report.compute_phase_percent('data_bss_heap'):.1f}%"
    )
    return "\n".join(lines)
