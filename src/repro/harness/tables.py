"""Rendering of the paper's tables from campaign/profile results."""

from __future__ import annotations

from repro.injection.campaign import CampaignResult
from repro.injection.faults import Region
from repro.injection.outcomes import Manifestation
from repro.trace.profiles import ApplicationProfile

#: Row labels exactly as they appear in Tables 2-4.
PAPER_REGION_LABELS = {
    Region.REGULAR_REG: "Regular Reg.",
    Region.FP_REG: "FP Reg.",
    Region.BSS: "BSS",
    Region.DATA: "Data",
    Region.STACK: "Stack",
    Region.TEXT: "Text",
    Region.HEAP: "Heap",
    Region.MESSAGE: "Message",
}

#: Paper row order (Tables 2-4 list registers first, then memory
#: regions, then messages).
PAPER_ROW_ORDER = (
    Region.REGULAR_REG,
    Region.FP_REG,
    Region.BSS,
    Region.DATA,
    Region.STACK,
    Region.TEXT,
    Region.HEAP,
    Region.MESSAGE,
)

_DETECTION_COLUMNS = (
    (Manifestation.CRASH, "Crash"),
    (Manifestation.HANG, "Hang"),
    (Manifestation.INCORRECT, "Incorrect"),
    (Manifestation.APP_DETECTED, "App Detected"),
    (Manifestation.MPI_DETECTED, "MPI Detected"),
)


def render_campaign_table(
    result: CampaignResult,
    *,
    include_detection_columns: bool = True,
    title: str | None = None,
) -> str:
    """Render a campaign as a Table 2/3/4-style fixed-width table.

    Table 2 (Cactus Wavetoy) omits the detection columns because "no
    Application Detected or MPI Detected errors were encountered" - pass
    ``include_detection_columns=False`` for that layout.
    """
    columns = _DETECTION_COLUMNS if include_detection_columns else _DETECTION_COLUMNS[:3]
    header = (
        f"{'Region':<14}{'Executions':>11}{'Errors %':>10}"
        + "".join(f"{label:>14}" for _, label in columns)
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for region in PAPER_ROW_ORDER:
        row = result.regions.get(region)
        if row is None:
            continue
        cells = [
            f"{PAPER_REGION_LABELS[region]:<14}",
            f"{row.executions:>11}",
            f"{row.error_rate_percent:>10.1f}",
        ]
        for m, _ in columns:
            pct = row.manifestation_percent(m)
            cells.append(f"{pct:>14.0f}" if row.tally.errors else f"{'-':>14}")
        lines.append("".join(cells))
    lines.append(
        f"(n per region gives estimation error d = "
        f"{next(iter(result.regions.values())).estimation_error_percent:.1f}% "
        f"at 95% confidence)"
    )
    return "\n".join(lines)


def render_profile_table(profiles: list[ApplicationProfile]) -> str:
    """Render Table 1: per-process profiles, one column per application."""
    names = [p.app_name for p in profiles]
    header = f"{'':<22}" + "".join(f"{n:>16}" for n in names)
    lines = [header, "-" * len(header)]
    row_keys = [label for label, _ in profiles[0].as_rows()]
    rendered = [dict(p.as_rows()) for p in profiles]
    for key in row_keys:
        lines.append(f"{key:<22}" + "".join(f"{r[key]:>16}" for r in rendered))
    lines.append(
        f"{'Control msgs %':<22}"
        + "".join(f"{p.control_message_percent:>16.0f}" for p in profiles)
    )
    return "\n".join(lines)
