"""Experiment harness: single-fault runs, table/figure rendering and the
registry mapping every paper artifact to the code that regenerates it."""

from repro.harness.runner import run_fault_free, run_with_fault
from repro.harness.tables import (
    render_campaign_table,
    render_profile_table,
    PAPER_REGION_LABELS,
)
from repro.harness.figures import render_working_set_table
from repro.harness.experiments import EXPERIMENTS, Experiment, get_experiment

__all__ = [
    "run_fault_free",
    "run_with_fault",
    "render_campaign_table",
    "render_profile_table",
    "PAPER_REGION_LABELS",
    "render_working_set_table",
    "EXPERIMENTS",
    "Experiment",
    "get_experiment",
]
