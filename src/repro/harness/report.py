"""Markdown report generation (the EXPERIMENTS.md machinery)."""

from __future__ import annotations

import io
from dataclasses import dataclass, field

from repro.harness.experiments import EXPERIMENTS, Experiment


@dataclass
class ExperimentRun:
    experiment: Experiment
    artifact: str
    metrics: dict


@dataclass
class Report:
    """Collects experiment runs and renders a paper-vs-measured report."""

    title: str = "Experiment report"
    runs: list[ExperimentRun] = field(default_factory=list)

    def run_experiment(self, exp_id: str, n: int | None = None) -> ExperimentRun:
        exp = EXPERIMENTS[exp_id]
        artifact, metrics = exp.run(n)
        run = ExperimentRun(exp, artifact, metrics)
        self.runs.append(run)
        return run

    def render_markdown(self) -> str:
        out = io.StringIO()
        out.write(f"# {self.title}\n\n")
        for run in self.runs:
            exp = run.experiment
            out.write(f"## {exp.id} - {exp.paper_artifact}\n\n")
            out.write(f"{exp.description}\n\n")
            out.write("```\n")
            out.write(run.artifact.rstrip("\n"))
            out.write("\n```\n\n")
        return out.getvalue()
