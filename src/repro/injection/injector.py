"""The memory/register fault injector - the ptrace analogue.

Paper section 3.1: "Our MPI_Init() wrapper parses a configuration file and
spawns the memory fault injector.  The fault injector awakens periodically
and invokes the ptrace() UNIX system call to halt the target process and
overwrite target process memory or register content to simulate the effect
of transient errors.  The target process is then allowed to resume
execution and its reaction to faults is recorded."

Here "awakening" is a VM hook scheduled at the fault's basic-block time;
the callback runs between two instructions with the target halted, flips
exactly one bit, records what it touched, and returns - the VM resumes.
"""

from __future__ import annotations

import numpy as np

from repro.cpu.registers import EBP, ESP, REG_NAMES
from repro.cpu.vm import RET_SENTINEL, VM
from repro.errors import InvalidFaultSpec
from repro.injection.faults import (
    FaultSpec,
    InjectionRecord,
    MEMORY_REGIONS,
    Persistence,
    Region,
)
from repro.mpi.simulator import Job
from repro.observability import runtime as _obs


class MemoryFaultInjector:
    """Delivers one register or address-space fault into one rank."""

    def __init__(
        self,
        job: Job,
        spec: FaultSpec,
        record: InjectionRecord,
        rng: np.random.Generator,
    ) -> None:
        if spec.region not in MEMORY_REGIONS and spec.region not in (
            Region.REGULAR_REG,
            Region.FP_REG,
        ):
            raise InvalidFaultSpec(f"not a process fault region: {spec.region}")
        if (
            spec.persistence is not Persistence.TRANSIENT
            and spec.region is Region.FP_REG
        ):
            raise InvalidFaultSpec(
                "stuck-at faults are modelled for integer registers and "
                "memory only (the 80-bit FPU encoding has no stable "
                "bit-force interface)"
            )
        if not 0 <= spec.rank < job.config.nprocs:
            raise InvalidFaultSpec(f"rank {spec.rank} outside job of size {job.config.nprocs}")
        self.job = job
        self.spec = spec
        self.record = record
        self.rng = rng

    def arm(self) -> None:
        """Schedule the flip at the spec's basic-block time."""
        vm = self.job.vms[self.spec.rank]
        vm.schedule_hook(self.spec.time_blocks, self._fire)

    # ------------------------------------------------------------------
    def _fire(self, vm: VM) -> None:
        region = self.spec.region
        if region is Region.REGULAR_REG:
            self._fire_regular_reg(vm)
        elif region is Region.FP_REG:
            self._fire_fp_reg(vm)
        elif region in (Region.TEXT, Region.DATA, Region.BSS):
            self._fire_static(vm)
        elif region is Region.HEAP:
            self._fire_heap(vm)
        elif region is Region.STACK:
            self._fire_stack(vm)
        else:  # pragma: no cover - guarded in __init__
            raise InvalidFaultSpec(str(region))
        if self.record.delivered and (
            _obs.TIMELINE is not None
            or _obs.TRACER is not None
            or _obs.METRICS is not None
        ):
            _obs.note_injection(
                rank=self.spec.rank,
                blocks=vm.clock.blocks,
                insns=vm.instructions_retired,
                region=region.value,
                detail=self.record.detail or "",
            )
        if (
            self.spec.persistence is not Persistence.TRANSIENT
            and self.record.delivered
        ):
            # Section 8.1 (Constantinescu): longer-duration faults.  The
            # injector keeps waking up and re-forcing the bit, so the
            # application cannot heal it by overwriting.
            self._force(vm)
            vm.schedule_hook(
                vm.clock.blocks + self.spec.reassert_blocks, self._reassert
            )

    def _reassert(self, vm: VM) -> None:
        self._force(vm)
        self.record.notes.append(f"reasserted at block {vm.clock.blocks}")
        vm.schedule_hook(
            vm.clock.blocks + self.spec.reassert_blocks, self._reassert
        )

    def _force(self, vm: VM) -> None:
        """Force the (already resolved) target bit to the stuck value."""
        spec = self.spec
        stuck_one = spec.persistence is Persistence.STUCK_AT_1
        if spec.region is Region.REGULAR_REG:
            mask = 1 << spec.bit
            value = vm.regs.peek(spec.reg_index)
            vm.regs.poke(
                spec.reg_index, value | mask if stuck_one else value & ~mask
            )
            return
        addr = self.record.address
        if addr is None:
            return  # never resolved (e.g. no user heap chunk)
        seg = vm.image.address_space.find(addr)
        mask = 1 << spec.bit
        byte = seg.read_u8(addr)
        seg.write_u8(addr, byte | mask if stuck_one else byte & ~mask)

    def _fire_regular_reg(self, vm: VM) -> None:
        spec, rec = self.spec, self.record
        rec.old_value = vm.regs.peek(spec.reg_index)
        rec.new_value = vm.regs.flip_bit(spec.reg_index, spec.bit)
        rec.detail = REG_NAMES[spec.reg_index]
        rec.delivered = True

    def _fire_fp_reg(self, vm: VM) -> None:
        spec, rec = self.spec, self.record
        target = spec.fp_target
        if target.startswith("st"):
            sti = int(target[2:])
            rec.old_value = vm.fpu.read_st(sti)
            rec.new_value = vm.fpu.flip_data_bit(sti, spec.bit)
        else:
            rec.old_value = getattr(vm.fpu, target)
            rec.new_value = vm.fpu.flip_special_bit(target, spec.bit)
        rec.detail = target
        rec.delivered = True

    def _fire_static(self, vm: VM) -> None:
        """TEXT/DATA/BSS: the address came from the fault dictionary."""
        spec, rec = self.spec, self.record
        if spec.address is None:
            raise InvalidFaultSpec(f"{spec.region} fault without an address")
        space = vm.image.address_space
        seg = space.find(spec.address)
        rec.old_value = seg.read_u8(spec.address)
        rec.new_value = seg.flip_bit(spec.address, spec.bit)
        rec.address = spec.address
        sym = vm.image.symtab.resolve(spec.address)
        rec.symbol = sym.name if sym else None
        rec.detail = seg.name
        rec.delivered = True

    def _fire_heap(self, vm: VM) -> None:
        """Paper: "starting at a random address, the injector looks for
        any memory chunk marked as user.  Once located, a random bit in
        the chunk is flipped."  The scan reads chunk headers back from
        simulated memory via the allocator walk."""
        spec, rec = self.spec, self.record
        start = spec.address
        if start is None:
            seg = vm.image.heap_segment
            extent = max(vm.image.heap.extent(), 1)
            start = seg.base + int(self.rng.integers(extent))
        chunk = vm.image.heap.find_user_chunk_from(start)
        if chunk is None:
            rec.notes.append("no user heap chunk live at injection time")
            return
        addr = chunk.addr + int(self.rng.integers(chunk.size))
        seg = vm.image.heap_segment
        rec.old_value = seg.read_u8(addr)
        rec.new_value = seg.flip_bit(addr, spec.bit)
        rec.address = addr
        rec.detail = f"heap chunk 0x{chunk.addr:08x}+{chunk.size}"
        rec.delivered = True

    def _fire_stack(self, vm: VM) -> None:
        """Walk the EBP chain from the halted VM's registers; frames whose
        return address lies in user text (or is the top-level sentinel,
        i.e. called straight from the application's main) are injectable."""
        spec, rec = self.spec, self.record
        image = vm.image
        seg = image.stack_segment
        esp = vm.regs.peek(ESP)
        ebp = vm.regs.peek(EBP)
        if not seg.contains(esp):
            esp = image.stack.esp
        ranges: list[tuple[int, int]] = []
        prev_low = max(esp, seg.base)
        for frame_ebp, ret in image.stack.walk_frames(
            start_ebp=ebp if seg.contains(ebp, 8) else None
        ):
            high = min(frame_ebp + 24, seg.end)  # saved EBP, ret, a few args
            in_user = ret == RET_SENTINEL or image.in_user_text(ret)
            if in_user and high > prev_low:
                ranges.append((prev_low, high))
            prev_low = frame_ebp + 8
        total = sum(hi - lo for lo, hi in ranges)
        if total == 0:
            rec.notes.append("no user stack frames live at injection time")
            return
        pick = int(self.rng.integers(total))
        for lo, hi in ranges:
            if pick < hi - lo:
                addr = lo + pick
                break
            pick -= hi - lo
        rec.old_value = seg.read_u8(addr)
        rec.new_value = seg.flip_bit(addr, spec.bit)
        rec.address = addr
        rec.detail = "stack frame"
        rec.delivered = True
