"""Fault-injection campaigns: the experiment driver behind Tables 2-4.

A campaign (1) runs the application fault-free to obtain the reference
outputs, the per-rank basic-block totals (the injection time axis), the
per-rank received message volume (the message-byte axis) and the hang
budgets; (2) samples fault specifications uniformly over the paper's
three-axis injection space for each region; (3) executes one fresh job
per injection with the fault armed; and (4) classifies every outcome into
the six manifestation classes, reporting the same columns as the paper's
tables together with the sampling-theory estimation error.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.engine.budgets import (
    HANG_BLOCK_FACTOR,
    HANG_ROUND_FACTOR,
    block_budget,
    round_budget,
)
from repro.injection.dictionary import FaultDictionary
from repro.injection.faults import (
    FP_TOTAL_BITS,
    FaultSpec,
    InjectionRecord,
    Region,
    fp_target_from_bitindex,
)
from repro.injection.outcomes import Manifestation, OutcomeTally, default_compare
from repro.mpi.simulator import Job, JobConfig, JobResult
from repro.sampling.plans import CampaignPlan, default_plan
from repro.sampling.theory import StratifiedEstimate, achieved_error

#: Backwards-compatible aliases for the hang-budget factors, whose one
#: home is now :mod:`repro.engine.budgets`.
BLOCK_BUDGET_FACTOR = HANG_BLOCK_FACTOR
ROUND_BUDGET_FACTOR = HANG_ROUND_FACTOR


@dataclass
class ReferenceProfile:
    """Fault-free baseline measurements driving fault sampling."""

    result: JobResult
    blocks_per_rank: list[int]
    received_bytes_per_rank: list[int]
    rounds: int
    dictionary: FaultDictionary
    #: Rank-0 symbol table of the linked image the dictionary was built
    #: from (all ranks link identically); lets static analyses resolve a
    #: sampled fault address back to its symbol.
    symtab: object = None

    @property
    def block_limit(self) -> int:
        return block_budget(max(self.blocks_per_rank))

    @property
    def round_limit(self) -> int:
        return round_budget(self.rounds)


@dataclass
class RegionResult:
    """Per-region campaign outcome: one row of Tables 2-4."""

    region: Region
    tally: OutcomeTally = field(default_factory=OutcomeTally)
    delivered: int = 0
    #: Full per-trial record tuples.  Retention is opt-in for adaptive
    #: and parallel runs (``keep_records``): a 10^5-injection region
    #: must not hold every record alive - the tally and the result
    #: store carry the data.
    records: list[tuple[FaultSpec, InjectionRecord, Manifestation]] = field(
        default_factory=list
    )
    #: Trials satisfied from a result store instead of being executed.
    resumed: int = 0
    #: Observed Cochran half-width at the end of an adaptive run
    #: (``None`` for fixed-n campaigns).
    adaptive_d: float | None = None
    #: Trials satisfied by the static masking oracle instead of being
    #: executed (``--prune-masked``); they are tallied as CORRECT.
    pruned: int = 0
    #: Importance-weighted estimate from a stratified run
    #: (``campaign run --stratify``).  When present, the raw ``tally``
    #: reflects the Neyman *allocation* (rare strata oversampled) and
    #: this estimate is the unbiased region rate.
    stratified: "StratifiedEstimate | None" = None

    @property
    def executions(self) -> int:
        return self.tally.executions

    @property
    def executed(self) -> int:
        """Trials that actually ran a job (neither pruned nor resumed)."""
        return self.executions - self.pruned - self.resumed

    @property
    def error_rate_percent(self) -> float:
        return self.tally.error_rate_percent

    @property
    def estimation_error_percent(self) -> float:
        """The section-4.3 oversampled estimation error for this sample
        size, in percent."""
        n = self.executions
        return 100.0 * achieved_error(n) if n else float("nan")

    def manifestation_percent(self, m: Manifestation) -> float:
        return self.tally.manifestation_percent(m)


@dataclass
class CampaignResult:
    """All region rows for one application."""

    app_name: str
    nprocs: int
    seed: int
    regions: dict[Region, RegionResult] = field(default_factory=dict)

    def row(self, region: Region) -> RegionResult:
        return self.regions[region]

    def total_injections(self) -> int:
        return sum(r.executions for r in self.regions.values())


class Campaign:
    """Runs the full Table-2/3/4 experiment for one application.

    Parameters
    ----------
    app_factory:
        Zero-argument callable producing a *fresh* application instance
        (each injection run gets pristine process images).
    config:
        Job configuration (nprocs, seed, app parameters).
    plan:
        Injections per region; defaults honour ``REPRO_CAMPAIGN_N``.
    compare:
        Output comparator; defaults to the application's
        ``compare_outputs`` when present, else bitwise equality.
    app_params:
        Application build parameters, recorded in trial content hashes
        so result stores from different configurations never alias.
        (:meth:`from_registry` fills this automatically.)
    """

    def __init__(
        self,
        app_factory: Callable[[], object],
        config: JobConfig,
        plan: CampaignPlan | None = None,
        seed: int = 20040607,
        compare=None,
        app_params: dict | None = None,
    ) -> None:
        self.app_factory = app_factory
        self.config = config
        self.plan = plan or default_plan()
        self.seed = seed
        self.app_params = dict(app_params or {})
        self._compare_explicit = compare is not None
        app = app_factory()
        if compare is None:
            compare = getattr(app, "compare_outputs", None) or default_compare
        self.compare = compare
        self.app_name = getattr(app, "name", type(app).__name__)
        self._reference: ReferenceProfile | None = None

    @classmethod
    def from_registry(
        cls,
        app: str,
        *,
        nprocs: int = 8,
        app_params: dict | None = None,
        config: JobConfig | None = None,
        plan: CampaignPlan | None = None,
        seed: int = 20040607,
        compare=None,
    ) -> "Campaign":
        """Build a campaign over a suite application by name.

        The resulting factory (``functools.partial`` of the application
        class) is picklable, so the campaign can run with ``jobs > 1``.
        """
        import functools

        from repro.apps import APPLICATION_SUITE

        try:
            app_cls = APPLICATION_SUITE[app]
        except KeyError:
            raise KeyError(
                f"unknown application {app!r}; known: "
                f"{', '.join(sorted(APPLICATION_SUITE))}"
            ) from None
        params = dict(app_params or {})
        factory = functools.partial(app_cls, **params) if params else app_cls
        return cls(
            factory,
            config or JobConfig(nprocs=nprocs),
            plan=plan,
            seed=seed,
            compare=compare,
            app_params=params,
        )

    # ------------------------------------------------------------------
    # reference run
    # ------------------------------------------------------------------
    def reference(self, *, fastpath: bool = False) -> ReferenceProfile:
        if self._reference is not None:
            return self._reference
        # The fault-free golden run is observationally mode-independent
        # (pinned by the fastpath differential gate), so it may use the
        # translated engine whenever the campaign will.
        config = replace(self.config, fastpath=True) if fastpath else self.config
        job = Job(self.app_factory(), config)
        result = job.run()
        if not result.completed:
            raise RuntimeError(
                f"fault-free reference run failed ({result.status}): {result.detail}"
            )
        dict_rng = np.random.default_rng([self.seed, 0xD1C7])
        self._reference = ReferenceProfile(
            result=result,
            blocks_per_rank=list(result.blocks_per_rank),
            received_bytes_per_rank=[
                job.received_bytes(r) for r in range(self.config.nprocs)
            ],
            rounds=result.rounds,
            dictionary=FaultDictionary(job.images[0], dict_rng),
            symtab=job.images[0].symtab,
        )
        return self._reference

    # ------------------------------------------------------------------
    # fault sampling (uniform over the b x m x t space)
    # ------------------------------------------------------------------
    def sample_spec(self, region: Region, rng: np.random.Generator) -> FaultSpec:
        ref = self.reference()
        rank = int(rng.integers(self.config.nprocs))
        blocks = max(ref.blocks_per_rank[rank], 1)
        time = int(rng.integers(1, blocks + 1))
        if region is Region.REGULAR_REG:
            return FaultSpec(
                region,
                rank,
                time_blocks=time,
                bit=int(rng.integers(32)),
                reg_index=int(rng.integers(8)),
            )
        if region is Region.FP_REG:
            target, bit = fp_target_from_bitindex(int(rng.integers(FP_TOTAL_BITS)))
            return FaultSpec(region, rank, time_blocks=time, bit=bit, fp_target=target)
        if region in (Region.TEXT, Region.DATA, Region.BSS):
            entry = ref.dictionary.sample(region.value, rng)
            return FaultSpec(
                region,
                rank,
                time_blocks=time,
                bit=int(rng.integers(8)),
                address=entry.address,
            )
        if region is Region.HEAP:
            return FaultSpec(region, rank, time_blocks=time, bit=int(rng.integers(8)))
        if region is Region.STACK:
            return FaultSpec(region, rank, time_blocks=time, bit=int(rng.integers(8)))
        if region is Region.MESSAGE:
            volume = max(ref.received_bytes_per_rank[rank], 1)
            return FaultSpec(
                region,
                rank,
                bit=int(rng.integers(8)),
                target_byte=int(rng.integers(volume)),
            )
        raise ValueError(f"unknown region {region!r}")

    # ------------------------------------------------------------------
    # engine delegation
    # ------------------------------------------------------------------
    def execution_context(self, *, fastpath: bool = False):
        """The single-trial execution authority for this campaign."""
        from repro.engine.core import ExecutionContext

        ref = self.reference(fastpath=fastpath)
        return ExecutionContext(
            app=self.app_name,
            factory=self.app_factory,
            config=self.config,
            reference=ref.result,
            round_limit=ref.round_limit,
            block_limit=ref.block_limit,
            # An auto-derived comparator is re-derived on each worker
            # instead of being shipped across process boundaries.
            compare=self.compare if self._compare_explicit else None,
        )

    def masking_oracle(self):
        """The static masking oracle for this campaign's application
        (see :mod:`repro.staticanalysis.propagation.pruning`)."""
        from repro.staticanalysis.propagation.pruning import MaskingOracle

        return MaskingOracle.from_campaign(self)

    #: Cross-campaign predictor cache.  The predictor is a pure function
    #: of the linked program and reference profile, so campaigns over
    #: the same (app, params, nprocs, seed) - successive regions, CLI
    #: reruns, benchmark repetitions - share one build (~1.5 s of taint
    #: dataflow for wavetoy).
    _predictor_cache: dict = {}

    def outcome_predictor(self):
        """The static outcome predictor for this campaign's application
        (see :mod:`repro.staticanalysis.outcomes`), built once and
        cached: the stratifier classifies thousands of pool specs."""
        if getattr(self, "_predictor", None) is None:
            from repro.staticanalysis.outcomes.predictor import OutcomePredictor

            try:
                key = (
                    self.app_name,
                    tuple(sorted(self.app_params.items())),
                    self.config.nprocs,
                    self.seed,
                )
            except TypeError:  # unhashable app param: build uncached
                key = None
            if key is not None and key in Campaign._predictor_cache:
                self._predictor = Campaign._predictor_cache[key]
            else:
                self._predictor = OutcomePredictor.from_campaign(self)
                if key is not None:
                    Campaign._predictor_cache[key] = self._predictor
        return self._predictor

    def engine(
        self,
        *,
        jobs: int | None = 1,
        store=None,
        progress=None,
        log_interval: int = 0,
        metrics=None,
        trace=None,
        checkpoint_stride: int | None = None,
        fastpath: bool = False,
        prune_masked: bool = False,
        stratify: bool = False,
        telemetry=None,
        artifacts=None,
    ):
        """Build a :class:`~repro.engine.driver.CampaignEngine` bound to
        this campaign's sampler, reference profile, and plan."""
        from repro.engine.driver import CampaignEngine

        stratifier = None
        if stratify:
            predictor = self.outcome_predictor()
            stratifier = lambda fault: predictor.stratum(fault).value  # noqa: E731
        return CampaignEngine(
            self.execution_context(fastpath=fastpath),
            sampler=self.sample_spec,
            seed=self.seed,
            app_params=self.app_params,
            plan=self.plan,
            jobs=jobs,
            store=store,
            progress=progress,
            log_interval=log_interval,
            metrics=metrics,
            trace=trace,
            checkpoint_stride=checkpoint_stride,
            fastpath=fastpath,
            prune=self.masking_oracle().verdict if prune_masked else None,
            stratifier=stratifier,
            telemetry=telemetry,
            artifacts=artifacts,
        )

    # ------------------------------------------------------------------
    # single injection experiment
    # ------------------------------------------------------------------
    def run_injection(
        self, spec: FaultSpec, rng: np.random.Generator
    ) -> tuple[Manifestation, InjectionRecord, JobResult]:
        from repro.engine.core import run_single

        return run_single(self.execution_context(), spec, rng)

    # ------------------------------------------------------------------
    # region and full campaign
    # ------------------------------------------------------------------
    def run_region(
        self,
        region: Region,
        n: int | None = None,
        *,
        jobs: int | None = 1,
        store=None,
        resume: bool = False,
        target_d: float | None = None,
        batch: int | None = None,
        max_n: int | None = None,
        keep_records: bool | None = None,
        progress=None,
        log_interval: int = 0,
        metrics=None,
        trace=None,
        checkpoint_stride: int | None = None,
        fastpath: bool = False,
        prune_masked: bool = False,
        stratify: bool = False,
        telemetry=None,
        artifacts=None,
    ) -> RegionResult:
        """Run one region through the campaign engine.

        Serial fixed-n calls (the default) behave exactly as the
        historical for-loop driver, records included; ``jobs``,
        ``store``/``resume``, and adaptive ``target_d`` switch on the
        engine's parallel, resumable, and adaptive modes.
        """
        with self.engine(
            jobs=jobs,
            store=store,
            progress=progress,
            log_interval=log_interval,
            metrics=metrics,
            trace=trace,
            checkpoint_stride=checkpoint_stride,
            fastpath=fastpath,
            prune_masked=prune_masked,
            stratify=stratify,
            telemetry=telemetry,
            artifacts=artifacts,
        ) as eng:
            return eng.run_region(
                region,
                n,
                target_d=target_d,
                batch=batch,
                max_n=max_n,
                resume=resume,
                keep_records=keep_records,
            )

    def run(
        self,
        regions: tuple[Region, ...] = tuple(Region),
        n: int | None = None,
        *,
        jobs: int | None = 1,
        store=None,
        resume: bool = False,
        target_d: float | None = None,
        batch: int | None = None,
        max_n: int | None = None,
        keep_records: bool | None = None,
        progress=None,
        log_interval: int = 0,
        metrics=None,
        trace=None,
        checkpoint_stride: int | None = None,
        fastpath: bool = False,
        prune_masked: bool = False,
        stratify: bool = False,
        telemetry=None,
        artifacts=None,
    ) -> CampaignResult:
        with self.engine(
            jobs=jobs,
            store=store,
            progress=progress,
            log_interval=log_interval,
            metrics=metrics,
            trace=trace,
            checkpoint_stride=checkpoint_stride,
            fastpath=fastpath,
            prune_masked=prune_masked,
            stratify=stratify,
            telemetry=telemetry,
            artifacts=artifacts,
        ) as eng:
            return eng.run(
                regions,
                n,
                target_d=target_d,
                batch=batch,
                max_n=max_n,
                resume=resume,
                keep_records=keep_records,
            )
