"""Fault-injection campaigns: the experiment driver behind Tables 2-4.

A campaign (1) runs the application fault-free to obtain the reference
outputs, the per-rank basic-block totals (the injection time axis), the
per-rank received message volume (the message-byte axis) and the hang
budgets; (2) samples fault specifications uniformly over the paper's
three-axis injection space for each region; (3) executes one fresh job
per injection with the fault armed; and (4) classifies every outcome into
the six manifestation classes, reporting the same columns as the paper's
tables together with the sampling-theory estimation error.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.injection.dictionary import FaultDictionary
from repro.injection.faults import (
    FP_TOTAL_BITS,
    FaultSpec,
    InjectionRecord,
    Region,
    fp_target_from_bitindex,
)
from repro.injection.outcomes import Manifestation, OutcomeTally, classify, default_compare
from repro.injection.wrappers import install
from repro.mpi.simulator import Job, JobConfig, JobResult
from repro.sampling.plans import CampaignPlan, default_plan
from repro.sampling.theory import achieved_error

#: Budget multipliers for hang detection, applied to the fault-free run
#: (the analogue of "one minute beyond the expected completion time").
BLOCK_BUDGET_FACTOR = 2.5
ROUND_BUDGET_FACTOR = 3.0


@dataclass
class ReferenceProfile:
    """Fault-free baseline measurements driving fault sampling."""

    result: JobResult
    blocks_per_rank: list[int]
    received_bytes_per_rank: list[int]
    rounds: int
    dictionary: FaultDictionary

    @property
    def block_limit(self) -> int:
        return int(max(self.blocks_per_rank) * BLOCK_BUDGET_FACTOR) + 2000

    @property
    def round_limit(self) -> int:
        return int(self.rounds * ROUND_BUDGET_FACTOR) + 300


@dataclass
class RegionResult:
    """Per-region campaign outcome: one row of Tables 2-4."""

    region: Region
    tally: OutcomeTally = field(default_factory=OutcomeTally)
    delivered: int = 0
    records: list[tuple[FaultSpec, InjectionRecord, Manifestation]] = field(
        default_factory=list
    )

    @property
    def executions(self) -> int:
        return self.tally.executions

    @property
    def error_rate_percent(self) -> float:
        return self.tally.error_rate_percent

    @property
    def estimation_error_percent(self) -> float:
        """The section-4.3 oversampled estimation error for this sample
        size, in percent."""
        n = self.executions
        return 100.0 * achieved_error(n) if n else float("nan")

    def manifestation_percent(self, m: Manifestation) -> float:
        return self.tally.manifestation_percent(m)


@dataclass
class CampaignResult:
    """All region rows for one application."""

    app_name: str
    nprocs: int
    seed: int
    regions: dict[Region, RegionResult] = field(default_factory=dict)

    def row(self, region: Region) -> RegionResult:
        return self.regions[region]

    def total_injections(self) -> int:
        return sum(r.executions for r in self.regions.values())


class Campaign:
    """Runs the full Table-2/3/4 experiment for one application.

    Parameters
    ----------
    app_factory:
        Zero-argument callable producing a *fresh* application instance
        (each injection run gets pristine process images).
    config:
        Job configuration (nprocs, seed, app parameters).
    plan:
        Injections per region; defaults honour ``REPRO_CAMPAIGN_N``.
    compare:
        Output comparator; defaults to the application's
        ``compare_outputs`` when present, else bitwise equality.
    """

    def __init__(
        self,
        app_factory: Callable[[], object],
        config: JobConfig,
        plan: CampaignPlan | None = None,
        seed: int = 20040607,
        compare=None,
    ) -> None:
        self.app_factory = app_factory
        self.config = config
        self.plan = plan or default_plan()
        self.seed = seed
        app = app_factory()
        if compare is None:
            compare = getattr(app, "compare_outputs", None) or default_compare
        self.compare = compare
        self.app_name = getattr(app, "name", type(app).__name__)
        self._reference: ReferenceProfile | None = None

    # ------------------------------------------------------------------
    # reference run
    # ------------------------------------------------------------------
    def reference(self) -> ReferenceProfile:
        if self._reference is not None:
            return self._reference
        job = Job(self.app_factory(), self.config)
        result = job.run()
        if not result.completed:
            raise RuntimeError(
                f"fault-free reference run failed ({result.status}): {result.detail}"
            )
        dict_rng = np.random.default_rng([self.seed, 0xD1C7])
        self._reference = ReferenceProfile(
            result=result,
            blocks_per_rank=list(result.blocks_per_rank),
            received_bytes_per_rank=[
                job.received_bytes(r) for r in range(self.config.nprocs)
            ],
            rounds=result.rounds,
            dictionary=FaultDictionary(job.images[0], dict_rng),
        )
        return self._reference

    # ------------------------------------------------------------------
    # fault sampling (uniform over the b x m x t space)
    # ------------------------------------------------------------------
    def sample_spec(self, region: Region, rng: np.random.Generator) -> FaultSpec:
        ref = self.reference()
        rank = int(rng.integers(self.config.nprocs))
        blocks = max(ref.blocks_per_rank[rank], 1)
        time = int(rng.integers(1, blocks + 1))
        if region is Region.REGULAR_REG:
            return FaultSpec(
                region,
                rank,
                time_blocks=time,
                bit=int(rng.integers(32)),
                reg_index=int(rng.integers(8)),
            )
        if region is Region.FP_REG:
            target, bit = fp_target_from_bitindex(int(rng.integers(FP_TOTAL_BITS)))
            return FaultSpec(region, rank, time_blocks=time, bit=bit, fp_target=target)
        if region in (Region.TEXT, Region.DATA, Region.BSS):
            entry = ref.dictionary.sample(region.value, rng)
            return FaultSpec(
                region,
                rank,
                time_blocks=time,
                bit=int(rng.integers(8)),
                address=entry.address,
            )
        if region is Region.HEAP:
            return FaultSpec(region, rank, time_blocks=time, bit=int(rng.integers(8)))
        if region is Region.STACK:
            return FaultSpec(region, rank, time_blocks=time, bit=int(rng.integers(8)))
        if region is Region.MESSAGE:
            volume = max(ref.received_bytes_per_rank[rank], 1)
            return FaultSpec(
                region,
                rank,
                bit=int(rng.integers(8)),
                target_byte=int(rng.integers(volume)),
            )
        raise ValueError(f"unknown region {region!r}")

    # ------------------------------------------------------------------
    # single injection experiment
    # ------------------------------------------------------------------
    def run_injection(
        self, spec: FaultSpec, rng: np.random.Generator
    ) -> tuple[Manifestation, InjectionRecord, JobResult]:
        ref = self.reference()
        cfg = JobConfig(
            nprocs=self.config.nprocs,
            seed=self.config.seed,
            track_memory=False,
            eager_threshold=self.config.eager_threshold,
            round_limit=ref.round_limit,
            block_limit=ref.block_limit,
            app_params=dict(self.config.app_params),
        )
        job = Job(self.app_factory(), cfg)
        record = install(job, spec, rng)
        result = job.run()
        manifestation = classify(result, ref.result, self.compare)
        return manifestation, record, result

    # ------------------------------------------------------------------
    # region and full campaign
    # ------------------------------------------------------------------
    def run_region(self, region: Region, n: int | None = None) -> RegionResult:
        if n is None:
            n = self.plan.n_for(region.value)
        out = RegionResult(region)
        region_salt = zlib.crc32(region.value.encode())
        for i in range(n):
            # crc32, not hash(): str hashing is salted per process and
            # would make campaigns irreproducible across runs.
            rng = np.random.default_rng([self.seed, region_salt, i])
            spec = self.sample_spec(region, rng)
            manifestation, record, _ = self.run_injection(spec, rng)
            out.tally.add(manifestation)
            out.delivered += record.delivered
            out.records.append((spec, record, manifestation))
        return out

    def run(self, regions: tuple[Region, ...] = tuple(Region)) -> CampaignResult:
        result = CampaignResult(
            app_name=self.app_name, nprocs=self.config.nprocs, seed=self.seed
        )
        for region in regions:
            result.regions[region] = self.run_region(region)
        return result
