"""The MPI_Init fault-injection wrapper (paper section 3.1).

The paper links target applications against a library of MPI wrapper
functions; its ``MPI_Init`` wrapper parses the injection configuration
and spawns the fault injector before forwarding to ``PMPI_Init``.  The
:func:`install` function is the same step for a simulated job: given a
parsed configuration, it registers a pre-run hook that arms the right
injector (memory/register via VM hooks, message via the channel hook)
and returns the :class:`InjectionRecord` the experiment will inspect.
"""

from __future__ import annotations

import numpy as np

from repro.injection.config import InjectionConfig, parse_config
from repro.injection.faults import FaultSpec, InjectionRecord, Region
from repro.injection.injector import MemoryFaultInjector
from repro.injection.message_injector import MessageFaultInjector
from repro.mpi.simulator import Job


def install(
    job: Job,
    spec: FaultSpec,
    rng: np.random.Generator | None = None,
) -> InjectionRecord:
    """Arm one fault on a not-yet-started job; returns its record."""
    record = InjectionRecord(spec)
    if rng is None:
        rng = np.random.default_rng(0)
    if spec.region is Region.MESSAGE:
        injector = MessageFaultInjector(job, spec, record)
    else:
        injector = MemoryFaultInjector(job, spec, record, rng)
    job.pre_run_hooks.append(lambda _job: injector.arm())
    return record


def install_from_config_text(job: Job, text: str) -> InjectionRecord:
    """The full MPI_Init-wrapper path: parse the configuration file body
    and arm the injector it describes."""
    config: InjectionConfig = parse_config(text)
    rng = np.random.default_rng(config.seed)
    return install(job, config.spec, rng)
