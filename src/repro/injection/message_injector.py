"""The message fault injector (paper section 3.3, Figure 2).

"We configured MPICH to use the ch_p4 channel and injected faults at the
Channel level.  We chose to inject the faults into incoming traffic
immediately after MPICH invokes the recv socket routine. ...  Before
performing message injections, we profiled the application to estimate
the total message volume received by each MPI process during the
execution.  During each injection experiment, we generated a uniform
random number in this range.  The modified MPICH library maintains a
counter on received message volume and overwrites the payload when the
counter value coincides with the random number."
"""

from __future__ import annotations

from repro.errors import InvalidFaultSpec
from repro.injection.faults import FaultSpec, InjectionRecord, Region
from repro.mpi.channel import HEADER_SIZE
from repro.mpi.simulator import Job
from repro.observability import runtime as _obs


class MessageFaultInjector:
    """Flips one bit of the target rank's incoming byte stream when the
    received-volume counter crosses the chosen random threshold."""

    def __init__(self, job: Job, spec: FaultSpec, record: InjectionRecord) -> None:
        if spec.region is not Region.MESSAGE:
            raise InvalidFaultSpec(f"not a message fault: {spec.region}")
        if not 0 <= spec.rank < job.config.nprocs:
            raise InvalidFaultSpec(
                f"rank {spec.rank} outside job of size {job.config.nprocs}"
            )
        self.job = job
        self.spec = spec
        self.record = record

    def arm(self) -> None:
        endpoint = self.job.endpoints[self.spec.rank]
        if endpoint.inject_hook is not None:
            raise InvalidFaultSpec(
                f"rank {self.spec.rank} already has a message injector"
            )
        endpoint.inject_hook = self._hook

    def _hook(self, packet: bytearray, start_byte: int) -> bytearray:
        spec, rec = self.spec, self.record
        if rec.delivered:
            return packet
        target = spec.target_byte
        if not start_byte <= target < start_byte + len(packet):
            return packet
        offset = target - start_byte
        rec.old_value = packet[offset]
        packet[offset] ^= 1 << spec.bit
        rec.new_value = packet[offset]
        rec.address = offset
        rec.detail = "header" if offset < HEADER_SIZE else "payload"
        rec.delivered = True
        if (
            _obs.TIMELINE is not None
            or _obs.TRACER is not None
            or _obs.METRICS is not None
        ):
            vm = self.job.vms[spec.rank]
            _obs.note_injection(
                rank=spec.rank,
                blocks=vm.clock.blocks,
                insns=vm.instructions_retired,
                byte_offset=target,
                region=spec.region.value,
                detail=rec.detail,
            )
        return packet
