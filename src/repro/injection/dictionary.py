"""The fault dictionary for static sections (paper section 3.2).

"The identity and location of text, data and BSS memory objects are
determined at compile time and are static.  To separate the MPI library's
memory objects from the user application's, we processed the library and
application binaries to retrieve the respective lists of {symbolic name,
address} pairs.  We then constructed a fault dictionary containing several
thousand addresses randomly selected from this list.  Any address whose
associated symbolic name also appears in the MPI library's list was
removed as a possible injection point."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidFaultSpec
from repro.memory.layout import STATIC_IMAGE_WINDOW
from repro.memory.process import ProcessImage
from repro.memory.symbols import Symbol


@dataclass(frozen=True)
class DictionaryEntry:
    address: int
    symbol: str
    section: str


class FaultDictionary:
    """Candidate injection addresses per static section, user-only.

    Addresses are drawn uniformly over the *bytes* of user symbols (a
    physical upset is uniform over cells, not over symbols), then any
    address resolving to an MPI-library symbol is discarded - redundant
    by construction here, but the filter is applied anyway to mirror the
    paper's pipeline and to guard against overlapping symbol maps.
    """

    SECTIONS = ("text", "data", "bss")

    def __init__(
        self,
        image: ProcessImage,
        rng: np.random.Generator,
        entries_per_section: int = 4096,
    ) -> None:
        if entries_per_section <= 0:
            raise ValueError(
                f"entries_per_section must be positive: {entries_per_section}"
            )
        self.entries: dict[str, list[DictionaryEntry]] = {}
        mpi_names = {s.name for s in image.symtab.symbols(library="mpi")}
        for section in self.SECTIONS:
            symbols = image.symtab.symbols(section, "user")  # type: ignore[arg-type]
            candidates = self._draw(image, symbols, rng, entries_per_section)
            # The paper's filter: drop anything whose symbol is also in
            # the MPI library's list.
            kept = [e for e in candidates if e.symbol not in mpi_names]
            lo, hi = STATIC_IMAGE_WINDOW
            for entry in kept:
                if not lo <= entry.address < hi:
                    raise InvalidFaultSpec(
                        f"dictionary address {entry.address:#x} ({entry.symbol})"
                        f" outside the static image window [{lo:#x}, {hi:#x})"
                    )
            self.entries[section] = kept

    @staticmethod
    def _draw(
        image: ProcessImage,
        symbols: list[Symbol],
        rng: np.random.Generator,
        n: int,
    ) -> list[DictionaryEntry]:
        if not symbols:
            return []
        sizes = np.array([s.size for s in symbols], dtype=np.int64)
        cumulative = np.cumsum(sizes)
        total = int(cumulative[-1])
        if total == 0:
            return []
        offsets = rng.integers(0, total, size=n)
        sym_idx = np.searchsorted(cumulative, offsets, side="right")
        out = []
        for off, i in zip(offsets.tolist(), sym_idx.tolist()):
            sym = symbols[i]
            within = off - (int(cumulative[i]) - sym.size)
            addr = sym.addr + within
            resolved = image.symtab.resolve(addr)
            out.append(
                DictionaryEntry(
                    address=addr,
                    symbol=resolved.name if resolved else sym.name,
                    section=sym.section,
                )
            )
        return out

    def sample(self, section: str, rng: np.random.Generator) -> DictionaryEntry:
        """One injection point for the given static section."""
        pool = self.entries.get(section)
        if not pool:
            raise InvalidFaultSpec(
                f"fault dictionary has no user addresses for section {section!r}"
            )
        return pool[int(rng.integers(len(pool)))]

    def size(self, section: str) -> int:
        return len(self.entries.get(section, ()))
