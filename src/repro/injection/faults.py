"""Fault specifications and injection records.

A :class:`FaultSpec` pins down one point of the paper's three-axis
injection space (bit target b, MPI process m, injection time t) for one of
the eight regions of Tables 2-4.  An :class:`InjectionRecord` captures
what actually happened when the fault fired - including whether it was
delivered at all and which symbol/byte it landed on - for post-campaign
analysis.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Persistence(str, enum.Enum):
    """Fault duration model (section 8.1: Constantinescu found transients
    harder to detect, while longer-duration faults led to failures)."""

    #: Single bit flip; the application may overwrite it.
    TRANSIENT = "transient"
    #: The target bit is forced to 0 at every injector wake-up.
    STUCK_AT_0 = "stuck_at_0"
    #: The target bit is forced to 1 at every injector wake-up.
    STUCK_AT_1 = "stuck_at_1"


class Region(str, enum.Enum):
    """The eight injection regions, in the paper's table row order."""

    REGULAR_REG = "regular_reg"
    FP_REG = "fp_reg"
    BSS = "bss"
    DATA = "data"
    STACK = "stack"
    TEXT = "text"
    HEAP = "heap"
    MESSAGE = "message"


#: Regions whose faults are bit flips in the process address space.
MEMORY_REGIONS = frozenset(
    {Region.TEXT, Region.DATA, Region.BSS, Region.HEAP, Region.STACK}
)

#: Regions delivered by the ptrace-analogue (halt, flip, resume).
PROCESS_REGIONS = MEMORY_REGIONS | {Region.REGULAR_REG, Region.FP_REG}

#: Bit-space sizes for the FP register file (paper section 3.2 targets
#: the eight 80-bit data registers plus CWD, SWD, TWD, FIP, FCS, FOO,
#: FOS).
FP_DATA_BITS = 8 * 80
FP_SPECIAL_WIDTHS = (
    ("cwd", 16),
    ("swd", 16),
    ("twd", 16),
    ("fip", 32),
    ("fcs", 16),
    ("foo", 32),
    ("fos", 16),
)
FP_SPECIAL_BITS = sum(w for _, w in FP_SPECIAL_WIDTHS)
FP_TOTAL_BITS = FP_DATA_BITS + FP_SPECIAL_BITS


@dataclass(frozen=True)
class FaultSpec:
    """One planned single-bit fault."""

    region: Region
    rank: int
    #: Delivery time in executed basic blocks (ignored for MESSAGE).
    time_blocks: int = 0
    #: Bit index within the target byte/register (region-dependent).
    bit: int = 0
    #: REGULAR_REG: which of the eight GPRs (0..7).
    reg_index: int | None = None
    #: FP_REG: ``"st0"``..``"st7"`` or a special-register name.
    fp_target: str | None = None
    #: TEXT/DATA/BSS: pre-resolved target address (from the fault
    #: dictionary).  HEAP: the random scan-start address.
    address: int | None = None
    #: MESSAGE: offset in the rank's received-byte stream.
    target_byte: int | None = None
    #: Fault duration model (process regions only; messages are
    #: inherently transient - each byte is received once).
    persistence: Persistence = Persistence.TRANSIENT
    #: Re-assertion period for stuck-at faults, in basic blocks.
    reassert_blocks: int = 64

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be non-negative: {self.rank}")
        if self.reassert_blocks <= 0:
            raise ValueError(
                f"reassert_blocks must be positive: {self.reassert_blocks}"
            )
        if self.time_blocks < 0:
            raise ValueError(f"time_blocks must be non-negative: {self.time_blocks}")
        if self.region is Region.REGULAR_REG:
            if self.reg_index is None or not 0 <= self.reg_index < 8:
                raise ValueError(f"REGULAR_REG requires reg_index in [0,8)")
            if not 0 <= self.bit < 32:
                raise ValueError(f"register bit must be in [0,32): {self.bit}")
        elif self.region is Region.FP_REG:
            if not self.fp_target:
                raise ValueError("FP_REG requires fp_target")
        elif self.region is Region.MESSAGE:
            if self.target_byte is None or self.target_byte < 0:
                raise ValueError("MESSAGE requires a non-negative target_byte")
            if not 0 <= self.bit < 8:
                raise ValueError(f"message bit must be in [0,8): {self.bit}")
            if self.persistence is not Persistence.TRANSIENT:
                raise ValueError("message faults are inherently transient")
        else:
            if not 0 <= self.bit < 8:
                raise ValueError(f"memory bit must be in [0,8): {self.bit}")


@dataclass
class InjectionRecord:
    """What one injection actually did."""

    spec: FaultSpec
    delivered: bool = False
    #: Resolved absolute address of the flipped byte (memory regions).
    address: int | None = None
    #: Symbol the address resolved to, if any.
    symbol: str | None = None
    #: Region-specific detail: ``"header"``/``"payload"`` for message
    #: faults, the register name for register faults, chunk/frame info
    #: for heap/stack.
    detail: str = ""
    old_value: int | float | None = None
    new_value: int | float | None = None
    notes: list[str] = field(default_factory=list)


def fp_target_from_bitindex(bit_index: int) -> tuple[str, int]:
    """Map a uniform index over the FP register bit space to a concrete
    ``(target_name, bit)`` pair, so sampling is proportional to register
    widths (as a uniform physical upset would be)."""
    if not 0 <= bit_index < FP_TOTAL_BITS:
        raise ValueError(f"fp bit index out of range: {bit_index}")
    if bit_index < FP_DATA_BITS:
        return f"st{bit_index // 80}", bit_index % 80
    rest = bit_index - FP_DATA_BITS
    for name, width in FP_SPECIAL_WIDTHS:
        if rest < width:
            return name, rest
        rest -= width
    raise AssertionError("unreachable")
