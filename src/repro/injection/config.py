"""Injection configuration files.

The paper's ``MPI_Init`` wrapper "parses a configuration file and spawns
the memory fault injector".  The format here is a minimal INI dialect::

    [injection]
    region = heap        ; one of the eight Table 2-4 regions
    rank = 3
    time = 120000        ; basic blocks (ignored for message faults)
    bit = 5
    reg = 2              ; regular_reg only (0..7)
    fp_target = st0      ; fp_reg only
    address = 0x0804a010 ; text/data/bss (or heap scan start)
    target_byte = 98304  ; message only
    seed = 99
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.injection.faults import FaultSpec, Region


class ConfigError(ValueError):
    """Malformed injection configuration."""


@dataclass(frozen=True)
class InjectionConfig:
    spec: FaultSpec
    seed: int


def _parse_int(value: str, key: str) -> int:
    try:
        return int(value, 0)
    except ValueError:
        raise ConfigError(f"bad integer for {key!r}: {value!r}") from None


def parse_config(text: str) -> InjectionConfig:
    """Parse a config-file body into an :class:`InjectionConfig`."""
    fields: dict[str, str] = {}
    section = None
    for line_no, raw in enumerate(text.splitlines(), 1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            section = line[1:-1].strip().lower()
            continue
        if "=" not in line:
            raise ConfigError(f"line {line_no}: expected 'key = value': {raw!r}")
        key, _, value = line.partition("=")
        if section != "injection":
            raise ConfigError(f"line {line_no}: key outside [injection] section")
        fields[key.strip().lower()] = value.strip()

    if "region" not in fields:
        raise ConfigError("missing required key 'region'")
    try:
        region = Region(fields["region"].lower())
    except ValueError:
        valid = ", ".join(r.value for r in Region)
        raise ConfigError(
            f"unknown region {fields['region']!r}; expected one of: {valid}"
        ) from None

    kwargs: dict = {
        "region": region,
        "rank": _parse_int(fields.get("rank", "0"), "rank"),
        "time_blocks": _parse_int(fields.get("time", "0"), "time"),
        "bit": _parse_int(fields.get("bit", "0"), "bit"),
    }
    if "reg" in fields:
        kwargs["reg_index"] = _parse_int(fields["reg"], "reg")
    if "fp_target" in fields:
        kwargs["fp_target"] = fields["fp_target"].lower()
    if "address" in fields:
        kwargs["address"] = _parse_int(fields["address"], "address")
    if "target_byte" in fields:
        kwargs["target_byte"] = _parse_int(fields["target_byte"], "target_byte")
    try:
        spec = FaultSpec(**kwargs)
    except ValueError as exc:
        raise ConfigError(str(exc)) from None
    return InjectionConfig(spec=spec, seed=_parse_int(fields.get("seed", "0"), "seed"))


def format_config(config: InjectionConfig) -> str:
    """Render a config back to file form (round-trips with parse)."""
    spec = config.spec
    lines = [
        "[injection]",
        f"region = {spec.region.value}",
        f"rank = {spec.rank}",
        f"time = {spec.time_blocks}",
        f"bit = {spec.bit}",
    ]
    if spec.reg_index is not None:
        lines.append(f"reg = {spec.reg_index}")
    if spec.fp_target is not None:
        lines.append(f"fp_target = {spec.fp_target}")
    if spec.address is not None:
        lines.append(f"address = 0x{spec.address:08x}")
    if spec.target_byte is not None:
        lines.append(f"target_byte = {spec.target_byte}")
    lines.append(f"seed = {config.seed}")
    return "\n".join(lines) + "\n"
