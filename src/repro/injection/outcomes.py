"""Error-manifestation taxonomy and outcome classifier (paper section 5.1).

The classifier consumes the externally visible artifacts of a run - the
captured stderr (for MPICH crash diagnostics), the console (for
application abort messages and the error-handler label), the termination
condition, and the application outputs - and produces one of the paper's
six disjoint classes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.mpi.simulator import JobResult, JobStatus


class Manifestation(str, enum.Enum):
    """The paper's disjoint outcome classes."""

    CORRECT = "correct"
    CRASH = "crash"
    HANG = "hang"
    INCORRECT = "incorrect"
    APP_DETECTED = "app_detected"
    MPI_DETECTED = "mpi_detected"


#: Classes that count as manifested errors (everything but CORRECT).
ERROR_CLASSES = (
    Manifestation.CRASH,
    Manifestation.HANG,
    Manifestation.INCORRECT,
    Manifestation.APP_DETECTED,
    Manifestation.MPI_DETECTED,
)


def default_compare(reference: dict, observed: dict) -> bool:
    """Bitwise output equality - the strictest correctness definition.

    Applications override this: Cactus Wavetoy's plain-text comparison is
    exact string equality of *rounded* text (which masks low-order
    perturbations), moldyn's console energies allow the nondeterminism
    tolerance of section 4.2.2.
    """
    return reference == observed


def classify(
    result: JobResult,
    reference: JobResult,
    compare=default_compare,
) -> Manifestation:
    """Map one faulty run onto the paper's taxonomy.

    Crash detection follows the paper exactly: "Application crashes were
    detected by identifying MPICH error messages in the STDERR output."
    """
    status = result.status
    if status is JobStatus.HUNG:
        return Manifestation.HANG
    if status is JobStatus.APP_DETECTED:
        return Manifestation.APP_DETECTED
    if status is JobStatus.MPI_DETECTED:
        return Manifestation.MPI_DETECTED
    if status is JobStatus.CRASHED or any(
        "p4_error" in line for line in result.stderr
    ):
        return Manifestation.CRASH
    # Completed: compare outputs against the fault-free reference.
    if compare(reference.outputs, result.outputs):
        return Manifestation.CORRECT
    return Manifestation.INCORRECT


@dataclass
class OutcomeTally:
    """Counts per manifestation class, with the paper's derived ratios."""

    counts: dict[Manifestation, int] = field(
        default_factory=lambda: {m: 0 for m in Manifestation}
    )

    def add(self, m: Manifestation) -> None:
        self.counts[m] += 1

    @property
    def executions(self) -> int:
        return sum(self.counts.values())

    @property
    def errors(self) -> int:
        """Manifested faults (everything except CORRECT)."""
        return self.executions - self.counts[Manifestation.CORRECT]

    @property
    def error_rate_percent(self) -> float:
        """The 'Errors (Percent)' column: manifestations / injections."""
        n = self.executions
        return 100.0 * self.errors / n if n else 0.0

    def manifestation_percent(self, m: Manifestation) -> float:
        """The 'Error Manifestations (Percent)' columns: share of each
        class among *manifested* errors."""
        e = self.errors
        return 100.0 * self.counts[m] / e if e else 0.0

    def breakdown(self) -> dict[Manifestation, float]:
        return {m: self.manifestation_percent(m) for m in ERROR_CLASSES}
