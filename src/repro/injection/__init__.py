"""Software-implemented fault injection (SWIFI) framework.

The paper's methodology end to end: fault specifications over the
(bit, process, time) space, the symbol-filtered fault dictionary, the
ptrace-analogue register/memory injector, the Channel-level message
injector, outcome classification into the six manifestation classes, and
the campaign driver that regenerates Tables 2-4.
"""

from repro.injection.faults import (
    FP_DATA_BITS,
    FP_SPECIAL_BITS,
    FP_SPECIAL_WIDTHS,
    FP_TOTAL_BITS,
    FaultSpec,
    InjectionRecord,
    MEMORY_REGIONS,
    PROCESS_REGIONS,
    Persistence,
    Region,
    fp_target_from_bitindex,
)
from repro.injection.dictionary import DictionaryEntry, FaultDictionary
from repro.injection.injector import MemoryFaultInjector
from repro.injection.message_injector import MessageFaultInjector
from repro.injection.outcomes import (
    ERROR_CLASSES,
    Manifestation,
    OutcomeTally,
    classify,
    default_compare,
)
from repro.injection.config import ConfigError, InjectionConfig, format_config, parse_config
from repro.injection.wrappers import install, install_from_config_text
from repro.injection.campaign import (
    BLOCK_BUDGET_FACTOR,
    ROUND_BUDGET_FACTOR,
    Campaign,
    CampaignResult,
    ReferenceProfile,
    RegionResult,
)

__all__ = [
    "FP_DATA_BITS",
    "FP_SPECIAL_BITS",
    "FP_SPECIAL_WIDTHS",
    "FP_TOTAL_BITS",
    "FaultSpec",
    "InjectionRecord",
    "MEMORY_REGIONS",
    "PROCESS_REGIONS",
    "Persistence",
    "Region",
    "fp_target_from_bitindex",
    "DictionaryEntry",
    "FaultDictionary",
    "MemoryFaultInjector",
    "MessageFaultInjector",
    "ERROR_CLASSES",
    "Manifestation",
    "OutcomeTally",
    "classify",
    "default_compare",
    "ConfigError",
    "InjectionConfig",
    "format_config",
    "parse_config",
    "install",
    "install_from_config_text",
    "BLOCK_BUDGET_FACTOR",
    "ROUND_BUDGET_FACTOR",
    "Campaign",
    "CampaignResult",
    "ReferenceProfile",
    "RegionResult",
]
