"""repro - a reproduction of "Assessing Fault Sensitivity in MPI
Applications" (Charng-da Lu and Daniel A. Reed, SC 2004).

A software-implemented fault-injection (SWIFI) framework over a fully
simulated substrate: an x86-flavoured virtual CPU with an x87 FPU stack,
a Linux-style process address space with a tagging malloc, a
deterministic MPICH-style MPI-1.1 runtime, and a suite of three
miniature scientific applications mirroring Cactus Wavetoy, NAMD and
CAM.  Single-bit faults are injected into registers, the process address
space and MPI message traffic, and outcomes are classified into the
paper's six manifestation classes.

Quick start::

    from repro import Campaign, JobConfig, Region, WavetoyApp

    campaign = Campaign(WavetoyApp, JobConfig(nprocs=8))
    row = campaign.run_region(Region.MESSAGE, 50)
    print(row.error_rate_percent)
"""

from repro._version import __version__
from repro.errors import (
    AppAbort,
    HangDetected,
    MPIAbort,
    MPIError,
    SimBusError,
    SimFPE,
    SimIllegalInstruction,
    SimSegfault,
    SimSignal,
    SimulationError,
)
from repro.clock import Clock
from repro.mpi import Job, JobConfig, JobResult, JobStatus
from repro.injection import (
    Campaign,
    CampaignResult,
    FaultSpec,
    InjectionRecord,
    Manifestation,
    Region,
    classify,
    install,
)
from repro.apps import APPLICATION_SUITE, ClimateApp, MoldynApp, WavetoyApp
from repro.engine import (
    CampaignEngine,
    ExecutionContext,
    ParallelExecutor,
    ProgressEvent,
    ResultStore,
    SerialExecutor,
    TrialResult,
    TrialSpec,
)
from repro.harness import EXPERIMENTS, run_fault_free, run_with_fault
from repro.sampling import achieved_error, sample_size_oversampled
from repro.trace import profile_application, trace_memory

__all__ = [
    "__version__",
    "AppAbort",
    "HangDetected",
    "MPIAbort",
    "MPIError",
    "SimBusError",
    "SimFPE",
    "SimIllegalInstruction",
    "SimSegfault",
    "SimSignal",
    "SimulationError",
    "Clock",
    "Job",
    "JobConfig",
    "JobResult",
    "JobStatus",
    "Campaign",
    "CampaignResult",
    "FaultSpec",
    "InjectionRecord",
    "Manifestation",
    "Region",
    "classify",
    "install",
    "APPLICATION_SUITE",
    "ClimateApp",
    "MoldynApp",
    "WavetoyApp",
    "CampaignEngine",
    "ExecutionContext",
    "ParallelExecutor",
    "ProgressEvent",
    "ResultStore",
    "SerialExecutor",
    "TrialResult",
    "TrialSpec",
    "EXPERIMENTS",
    "run_fault_free",
    "run_with_fault",
    "achieved_error",
    "sample_size_oversampled",
    "profile_application",
    "trace_memory",
]
