"""Symbol tables and a linker-style image builder.

The paper builds its text/data/BSS fault dictionary by processing the
application and MPI library binaries with ``objdump``/``nm`` to obtain
{symbolic name, address} pairs, then removing every address whose symbol
also appears in the MPI library's list.  Here the :class:`Linker` plays the
role of the static linker that produced those binaries: it assigns
addresses to named objects in the text, data and BSS sections (for both the
*user* and *mpi* "libraries", which share one image as in the paper's
Figure 1) and emits the :class:`SymbolTable` the fault dictionary consumes.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Literal

from repro.clock import Clock
from repro.memory.layout import (
    DEFAULT_HEAP_SIZE,
    DEFAULT_STACK_SIZE,
    STACK_TOP,
    TEXT_BASE,
    align_up,
)
from repro.memory.segments import Perm, Segment
from repro.memory.address_space import AddressSpace

Section = Literal["text", "data", "bss"]
Library = Literal["user", "mpi"]


@dataclass(frozen=True)
class Symbol:
    """One linked object, as ``nm`` would report it."""

    name: str
    addr: int
    size: int
    section: Section
    library: Library

    @property
    def end(self) -> int:
        return self.addr + self.size

    def contains(self, addr: int) -> bool:
        return self.addr <= addr < self.end


class SymbolTable:
    """Address-sorted symbol list with O(log n) address resolution."""

    def __init__(self, symbols: Iterable[Symbol] = ()) -> None:
        self._symbols: list[Symbol] = sorted(symbols, key=lambda s: s.addr)
        self._addrs = [s.addr for s in self._symbols]
        self._by_name = {s.name: s for s in self._symbols}

    def add(self, symbol: Symbol) -> None:
        i = bisect.bisect_left(self._addrs, symbol.addr)
        self._symbols.insert(i, symbol)
        self._addrs.insert(i, symbol.addr)
        if symbol.name in self._by_name:
            raise ValueError(f"duplicate symbol {symbol.name!r}")
        self._by_name[symbol.name] = symbol

    def __len__(self) -> int:
        return len(self._symbols)

    def __iter__(self):
        return iter(self._symbols)

    def lookup(self, name: str) -> Symbol:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"undefined symbol {name!r}") from None

    def resolve(self, addr: int) -> Symbol | None:
        """The symbol whose extent covers ``addr``, if any."""
        i = bisect.bisect_right(self._addrs, addr) - 1
        if i >= 0 and self._symbols[i].contains(addr):
            return self._symbols[i]
        return None

    def symbols(
        self, section: Section | None = None, library: Library | None = None
    ) -> list[Symbol]:
        out = self._symbols
        if section is not None:
            out = [s for s in out if s.section == section]
        if library is not None:
            out = [s for s in out if s.library == library]
        return list(out)

    def section_size(self, section: Section, library: Library | None = None) -> int:
        """Total bytes of symbols in a section - what ``objdump`` section
        headers report (Table 1's Text/Data/BSS sizes)."""
        return sum(s.size for s in self.symbols(section, library))


@dataclass
class ObjectDef:
    """An object handed to the linker before address assignment."""

    name: str
    section: Section
    size: int
    library: Library = "user"
    init: bytes | None = None  # required for text, optional for data

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"object {self.name!r} must have positive size")
        if self.init is not None and len(self.init) > self.size:
            raise ValueError(f"object {self.name!r}: init larger than size")
        if self.section == "bss" and self.init:
            raise ValueError(f"BSS object {self.name!r} cannot be initialized")


@dataclass
class LinkedImage:
    """Result of :meth:`Linker.link`."""

    address_space: AddressSpace
    symtab: SymbolTable
    text: Segment
    data: Segment
    bss: Segment
    heap: Segment
    stack: Segment
    entry_points: dict[str, int] = field(default_factory=dict)


class Linker:
    """Assigns addresses in the Figure-1 layout and builds the segments.

    Objects are laid out in submission order within each section: text at
    ``TEXT_BASE``, data following text (page aligned), BSS following data,
    heap above BSS, stack at the top of user space.
    """

    def __init__(self) -> None:
        self._objects: list[ObjectDef] = []

    def add(self, obj: ObjectDef) -> ObjectDef:
        if any(o.name == obj.name for o in self._objects):
            raise ValueError(f"duplicate object {obj.name!r}")
        self._objects.append(obj)
        return obj

    def objects(
        self, section: Section | None = None, library: Library | None = None
    ) -> list[ObjectDef]:
        """The objects registered so far, optionally filtered - the
        pre-link view the static analyses use when they only need names
        and sections, not addresses."""
        out = self._objects
        if section is not None:
            out = [o for o in out if o.section == section]
        if library is not None:
            out = [o for o in out if o.library == library]
        return list(out)

    def add_text(self, name: str, code: bytes, library: Library = "user") -> ObjectDef:
        return self.add(ObjectDef(name, "text", len(code), library, code))

    def add_data(
        self, name: str, size: int, init: bytes | None = None, library: Library = "user"
    ) -> ObjectDef:
        return self.add(ObjectDef(name, "data", size, library, init))

    def add_bss(self, name: str, size: int, library: Library = "user") -> ObjectDef:
        return self.add(ObjectDef(name, "bss", size, library))

    def link(
        self,
        *,
        heap_size: int = DEFAULT_HEAP_SIZE,
        stack_size: int = DEFAULT_STACK_SIZE,
        clock: Clock | None = None,
        track: bool = False,
    ) -> LinkedImage:
        space = AddressSpace(clock)

        def layout(section: Section) -> tuple[list[tuple[ObjectDef, int]], int]:
            placed, off = [], 0
            for obj in self._objects:
                if obj.section == section:
                    off = align_up(off, 8)
                    placed.append((obj, off))
                    off += obj.size
            return placed, max(off, 8)

        text_objs, text_size = layout("text")
        data_objs, data_size = layout("data")
        bss_objs, bss_size = layout("bss")

        text_base = TEXT_BASE
        data_base = align_up(text_base + text_size)
        bss_base = align_up(data_base + data_size)
        heap_base = align_up(bss_base + bss_size)
        stack_base = STACK_TOP - align_up(stack_size)

        text = space.map("text", text_base, align_up(text_size), Perm.RX, track)
        data = space.map("data", data_base, align_up(data_size), Perm.RW, track)
        bss = space.map("bss", bss_base, align_up(bss_size), Perm.RW, track)
        heap = space.map("heap", heap_base, align_up(heap_size), Perm.RW, track)
        stack = space.map("stack", stack_base, align_up(stack_size), Perm.RW, track)

        symtab = SymbolTable()
        entry_points: dict[str, int] = {}
        for objs, seg in ((text_objs, text), (data_objs, data), (bss_objs, bss)):
            for obj, off in objs:
                addr = seg.base + off
                symtab.add(Symbol(obj.name, addr, obj.size, obj.section, obj.library))
                if obj.init:
                    seg.write_bytes(addr, obj.init)
                if obj.section == "text":
                    entry_points[obj.name] = addr

        return LinkedImage(
            address_space=space,
            symtab=symtab,
            text=text,
            data=data,
            bss=bss,
            heap=heap,
            stack=stack,
            entry_points=entry_points,
        )
