"""Heap allocator with the paper's tagging ``malloc`` wrapper.

Section 3.2 of the paper describes a customized allocator built on GNU C
library malloc hooks: every chunk is allocated *eight bytes larger* than
requested, and the extra bytes hold a 32-bit identifier (user vs MPI) and
the chunk size.  A flag is set at entry to every MPI routine and cleared on
exit, so allocations performed while inside the MPI library are tagged MPI.
The heap fault injector then scans forward from a random address for a
chunk tagged *user* and flips a random bit inside it.

This module implements exactly that: a first-fit free-list allocator whose
chunk headers live in simulated memory (so they too can be corrupted), an
``inside_mpi`` context manager standing in for the entry/exit flag, and the
forward-scan used by the injector.
"""

from __future__ import annotations

import contextlib
import enum
from dataclasses import dataclass
from typing import Iterator

from repro.errors import SimulationError
from repro.memory.segments import Segment

#: Header size prepended to every chunk, as in the paper.
HEADER_SIZE = 8

#: Allocation alignment (suits float64 vector views).
ALIGN = 8


class HeapCorruption(SimulationError):
    """The allocator found an invalid chunk header (e.g. after a fault)."""


class ChunkTag(enum.IntEnum):
    """32-bit chunk identifiers stored in the header."""

    USER = 0x5553_4552  # 'USER'
    MPI = 0x4D50_4921  # 'MPI!'
    FREE = 0x4652_4545  # 'FREE'

    @classmethod
    def is_valid(cls, raw: int) -> bool:
        return raw in (cls.USER, cls.MPI, cls.FREE)


@dataclass(frozen=True)
class ChunkInfo:
    """Metadata of one heap chunk (payload coordinates)."""

    addr: int  # payload start address
    size: int  # payload size in bytes
    tag: ChunkTag


class HeapAllocator:
    """First-fit allocator over the heap segment.

    The allocator keeps an authoritative side table of live chunks (like
    glibc's internal arena state, which lives outside the chunks the paper
    injects into) while also *writing* each header into simulated memory.
    Reads used by :meth:`iter_chunks` go through simulated memory, so a
    bit flip that lands on a header is visible to the scan - and a
    corrupted tag raises :class:`HeapCorruption`, modelling glibc's
    ``malloc(): invalid chunk`` aborts.
    """

    def __init__(self, segment: Segment) -> None:
        self.segment = segment
        # free list of (offset, size) over the whole segment, offsets are
        # relative to segment.base and cover header+payload extents.
        self._free: list[tuple[int, int]] = [(0, segment.size)]
        self._live: dict[int, ChunkInfo] = {}  # payload addr -> info
        self._mpi_depth = 0
        self.high_water = 0  # peak bytes in use (header + payload)
        self.in_use = 0

    # ------------------------------------------------------------------
    # the MPI entry/exit flag
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def inside_mpi(self) -> Iterator[None]:
        """Mark allocations performed in the dynamic extent as MPI-owned."""
        self._mpi_depth += 1
        try:
            yield
        finally:
            self._mpi_depth -= 1

    @property
    def current_tag(self) -> ChunkTag:
        return ChunkTag.MPI if self._mpi_depth > 0 else ChunkTag.USER

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def malloc(self, size: int, tag: ChunkTag | None = None) -> int:
        """Allocate ``size`` payload bytes; returns the payload address."""
        if size <= 0:
            raise ValueError(f"malloc size must be positive: {size}")
        if tag is None:
            tag = self.current_tag
        need = _round_up(HEADER_SIZE + size)
        for i, (off, avail) in enumerate(self._free):
            if avail >= need:
                rest = avail - need
                if rest > 0:
                    self._free[i] = (off + need, rest)
                else:
                    del self._free[i]
                payload = self.segment.base + off + HEADER_SIZE
                info = ChunkInfo(payload, size, tag)
                self._live[payload] = info
                self._write_header(off, tag, size)
                self.in_use += need
                self.high_water = max(self.high_water, self.in_use)
                return payload
        raise MemoryError(
            f"heap exhausted: need {need} bytes, "
            f"largest free block {max((s for _, s in self._free), default=0)}"
        )

    def calloc(self, size: int, tag: ChunkTag | None = None) -> int:
        addr = self.malloc(size, tag)
        self.segment.write_bytes(addr, bytes(size))
        return addr

    def free(self, addr: int) -> None:
        info = self._live.pop(addr, None)
        if info is None:
            raise HeapCorruption(f"free() of non-live pointer 0x{addr:08x}")
        off = addr - self.segment.base - HEADER_SIZE
        extent = _round_up(HEADER_SIZE + info.size)
        self._write_header(off, ChunkTag.FREE, info.size)
        self.in_use -= extent
        self._free.append((off, extent))
        self._coalesce()

    def realloc(self, addr: int, new_size: int) -> int:
        info = self._live.get(addr)
        if info is None:
            raise HeapCorruption(f"realloc() of non-live pointer 0x{addr:08x}")
        new_addr = self.malloc(new_size, info.tag)
        n = min(info.size, new_size)
        self.segment.write_bytes(new_addr, self.segment.read_bytes(addr, n))
        self.free(addr)
        return new_addr

    def _coalesce(self) -> None:
        self._free.sort()
        merged: list[tuple[int, int]] = []
        for off, size in self._free:
            if merged and merged[-1][0] + merged[-1][1] == off:
                merged[-1] = (merged[-1][0], merged[-1][1] + size)
            else:
                merged.append((off, size))
        self._free = merged

    def _write_header(self, off: int, tag: ChunkTag, size: int) -> None:
        base = self.segment.base + off
        self.segment.write_u32(base, int(tag))
        self.segment.write_u32(base + 4, size)

    # ------------------------------------------------------------------
    # inspection (reads headers from simulated memory)
    # ------------------------------------------------------------------
    def chunk_at(self, addr: int) -> ChunkInfo | None:
        return self._live.get(addr)

    def iter_chunks(self) -> Iterator[ChunkInfo]:
        """Walk live chunks in address order, validating headers.

        Header contents are read back from simulated memory so that an
        injected flip in a header byte surfaces as HeapCorruption on the
        next walk - the analogue of glibc detecting arena corruption.
        """
        for payload in sorted(self._live):
            info = self._live[payload]
            hdr = payload - HEADER_SIZE
            raw_tag = self.segment.read_u32(hdr)
            raw_size = self.segment.read_u32(hdr + 4)
            if not ChunkTag.is_valid(raw_tag) or raw_size != info.size:
                raise HeapCorruption(
                    f"chunk header at 0x{hdr:08x} corrupted "
                    f"(tag=0x{raw_tag:08x}, size={raw_size})"
                )
            yield ChunkInfo(payload, raw_size, ChunkTag(raw_tag))

    def user_chunks(self) -> list[ChunkInfo]:
        return [c for c in self.iter_chunks() if c.tag is ChunkTag.USER]

    def find_user_chunk_from(self, addr: int) -> ChunkInfo | None:
        """The paper's injector scan: starting at a random address, look
        forward (wrapping) for the first chunk tagged *user*."""
        chunks = self.user_chunks()
        if not chunks:
            return None
        for c in chunks:
            if c.addr + c.size > addr:
                return c
        return chunks[0]  # wrap around

    def extent(self) -> int:
        """Bytes from the segment base to the end of the highest live
        chunk - the simulated program break.  The heap injector draws its
        scan-start addresses inside this extent, as the paper's injector
        operates within the process's actual heap, not the whole mapping.
        """
        end = 0
        for payload, info in self._live.items():
            end = max(end, payload + info.size - self.segment.base)
        return end

    def user_bytes(self) -> int:
        return sum(c.size for c in self._live.values() if c.tag is ChunkTag.USER)

    def mpi_bytes(self) -> int:
        return sum(c.size for c in self._live.values() if c.tag is ChunkTag.MPI)


def _round_up(n: int) -> int:
    return (n + ALIGN - 1) & ~(ALIGN - 1)
