"""The simulated call stack (downward-growing, EBP-linked frames).

Per the paper (section 3.2): "the stack is composed of stack frames.  Each
function call pushes a frame onto stack ... Each frame contains saved
registers, arguments, local variables, return address, and a pointer to the
next frame.  The stack frames in use by an application can be identified by
a walk-through from the top to bottom frames (using the EBP and ESP
registers) and by examination of the 'return address' field in each frame."

Frame layout (standard i386 cdecl, addresses ascending):

    [ebp - locals_size .. ebp)   locals (including MPI-call descriptors)
    [ebp]                        saved EBP of the caller (frame link)
    [ebp + 4]                    return address
    [ebp + 8 ...]                arguments (pushed right-to-left)

The fault injector walks this chain and injects only into frames whose
return address lies in the *user* text region - which is exactly why the
paper observed stack faults surfacing as MPI-detected argument errors: the
stack holds the arguments of pending MPI calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import SimSegfault, SimulationError
from repro.memory.segments import Segment


class StackOverflow(SimulationError):
    """ESP ran off the bottom of the stack segment."""


@dataclass
class StackFrame:
    """One live frame, in payload coordinates."""

    ebp: int
    return_addr: int
    locals_base: int  # lowest local address
    locals_size: int
    args_base: int  # address of first (leftmost) argument
    nargs: int

    def arg_addr(self, i: int) -> int:
        if not 0 <= i < self.nargs:
            raise IndexError(f"frame has {self.nargs} args, asked for {i}")
        return self.args_base + 4 * i

    def local_addr(self, offset: int) -> int:
        if not 0 <= offset < self.locals_size:
            raise IndexError(f"local offset {offset} outside frame")
        return self.locals_base + offset

    @property
    def low(self) -> int:
        return self.locals_base

    @property
    def high(self) -> int:
        """One past the last argument slot."""
        return self.args_base + 4 * self.nargs


class StackManager:
    """Owns ESP/EBP for the Python-orchestrated portion of execution.

    The VM mirrors these registers while a kernel runs and writes them
    back on return, so there is a single coherent stack per process.
    """

    def __init__(self, segment: Segment) -> None:
        self.segment = segment
        self.esp = segment.end  # empty stack: ESP at the top
        self.ebp = 0  # no frame yet (NULL terminates the walk)

    # ------------------------------------------------------------------
    # raw push/pop
    # ------------------------------------------------------------------
    def push_u32(self, value: int) -> int:
        self.esp -= 4
        if self.esp < self.segment.base:
            raise StackOverflow(f"stack overflow at ESP=0x{self.esp:08x}")
        self.segment.note_store(self.esp, 4)
        self.segment.write_u32(self.esp, value)
        return self.esp

    def pop_u32(self) -> int:
        if self.esp + 4 > self.segment.end:
            raise SimSegfault(f"stack underflow at ESP=0x{self.esp:08x}")
        self.segment.note_load(self.esp, 4)
        value = self.segment.read_u32(self.esp)
        self.esp += 4
        return value

    def alloca(self, size: int) -> int:
        """Reserve ``size`` bytes of locals; returns the lowest address."""
        size = (size + 3) & ~3
        self.esp -= size
        if self.esp < self.segment.base:
            raise StackOverflow(f"stack overflow at ESP=0x{self.esp:08x}")
        return self.esp

    # ------------------------------------------------------------------
    # frames
    # ------------------------------------------------------------------
    def push_frame(
        self,
        return_addr: int,
        args: Sequence[int] = (),
        locals_size: int = 0,
    ) -> StackFrame:
        """Build a cdecl frame: args right-to-left, return address, saved
        EBP; EBP then points at the saved-EBP slot and locals are reserved
        below it."""
        for value in reversed(args):
            self.push_u32(value)
        args_base = self.esp
        self.push_u32(return_addr)
        self.push_u32(self.ebp)
        self.ebp = self.esp
        locals_base = self.alloca(locals_size) if locals_size else self.esp
        return StackFrame(
            ebp=self.ebp,
            return_addr=return_addr,
            locals_base=locals_base,
            locals_size=locals_size,
            args_base=args_base,
            nargs=len(args),
        )

    def pop_frame(self, frame: StackFrame) -> int:
        """Tear a frame down; returns the (possibly corrupted) return
        address read back from simulated memory."""
        if self.ebp != frame.ebp:
            # A corrupted EBP chain is a real failure mode: the epilogue
            # restores ESP from EBP, so a flipped EBP slot derails it.
            raise SimSegfault(
                f"frame teardown with EBP=0x{self.ebp:08x}, "
                f"expected 0x{frame.ebp:08x}"
            )
        self.esp = self.ebp
        saved_ebp = self.pop_u32()
        ret = self.pop_u32()
        self.esp += 4 * frame.nargs  # caller pops args (cdecl)
        self.ebp = saved_ebp
        return ret

    def walk_frames(self, start_ebp: int | None = None) -> Iterator[tuple[int, int]]:
        """Yield ``(ebp, return_addr)`` from the innermost frame outward,
        reading the links from simulated memory (so corruption is felt).

        ``start_ebp`` overrides the starting frame pointer - the injector
        passes the *register-file* EBP when it halts the VM mid-kernel,
        just as the paper's injector reads EBP via ptrace.

        Stops at a NULL saved EBP or any link that leaves the segment,
        mirroring how a real unwinder gives up on a smashed stack.
        """
        ebp = self.ebp if start_ebp is None else start_ebp
        seen = 0
        while ebp and self.segment.contains(ebp, 8) and seen < 10_000:
            ret = self.segment.read_u32(ebp + 4)
            yield ebp, ret
            nxt = self.segment.read_u32(ebp)
            if nxt <= ebp:  # links must move toward the stack top
                break
            ebp = nxt
            seen += 1

    def live_extent(self) -> tuple[int, int]:
        """``(low, high)`` of the in-use stack region: [ESP, stack top)."""
        return self.esp, self.segment.end

    def used_bytes(self) -> int:
        return self.segment.end - self.esp
