"""Process image: the full memory state of one simulated MPI process."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clock import Clock
from repro.memory.address_space import AddressSpace
from repro.memory.heap import HeapAllocator
from repro.memory.segments import Segment
from repro.memory.stack import StackManager
from repro.memory.symbols import LinkedImage, Linker, SymbolTable


@dataclass
class ProcessImage:
    """Everything the fault injector can target for one MPI rank."""

    rank: int
    clock: Clock
    address_space: AddressSpace
    symtab: SymbolTable
    text: Segment
    data: Segment
    bss: Segment
    heap_segment: Segment
    stack_segment: Segment
    heap: HeapAllocator
    stack: StackManager
    entry_points: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_linker(cls, linker: Linker, rank: int = 0, **link_kwargs) -> "ProcessImage":
        clock = link_kwargs.pop("clock", None) or Clock()
        image: LinkedImage = linker.link(clock=clock, **link_kwargs)
        return cls(
            rank=rank,
            clock=clock,
            address_space=image.address_space,
            symtab=image.symtab,
            text=image.text,
            data=image.data,
            bss=image.bss,
            heap_segment=image.heap,
            stack_segment=image.stack,
            heap=HeapAllocator(image.heap),
            stack=StackManager(image.stack),
            entry_points=dict(image.entry_points),
        )

    # ------------------------------------------------------------------
    # profile queries (Table 1 inputs)
    # ------------------------------------------------------------------
    def addr_of(self, name: str) -> int:
        return self.symtab.lookup(name).addr

    def section_sizes(self) -> dict[str, int]:
        """Sizes as ``objdump``/``nm`` plus the malloc wrapper report them:
        text/data/bss from the symbol table, heap from live allocations,
        stack from the current ESP extent."""
        return {
            "text": self.symtab.section_size("text"),
            "data": self.symtab.section_size("data"),
            "bss": self.symtab.section_size("bss"),
            "heap": self.heap.in_use,
            "stack": self.stack.used_bytes(),
        }

    def user_text_range(self) -> list[tuple[int, int]]:
        """Address ranges of *user* text symbols (the stack walker uses
        these to decide which frames belong to the application)."""
        return [
            (s.addr, s.end) for s in self.symtab.symbols("text", "user")
        ]

    def in_user_text(self, addr: int) -> bool:
        sym = self.symtab.resolve(addr)
        return sym is not None and sym.section == "text" and sym.library == "user"
