"""Simulated Linux/x86 process memory substrate.

Implements the process memory model of the paper's Figure 1: text, data and
BSS segments laid out by a linker-style :class:`~repro.memory.symbols.Linker`,
a heap managed by a tagging ``malloc`` (the paper's GNU-hook wrapper that
marks each chunk *user* or *MPI*), and a frame-linked downward-growing stack.
Every segment records last-access times per granule so the Valgrind-style
working-set analysis of Tables 5-7 can be reproduced.
"""

from repro.memory.layout import (
    GRANULE,
    KERNEL_BASE,
    PAGE,
    SHARED_LIBS_BASE,
    STACK_TOP,
    TEXT_BASE,
)
from repro.memory.segments import Perm, Segment
from repro.memory.address_space import AddressSpace
from repro.memory.heap import ChunkTag, HeapAllocator, HeapCorruption
from repro.memory.stack import StackManager, StackFrame
from repro.memory.symbols import Symbol, SymbolTable, Linker, ObjectDef
from repro.memory.process import ProcessImage

__all__ = [
    "GRANULE",
    "KERNEL_BASE",
    "PAGE",
    "SHARED_LIBS_BASE",
    "STACK_TOP",
    "TEXT_BASE",
    "Perm",
    "Segment",
    "AddressSpace",
    "ChunkTag",
    "HeapAllocator",
    "HeapCorruption",
    "StackManager",
    "StackFrame",
    "Symbol",
    "SymbolTable",
    "Linker",
    "ObjectDef",
    "ProcessImage",
]
