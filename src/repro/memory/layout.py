"""Virtual-address constants of the classic 32-bit Linux process layout.

These mirror the paper's Figure 1: the executable image (text, data, BSS)
near ``0x0804_8000``, the heap growing upward above BSS, shared libraries
mapped at ``0x4000_0000``, the stack growing downward from just below
``0xC000_0000``, and kernel space above that.
"""

from __future__ import annotations

#: Page size used for segment alignment.
PAGE = 0x1000

#: Base virtual address of the executable's text section (Figure 1 shows the
#: image loaded at the traditional i386 ELF load address).
TEXT_BASE = 0x0804_8000

#: Base of the shared-library mapping region (where, on a real system, the
#: MPI shared library and libc would live).
SHARED_LIBS_BASE = 0x4000_0000

#: Highest user stack address + 1; the stack grows down from here.
STACK_TOP = 0xC000_0000

#: Start of kernel space (never mapped for user access).
KERNEL_BASE = 0xC000_0000

#: Granularity (bytes) of last-access tracking for working-set analysis.
#: 32 bytes approximates a cache-line-sized unit and keeps tracker arrays
#: small; the paper's Valgrind traces operate at instruction/load level but
#: report working-set *percentages*, which are insensitive to granule size.
GRANULE = 32

#: Segment sizes the :class:`repro.memory.symbols.Linker` maps when the
#: caller does not override them: a 1 MiB heap and a 64 KiB stack.  The
#: heap is the largest segment any image in the suite maps, which makes
#: it the authority for :func:`segment_escape_bit`.
DEFAULT_HEAP_SIZE = 1 << 20
DEFAULT_STACK_SIZE = 64 << 10

#: Half-open virtual-address window ``[lo, hi)`` holding the static
#: executable image of Figure 1 - text, data, BSS and the heap above
#: them - i.e. everything the linker places below the shared-library
#: mapping.  The fault dictionary and the interval domain both reason
#: about this window rather than re-deriving it from segment lists.
STATIC_IMAGE_WINDOW = (TEXT_BASE, SHARED_LIBS_BASE)


def segment_escape_bit(max_segment_size: int = DEFAULT_HEAP_SIZE) -> int:
    """Lowest bit position ``k`` such that adding or subtracting ``2**k``
    to any address inside a segment of at most ``max_segment_size`` bytes
    must land outside that segment.  With the default (the 1 MiB heap,
    the largest segment the suite links) this is 21: flipping immediate
    bit >= 21 of an in-segment offset is predicted to escape every
    mapped segment."""
    if max_segment_size <= 0:
        raise ValueError(f"segment size must be positive: {max_segment_size}")
    return max_segment_size.bit_length()


def align_up(value: int, alignment: int = PAGE) -> int:
    """Round ``value`` up to a multiple of ``alignment``."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a positive power of two: {alignment}")
    return (value + alignment - 1) & ~(alignment - 1)


def granules(nbytes: int) -> int:
    """Number of tracking granules covering ``nbytes`` bytes."""
    return (nbytes + GRANULE - 1) // GRANULE
