"""The per-process virtual address space.

Aggregates the segments of one simulated MPI process and provides the
checked load/store path used by the VM, plus the unchecked bit-flip path
used by the fault injector (a physical upset does not respect page
permissions).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.clock import Clock
from repro.errors import SimSegfault
from repro.memory.segments import Perm, Segment


class AddressSpace:
    """An ordered collection of non-overlapping :class:`Segment` objects."""

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock if clock is not None else Clock()
        self._segments: list[Segment] = []
        #: Most-recently-hit segment (spatial locality makes this a very
        #: effective one-entry cache on the VM's load/store path).
        self._last: Segment | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, segment: Segment) -> Segment:
        for existing in self._segments:
            if segment.base < existing.end and existing.base < segment.end:
                raise ValueError(
                    f"segment {segment.name} overlaps {existing.name}"
                )
        segment.clock = self.clock
        self._segments.append(segment)
        self._segments.sort(key=lambda s: s.base)
        return segment

    def map(
        self, name: str, base: int, size: int, perm: Perm = Perm.RW, track: bool = False
    ) -> Segment:
        return self.add(Segment(name, base, size, perm, self.clock, track))

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def segments(self) -> Iterable[Segment]:
        return tuple(self._segments)

    def segment(self, name: str) -> Segment:
        for seg in self._segments:
            if seg.name == name:
                return seg
        raise KeyError(f"no segment named {name!r}")

    def find(self, addr: int, size: int = 1) -> Segment:
        """Segment containing ``[addr, addr+size)`` or raise SimSegfault."""
        last = self._last
        if last is not None and last.base <= addr and addr + size <= last.end:
            return last
        for seg in self._segments:
            if seg.contains(addr, size):
                self._last = seg
                return seg
        raise SimSegfault(f"unmapped address 0x{addr:08x}+{size}")

    def is_mapped(self, addr: int, size: int = 1) -> bool:
        return any(seg.contains(addr, size) for seg in self._segments)

    # ------------------------------------------------------------------
    # checked access path (used by the VM)
    # ------------------------------------------------------------------
    def _checked(self, addr: int, size: int, want: Perm) -> Segment:
        seg = self.find(addr, size)
        if not seg.perm_mask & want:
            raise SimSegfault(
                f"{want.name or want} access to 0x{addr:08x} denied in "
                f"segment {seg.name} ({seg.perm!r})"
            )
        return seg

    def load_u32(self, addr: int) -> int:
        seg = self._checked(addr, 4, Perm.R)
        seg.note_load(addr, 4)
        return seg.read_u32(addr)

    def store_u32(self, addr: int, value: int) -> None:
        seg = self._checked(addr, 4, Perm.W)
        seg.note_store(addr, 4)
        seg.write_u32(addr, value)

    def load_i32(self, addr: int) -> int:
        seg = self._checked(addr, 4, Perm.R)
        seg.note_load(addr, 4)
        return seg.read_i32(addr)

    def store_i32(self, addr: int, value: int) -> None:
        seg = self._checked(addr, 4, Perm.W)
        seg.note_store(addr, 4)
        seg.write_i32(addr, value)

    def load_f64(self, addr: int) -> float:
        seg = self._checked(addr, 8, Perm.R)
        seg.note_load(addr, 8)
        return seg.read_f64(addr)

    def store_f64(self, addr: int, value: float) -> None:
        seg = self._checked(addr, 8, Perm.W)
        seg.note_store(addr, 8)
        seg.write_f64(addr, value)

    def load_bytes(self, addr: int, size: int) -> bytes:
        seg = self._checked(addr, size, Perm.R)
        seg.note_load(addr, size)
        return seg.read_bytes(addr, size)

    def store_bytes(self, addr: int, data: bytes | bytearray | memoryview) -> None:
        seg = self._checked(addr, len(data), Perm.W)
        seg.note_store(addr, len(data))
        seg.write_bytes(addr, data)

    def vector_f64(self, addr: int, count: int, *, write: bool = False) -> np.ndarray:
        """Float64 view for a VM vector instruction.

        Records the whole range as loaded (and stored, for destination
        operands) so vector kernels participate in working-set tracking.
        """
        if count < 0:
            raise SimSegfault(f"negative vector length {count} at 0x{addr:08x}")
        seg = self._checked(addr, count * 8, Perm.W if write else Perm.R)
        if write:
            seg.note_store(addr, count * 8)
        else:
            seg.note_load(addr, count * 8)
        return seg.view_f64(addr, count)

    def fetch_code(self, addr: int, size: int) -> bytes:
        """Instruction fetch: requires execute permission, records text
        working set."""
        seg = self._checked(addr, size, Perm.X)
        seg.note_exec(addr, size)
        return seg.read_bytes(addr, size)

    # ------------------------------------------------------------------
    # fault injection path (unchecked)
    # ------------------------------------------------------------------
    def flip_bit(self, addr: int, bit: int) -> int:
        """Flip one bit anywhere in mapped memory, ignoring permissions."""
        return self.find(addr).flip_bit(addr, bit)

    def iter_addresses(self) -> Iterator[tuple[int, int]]:
        """Yield ``(base, size)`` of every mapped segment, ascending."""
        for seg in self._segments:
            yield seg.base, seg.size

    def total_mapped(self) -> int:
        return sum(seg.size for seg in self._segments)
