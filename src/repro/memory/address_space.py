"""The per-process virtual address space.

Aggregates the segments of one simulated MPI process and provides the
checked load/store path used by the VM, plus the unchecked bit-flip path
used by the fault injector (a physical upset does not respect page
permissions).
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator

import numpy as np

from repro.clock import Clock
from repro.errors import SimSegfault
from repro.memory.segments import Perm, Segment

# Plain-int permission bits for the hot access path: `int & IntFlag`
# round-trips through enum.__rand__ and allocates a new flag instance
# per access, which profiles as one of the interpreter's biggest costs.
_R, _W, _X = int(Perm.R), int(Perm.W), int(Perm.X)
_PERM_NAME = {_R: "R", _W: "W", _X: "X"}

# Word codecs for the inlined scalar accessors (same formats as
# :mod:`repro.memory.segments`).
_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")


class AddressSpace:
    """An ordered collection of non-overlapping :class:`Segment` objects."""

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock if clock is not None else Clock()
        self._segments: list[Segment] = []
        #: Two-entry MRU segment cache on the VM's load/store path.
        #: One entry alone misses ~half the time in real kernels because
        #: accesses alternate between the stack (CALL/RET/PUSH spills)
        #: and the data segment; keeping both hot segments resident makes
        #: the full :meth:`find` scan rare.
        self._last: Segment | None = None
        self._last2: Segment | None = None
        #: (addr, count, write) -> (segment, float64 view).  Segment
        #: buffers are never rebound (checkpoint restore writes in
        #: place), so a constructed view aliases the live bytes forever;
        #: caching it removes the per-instruction find/check/view cost
        #: of vector kernels re-touching the same operands every
        #: iteration.
        self._vec_cache: dict[tuple[int, int, bool], tuple[Segment, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, segment: Segment) -> Segment:
        for existing in self._segments:
            if segment.base < existing.end and existing.base < segment.end:
                raise ValueError(
                    f"segment {segment.name} overlaps {existing.name}"
                )
        segment.clock = self.clock
        self._segments.append(segment)
        self._segments.sort(key=lambda s: s.base)
        self._vec_cache.clear()
        return segment

    def map(
        self, name: str, base: int, size: int, perm: Perm = Perm.RW, track: bool = False
    ) -> Segment:
        return self.add(Segment(name, base, size, perm, self.clock, track))

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def segments(self) -> Iterable[Segment]:
        return tuple(self._segments)

    def segment(self, name: str) -> Segment:
        for seg in self._segments:
            if seg.name == name:
                return seg
        raise KeyError(f"no segment named {name!r}")

    def find(self, addr: int, size: int = 1) -> Segment:
        """Segment containing ``[addr, addr+size)`` or raise SimSegfault."""
        last = self._last
        if last is not None and last.base <= addr and addr + size <= last.end:
            return last
        last2 = self._last2
        if last2 is not None and last2.base <= addr and addr + size <= last2.end:
            self._last2 = last
            self._last = last2
            return last2
        for seg in self._segments:
            if seg.contains(addr, size):
                self._last2 = last
                self._last = seg
                return seg
        raise SimSegfault(f"unmapped address 0x{addr:08x}+{size}")

    def is_mapped(self, addr: int, size: int = 1) -> bool:
        return any(seg.contains(addr, size) for seg in self._segments)

    # ------------------------------------------------------------------
    # checked access path (used by the VM)
    # ------------------------------------------------------------------
    def _checked(self, addr: int, size: int, want: int) -> Segment:
        seg = self.find(addr, size)
        if not seg.perm_mask & want:
            self._deny(addr, seg, want)
        return seg

    def _deny(self, addr: int, seg: Segment, want: int) -> None:
        raise SimSegfault(
            f"{_PERM_NAME.get(want, want)} access to 0x{addr:08x} denied in "
            f"segment {seg.name} ({seg.perm!r})"
        )

    # The word-sized accessors below are the VM's hottest memory path
    # (every scalar LOAD/STORE/PUSH/POP/FLD/FST lands here).  They
    # inline the one-entry segment cache, the permission test, the
    # tracking gate and the struct unpack: the layered
    # ``_checked``/``note_load``/``read_u32`` chain costs several
    # function calls per access, which profiles as a top-three cost in
    # whole-campaign runs.  Semantics are identical - cache misses,
    # permission failures and tracked segments fall back to the same
    # helpers.

    def load_u32(self, addr: int) -> int:
        seg = self._last
        if seg is None or not (
            seg.base <= addr and addr + 4 <= seg.base + seg.size
        ):
            seg = self.find(addr, 4)
        if not seg.perm_mask & _R:
            self._deny(addr, seg, _R)
        if seg.tracking:
            seg.note_load(addr, 4)
        return _U32.unpack_from(seg.buf.data, addr - seg.base)[0]

    def store_u32(self, addr: int, value: int) -> None:
        seg = self._last
        if seg is None or not (
            seg.base <= addr and addr + 4 <= seg.base + seg.size
        ):
            seg = self.find(addr, 4)
        if not seg.perm_mask & _W:
            self._deny(addr, seg, _W)
        if seg.tracking:
            seg.note_store(addr, 4)
        _U32.pack_into(seg.buf.data, addr - seg.base, value & 0xFFFF_FFFF)
        seg.version += 1

    def load_i32(self, addr: int) -> int:
        seg = self._checked(addr, 4, _R)
        seg.note_load(addr, 4)
        return seg.read_i32(addr)

    def store_i32(self, addr: int, value: int) -> None:
        seg = self._checked(addr, 4, _W)
        seg.note_store(addr, 4)
        seg.write_i32(addr, value)

    def load_f64(self, addr: int) -> float:
        seg = self._last
        if seg is None or not (
            seg.base <= addr and addr + 8 <= seg.base + seg.size
        ):
            seg = self.find(addr, 8)
        if not seg.perm_mask & _R:
            self._deny(addr, seg, _R)
        if seg.tracking:
            seg.note_load(addr, 8)
        return _F64.unpack_from(seg.buf.data, addr - seg.base)[0]

    def store_f64(self, addr: int, value: float) -> None:
        seg = self._last
        if seg is None or not (
            seg.base <= addr and addr + 8 <= seg.base + seg.size
        ):
            seg = self.find(addr, 8)
        if not seg.perm_mask & _W:
            self._deny(addr, seg, _W)
        if seg.tracking:
            seg.note_store(addr, 8)
        _F64.pack_into(seg.buf.data, addr - seg.base, float(value))
        seg.version += 1

    def load_bytes(self, addr: int, size: int) -> bytes:
        seg = self._checked(addr, size, _R)
        seg.note_load(addr, size)
        return seg.read_bytes(addr, size)

    def store_bytes(self, addr: int, data: bytes | bytearray | memoryview) -> None:
        seg = self._checked(addr, len(data), _W)
        seg.note_store(addr, len(data))
        seg.write_bytes(addr, data)

    def vector_f64(self, addr: int, count: int, write: bool = False) -> np.ndarray:
        """Float64 view for a VM vector instruction.

        Records the whole range as loaded (and stored, for destination
        operands) so vector kernels participate in working-set tracking.
        Successful views are cached per (addr, count, write): the view
        aliases the segment's backing store, which is never rebound, so
        the same object stays valid across fault injection and
        checkpoint restore.
        """
        key = (addr, count, write)
        hit = self._vec_cache.get(key)
        if hit is None:
            if count < 0:
                raise SimSegfault(
                    f"negative vector length {count} at 0x{addr:08x}"
                )
            seg = self._checked(addr, count * 8, _W if write else _R)
            view = seg.view_f64(addr, count)
            if len(self._vec_cache) >= 4096:
                self._vec_cache.clear()
            self._vec_cache[key] = hit = (seg, view)
        seg, view = hit
        if seg.tracking:
            if write:
                seg.note_store(addr, count * 8)
            else:
                seg.note_load(addr, count * 8)
        return view

    def fetch_code(self, addr: int, size: int) -> bytes:
        """Instruction fetch: requires execute permission, records text
        working set."""
        seg = self._checked(addr, size, _X)
        seg.note_exec(addr, size)
        return seg.read_bytes(addr, size)

    # ------------------------------------------------------------------
    # fault injection path (unchecked)
    # ------------------------------------------------------------------
    def flip_bit(self, addr: int, bit: int) -> int:
        """Flip one bit anywhere in mapped memory, ignoring permissions."""
        return self.find(addr).flip_bit(addr, bit)

    def iter_addresses(self) -> Iterator[tuple[int, int]]:
        """Yield ``(base, size)`` of every mapped segment, ascending."""
        for seg in self._segments:
            yield seg.base, seg.size

    def total_mapped(self) -> int:
        return sum(seg.size for seg in self._segments)
