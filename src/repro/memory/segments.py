"""Byte-addressable memory segments with access tracking.

Each segment owns a NumPy ``uint8`` buffer plus (optionally) per-granule
last-access timestamps, measured in executed basic blocks.  The timestamps
drive the working-set analysis of the paper's Tables 5-7: the working set
at time *t* is the set of granules whose last access is at or after *t*.
"""

from __future__ import annotations

import enum
import struct

import numpy as np

from repro.clock import Clock
from repro.errors import SimBusError, SimSegfault
from repro.memory.layout import GRANULE, granules

_U32 = struct.Struct("<I")
_I32 = struct.Struct("<i")
_F64 = struct.Struct("<d")


class Perm(enum.IntFlag):
    """Segment permissions (subset of mmap PROT_* semantics)."""

    R = 1
    W = 2
    X = 4
    RW = R | W
    RX = R | X
    RWX = R | W | X


class Segment:
    """A contiguous mapped region of the simulated address space.

    Parameters
    ----------
    name:
        Section name (``"text"``, ``"data"``, ``"bss"``, ``"heap"``,
        ``"stack"``).
    base:
        Lowest virtual address of the segment.
    size:
        Size in bytes.
    perm:
        Access permissions; writes to a read-only segment (e.g. text)
        through the normal access path raise :class:`SimSegfault`.  The
        fault injector bypasses permissions, exactly as a physical bit
        flip would.
    clock:
        Shared basic-block counter used to timestamp accesses.
    track:
        Enable per-granule access tracking (costs one int64 array per
        access kind).
    """

    def __init__(
        self,
        name: str,
        base: int,
        size: int,
        perm: Perm = Perm.RW,
        clock: Clock | None = None,
        track: bool = False,
    ) -> None:
        if size <= 0:
            raise ValueError(f"segment {name!r} must have positive size, got {size}")
        if base < 0 or base + size > 0x1_0000_0000:
            raise ValueError(f"segment {name!r} does not fit in a 32-bit address space")
        self.name = name
        self.base = base
        self.size = size
        self.perm = perm
        #: Integer permission mask for the hot access path (IntFlag
        #: bitwise ops are an order of magnitude slower).
        self.perm_mask = int(perm)
        self.clock = clock if clock is not None else Clock()
        self.buf = np.zeros(size, dtype=np.uint8)
        #: Bumped on every mutation; the VM's decode cache uses it to
        #: notice text-segment corruption.
        self.version = 0
        self.tracking = bool(track)
        ngran = granules(size)
        # -1 means "never accessed"; timestamps are block counts (>= 0).
        if track:
            self.last_load = np.full(ngran, -1, dtype=np.int64)
            self.last_store = np.full(ngran, -1, dtype=np.int64)
            self.last_exec = np.full(ngran, -1, dtype=np.int64)
        else:
            self.last_load = None
            self.last_store = None
            self.last_exec = None

    # ------------------------------------------------------------------
    # address arithmetic
    # ------------------------------------------------------------------
    @property
    def end(self) -> int:
        """One past the highest mapped address."""
        return self.base + self.size

    def contains(self, addr: int, size: int = 1) -> bool:
        # Inline `end`: this predicate sits on the VM's hottest path and
        # a property access costs more than the comparison itself.
        return self.base <= addr and addr + size <= self.base + self.size

    def _offset(self, addr: int, size: int) -> int:
        if not self.contains(addr, size):
            raise SimSegfault(
                f"address 0x{addr:08x}+{size} outside segment {self.name} "
                f"[0x{self.base:08x}, 0x{self.end:08x})"
            )
        return addr - self.base

    # ------------------------------------------------------------------
    # tracking
    # ------------------------------------------------------------------
    def _mark(self, arr: np.ndarray | None, off: int, size: int) -> None:
        if arr is None:
            return
        g0 = off // GRANULE
        g1 = (off + size - 1) // GRANULE + 1
        arr[g0:g1] = self.clock.blocks

    def note_load(self, addr: int, size: int) -> None:
        """Record a data load (used for working-set analysis)."""
        if self.tracking:
            self._mark(self.last_load, addr - self.base, size)

    def note_store(self, addr: int, size: int) -> None:
        if self.tracking:
            self._mark(self.last_store, addr - self.base, size)

    def note_exec(self, addr: int, size: int) -> None:
        """Record instruction fetch (text working set)."""
        if self.tracking:
            self._mark(self.last_exec, addr - self.base, size)

    # ------------------------------------------------------------------
    # raw access (no permission checks; timestamps recorded by callers)
    # ------------------------------------------------------------------
    def read_bytes(self, addr: int, size: int) -> bytes:
        off = self._offset(addr, size)
        return self.buf[off : off + size].tobytes()

    def write_bytes(self, addr: int, data: bytes | bytearray | memoryview) -> None:
        off = self._offset(addr, len(data))
        self.buf[off : off + len(data)] = np.frombuffer(bytes(data), dtype=np.uint8)
        self.version += 1

    def read_u8(self, addr: int) -> int:
        return int(self.buf[self._offset(addr, 1)])

    def write_u8(self, addr: int, value: int) -> None:
        self.buf[self._offset(addr, 1)] = value & 0xFF
        self.version += 1

    def read_u32(self, addr: int) -> int:
        off = self._offset(addr, 4)
        return _U32.unpack_from(self.buf.data, off)[0]

    def write_u32(self, addr: int, value: int) -> None:
        off = self._offset(addr, 4)
        _U32.pack_into(self.buf.data, off, value & 0xFFFF_FFFF)
        self.version += 1

    def read_i32(self, addr: int) -> int:
        off = self._offset(addr, 4)
        return _I32.unpack_from(self.buf.data, off)[0]

    def write_i32(self, addr: int, value: int) -> None:
        off = self._offset(addr, 4)
        _I32.pack_into(self.buf.data, off, int(value))
        self.version += 1

    def read_f64(self, addr: int) -> float:
        off = self._offset(addr, 8)
        return _F64.unpack_from(self.buf.data, off)[0]

    def write_f64(self, addr: int, value: float) -> None:
        off = self._offset(addr, 8)
        _F64.pack_into(self.buf.data, off, float(value))
        self.version += 1

    def view_f64(self, addr: int, count: int) -> np.ndarray:
        """A writable float64 view of ``count`` elements at ``addr``.

        The view aliases the segment's backing store, so VM vector
        instructions operate on the very bytes the fault injector flips.
        Raises :class:`SimBusError` for misaligned addresses (float64
        element access must be 8-byte aligned relative to the segment
        base, as on hardware that traps unaligned SSE loads).
        """
        off = self._offset(addr, count * 8)
        if off % 8:
            raise SimBusError(f"unaligned f64 view at 0x{addr:08x}")
        return self.buf[off : off + count * 8].view(np.float64)

    def view_u8(self, addr: int, count: int) -> np.ndarray:
        off = self._offset(addr, count)
        return self.buf[off : off + count]

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def flip_bit(self, addr: int, bit: int) -> int:
        """Flip bit ``bit`` (0..7) of the byte at ``addr``; returns the new
        byte value.  Permissions are deliberately ignored: a cosmic-ray
        upset does not consult the MMU."""
        if not 0 <= bit < 8:
            raise ValueError(f"bit index must be in [0, 8): {bit}")
        off = self._offset(addr, 1)
        self.buf[off] ^= np.uint8(1 << bit)
        self.version += 1
        return int(self.buf[off])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Segment({self.name!r}, base=0x{self.base:08x}, "
            f"size={self.size}, perm={self.perm!r})"
        )
