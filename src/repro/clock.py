"""The simulated time base.

The paper measures elapsed time in executed *basic blocks* (its Valgrind
traces plot working-set size against block count, and injection times are
scheduled on the same axis).  A :class:`Clock` is a mutable counter of
executed VM instructions/blocks shared by the CPU, the memory tracer and
the fault injector so that all three agree on "when".
"""

from __future__ import annotations


class Clock:
    """Monotonic basic-block counter for one MPI process."""

    __slots__ = ("blocks",)

    def __init__(self) -> None:
        self.blocks: int = 0

    def tick(self, n: int = 1) -> int:
        """Advance the block counter by ``n`` executed blocks."""
        self.blocks += n
        return self.blocks

    def reset(self) -> None:
        self.blocks = 0

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def capture(self) -> int:
        """Checkpointable state: just the block count."""
        return self.blocks

    def restore(self, blocks: int) -> None:
        """Rewind/advance to a captured block count."""
        self.blocks = blocks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(blocks={self.blocks})"
