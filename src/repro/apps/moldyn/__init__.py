"""NAMD analogue: molecular dynamics with internal checks (section 4.2.2)."""

from repro.apps.moldyn.app import MoldynApp

__all__ = ["MoldynApp"]
