"""The molecular-dynamics application (NAMD analogue, section 4.2.2).

Characteristics mirrored from the paper:

* heap-dominant memory profile (atom arrays plus a large "molecular
  structure" staging buffer read only at startup);
* per-step boundary exchanges: **checksummed coordinate messages** (the
  NAMD message consistency checks, ~3 % runtime overhead, detect ~46 %
  of message faults) and *unchecked* force messages;
* NaN consistency checks on the per-step energies and a sanity bound on
  velocities (catch 3-7 % of memory faults, 47 % of FP-register faults);
* message arrival order is seed-dependent (ANY_SOURCE receives, shuffled
  send order) - the NAMD nondeterminism of section 4.2.2;
* the reference output is the rank-0 console energy log at fixed
  precision ("the only reproducible output is the console output");
* the Charm++ runtime is linked as *user* code ("Charm++ is considered
  a part of the user application, and it is subjected to fault
  injection").
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.apps.base import (
    MPIApplication,
    StackLocals,
    padding_code,
    register_error_handler,
    unrolled_init_source,
)
from repro.apps.moldyn import kernels
from repro.detectors.assertions import bound_check
from repro.detectors.checksums import seal, verify
from repro.detectors.nan_checks import nan_check_value
from repro.memory.symbols import Linker
from repro.mpi.datatypes import ANY_SOURCE, MPI_BYTE, MPI_DOUBLE, MPI_SUM
from repro.mpi.simulator import RankContext

_TAG_COORD = 201
_TAG_FORCE = 202
_F64 = 8


class MoldynApp(MPIApplication):
    """Molecular-dynamics test application."""

    name = "moldyn"

    DEFAULTS = {
        "atoms_per_rank": 256,
        "boundary": 64,  # ghost-patch width B (the "patch" exchange)
        "steps": 16,
        "k": 1.0,  # bond spring constant
        "dt": 0.05,
        "vmax": 50.0,  # sanity bound on velocities
        "checksums": True,  # NAMD's message consistency checks
        "energy_precision": 4,  # console %.Pf formatting
        "cold_heap_factor": 8,
    }

    mpi_text_scale = 0.8
    mpi_data_scale = 0.8
    heap_size = 1 << 20
    stack_size = 64 << 10

    def message_classes(self) -> dict[int, str]:
        # Coordinate patches carry the NAMD Fletcher-32 seal; force
        # contributions travel unprotected.
        coord = "checksummed" if self.params["checksums"] else "data"
        return {_TAG_COORD: coord, _TAG_FORCE: "data"}

    def propagation_model(self):
        from repro.staticanalysis.propagation.model import (
            Corridor,
            DetectorSite,
            PropagationModel,
        )

        detectors = [
            DetectorSite("nan_check", "energy-nan", frozenset({"heap"})),
            DetectorSite(
                "assertion", "energy-bound", frozenset({"heap"})
            ),
        ]
        if self.params["checksums"]:
            detectors.insert(
                0,
                DetectorSite(
                    "checksum", "coord-seal",
                    frozenset({f"tag:{_TAG_COORD}"}),
                ),
            )
        return PropagationModel(
            app=self.name,
            output_sources=frozenset({"heap"}),
            app_read_symbols=frozenset({
                "md_k", "md_dt", "md_halfk", "md_minv", "md_thermo",
            }),
            corridors=(
                Corridor("p2p", _TAG_COORD, frozenset({"heap"})),
                Corridor("p2p", _TAG_FORCE, frozenset({"heap"})),
                # The global energy reduction: sums computed from the
                # heap-resident atom arrays.
                Corridor("collective", None, frozenset({"heap"})),
            ),
            detectors=tuple(detectors),
        )

    def build_process(self, rank, nprocs, config):
        if self.params["atoms_per_rank"] < 2 * self.params["boundary"]:
            raise ValueError(
                f"atoms_per_rank={self.params['atoms_per_rank']} must be >= "
                f"2*boundary={2 * self.params['boundary']}"
            )
        return super().build_process(rank, nprocs, config)

    # ------------------------------------------------------------------
    def kernel_sources(self) -> dict[str, str]:
        return {
            "md_force": kernels.force_source(),
            "md_integrate": kernels.integrate_source(),
            "md_thermostat": kernels.thermostat_source(),
            "md_blend": kernels.blend_source(),
            "md_energies": kernels.energies_source(),
            "md_parse": kernels.parse_source(),
            "md_startup": unrolled_init_source(1600),
            "charm_init": unrolled_init_source(800),
        }

    def add_static_objects(self, linker: Linker) -> None:
        for const in ("md_k", "md_dt", "md_halfk"):
            linker.add_data(const, 8)
        linker.add_data("md_param_tables", 10 << 10)
        # Hot static state read every step: the inverse-mass table
        # (data) and the thermostat rescaling profile (BSS).
        linker.add_data("md_minv", self.params["atoms_per_rank"] * 8)
        linker.add_bss("md_thermo", self.params["atoms_per_rank"] * 8)
        linker.add_bss("md_cell_lists", 12 << 10)
        linker.add_bss("charm_queues", 8 << 10)
        # Cold user/Charm++ code paths (NAMD's text dwarfs Wavetoy's).
        linker.add_text("md_pme_cold", padding_code(10 << 10))
        linker.add_text("charm_sched_cold", padding_code(12 << 10))
        linker.add_text("md_io_cold", padding_code(6 << 10))

    # ------------------------------------------------------------------
    def main(self, ctx: RankContext) -> Generator:
        p = self.params
        rank, n = ctx.rank, ctx.nprocs
        image, vm, comm = ctx.image, ctx.vm, ctx.comm
        heap, space = image.heap, image.address_space
        B = p["boundary"]
        local = p["atoms_per_rank"]
        if local < 2 * B:
            raise ValueError(f"atoms_per_rank={local} must be >= 2*boundary={2 * B}")
        total = local + 2 * B  # [B ghosts][local][B ghosts]
        vm_charge = vm if p["checksums"] else None

        register_error_handler(ctx)

        image.data.write_f64(image.addr_of("md_k"), p["k"])
        image.data.write_f64(image.addr_of("md_dt"), p["dt"])
        image.data.write_f64(image.addr_of("md_halfk"), 0.5 * p["k"])
        # Structure-derived per-atom tables (read by every time step).
        atom_ids = np.arange(local, dtype=np.float64)
        image.data.view_f64(image.addr_of("md_minv"), local)[:] = (
            1.0 / (1.0 + 0.002 * np.cos(0.21 * atom_ids))
        )
        image.bss.view_f64(image.addr_of("md_thermo"), local)[:] = (
            1.0 - 0.0005 * np.sin(0.17 * atom_ids)
        )

        # Heap: the "apoa1 structure file" staging (cold), atom arrays,
        # message staging and energy slots.
        cold_n = p["cold_heap_factor"] * total
        cold = heap.malloc(cold_n * _F64)
        x = heap.malloc(total * _F64)
        v = heap.malloc(total * _F64)
        f = heap.malloc(total * _F64)
        scratch = heap.malloc(total * _F64)
        e_local = heap.malloc(2 * _F64)
        e_glob = heap.malloc(2 * _F64)
        sealed_cap = B * _F64 + 16
        stage_out = [heap.malloc(sealed_cap), heap.malloc(sealed_cap)]
        stage_in = heap.malloc(sealed_cap)

        # Initial conditions: equilibrium spacing with a thermal kick.
        xs = image.heap_segment.view_f64(x, total)
        vs = image.heap_segment.view_f64(v, total)
        base = rank * local - B
        xs[:] = np.arange(base, base + total, dtype=np.float64)
        vs[:] = 0.02 * np.sin(0.13 * np.arange(base, base + total))
        image.heap_segment.view_f64(f, total)[:] = 0.0
        image.heap_segment.view_f64(cold, cold_n)[:] = ctx.rng.random(cold_n)

        locals_ = StackLocals(
            image,
            "md_force",
            ("x", "v", "f", "up", "down", "bcount", "ecount", "estage"),
        )
        locals_.set("x", x)
        locals_.set("v", v)
        locals_.set("f", f)
        locals_.set("up", rank - 1 if rank > 0 else 0)
        locals_.set("down", rank + 1 if rank < n - 1 else 0)
        locals_.set("bcount", B)
        locals_.set("ecount", 2)
        locals_.set("estage", e_local)

        vm.call("charm_init")
        vm.call("md_startup")
        vm.call("md_parse", [cold, cold_n])
        vm.call("md_force", [x + (B - 1) * _F64, f + (B - 1) * _F64, local])

        neighbours = []
        if rank > 0:
            neighbours.append(("up", 0))
        if rank < n - 1:
            neighbours.append(("down", 1))

        energy_log: list[str] = []
        hseg = image.heap_segment
        for step in range(p["steps"]):
            # ---- checksummed coordinate exchange (patches of B atoms)
            xp = locals_.get("x")
            bcount = locals_.get_signed("bcount")
            order = list(neighbours)
            if len(order) > 1 and ctx.rng.random() < 0.5:
                order.reverse()  # NAMD's arrival-order nondeterminism
            reqs = []
            for side, slot in order:
                dest = locals_.get_signed(side)
                src_off = B if side == "up" else local  # first/last patch
                payload = hseg.read_bytes(xp + src_off * _F64, bcount * _F64)
                blob = seal(payload) if p["checksums"] else payload
                hseg.write_bytes(stage_out[slot], blob)
                reqs.append(
                    comm.isend(stage_out[slot], len(blob), MPI_BYTE, dest, _TAG_COORD)
                )
            for _ in order:
                st = yield from comm.recv(
                    stage_in, sealed_cap, MPI_BYTE, ANY_SOURCE, _TAG_COORD
                )
                blob = hseg.read_bytes(stage_in, st.count_bytes)
                payload = verify(blob, vm=vm_charge) if p["checksums"] else blob
                ghost_off = 0 if st.source == rank - 1 else B + local
                hseg.write_bytes(xp + ghost_off * _F64, payload)
            yield from comm.waitall(reqs)

            # ---- forces over everything with valid neighbours
            vm.call(
                "md_force",
                [xp + (B - 1) * _F64, locals_.get("f") + (B - 1) * _F64, local + 2],
            )

            # ---- unchecked force exchange: edge contributions
            fp = locals_.get("f")
            freqs = []
            for side, slot in order:
                dest = locals_.get_signed(side)
                src_off = B if side == "up" else local
                freqs.append(
                    comm.isend(
                        fp + src_off * _F64, bcount, MPI_DOUBLE, dest, _TAG_FORCE
                    )
                )
            for _ in order:
                st = yield from comm.recv(
                    scratch, bcount, MPI_DOUBLE, ANY_SOURCE, _TAG_FORCE
                )
                edge_off = B if st.source == rank - 1 else local
                vm.call("md_blend", [fp + edge_off * _F64, scratch, bcount])
            yield from comm.waitall(freqs)

            # ---- integrate the owned atoms (f/m via the mass table)
            vm.call(
                "md_integrate",
                [
                    xp + B * _F64,
                    locals_.get("v") + B * _F64,
                    fp + B * _F64,
                    local,
                    image.addr_of("md_minv"),
                    scratch,
                ],
            )
            vm.call(
                "md_thermostat",
                [
                    locals_.get("v") + B * _F64,
                    image.addr_of("md_thermo"),
                    local,
                ],
            )

            # ---- energies, consistency checks, global reduction
            vm.call(
                "md_energies",
                [xp + B * _F64, locals_.get("v") + B * _F64, local, scratch,
                 locals_.get("estage")],
            )
            ke = hseg.read_f64(e_local)
            pe = hseg.read_f64(e_local + 8)
            if not ctx.symbolic:  # kernel outputs are unset in a dry run
                nan_check_value(ke, "kinetic energy")
                nan_check_value(pe, "potential energy")
                bound_check(
                    np.asarray(hseg.view_f64(v + B * _F64, local)),
                    "velocities",
                    minimum=-p["vmax"],
                    maximum=p["vmax"],
                    vm=vm_charge,
                )
            yield from comm.allreduce(
                locals_.get("estage"), e_glob, locals_.get_signed("ecount"),
                MPI_DOUBLE, MPI_SUM,
            )
            if rank == 0:
                gke = hseg.read_f64(e_glob)
                gpe = hseg.read_f64(e_glob + 8)
                if not ctx.symbolic:
                    nan_check_value(gke + gpe, "total energy")
                natoms = n * local
                temp = 2.0 * gke / max(natoms, 1)
                prec = p["energy_precision"]
                energy_log.append(
                    f"ENERGY: {step:4d} {gke:.{prec}f} {gpe:.{prec}f} "
                    f"{gke + gpe:.{prec}f} {temp:.2f}"
                )

        yield from comm.barrier()
        if rank == 0:
            for line in energy_log:
                ctx.print(line)
            ctx.write_output("moldyn.log", "\n".join(energy_log) + "\n")
