"""Assembled kernels for the molecular-dynamics application.

A 1-D chain ("polymer") under harmonic nearest-neighbour forces,
integrated with a symplectic Euler scheme.  The atom arrays carry ghost
patches of ``B`` boundary atoms at each end, filled by the checksummed
coordinate exchange.

The kernels iterate over the chain in fixed-size chunks (NAMD processes
patches), so the chunk cursor, remaining-count and array pointers stay
live in integer registers for the whole kernel - which is precisely why
integer-register faults manifest so often (paper section 6.1.1).
"""

from __future__ import annotations

#: Atoms processed per loop iteration.
CHUNK = 32


def force_source() -> str:
    """``md_force(x, f, n_inner)``: harmonic chain forces
    ``f[i] = k (x[i+1] - 2 x[i] + x[i-1])`` for the inner atoms.
    ``x``/``f`` point at the element *preceding* the first inner atom.
    """
    return f"""
        push ebp
        mov ebp, esp
        load esi, [ebp+8]       ; x cursor (left neighbour)
        load edi, [ebp+12]      ; f cursor (left alignment)
        addi edi, 8             ; f centre
        load edx, [ebp+16]      ; atoms remaining
    chunk_loop:
        cmpi edx, 0
        jle done
        mov ecx, edx
        cmpi ecx, {CHUNK}
        jle last
        movi ecx, {CHUNK}
    last:
        lea ebx, [esi+16]       ; x right
        vbin.add edi, esi, ebx, ecx
        fldimm -2
        lea ebx, [esi+8]        ; x centre
        vaxpy edi, edi, ebx, ecx
        fpop
        movi ebx, $md_k
        fld [ebx]
        vbins.mul edi, edi, ecx
        fpop
        mov eax, ecx            ; advance cursors by ecx atoms
        shl eax, 3
        add esi, eax
        add edi, eax
        sub edx, ecx
        jmp chunk_loop
    done:
        mov esp, ebp
        pop ebp
        ret
    """


def integrate_source() -> str:
    """``md_integrate(x, v, f, n, minv, scratch)``: a = f / m per atom
    (the inverse-mass profile is a hot *data-section* table), then
    v += dt a ; x += dt v, chunked.

    The timestep constant stays on the FPU stack across the whole loop
    (a live FP register, NAMD-style)."""
    return f"""
        push ebp
        mov ebp, esp
        load esi, [ebp+8]       ; x
        load edi, [ebp+12]      ; v
        load ebx, [ebp+16]      ; f
        load edx, [ebp+20]      ; n
        movi eax, $md_dt
        fld [eax]               ; dt lives in ST0 for the whole kernel
    chunk_loop:
        cmpi edx, 0
        jle done
        mov ecx, edx
        cmpi ecx, {CHUNK}
        jle last
        movi ecx, {CHUNK}
    last:
        push edx
        load eax, [ebp+28]            ; scratch cursor slot reuse
        load edx, [ebp+24]            ; minv cursor
        vbin.mul eax, ebx, edx, ecx   ; a = f * (1/m)
        vaxpy edi, edi, eax, ecx      ; v += dt * a
        vaxpy esi, esi, edi, ecx      ; x += dt * v
        pop edx
        mov eax, ecx
        shl eax, 3
        add esi, eax
        add edi, eax
        add ebx, eax
        push eax
        load eax, [ebp+24]
        push ebx
        mov ebx, ecx
        shl ebx, 3
        add eax, ebx
        store [ebp+24], eax           ; advance the minv cursor
        pop ebx
        pop eax
        sub edx, ecx
        jmp chunk_loop
    done:
        fpop
        mov esp, ebp
        pop ebp
        ret
    """


def thermostat_source() -> str:
    """``md_thermostat(v, profile, n)``: v *= profile - a weak velocity
    rescaling against a hot *BSS* profile array (values ~1), applied
    every step."""
    return """
        push ebp
        mov ebp, esp
        load esi, [ebp+8]
        load edi, [ebp+12]
        load ecx, [ebp+16]
        vbin.mul esi, esi, edi, ecx
        mov esp, ebp
        pop ebp
        ret
    """


def blend_source() -> str:
    """``md_blend(dst, src, n)``: dst = (dst + src) / 2 - merges the
    neighbour's boundary force contributions into the edge atoms (this
    is the *unprotected* data path: force messages carry no checksum,
    matching NAMD, whose checksums cover coordinates only)."""
    return """
        push ebp
        mov ebp, esp
        load esi, [ebp+8]
        load edi, [ebp+12]
        load ecx, [ebp+16]
        vbin.add esi, esi, edi, ecx
        fldimm 2
        vbins.div esi, esi, ecx
        fpop
        mov esp, ebp
        pop ebp
        ret
    """


def energies_source() -> str:
    """``md_energies(x, v, n, scratch, out)``: out[0] = KE = sum(v^2)/2,
    out[1] = PE = k/2 * sum((x[i+1]-x[i])^2) over n-1 bonds."""
    return """
        push ebp
        mov ebp, esp
        load esi, [ebp+8]       ; x
        load edi, [ebp+12]      ; v
        load ecx, [ebp+16]      ; n
        load ebx, [ebp+20]      ; scratch (n-1 doubles)
        load edx, [ebp+24]      ; out (2 doubles)
        vred.sumsq edi, ecx     ; sum v^2
        fldimm 2
        fdivp                   ; KE
        fstp [edx]
        addi ecx, -1
        lea eax, [esi+8]
        vbin.sub ebx, eax, esi, ecx   ; bond extensions
        vred.sumsq ebx, ecx
        movi eax, $md_halfk
        fld [eax]
        fmulp                   ; PE
        fstp [edx+8]
        mov esp, ebp
        pop ebp
        ret
    """


def parse_source() -> str:
    """``md_parse(buf, n)``: one pass over the staged structure file
    (reads the cold heap buffer exactly once, at startup - the source of
    the init-phase heap working set the paper's Table 6 shows)."""
    return """
        push ebp
        mov ebp, esp
        load esi, [ebp+8]
        load ecx, [ebp+12]
        vred.sum esi, ecx
        fpop
        vred.min esi, ecx
        fpop
        mov esp, ebp
        pop ebp
        ret
    """
