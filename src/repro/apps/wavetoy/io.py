"""Wavetoy output formatting (paper sections 4.2.1 and 6.2).

"At the end of an execution, the process of rank 0 writes the application
results to output files in plain text format. ... it hides small changes
in low order decimal digits.  A binary output format would detect more
cases of incorrect output."

Both formats are provided so the E5 ablation can quantify exactly that.
"""

from __future__ import annotations

import numpy as np


def format_field(
    values: np.ndarray,
    ny: int,
    nx: int,
    *,
    precision: int = 6,
    stride: int = 1,
) -> str:
    """Render the gathered field as Cactus-style plain text.

    ``precision`` is the number of significant digits (%.Pg); ``stride``
    subsamples columns/rows as output-frequency parameters do in Cactus.
    """
    if values.size != ny * nx:
        raise ValueError(f"expected {ny * nx} values, got {values.size}")
    if precision < 1:
        raise ValueError(f"precision must be >= 1: {precision}")
    if stride < 1:
        raise ValueError(f"stride must be >= 1: {stride}")
    grid = np.asarray(values, dtype=np.float64).reshape(ny, nx)
    lines = []
    for i in range(0, ny, stride):
        row = grid[i, ::stride]
        lines.append(" ".join(f"{v:.{precision}g}" for v in row))
    return "\n".join(lines) + "\n"


def parse_field(text: str) -> np.ndarray:
    """Parse formatted text back to a (flattened) float array."""
    rows = [
        [float(tok) for tok in line.split()]
        for line in text.strip().splitlines()
        if line.strip()
    ]
    if not rows:
        return np.empty(0)
    width = len(rows[0])
    if any(len(r) != width for r in rows):
        raise ValueError("ragged field text")
    return np.array(rows, dtype=np.float64).reshape(-1)
