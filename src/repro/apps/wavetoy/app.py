"""The Wavetoy application (Cactus Wavetoy analogue, section 4.2.1).

A 2-D wave-equation solver with 1-D row decomposition and nearest-
neighbour halo exchange.  Characteristics mirrored from the paper:

* the heap dominates the memory profile (work arrays plus a large cold
  staging buffer read only during initialization);
* received traffic is almost entirely user data (~94 %): two eager halo
  messages per step per neighbour;
* field values are near zero, and rank 0 writes results as *plain text*
  at limited precision - so small payload perturbations are masked and
  the message-fault manifestation rate is far below NAMD's/CAM's;
* there are **no** internal consistency checks: no Wavetoy run can end
  as Application Detected (Table 2 has no such column).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.apps.base import (
    MPIApplication,
    StackLocals,
    padding_code,
    register_error_handler,
    unrolled_init_source,
)
from repro.apps.wavetoy import kernels
from repro.apps.wavetoy.io import format_field
from repro.memory.symbols import Linker
from repro.mpi.datatypes import MPI_DOUBLE
from repro.mpi.simulator import RankContext

_TAG_UP = 101
_TAG_DOWN = 102
_F64 = 8


class WavetoyApp(MPIApplication):
    """Hyperbolic PDE solver test application."""

    name = "wavetoy"

    DEFAULTS = {
        "nx": 96,  # global columns (row length)
        "ny": 32,  # global rows, split across ranks
        "steps": 24,
        "r2c": 0.2,  # (c dt / dx)^2 leapfrog coefficient
        "damping": 0.15,  # dissipation per step: perturbations decay
        "amplitude": 1e-3,  # pulse height: near-zero data, as in Cactus
        "background": 1e-10,  # smooth nonzero background (eps * r2)
        "output_format": "text",  # "text" (paper default) or "binary"
        "output_precision": 5,
        "output_stride": 4,  # Cactus-style subsampled (1-D line) output
        "cold_heap_factor": 6,  # cold staging size vs hot arrays
        # Ghost-zone width: the halo exchange ships this many rows per
        # side, but the second-order stencil reads only the innermost -
        # so most halo payload bytes are received and never used, one of
        # the reasons Cactus message faults rarely manifest.
        "halo_width": 2,
    }

    mpi_text_scale = 0.3
    mpi_data_scale = 0.3
    heap_size = 1 << 20
    stack_size = 64 << 10

    def codegen_key(self) -> tuple:
        return (self.params["nx"],)

    def message_classes(self) -> dict[int, str]:
        # Pure halo exchange: every tagged byte is unprotected user data
        # (Table 1's ~94 % user split).
        return {_TAG_UP: "data", _TAG_DOWN: "data"}

    def propagation_model(self):
        from repro.staticanalysis.propagation.model import (
            AcceptedRisk,
            Corridor,
            PropagationModel,
        )

        # Cactus WaveToy ships no detectors at all (the paper's point of
        # comparison): every gap below is real and owned on purpose.
        return PropagationModel(
            app=self.name,
            output_sources=frozenset({"heap"}),
            app_read_symbols=frozenset({
                "wt_r2c", "wt_neginvw2", "wt_amp", "wt_eps", "wt_damp",
                "wt_srcamp", "wt_sponge", "wt_source",
            }),
            corridors=(
                Corridor("p2p", _TAG_UP, frozenset({"heap"})),
                Corridor("p2p", _TAG_DOWN, frozenset({"heap"})),
                # The end-of-run gather of the field arrays to rank 0.
                Corridor("collective", None, frozenset({"heap"})),
            ),
            accepted=(
                AcceptedRisk(
                    "SA201", "heap",
                    "WaveToy writes the field arrays straight to output "
                    "with no consistency check; pure SDC exposure by "
                    "design",
                ),
                AcceptedRisk(
                    "SA203", f"tag:{_TAG_UP}",
                    "halo rows travel unsealed; most bytes are never "
                    "consumed by the peer (wide-halo masking)",
                ),
                AcceptedRisk(
                    "SA203", f"tag:{_TAG_DOWN}",
                    "halo rows travel unsealed; most bytes are never "
                    "consumed by the peer (wide-halo masking)",
                ),
                AcceptedRisk(
                    "SA203", "collective",
                    "the output gather carries the raw field arrays "
                    "with no seal or sanity check",
                ),
            ),
        )

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    def kernel_sources(self) -> dict[str, str]:
        return {
            "wt_step": kernels.step_source(self.params["nx"]),
            "wt_init": kernels.init_source(),
            "wt_norm": kernels.norm_source(),
            "wt_startup": unrolled_init_source(1200),
        }

    def add_static_objects(self, linker: Linker) -> None:
        # Solver coefficients (user data section; loaded by kernels).
        for const in (
            "wt_r2c", "wt_neginvw2", "wt_amp", "wt_eps", "wt_damp", "wt_srcamp",
        ):
            linker.add_data(const, 8)
        # Live static state read every step: the boundary sponge profile
        # (BSS) and the forcing-term row (data section).
        linker.add_bss("wt_sponge", self.params["nx"] * 8)
        linker.add_data("wt_source", self.params["nx"] * 8)
        # Mostly-unread static state: coefficient tables, I/O buffers.
        linker.add_data("wt_coeff_table", 12 << 10)
        linker.add_bss("wt_workspace", 8 << 10)
        linker.add_bss("wt_output_staging", 4 << 10)
        # Cold user code: boundary handlers, unused I/O formats.
        linker.add_text("wt_boundary_cold", padding_code(6 << 10))
        linker.add_text("wt_io_cold", padding_code(6 << 10))

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def build_process(self, rank, nprocs, config):
        self.local_rows(nprocs)  # validate the geometry before running
        return super().build_process(rank, nprocs, config)

    def local_rows(self, nprocs: int) -> int:
        rows = self.params["ny"] // nprocs
        if rows < 1:
            raise ValueError(
                f"ny={self.params['ny']} too small for {nprocs} ranks"
            )
        if nprocs > 1 and rows < self.params["halo_width"]:
            raise ValueError(
                f"{rows} rows per rank is thinner than the "
                f"halo_width={self.params['halo_width']} ghost zone"
            )
        return rows

    # ------------------------------------------------------------------
    # per-rank main
    # ------------------------------------------------------------------
    def main(self, ctx: RankContext) -> Generator:
        p = self.params
        nx, steps = p["nx"], p["steps"]
        hw = p["halo_width"]
        rank, n = ctx.rank, ctx.nprocs
        image, vm, comm = ctx.image, ctx.vm, ctx.comm
        space = image.address_space
        rows = self.local_rows(n)
        local_n = (rows + 2 * hw) * nx
        row_bytes = nx * _F64

        register_error_handler(ctx)

        # "Read the parameter file": write solver constants into the
        # data section before any kernel runs.
        width = max(p["ny"] / 5.0, 2.0)
        image.data.write_f64(image.addr_of("wt_r2c"), p["r2c"])
        image.data.write_f64(image.addr_of("wt_neginvw2"), -1.0 / width**2)
        image.data.write_f64(image.addr_of("wt_amp"), p["amplitude"])
        image.data.write_f64(image.addr_of("wt_eps"), p["background"])
        image.data.write_f64(image.addr_of("wt_damp"), 1.0 - p["damping"])
        image.data.write_f64(image.addr_of("wt_srcamp"), 0.05)
        xs = np.arange(nx, dtype=np.float64)
        image.bss.view_f64(image.addr_of("wt_sponge"), nx)[:] = (
            1.0 - 0.02 * np.exp(-(((xs - nx / 2) / (nx / 4)) ** 2))
        )
        image.data.view_f64(image.addr_of("wt_source"), nx)[:] = (
            1e-6 * np.sin(0.3 * xs)
        )

        # Heap: cold staging (init-only), input field, three time levels,
        # a scratch row, and rank 0's gather buffer.
        heap = image.heap
        cold_n = p["cold_heap_factor"] * local_n
        cold = heap.malloc(cold_n * _F64)
        r2buf = heap.malloc(local_n * _F64)
        u_prev = heap.malloc(local_n * _F64)
        u_curr = heap.malloc(local_n * _F64)
        u_next = heap.malloc(local_n * _F64)
        scratch = heap.malloc((nx - 2) * _F64)
        gather_buf = heap.malloc(n * rows * nx * _F64) if rank == 0 else 0

        # Input data: squared distance from the pulse centre, plus junk
        # in the cold staging buffer (the "input deck").
        cy, cx = p["ny"] / 2.0, nx / 2.0
        gy0 = rank * rows - hw  # global row of local row 0 (outer ghost)
        yy, xx = np.meshgrid(
            np.arange(gy0, gy0 + rows + 2 * hw, dtype=np.float64),
            np.arange(nx, dtype=np.float64),
            indexing="ij",
        )
        r2 = (yy - cy) ** 2 + (xx - cx) ** 2
        image.heap_segment.view_f64(r2buf, local_n)[:] = r2.reshape(-1)
        image.heap_segment.view_f64(cold, cold_n)[:] = ctx.rng.random(cold_n)

        # MPI-call descriptors live in stack-resident locals (read back
        # before every call - the paper's stack->MPI-argument pathway).
        locals_ = StackLocals(
            image,
            "wt_step",
            (
                "uprev", "ucurr", "unext", "scratch",
                "rows", "count", "up", "down",
            ),
        )
        locals_.set("uprev", u_prev)
        locals_.set("ucurr", u_curr)
        locals_.set("unext", u_next)
        locals_.set("scratch", scratch)
        locals_.set("rows", rows)
        locals_.set("count", hw * nx)  # halo message length (elements)
        locals_.set("up", rank - 1 if rank > 0 else 0)
        locals_.set("down", rank + 1 if rank < n - 1 else 0)

        # Initialization phase: startup code then the IC kernel.
        vm.call("wt_startup")
        vm.call("wt_init", [r2buf, u_curr, u_prev, local_n, cold, cold_n])

        koff = (hw - 1) * row_bytes  # kernel sees one ghost row per side
        for _ in range(steps):
            ucurr = locals_.get("ucurr")
            count = locals_.get_signed("count")
            if rank > 0:
                up = locals_.get_signed("up")
                yield from comm.sendrecv(
                    ucurr + hw * row_bytes, count, MPI_DOUBLE, up, _TAG_UP,
                    ucurr, count, MPI_DOUBLE, up, _TAG_DOWN,
                )
            if rank < n - 1:
                down = locals_.get_signed("down")
                yield from comm.sendrecv(
                    ucurr + rows * row_bytes, count, MPI_DOUBLE, down, _TAG_DOWN,
                    ucurr + (hw + rows) * row_bytes, count, MPI_DOUBLE, down, _TAG_UP,
                )
            vm.call(
                "wt_step",
                [
                    locals_.get("uprev") + koff,
                    locals_.get("ucurr") + koff,
                    locals_.get("unext") + koff,
                    locals_.get_signed("rows"),
                    locals_.get("scratch"),
                    1 if rank == 0 else 0,
                ],
            )
            # Rotate the time levels (pointer shuffle in the locals).
            prev, curr, nxt = (
                locals_.get("uprev"),
                locals_.get("ucurr"),
                locals_.get("unext"),
            )
            locals_.set("uprev", curr)
            locals_.set("ucurr", nxt)
            locals_.set("unext", prev)

        yield from comm.barrier()
        # Rank 0 gathers the interior rows and writes the output file.
        ucurr = locals_.get("ucurr")
        yield from comm.gather(
            ucurr + hw * row_bytes, rows * nx, MPI_DOUBLE, gather_buf, 0
        )
        if rank == 0:
            field = np.array(
                image.heap_segment.view_f64(gather_buf, n * rows * nx)
            )
            if p["output_format"] == "binary":
                ctx.write_output("wavetoy.out", field.tobytes())
            else:
                ctx.write_output(
                    "wavetoy.out",
                    format_field(
                        field,
                        n * rows,
                        nx,
                        precision=p["output_precision"],
                        stride=p["output_stride"],
                    ),
                )
