"""Assembled kernels for the Wavetoy solver.

The leapfrog update for the 2-D wave equation

    u_next = 2 u - u_prev + r2 * laplacian(u)

is expressed with vector instructions over rows; all row base addresses,
the row counter and the interior length live in integer registers, and
the scalar coefficients come through the x87 stack from data-section
constants - so register, text, data and stack faults all perturb the
computation mechanistically.

The grid extent ``nx`` is baked into the code as immediates (as a real
compiler would with a compile-time-constant leading dimension).
"""

from __future__ import annotations


def step_source(nx: int) -> str:
    """The per-step kernel.

    cdecl args: ``(u_prev, u_curr, u_next, rows, scratch,
    apply_boundary)``.
    Updates interior cells ``[1..rows] x [1..nx-2]``; ghost rows 0 and
    rows+1 are owned by the halo exchange.
    """
    if nx < 4:
        raise ValueError(f"nx must be at least 4: {nx}")
    row = nx * 8
    nin = nx - 2
    return f"""
        push ebp
        mov ebp, esp
        movi edx, $wt_r2c
        fld [edx]               ; r2 coefficient stays resident in the
                                ; FPU stack for the whole kernel (x87
                                ; codegen style - a live FP register)
        movi eax, 1             ; i = first interior row
    row_loop:
        load edx, [ebp+20]      ; rows
        cmp eax, edx
        jg rows_done
        ; esi = &u_curr[i][1]
        mov esi, eax
        movi edx, {row}
        imul esi, edx
        load edx, [ebp+12]
        add esi, edx
        addi esi, 8
        ; edi = scratch (laplacian accumulator)
        load edi, [ebp+24]
        movi ecx, {nin}
        lea edx, [esi-{row}]
        vmov edi, edx, ecx      ; lap = up
        lea edx, [esi+{row}]
        vbin.add edi, edi, edx, ecx   ; + down
        lea edx, [esi-8]
        vbin.add edi, edi, edx, ecx   ; + left
        lea edx, [esi+8]
        vbin.add edi, edi, edx, ecx   ; + right
        fldimm -4
        vaxpy edi, edi, esi, ecx      ; - 4 * center
        fpop
        ; ebx = &u_next[i][1]
        mov ebx, eax
        movi edx, {row}
        imul ebx, edx
        load edx, [ebp+16]
        add ebx, edx
        addi ebx, 8
        fldimm 2
        vbins.mul ebx, esi, ecx       ; u_next = 2 * u_curr
        fpop
        ; edx = &u_prev[i][1]
        mov edx, eax
        push ecx
        movi ecx, {row}
        imul edx, ecx
        pop ecx
        push esi
        load esi, [ebp+8]
        add edx, esi
        pop esi
        addi edx, 8
        vbin.sub ebx, ebx, edx, ecx   ; - u_prev
        vaxpy ebx, ebx, edi, ecx      ; + r2 * laplacian (r2 = ST0)
        movi edx, $wt_damp
        fld [edx]
        vbins.mul ebx, ebx, ecx       ; dissipative term: u_next *= (1-g)
        fpop
        addi eax, 1
        jmp row_loop
    rows_done:
        ; boundary sponge (hot BSS array) and forcing term (hot data
        ; array) - the live static state behind the paper's nonzero
        ; BSS/Data fault manifestation rates.  Only the rank holding the
        ; global boundary *applies* them (so the physics is independent
        ; of the decomposition); every other rank evaluates the same
        ; arrays as a boundary-flux diagnostic, which reads them each
        ; step without changing the fields.
        movi edx, $wt_sponge
        addi edx, 8
        movi ecx, {nin}
        load eax, [ebp+28]      ; apply_boundary flag
        cmpi eax, 0
        jz diag_only
        load ebx, [ebp+16]
        addi ebx, {row + 8}
        vbin.mul ebx, ebx, edx, ecx
        movi edx, $wt_source
        addi edx, 8
        movi eax, $wt_srcamp
        fld [eax]
        vaxpy ebx, ebx, edx, ecx
        fpop
        jmp sponge_done
    diag_only:
        movi ebx, $wt_source
        addi ebx, 8
        vred.dot edx, ebx, ecx  ; flux diagnostic over sponge x source
        fpop
    sponge_done:
        fpop                    ; release the resident r2 coefficient
        mov esp, ebp
        pop ebp
        ret
    """


def init_source() -> str:
    """Initial-condition kernel (executed once).

    cdecl args: ``(r2_buf, u_curr, u_prev, n, cold_buf, cold_n)``.
    Builds a compact pulse ``amp * max(0, 1 - r2/w^2)^2`` plus a smooth
    near-zero background ``eps * r2`` (so every cell is nonzero and
    low-order message perturbations hide below the text-output
    precision, the paper's Cactus masking effect), then reads through the
    cold staging buffer once - giving the heap its init-phase working
    set.
    """
    return """
        push ebp
        mov ebp, esp
        load esi, [ebp+8]       ; r2 input field
        load edi, [ebp+12]      ; u_curr
        load ebx, [ebp+16]      ; u_prev
        load ecx, [ebp+20]      ; n
        movi edx, $wt_neginvw2
        fld [edx]
        vbins.mul edi, esi, ecx       ; u = -r2 / w^2
        fpop
        fld1
        vbins.add edi, edi, ecx       ; u += 1
        fpop
        fldz
        vbins.max edi, edi, ecx       ; clamp at 0
        fpop
        vbin.mul edi, edi, edi, ecx   ; u = u^2
        movi edx, $wt_amp
        fld [edx]
        vbins.mul edi, edi, ecx       ; scale to amplitude
        fpop
        movi edx, $wt_eps
        fld [edx]
        vaxpy edi, edi, esi, ecx      ; + eps * r2 background
        fpop
        vmov ebx, edi, ecx            ; u_prev = u_curr (at rest)
        load esi, [ebp+24]            ; cold staging buffer
        load ecx, [ebp+28]
        vred.sum esi, ecx             ; one pass over the cold data
        fpop
        mov esp, ebp
        pop ebp
        ret
    """


def norm_source() -> str:
    """Diagnostic kernel: sum of squares of a buffer (``(buf, n)``),
    result left in ST0.  Used by examples and tests, and it gives the
    solver a second hot text region."""
    return """
        push ebp
        mov ebp, esp
        load esi, [ebp+8]
        load ecx, [ebp+12]
        vred.sumsq esi, ecx
        fst [ebp-8]             ; spill (keeps a stack slot live)
        mov esp, ebp
        pop ebp
        ret
    """
