"""Cactus Wavetoy analogue: hyperbolic PDE solver (paper section 4.2.1)."""

from repro.apps.wavetoy.app import WavetoyApp
from repro.apps.wavetoy.io import format_field, parse_field

__all__ = ["WavetoyApp", "format_field", "parse_field"]
