"""Assembled kernels for the atmosphere model.

The fields are *static* BSS arrays (CAM's profile is BSS-heavy: 32 MB of
BSS against an 8 MB heap), addressed via ``$symbol`` relocations; the
kernels read the per-step work descriptor (solar scale) and the physics
coefficients from the data section.

Both kernels loop over latitude rows (CAM's chunked physics columns), so
row cursors and counts stay live in integer registers throughout.
"""

from __future__ import annotations


def dynamics_source() -> str:
    """``cam_dynamics(T, nrows, nlon, scratch)``: upwind advection along
    each band, ``T[j] -= c (T[j] - T[j-1])`` for j = 1..nlon-1."""
    return """
        push ebp
        mov ebp, esp
        load esi, [ebp+8]       ; T row cursor
        load edx, [ebp+12]      ; rows remaining
        load edi, [ebp+20]      ; scratch
        movi eax, $cam_negc
        fld [eax]               ; -c stays in ST0 across the loop
    row_loop:
        cmpi edx, 0
        jle done
        load ecx, [ebp+16]      ; nlon
        addi ecx, -1
        lea ebx, [esi+8]        ; T[j]
        vbin.sub edi, ebx, esi, ecx   ; scratch = T[j] - T[j-1]
        vaxpy ebx, ebx, edi, ecx      ; T[j] += (-c) * scratch
        load ecx, [ebp+16]
        shl ecx, 3
        add esi, ecx            ; next row
        addi edx, -1
        jmp row_loop
    done:
        fpop
        mov esp, ebp
        pop ebp
        ret
    """


def physics_source() -> str:
    """``cam_physics(T, Q, S, nrows, nlon, scratch)``: column physics,
    row by row.

    T += dt (solar * S - alpha * T)     (radiative heating/cooling)
    Q += dt (evap - precip * Q)         (moisture source/sink)

    ``solar`` arrives in the master's per-step work descriptor and is
    stored to the data section before the call, so a corrupted control
    payload mechanically perturbs the physics.
    """
    return """
        push ebp
        mov ebp, esp
        load esi, [ebp+8]       ; T cursor
        load edi, [ebp+12]      ; Q cursor
        load ebx, [ebp+16]      ; S cursor (insolation, data section)
        load edx, [ebp+20]      ; rows remaining
    row_loop:
        cmpi edx, 0
        jle done
        load ecx, [ebp+24]      ; nlon
        ; scratch = solar * S
        push edx
        load edx, [ebp+28]      ; scratch
        movi eax, $cam_solar
        fld [eax]
        vbins.mul edx, ebx, ecx
        fpop
        ; scratch += -alpha * T
        movi eax, $cam_negalpha
        fld [eax]
        vaxpy edx, edx, esi, ecx
        fpop
        ; T += dt * scratch
        movi eax, $cam_dt
        fld [eax]
        vaxpy esi, esi, edx, ecx
        fpop
        ; scratch = evap, scratch += -precip * Q, Q += dt * scratch
        movi eax, $cam_evap
        fld [eax]
        vfill edx, ecx
        fpop
        movi eax, $cam_negprecip
        fld [eax]
        vaxpy edx, edx, edi, ecx
        fpop
        movi eax, $cam_dt
        fld [eax]
        vaxpy edi, edi, edx, ecx
        fpop
        pop edx
        ; advance all three cursors one row
        mov eax, ecx
        shl eax, 3
        add esi, eax
        add edi, eax
        add ebx, eax
        addi edx, -1
        jmp row_loop
    done:
        mov esp, ebp
        pop ebp
        ret
    """


def diag_source() -> str:
    """``cam_diag(T, Q, n, out)``: out[0] = sum(T), out[1] = min(Q) -
    the per-step diagnostics that feed the global reduction and the
    moisture minimum-threshold check."""
    return """
        push ebp
        mov ebp, esp
        load esi, [ebp+8]
        load edi, [ebp+12]
        load ecx, [ebp+16]
        load edx, [ebp+20]
        vred.sum esi, ecx
        fstp [edx]
        vred.min edi, ecx
        fstp [edx+8]
        mov esp, ebp
        pop ebp
        ret
    """
