"""CAM analogue: atmosphere model, control-message dominated (section 4.2.3)."""

from repro.apps.climate.app import ClimateApp

__all__ = ["ClimateApp"]
