"""The atmosphere-model application (CAM analogue, section 4.2.3).

Characteristics mirrored from the paper:

* large **static** state: the temperature/moisture bands and spectral
  workspaces are BSS objects (CAM: 32 MB BSS, 38 MB heap, 80 MB text -
  the biggest image of the suite);
* traffic dominated by control messages (63 % for CAM): every step each
  worker sends a header-only "ready" to rank 0 and receives a tiny work
  descriptor; periodic field gathers go through the rendezvous protocol
  (more header-only RTS/CTS traffic);
* a moisture minimum-threshold sanity check ("any moisture value below
  a minimum threshold can trigger a warning and abort") plus a NaN check
  on the temperature diagnostic - CAM's modest detection machinery;
* full-precision **binary** output written by rank 0 at the end, so any
  surviving perturbation of the fields is visible as Incorrect Output.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.apps.base import (
    MPIApplication,
    StackLocals,
    padding_code,
    register_error_handler,
    unrolled_init_source,
)
from repro.apps.climate import kernels
from repro.detectors.nan_checks import nan_check_value
from repro.errors import AppAbort
from repro.memory.symbols import Linker
from repro.mpi.datatypes import ANY_SOURCE, MPI_DOUBLE, MPI_SUM
from repro.mpi.simulator import RankContext

_TAG_READY = 301
_TAG_WORK = 302
_F64 = 8


class ClimateApp(MPIApplication):
    """Atmosphere-model test application."""

    name = "climate"

    DEFAULTS = {
        "nlon": 96,  # band length (longitude points)
        "nlat_local": 4,  # latitude rows per rank
        "steps": 20,
        "gather_every": 5,  # field gathers to rank 0 (rendezvous traffic)
        "c": 0.2,  # advection coefficient
        "alpha": 0.05,  # radiative relaxation
        "dt": 0.1,
        "evap": 0.02,
        "precip": 0.1,
        "qmin_check": 0.05,  # moisture minimum-threshold abort
        "solar": 1.0,
    }

    mpi_text_scale = 1.6
    mpi_data_scale = 1.2
    heap_size = 1 << 19
    stack_size = 64 << 10

    def codegen_key(self) -> tuple:
        return ()

    def message_classes(self) -> dict[int, str]:
        # Master/worker handshakes steer which physics a step runs: both
        # the ready pings and the work descriptors are control traffic.
        return {_TAG_READY: "control", _TAG_WORK: "control"}

    def propagation_model(self):
        from repro.staticanalysis.propagation.model import (
            AcceptedRisk,
            Corridor,
            DetectorSite,
            PropagationModel,
            sym,
        )

        return PropagationModel(
            app=self.name,
            output_sources=frozenset({sym("cam_T"), sym("cam_Q"), "heap"}),
            # The field bands and diagnostics live in BSS and are passed
            # to the kernels by address, so relocations alone do not make
            # them hot; declare the per-step reads explicitly.
            app_read_symbols=frozenset({
                "cam_negc", "cam_dt", "cam_negalpha", "cam_solar",
                "cam_evap", "cam_negprecip", "cam_S",
                "cam_T", "cam_Q", "cam_scratch", "cam_diag_out",
            }),
            corridors=(
                Corridor("p2p", _TAG_READY, frozenset({"heap"})),
                Corridor("p2p", _TAG_WORK, frozenset({"heap"})),
                Corridor(
                    "collective", None,
                    frozenset({sym("cam_T"), sym("cam_Q")}),
                ),
            ),
            detectors=(
                DetectorSite(
                    "nan_check", "temp-checksum-nan",
                    frozenset({sym("cam_T"), sym("cam_diag_out")}),
                ),
                DetectorSite(
                    "assertion", "moisture-bound",
                    frozenset({sym("cam_Q"), sym("cam_diag_out")}),
                ),
            ),
            accepted=(
                AcceptedRisk(
                    "SA201", "heap",
                    "heap staging reaches the history output without a "
                    "check; CAM's detectors watch the field bands, not "
                    "the I/O path",
                ),
            ),
        )

    # ------------------------------------------------------------------
    def kernel_sources(self) -> dict[str, str]:
        return {
            "cam_dynamics": kernels.dynamics_source(),
            "cam_physics": kernels.physics_source(),
            "cam_diag": kernels.diag_source(),
            "cam_startup": unrolled_init_source(2400),
        }

    def add_static_objects(self, linker: Linker) -> None:
        p = self.params
        band_n = p["nlon"] * p["nlat_local"]
        for const in (
            "cam_negc",
            "cam_dt",
            "cam_negalpha",
            "cam_solar",
            "cam_evap",
            "cam_negprecip",
        ):
            linker.add_data(const, 8)
        # The fields themselves are static arrays (BSS), as in CAM.
        linker.add_bss("cam_T", band_n * _F64)
        linker.add_bss("cam_Q", band_n * _F64)
        linker.add_bss("cam_scratch", band_n * _F64)
        linker.add_bss("cam_diag_out", 2 * _F64)
        # Insolation profile: data-section table read by every physics
        # step (the hot slice of the data section).
        linker.add_data("cam_S", band_n * _F64)
        # Big untouched static state: spectral workspaces, history
        # buffers - CAM's BSS dwarfs what a time step actually reads.
        linker.add_bss("cam_spectral_ws", 48 << 10)
        linker.add_bss("cam_history_buf", 24 << 10)
        linker.add_data("cam_ozone_table", 16 << 10)
        # Cold code: the physics packages a short run never calls.
        linker.add_text("cam_radiation_cold", padding_code(16 << 10))
        linker.add_text("cam_convection_cold", padding_code(12 << 10))
        linker.add_text("cam_io_cold", padding_code(12 << 10))

    # ------------------------------------------------------------------
    def main(self, ctx: RankContext) -> Generator:
        p = self.params
        rank, n = ctx.rank, ctx.nprocs
        image, vm, comm = ctx.image, ctx.vm, ctx.comm
        heap = image.heap
        band_n = p["nlon"] * p["nlat_local"]

        register_error_handler(ctx)

        # Physics constants into the data section.
        data = image.data
        data.write_f64(image.addr_of("cam_negc"), -p["c"])
        data.write_f64(image.addr_of("cam_dt"), p["dt"])
        data.write_f64(image.addr_of("cam_negalpha"), -p["alpha"])
        data.write_f64(image.addr_of("cam_solar"), p["solar"])
        data.write_f64(image.addr_of("cam_evap"), p["evap"])
        data.write_f64(image.addr_of("cam_negprecip"), -p["precip"])

        T = image.addr_of("cam_T")
        Q = image.addr_of("cam_Q")
        S = image.addr_of("cam_S")
        scratch = image.addr_of("cam_scratch")
        diag = image.addr_of("cam_diag_out")

        # Initial condition files: smooth latitude-dependent fields.
        lat0 = rank * p["nlat_local"]
        lat = lat0 + np.arange(p["nlat_local"], dtype=np.float64)
        lon = np.arange(p["nlon"], dtype=np.float64)
        tt, qq = np.meshgrid(lat, lon, indexing="ij")
        image.bss.view_f64(T, band_n)[:] = (
            280.0 + 20.0 * np.cos(0.08 * tt) + 0.5 * np.sin(0.2 * qq)
        ).reshape(-1)
        image.bss.view_f64(Q, band_n)[:] = (
            0.3 + 0.05 * np.cos(0.15 * (tt + qq))
        ).reshape(-1)
        data.view_f64(S, band_n)[:] = (
            1.0 + 0.3 * np.cos(0.08 * tt)
        ).reshape(-1)

        # Heap stays modest (CAM is BSS-heavy): descriptor slots plus
        # rank 0's gather buffers.
        # CAM-style chunk descriptor: 8 doubles, of which this miniature
        # uses only the first (solar) and second (step stamp); the rest
        # are reserved fields - flips there are carried but never read.
        desc = heap.malloc(8 * _F64)
        dsum_local = heap.malloc(2 * _F64)
        dsum_glob = heap.malloc(2 * _F64)
        gather_T = heap.malloc(n * band_n * _F64) if rank == 0 else 0
        gather_Q = heap.malloc(n * band_n * _F64) if rank == 0 else 0

        locals_ = StackLocals(
            image,
            "cam_physics",
            ("T", "Q", "S", "scratch", "bandn", "nrows", "nlon",
             "master", "desc", "diag"),
        )
        locals_.set("T", T)
        locals_.set("Q", Q)
        locals_.set("S", S)
        locals_.set("scratch", scratch)
        locals_.set("bandn", band_n)
        locals_.set("nrows", p["nlat_local"])
        locals_.set("nlon", p["nlon"])
        locals_.set("master", 0)
        locals_.set("desc", desc)
        locals_.set("diag", diag)

        vm.call("cam_startup")

        hseg = image.heap_segment
        for step in range(p["steps"]):
            # ---- load-balancing handshake (header-dominated traffic)
            if rank == 0:
                # Serve every worker in arrival order (nondeterministic
                # under contention, like CAM's dynamic chunk scheduler).
                hseg.write_f64(desc, p["solar"])
                hseg.write_f64(desc + 8, float(step))
                for _ in range(n - 1):
                    st = yield from comm.recv(
                        locals_.get("desc"), 0, MPI_DOUBLE, ANY_SOURCE, _TAG_READY
                    )
                    yield from comm.send(
                        locals_.get("desc"), 8, MPI_DOUBLE, st.source, _TAG_WORK
                    )
                solar = hseg.read_f64(desc)
            else:
                master = locals_.get_signed("master")
                yield from comm.send(
                    locals_.get("desc"), 0, MPI_DOUBLE, master, _TAG_READY
                )
                yield from comm.recv(
                    locals_.get("desc"), 8, MPI_DOUBLE, master, _TAG_WORK
                )
                solar = hseg.read_f64(desc)  # descriptor payload
            # The work descriptor parameterizes this step's physics.
            data.write_f64(image.addr_of("cam_solar"), solar)

            # ---- dynamics + physics on the local band, row by row
            bandn = locals_.get_signed("bandn")
            nrows = locals_.get_signed("nrows")
            nlon = locals_.get_signed("nlon")
            vm.call(
                "cam_dynamics",
                [locals_.get("T"), nrows, nlon, locals_.get("scratch")],
            )
            vm.call(
                "cam_physics",
                [
                    locals_.get("T"),
                    locals_.get("Q"),
                    locals_.get("S"),
                    nrows,
                    nlon,
                    locals_.get("scratch"),
                ],
            )

            # ---- diagnostics and consistency checks
            vm.call("cam_diag", [locals_.get("T"), locals_.get("Q"), bandn,
                                 locals_.get("diag")])
            tsum = image.bss.read_f64(diag)
            qmin = image.bss.read_f64(diag + 8)
            if not ctx.symbolic:  # diag output is unset in a dry run
                nan_check_value(tsum, "temperature checksum")
                if qmin < p["qmin_check"]:
                    raise AppAbort(
                        "moisture bound", f"QNEG: minimum moisture {qmin:.3g}"
                    )
            hseg.write_f64(dsum_local, tsum)
            hseg.write_f64(dsum_local + 8, qmin)
            yield from comm.allreduce(dsum_local, dsum_glob, 2, MPI_DOUBLE, MPI_SUM)

            # ---- periodic history gather (rendezvous data traffic)
            if (step + 1) % p["gather_every"] == 0:
                yield from comm.gather(
                    locals_.get("T"), bandn, MPI_DOUBLE, gather_T, 0
                )
                yield from comm.gather(
                    locals_.get("Q"), bandn, MPI_DOUBLE, gather_Q, 0
                )

        yield from comm.barrier()
        if rank == 0:
            final_T = bytes(hseg.view_u8(gather_T, n * band_n * _F64))
            final_Q = bytes(hseg.view_u8(gather_Q, n * band_n * _F64))
            ctx.write_output("climate_T.bin", final_T)
            ctx.write_output("climate_Q.bin", final_Q)
            ctx.print(f"history written: {len(final_T) + len(final_Q)} bytes")
