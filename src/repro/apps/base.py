"""Common machinery for the test applications.

Every application follows the compiled-code execution model the paper's
injector assumes:

* numeric kernels are assembled for the virtual CPU and linked, together
  with static data/BSS objects and the MPI library blobs, into a
  Figure-1 process image;
* working arrays are ``malloc``'d from the simulated heap (tagged *user*);
* the descriptors of upcoming MPI calls - buffer pointers, counts, ranks,
  tags - live in **stack-resident locals** (:class:`StackLocals`), read
  back from simulated memory immediately before each call.  This is the
  paper's mechanism for stack faults becoming "MPI Detected": "the stack
  holds the arguments to function calls";
* each application registers a user MPI error handler (section 5.1: "we
  registered such a handler, and whenever the handler was invoked, the
  handler labeled the outcome as 'MPI detected'").
"""

from __future__ import annotations

from typing import Generator, Sequence

from repro.cpu.assembler import Program
from repro.cpu.isa import Insn, Op, encode
from repro.cpu.vm import VM
from repro.errors import MPIAbort
from repro.memory.process import ProcessImage
from repro.memory.symbols import Linker
from repro.mpi.library import add_mpi_library
from repro.mpi.simulator import JobConfig, RankContext


def register_error_handler(ctx: RankContext) -> None:
    """Install the campaign's 'MPI detected' labeller on COMM_WORLD."""

    def handler(comm, error):
        # The invocation itself is counted by the errhandler slot; the
        # handler prints a console label and aborts, as in the paper.
        ctx.print(f"MPI error handler: {error}")
        raise MPIAbort(f"user error handler invoked: {error}")

    ctx.comm.set_errhandler(handler)


class StackLocals:
    """A persistent stack frame of 32-bit locals for MPI-call descriptors.

    Values are written at setup and **read back from simulated stack
    memory** each time they are used, exactly like a compiled program
    reloading spilled locals - so an injected stack flip corrupts the
    arguments of future MPI calls (or the buffer pointers they carry).
    """

    def __init__(
        self,
        image: ProcessImage,
        return_symbol: str,
        fields: Sequence[str],
        padding: int = 640,
    ):
        """``padding`` bytes of never-touched locals are reserved below
        the named fields - real frames are mostly dead space (spilled
        temporaries, over-sized buffers), which is why the paper's stack
        error rate is only ~6-13 % despite every frame being live."""
        self.image = image
        self.fields = tuple(fields)
        frame = image.stack.push_frame(
            return_addr=image.symtab.lookup(return_symbol).addr,
            args=(),
            locals_size=4 * len(self.fields) + max(0, padding),
        )
        self.frame = frame
        # Named fields sit just below EBP; the dead padding lies beneath.
        fields_base = frame.locals_base + max(0, padding)
        self._addr = {
            name: fields_base + 4 * i for i, name in enumerate(self.fields)
        }

    def addr(self, name: str) -> int:
        return self._addr[name]

    def set(self, name: str, value: int) -> None:
        self.image.stack_segment.write_u32(self._addr[name], int(value) & 0xFFFFFFFF)

    def get(self, name: str) -> int:
        return self.image.stack_segment.read_u32(self._addr[name])

    def get_signed(self, name: str) -> int:
        v = self.get(name)
        return v - 0x1_0000_0000 if v & 0x8000_0000 else v


def padding_code(nbytes: int) -> bytes:
    """Never-executed user code (cold paths, unused library routines):
    valid NOP instructions ending in RET, sized to ``nbytes``."""
    nwords = max(2, nbytes // 8)
    return encode(Insn(Op.NOP)) * (nwords - 1) + encode(Insn(Op.RET))


def unrolled_init_source(n_instructions: int) -> str:
    """A straight-line initialization routine of ``n_instructions``
    arithmetic instructions - executed exactly once, it touches a wide
    swath of text, producing the paper's init-phase text working set."""
    lines = ["    movi eax, 1", "    movi ecx, 3"]
    for i in range(max(0, n_instructions - 3)):
        lines.append("    add eax, ecx" if i % 2 == 0 else "    xor eax, ecx")
    lines.append("    ret")
    return "\n".join(lines)


class MPIApplication:
    """Base class for the suite; subclasses define kernels, layout and
    the per-rank ``main`` generator."""

    #: Application name as used in the paper's tables.
    name = "app"
    #: Default parameters, overridden per instance via ``**params``.
    DEFAULTS: dict = {}

    _program_cache: dict[tuple, Program] = {}

    def __init__(self, **params):
        unknown = set(params) - set(self.DEFAULTS)
        if unknown:
            raise ValueError(f"unknown parameters for {self.name}: {sorted(unknown)}")
        self.params = {**self.DEFAULTS, **params}

    # ------------------------------------------------------------------
    # subclass surface
    # ------------------------------------------------------------------
    def kernel_sources(self) -> dict[str, str]:
        """Assembly source per kernel function (parameter-independent:
        kernels read sizes from arguments or globals)."""
        raise NotImplementedError

    def add_static_objects(self, linker: Linker) -> None:
        """Contribute data/BSS objects and padding text."""
        raise NotImplementedError

    def main(self, ctx: RankContext) -> Generator:
        raise NotImplementedError

    def compare_outputs(self, reference: dict, observed: dict) -> bool:
        """Silent-data-corruption test; default is bitwise equality."""
        return reference == observed

    def propagation_model(self):
        """Declared fault-propagation model for the static analyzer
        (:mod:`repro.staticanalysis.propagation`): which tokens feed the
        output files, which ride message corridors, and which detectors
        tap what.  Suite applications must declare one; the SA2xx audit
        cross-checks it against the linked image and the communication
        skeleton, so it cannot silently drift.
        """
        raise NotImplementedError(
            f"{self.name} declares no propagation model"
        )

    def message_classes(self) -> dict[int, str]:
        """Static payload classification per application message tag, for
        the message-vulnerability map: ``"control"`` (work descriptors and
        other traffic that steers execution), ``"checksummed"`` (user data
        protected by an application-level consistency check), or
        ``"data"`` (unprotected user data, the default for unknown tags).
        """
        return {}

    #: (heap_size, stack_size) for the process image.
    heap_size = 1 << 20
    stack_size = 64 << 10
    #: MPI library link scales (NAMD links far more than Wavetoy).
    mpi_text_scale = 1.0
    mpi_data_scale = 1.0

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    def codegen_key(self) -> tuple:
        """Parameters baked into generated code as immediates (grid
        extents etc.); the assembled-program cache is keyed on these."""
        return ()

    def program(self) -> Program:
        key = (type(self), self.codegen_key())
        prog = MPIApplication._program_cache.get(key)
        if prog is None:
            prog = Program()
            for fname, source in self.kernel_sources().items():
                prog.add(fname, source)
            MPIApplication._program_cache[key] = prog
        return prog

    def build_process(
        self, rank: int, nprocs: int, config: JobConfig
    ) -> tuple[ProcessImage, VM]:
        linker = Linker()
        self.program().add_to_linker(linker)
        self.add_static_objects(linker)
        add_mpi_library(
            linker, text_scale=self.mpi_text_scale, data_scale=self.mpi_data_scale
        )
        image = ProcessImage.from_linker(
            linker,
            rank=rank,
            heap_size=self.heap_size,
            stack_size=self.stack_size,
            track=config.track_memory,
        )
        self.program().relocate(image)
        return image, VM(image)
