"""The test application suite (paper section 4.2).

Three miniature scientific MPI codes mirroring the paper's suite:

* :mod:`repro.apps.wavetoy` - Cactus Wavetoy: a hyperbolic-PDE solver
  with halo exchange, near-zero field data, plain-text output at limited
  precision, and **no** internal error checking.
* :mod:`repro.apps.moldyn` - NAMD: molecular dynamics with checksummed
  coordinate messages, NaN checks on the per-step energies, sanity
  assertions, and seed-dependent message ordering.
* :mod:`repro.apps.climate` - CAM: an atmosphere model with large static
  state, control-message-dominated master/worker traffic, a moisture
  minimum-threshold check, and full-precision binary output.
"""

from repro.apps.base import MPIApplication, StackLocals, register_error_handler
from repro.apps.wavetoy import WavetoyApp
from repro.apps.moldyn import MoldynApp
from repro.apps.climate import ClimateApp

#: The paper's application suite, keyed by the names used in Tables 2-4.
APPLICATION_SUITE = {
    "wavetoy": WavetoyApp,
    "moldyn": MoldynApp,
    "climate": ClimateApp,
}

__all__ = [
    "MPIApplication",
    "StackLocals",
    "register_error_handler",
    "WavetoyApp",
    "MoldynApp",
    "ClimateApp",
    "APPLICATION_SUITE",
]
