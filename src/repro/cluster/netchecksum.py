"""Network checksum models (paper section 2.2, Stone & Partridge).

"Stone and Partridge show that link-level checksums are insufficient to
detect errors in messages.  In theory, the chance that link-level
checksums do not catch errors should be as small as 1 out of 4 billion
packets" - yet measured escape rates were far higher because corruption
happens in hosts and routers *after* the CRC is verified.

This module provides the two checksums in play - the TCP/IP 16-bit ones'
complement sum and the 32-bit link-level CRC - plus an escape experiment
quantifying how often random corruptions slip past each, and a model of
host-side corruption (bits flipped after CRC verification, before the TCP
checksum) reproducing the qualitative Stone-Partridge conclusion.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np


def internet_checksum(data: bytes) -> int:
    """RFC 1071 16-bit ones' complement checksum (the TCP checksum)."""
    buf = np.frombuffer(data, dtype=np.uint8)
    if buf.size % 2:
        buf = np.concatenate([buf, np.zeros(1, dtype=np.uint8)])
    words = buf.view(">u2").astype(np.uint64)
    total = int(words.sum())
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def crc32(data: bytes) -> int:
    """The link-level 32-bit CRC (Ethernet FCS polynomial)."""
    return zlib.crc32(data) & 0xFFFF_FFFF


def flip_random_bits(data: bytes, nbits: int, rng: np.random.Generator) -> bytes:
    """Flip ``nbits`` distinct bit positions of a byte string."""
    if nbits < 0:
        raise ValueError(f"nbits must be non-negative: {nbits}")
    buf = bytearray(data)
    total_bits = len(buf) * 8
    if nbits > total_bits:
        raise ValueError(f"cannot flip {nbits} bits in {total_bits}-bit packet")
    for pos in rng.choice(total_bits, size=nbits, replace=False):
        buf[int(pos) // 8] ^= 1 << (int(pos) % 8)
    return bytes(buf)


@dataclass
class EscapeStats:
    """Results of a checksum escape experiment."""

    trials: int = 0
    caught_crc: int = 0
    caught_tcp: int = 0
    escaped_crc: int = 0
    escaped_tcp: int = 0
    escaped_both: int = 0

    def escape_rate(self, which: str = "both") -> float:
        if not self.trials:
            return 0.0
        return {
            "crc": self.escaped_crc,
            "tcp": self.escaped_tcp,
            "both": self.escaped_both,
        }[which] / self.trials


def escape_experiment(
    n_trials: int,
    packet_len: int,
    nbits: int,
    rng: np.random.Generator,
) -> EscapeStats:
    """Corrupt random packets and count checksum escapes.

    Random k-bit corruption virtually never escapes CRC-32 (~2^-32) and
    escapes the 16-bit TCP checksum at ~2^-16 - the "1 out of 4 billion"
    theory the measured reality contradicted.
    """
    stats = EscapeStats()
    for _ in range(n_trials):
        stats.trials += 1
        packet = rng.integers(0, 256, size=packet_len, dtype=np.uint8).tobytes()
        good_crc = crc32(packet)
        good_tcp = internet_checksum(packet)
        bad = flip_random_bits(packet, nbits, rng)
        crc_escape = crc32(bad) == good_crc
        tcp_escape = internet_checksum(bad) == good_tcp
        stats.caught_crc += not crc_escape
        stats.caught_tcp += not tcp_escape
        stats.escaped_crc += crc_escape
        stats.escaped_tcp += tcp_escape
        stats.escaped_both += crc_escape and tcp_escape
    return stats


def host_corruption_experiment(
    n_trials: int,
    packet_len: int,
    nbits: int,
    rng: np.random.Generator,
) -> EscapeStats:
    """The Stone-Partridge mechanism: corruption occurs in host memory or
    router buffers *between* the link CRC check and the end-to-end TCP
    check, so the CRC never sees it.  Only the weak 16-bit checksum
    stands between the error and the application - and some errors slip
    past it entirely."""
    stats = EscapeStats()
    for _ in range(n_trials):
        stats.trials += 1
        packet = rng.integers(0, 256, size=packet_len, dtype=np.uint8).tobytes()
        good_tcp = internet_checksum(packet)
        # The wire transfer is clean: the link CRC verifies and is
        # stripped.  Corruption strikes afterwards.
        bad = flip_random_bits(packet, nbits, rng)
        stats.caught_crc += 1  # CRC saw a clean packet: "no error"
        tcp_escape = internet_checksum(bad) == good_tcp
        stats.caught_tcp += not tcp_escape
        stats.escaped_tcp += tcp_escape
        # From the link layer's viewpoint every such error "escaped".
        stats.escaped_crc += 1
        stats.escaped_both += tcp_escape
    return stats
