"""Models of the paper's experimental clusters (section 4).

"The hardware experimental environment is a metacluster formed from two
Linux PC clusters.  The first cluster (Rhapsody) has 32 nodes connected by
both 10/100 and Gigabit Ethernet.  Each node has dual 930 MHz Pentium III
processors and 1 GB of DRAM.  The second, older cluster (Symphony) has 16
nodes connected by Ethernet and Myrinet; each node has dual 500 MHz
Pentium II processors and 512 MB of RAM."
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class NodeSpec:
    """Hardware of one cluster node."""

    cpus: int
    cpu_mhz: int
    ram_bytes: int
    cpu_model: str = ""


@dataclass(frozen=True)
class ClusterSpec:
    """One homogeneous cluster."""

    name: str
    nodes: int
    node: NodeSpec
    interconnects: tuple[str, ...] = ()

    @property
    def total_cpus(self) -> int:
        return self.nodes * self.node.cpus

    @property
    def total_ram_bytes(self) -> int:
        return self.nodes * self.node.ram_bytes


RHAPSODY = ClusterSpec(
    name="Rhapsody",
    nodes=32,
    node=NodeSpec(cpus=2, cpu_mhz=930, ram_bytes=1 << 30, cpu_model="Pentium III"),
    interconnects=("10/100 Ethernet", "Gigabit Ethernet"),
)

SYMPHONY = ClusterSpec(
    name="Symphony",
    nodes=16,
    node=NodeSpec(cpus=2, cpu_mhz=500, ram_bytes=512 << 20, cpu_model="Pentium II"),
    interconnects=("Ethernet", "Myrinet"),
)


@dataclass(frozen=True)
class MetaCluster:
    """The combined experimental environment."""

    clusters: tuple[ClusterSpec, ...] = (RHAPSODY, SYMPHONY)

    @property
    def total_cpus(self) -> int:
        return sum(c.total_cpus for c in self.clusters)

    def placement(self, nprocs: int, processes_per_cpu: int = 1) -> list[tuple[str, int]]:
        """Round-robin placement of MPI ranks onto (cluster, node) slots.

        Wavetoy ran 196 processes with "each processor serv[ing] two MPI
        processes" - pass ``processes_per_cpu=2`` for that regime (the
        last few ranks wrap around, oversubscribing slightly, as the
        paper's 196 > 192 slot count implies).
        Returns ``[(cluster_name, node_index), ...]`` indexed by rank.
        """
        if nprocs <= 0:
            raise ValueError(f"nprocs must be positive: {nprocs}")
        if processes_per_cpu <= 0:
            raise ValueError(f"processes_per_cpu must be positive: {processes_per_cpu}")
        slots: list[tuple[str, int]] = []
        for cluster in self.clusters:
            for node in range(cluster.nodes):
                slots.extend(
                    [(cluster.name, node)] * (cluster.node.cpus * processes_per_cpu)
                )
        if nprocs > 2 * len(slots):
            raise ValueError(
                f"{nprocs} processes exceed twice the slot count "
                f"{len(slots)} (= CPUs x processes_per_cpu)"
            )
        return [slots[r % len(slots)] for r in range(nprocs)]


METACLUSTER = MetaCluster()
