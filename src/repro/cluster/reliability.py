"""Soft-error-rate arithmetic from paper sections 1-2.

Implements the motivating calculations so they can be *regenerated*
(experiment E1): FIT rates, MTBF conversions, expected error counts for a
memory population, and the ASCI Q worked example ("33,000 x 0.05 or
roughly 1,650 errors every ten days").
"""

from __future__ import annotations

from dataclasses import dataclass

HOURS_PER_BILLION = 1e9
HOURS_PER_DAY = 24.0
HOURS_PER_YEAR = 24.0 * 365.25

#: Tezzaron's survey: "1000 to 5000 FIT per Mb was typical for modern
#: memory devices" (section 2.1).
TYPICAL_FIT_PER_MB = (1000.0, 5000.0)

#: The paper's deliberately conservative working value.
CONSERVATIVE_FIT_PER_MB = 500.0


def fit_to_failures_per_hour(fit: float) -> float:
    """FIT = failures per 10^9 device-hours."""
    if fit < 0:
        raise ValueError(f"FIT must be non-negative: {fit}")
    return fit / HOURS_PER_BILLION


def fit_to_mtbf_hours(fit: float) -> float:
    """Mean time between failures implied by a FIT rate."""
    if fit <= 0:
        raise ValueError(f"FIT must be positive: {fit}")
    return HOURS_PER_BILLION / fit


def mtbf_years_to_fit(mtbf_years: float) -> float:
    """Inverse conversion (e.g. Actel's '1-10 year MTBF per Mb')."""
    if mtbf_years <= 0:
        raise ValueError(f"MTBF must be positive: {mtbf_years}")
    return HOURS_PER_BILLION / (mtbf_years * HOURS_PER_YEAR)


#: Megabits per gigabyte - FIT rates are quoted per megaBIT (Mb).
MBIT_PER_GB = 8192.0


def expected_soft_errors(
    memory_mbit: float, fit_per_mb: float, hours: float
) -> float:
    """Expected soft-error count for ``memory_mbit`` megabits over a
    window (FIT rates are per megabit of storage)."""
    for name, v in (("memory_mbit", memory_mbit), ("hours", hours)):
        if v < 0:
            raise ValueError(f"{name} must be non-negative: {v}")
    return memory_mbit * fit_to_failures_per_hour(fit_per_mb) * hours


def days_between_errors(memory_gb: float, fit_per_mb: float) -> float:
    """Section 2.1's headline: "even using a conservative soft error rate
    (500 FIT/Mb), a system with 1 GB of RAM can expect a soft error every
    10 days"."""
    if memory_gb <= 0:
        raise ValueError(f"memory_gb must be positive: {memory_gb}")
    per_hour = fit_to_failures_per_hour(fit_per_mb) * memory_gb * MBIT_PER_GB
    return 1.0 / (per_hour * HOURS_PER_DAY)


@dataclass(frozen=True)
class EccSystemModel:
    """A large ECC-protected system, for the section-1 style estimate.

    ``ecc_coverage`` is the fraction of soft errors the ECC hardware
    corrects or safely detects (the paper assumes 95 %, citing the
    Compaq/Constantinescu escape measurements of 10-18 %).
    """

    name: str
    memory_gb: float
    ecc_coverage: float = 0.95
    errors_per_gb_per_window: float = 0.1  # 1 error / 10 days per GB -> per day
    window_days: float = 10.0

    def raw_errors_per_window(self) -> float:
        """Soft errors hitting memory in one window, before ECC."""
        return self.memory_gb  # 1 error per GB per window, by definition

    def uncovered_errors_per_window(self) -> float:
        """Errors that escape ECC in one window."""
        if not 0 <= self.ecc_coverage <= 1:
            raise ValueError(f"coverage must be in [0, 1]: {self.ecc_coverage}")
        return self.memory_gb * (1.0 - self.ecc_coverage)


#: The Los Alamos ASCI Q example: 33 TB of ECC memory, one error per ten
#: days per GB, 95 % ECC coverage -> ~1,650 escaped errors / 10 days.
ASCI_Q = EccSystemModel(name="ASCI Q", memory_gb=33_000.0, ecc_coverage=0.95)


def asci_q_escaped_errors() -> float:
    """The exact number the paper's introduction computes."""
    return ASCI_Q.uncovered_errors_per_window()
