"""Cluster hardware models and COTS reliability substrates (sections 1-2
of the paper): machine specs, FIT/SER arithmetic, SECDED ECC memory, and
the network checksum stack."""

from repro.cluster.machines import (
    METACLUSTER,
    RHAPSODY,
    SYMPHONY,
    ClusterSpec,
    MetaCluster,
    NodeSpec,
)
from repro.cluster.reliability import (
    ASCI_Q,
    CONSERVATIVE_FIT_PER_MB,
    TYPICAL_FIT_PER_MB,
    EccSystemModel,
    asci_q_escaped_errors,
    days_between_errors,
    expected_soft_errors,
    fit_to_failures_per_hour,
    fit_to_mtbf_hours,
    mtbf_years_to_fit,
)
from repro.cluster.ecc import (
    CODEWORD_BITS,
    DATA_BITS,
    CoverageStats,
    DecodeOutcome,
    coverage_experiment,
    decode,
    encode,
    flip_bits,
)
from repro.cluster.netchecksum import (
    EscapeStats,
    crc32,
    escape_experiment,
    flip_random_bits,
    host_corruption_experiment,
    internet_checksum,
)

__all__ = [
    "METACLUSTER",
    "RHAPSODY",
    "SYMPHONY",
    "ClusterSpec",
    "MetaCluster",
    "NodeSpec",
    "ASCI_Q",
    "CONSERVATIVE_FIT_PER_MB",
    "TYPICAL_FIT_PER_MB",
    "EccSystemModel",
    "asci_q_escaped_errors",
    "days_between_errors",
    "expected_soft_errors",
    "fit_to_failures_per_hour",
    "fit_to_mtbf_hours",
    "mtbf_years_to_fit",
    "CODEWORD_BITS",
    "DATA_BITS",
    "CoverageStats",
    "DecodeOutcome",
    "coverage_experiment",
    "decode",
    "encode",
    "flip_bits",
    "EscapeStats",
    "crc32",
    "escape_experiment",
    "flip_random_bits",
    "host_corruption_experiment",
    "internet_checksum",
]
