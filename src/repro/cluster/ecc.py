"""SECDED error-correcting memory (paper section 2.1).

"SECDED (Single-Error-Correction, Double-Errors-Detection) is the
standard approach, with every 64 data bits protected by a set of 8 check
bits."  This is a real (72,64) extended Hamming implementation: seven
Hamming check bits plus one overall parity bit.  Single-bit upsets are
corrected, double-bit upsets detected; triple and wider upsets can alias
to a miscorrection, which is one of the mechanisms behind the 10-18 %
ECC escape rates the paper cites (Compaq, Constantinescu).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

#: Codeword length: 64 data + 7 Hamming checks + 1 overall parity.
CODEWORD_BITS = 72
DATA_BITS = 64

# Hamming layout over positions 1..71 (position 0 is overall parity):
# check bits sit at powers of two; data bits fill the rest in order.
_CHECK_POS = tuple(1 << i for i in range(7))  # 1,2,4,8,16,32,64
_DATA_POS = tuple(p for p in range(1, CODEWORD_BITS) if p not in _CHECK_POS)
assert len(_DATA_POS) == DATA_BITS


class DecodeOutcome(enum.Enum):
    """What the decoder believes happened."""

    OK = "ok"
    CORRECTED = "corrected_single"
    DETECTED = "detected_double"


def _word_to_bits(word: int) -> np.ndarray:
    if not 0 <= word < (1 << DATA_BITS):
        raise ValueError(f"data word must be a 64-bit unsigned value: {word}")
    return np.array([(word >> i) & 1 for i in range(DATA_BITS)], dtype=np.uint8)


def _bits_to_word(bits: np.ndarray) -> int:
    return int(sum(int(b) << i for i, b in enumerate(bits)))


def encode(word: int) -> int:
    """Encode a 64-bit word into its 72-bit SECDED codeword."""
    data = _word_to_bits(word)
    code = np.zeros(CODEWORD_BITS, dtype=np.uint8)
    code[list(_DATA_POS)] = data
    for i, cpos in enumerate(_CHECK_POS):
        covered = [p for p in range(1, CODEWORD_BITS) if p & cpos and p != cpos]
        code[cpos] = np.bitwise_xor.reduce(code[covered])
    code[0] = np.bitwise_xor.reduce(code[1:])  # overall parity
    return _bits_to_word(code)


def decode(codeword: int) -> tuple[int, DecodeOutcome]:
    """Decode a 72-bit codeword.

    Returns ``(data_word, outcome)``.  For DETECTED, the data word is the
    raw (uncorrected) extraction - real memory controllers raise a
    machine check instead of returning it.
    """
    if not 0 <= codeword < (1 << CODEWORD_BITS):
        raise ValueError(f"codeword must be a 72-bit unsigned value: {codeword}")
    code = np.array([(codeword >> i) & 1 for i in range(CODEWORD_BITS)], dtype=np.uint8)
    syndrome = 0
    for i, cpos in enumerate(_CHECK_POS):
        covered = [p for p in range(1, CODEWORD_BITS) if p & cpos]
        if np.bitwise_xor.reduce(code[covered]):
            syndrome |= cpos
    parity_err = bool(np.bitwise_xor.reduce(code))
    if syndrome == 0 and not parity_err:
        return _bits_to_word(code[list(_DATA_POS)]), DecodeOutcome.OK
    if parity_err:
        # Odd number of flipped bits: trust the syndrome and correct one
        # position (syndrome 0 means the parity bit itself flipped).
        if syndrome < CODEWORD_BITS:
            code[syndrome] ^= 1
        return _bits_to_word(code[list(_DATA_POS)]), DecodeOutcome.CORRECTED
    # Even number of flips with nonzero syndrome: uncorrectable double.
    return _bits_to_word(code[list(_DATA_POS)]), DecodeOutcome.DETECTED


def flip_bits(codeword: int, positions) -> int:
    """Apply an upset flipping the given codeword bit positions."""
    for p in positions:
        p = int(p)  # accept numpy integers
        if not 0 <= p < CODEWORD_BITS:
            raise ValueError(f"bit position out of range: {p}")
        codeword ^= 1 << p
    return codeword


@dataclass
class CoverageStats:
    """Outcome counts of a Monte-Carlo ECC coverage experiment."""

    trials: int = 0
    silent_ok: int = 0  # no upset or benign
    corrected: int = 0  # corrected, data intact
    detected: int = 0  # flagged uncorrectable (machine check)
    escaped: int = 0  # decoder claims OK/corrected but data is wrong

    @property
    def coverage(self) -> float:
        """Fraction of upsets handled safely (corrected or detected)."""
        handled = self.corrected + self.detected + self.silent_ok
        return handled / self.trials if self.trials else 1.0

    @property
    def escape_rate(self) -> float:
        return self.escaped / self.trials if self.trials else 0.0


def coverage_experiment(
    n_trials: int,
    flips_per_word: int,
    rng: np.random.Generator,
) -> CoverageStats:
    """Inject ``flips_per_word``-bit upsets into random codewords and
    score the decoder: with 1 flip coverage is 100 % (corrected), with 2
    it is 100 % (detected), with 3+ escapes appear - the mechanism behind
    imperfect real-world ECC coverage."""
    if flips_per_word < 0:
        raise ValueError(f"flips_per_word must be non-negative: {flips_per_word}")
    stats = CoverageStats()
    for _ in range(n_trials):
        stats.trials += 1
        word = int(rng.integers(0, 1 << 62, dtype=np.int64))
        code = encode(word)
        positions = rng.choice(CODEWORD_BITS, size=flips_per_word, replace=False)
        corrupted = flip_bits(code, positions)
        data, outcome = decode(corrupted)
        if outcome is DecodeOutcome.DETECTED:
            stats.detected += 1
        elif data == word:
            if outcome is DecodeOutcome.OK:
                stats.silent_ok += 1
            else:
                stats.corrected += 1
        else:
            stats.escaped += 1
    return stats
