"""Unified observability: tracing, metrics, and propagation timelines.

The paper explains its Crash/Hang/Incorrect/Detected rates through
*where* a fault lands and *how long* it stays latent before a detector
or crash surfaces it.  This package gives the reproduction the
instrumentation that analysis needs, threaded through every execution
layer:

* :mod:`repro.observability.tracer` - a span/event tracer with named
  scopes (trial -> kernel -> basic block; MPI call -> ADI -> channel
  packet; injection install -> flip -> first detector firing), a strict
  no-op when disabled;
* :mod:`repro.observability.metrics` - a registry of counters, gauges
  and histograms with picklable snapshots, merged across
  ``ParallelExecutor`` workers in the driver, exported as a
  Prometheus-style textfile;
* :mod:`repro.observability.timeline` - the per-trial
  fault-propagation timeline: injection instant (basic block,
  instruction index, byte offset) and first-divergence instant (first
  detector firing, signal, protocol abort, hang declaration or output
  mismatch), yielding error-latency histograms per region in the
  spirit of section 5 of the paper;
* :mod:`repro.observability.export` - Chrome ``trace_event`` JSON
  (viewable in Perfetto) and validation helpers;
* :mod:`repro.observability.runtime` - the per-process activation
  scope the instrumented layers consult;
* :mod:`repro.observability.serve` - the live HTTP telemetry service
  (``campaign run --serve``, ``python -m repro serve``): /metrics,
  /status, /progress from a running campaign or a followed store;
* :mod:`repro.observability.artifacts` - artifact-grade run
  directories (``campaign run --artifacts``): manifest, event and
  metric logs, and a summary/report pair regenerable bit-identically
  from those logs alone.

All timestamps are *simulated* clocks (executed basic blocks,
instructions retired, received bytes), so every artifact is
bit-identical across worker counts and completion orders.
"""

from repro.observability.metrics import (
    MetricsRegistry,
    parse_prometheus,
    render_prometheus,
)
from repro.observability.tracer import Tracer
from repro.observability.timeline import PropagationTimeline, TimelineEvent
from repro.observability.export import (
    TraceCollector,
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.observability.runtime import (
    activate,
    disable,
    enable,
    enabled,
)

#: Symbols resolved lazily (PEP 562): ``serve`` and ``artifacts`` pull
#: in :mod:`repro.engine.store`, which must not load as a side effect
#: of importing the observability package from low-level layers.
_LAZY_EXPORTS = {
    "TelemetryHub": "repro.observability.serve",
    "TelemetryServer": "repro.observability.serve",
    "StoreTelemetry": "repro.observability.serve",
    "parse_endpoint": "repro.observability.serve",
    "RunArtifacts": "repro.observability.artifacts",
    "build_summary": "repro.observability.artifacts",
    "write_outputs": "repro.observability.artifacts",
    "check_outputs": "repro.observability.artifacts",
    "render_report": "repro.observability.artifacts",
}


def __getattr__(name: str):
    module = _LAZY_EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)


__all__ = [
    "MetricsRegistry",
    "parse_prometheus",
    "render_prometheus",
    "Tracer",
    "PropagationTimeline",
    "TimelineEvent",
    "TraceCollector",
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "activate",
    "enable",
    "disable",
    "enabled",
    *sorted(_LAZY_EXPORTS),
]
