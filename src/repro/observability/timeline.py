"""The per-trial fault-propagation timeline.

Wu et al. (2018) characterize resilience by tracking error propagation
from the injection site to the first corrupted architectural state; the
paper's section 5 explains outcome rates through how long a fault stays
latent before a detector or crash surfaces it.  This module records the
two instants that bound that latency for every trial:

* the **injection instant** - the basic-block count, instruction index
  and (for message faults) received-byte offset at which the bit flip
  was actually delivered; and
* the **first-divergence instant** - the earliest externally observable
  effect: a detector firing (checksum, NaN, bound, assertion,
  control-flow, ABFT), a fatal signal, a channel protocol abort, a hang
  declaration, or - weakest - an output mismatch discovered only at
  classification time.

``latency_blocks`` is the difference of the two block counts.  Both
instants come from the simulated clocks, so latency histograms are
bit-identical across worker counts.  Cross-rank propagation (a message
fault injected on the receiving rank surfacing on another) is measured
on each rank's own block clock; ranks advance in lockstep rounds, so
the skew is at most a scheduling round.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TimelineEvent:
    """One notable instant of a trial."""

    #: What happened: ``"injection"``, ``"detector:<family>"``,
    #: ``"signal:<name>"``, ``"protocol"``, ``"hang"``, ``"app_abort"``,
    #: ``"mpi_abort"``, ``"output_mismatch"``.
    kind: str
    #: MPI rank the instant was observed on (None when unknown).
    rank: int | None = None
    #: Basic-block clock of that rank at the instant.
    blocks: int | None = None
    #: Instructions retired by that rank's VM at the instant.
    insns: int | None = None
    #: Received-byte offset (message faults only).
    byte_offset: int | None = None
    detail: str = ""


@dataclass
class PropagationTimeline:
    """Injection and first-divergence instants for one trial."""

    injection: TimelineEvent | None = None
    divergence: TimelineEvent | None = None
    #: Every recorded event in arrival order (bounded; includes
    #: non-first detector firings, e.g. an ABFT correction followed by
    #: a crash).
    events: list[TimelineEvent] = field(default_factory=list)
    max_events: int = 256

    def _append(self, event: TimelineEvent) -> None:
        if len(self.events) < self.max_events:
            self.events.append(event)

    def note_injection(self, event: TimelineEvent) -> None:
        """Record the delivery instant (first delivery wins; stuck-at
        re-assertions land in ``events`` only)."""
        self._append(event)
        if self.injection is None:
            self.injection = event

    def note_divergence(self, event: TimelineEvent) -> None:
        """Record an observable effect (first one wins as *the*
        divergence instant)."""
        self._append(event)
        if self.divergence is None:
            self.divergence = event

    # ------------------------------------------------------------------
    # derived values
    # ------------------------------------------------------------------
    @property
    def latency_blocks(self) -> int | None:
        """Blocks from injection to first divergence (>= 0), or None
        when either instant is missing."""
        if (
            self.injection is None
            or self.divergence is None
            or self.injection.blocks is None
            or self.divergence.blocks is None
        ):
            return None
        return max(0, self.divergence.blocks - self.injection.blocks)

    def summary(self) -> dict:
        """JSON-able digest carried on the trial result (and into the
        result store, so resumed campaigns rebuild identical latency
        histograms)."""
        out: dict = {}
        if self.injection is not None:
            out["injected_at_blocks"] = self.injection.blocks
            out["injected_at_insns"] = self.injection.insns
            if self.injection.byte_offset is not None:
                out["injected_byte"] = self.injection.byte_offset
        if self.divergence is not None:
            out["diverged_at_blocks"] = self.divergence.blocks
            out["divergence_kind"] = self.divergence.kind
        latency = self.latency_blocks
        if latency is not None:
            out["latency_blocks"] = latency
        return out
