"""Artifact-grade campaign run directories.

``campaign run --artifacts DIR`` turns one campaign into a
self-contained, reproducible record:

``manifest.json``
    The run's identity: execution-config snapshot, seeds, CLI argv,
    ``git describe``, schema version.  Written once, at start.
``events.jsonl``
    Trial lifecycle events, appended live: ``campaign_start``, one
    ``trial`` event per finished trial (the stored result fields plus a
    wall-clock stamp), throttled ``progress`` events from the
    :class:`~repro.engine.progress.ProgressEmitter`, ``region_final``
    rows (with stratified estimates when present), ``campaign_end``.
``metrics.jsonl``
    Periodic flushes of the live merged
    :class:`~repro.observability.metrics.MetricsSnapshot` (every
    ``metrics_interval`` trials and once at the end), so metric
    time-series survive the run.
``summary.json`` / ``report.html``
    Final tallies, stratified estimates, wall time/throughput, and the
    dashboard - both are *pure functions of the three files above*:
    :func:`build_summary` reads only ``manifest.json`` +
    ``events.jsonl`` + ``metrics.jsonl``, so ``python -m repro report
    DIR`` regenerates them bit-identically at any later time.
``reproduce.sh``
    The exact command that produced the run (same seeds, same trial
    keys, same stored bytes).

The discipline mirrors per-run isolation in embedding-training repos:
every number in a paper table must trace to a directory that can
regenerate it.
"""

from __future__ import annotations

import json
import os
import shlex
import stat
import subprocess
import time
from pathlib import Path
from typing import IO

from repro.engine.store import StoreSummary
from repro.engine.trial import TrialResult
from repro.observability.metrics import MetricsSnapshot

#: Version of the run-directory layout and of every JSON payload in it.
ARTIFACT_SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"
EVENTS_NAME = "events.jsonl"
METRICS_NAME = "metrics.jsonl"
SUMMARY_NAME = "summary.json"
REPORT_NAME = "report.html"
REPRODUCE_NAME = "reproduce.sh"

#: Default trials between metric snapshot flushes.
DEFAULT_METRICS_INTERVAL = 25


def git_describe() -> str | None:
    """``git describe --always --dirty`` of the working tree, or
    ``None`` outside a repository / without git."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def _dump(obj: dict) -> str:
    return json.dumps(obj, indent=2, sort_keys=True) + "\n"


def _dump_line(obj: dict) -> str:
    return json.dumps(obj, sort_keys=True) + "\n"


def _stratified_json(estimate) -> dict:
    """JSON view of a :class:`~repro.sampling.theory.StratifiedEstimate`."""
    return {
        "pool": estimate.pool,
        "alpha": estimate.alpha,
        "executed": estimate.executed,
        "error_rate": estimate.error_rate,
        "half_width": estimate.half_width,
        "cells": [
            {
                "name": cell.name,
                "population": cell.population,
                "executed": cell.executed,
                "errors": cell.errors,
                "known_zero": cell.known_zero,
            }
            for cell in estimate.cells
        ],
    }


class RunArtifacts:
    """Writer half of one artifact run directory.

    The campaign engine calls :meth:`note_trial` (and the progress
    emitter :meth:`note_progress`) as events happen; every line is
    flushed, so an interrupted campaign still leaves a parseable
    record.  :meth:`finalize` stamps ``campaign_end``, flushes the
    final metrics snapshot, and derives ``summary.json`` +
    ``report.html`` *from the files just written* - the same derivation
    ``python -m repro report DIR`` re-runs later, which is what makes
    regeneration bit-identical by construction.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        manifest: dict | None = None,
        *,
        metrics_interval: int = DEFAULT_METRICS_INTERVAL,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.metrics_interval = max(1, metrics_interval)
        self._events: IO[str] | None = None
        self._metrics: IO[str] | None = None
        self._trials = 0
        self._since_flush = 0
        self._flushes = 0
        self._finalized = False

        payload = {
            "schema_version": ARTIFACT_SCHEMA_VERSION,
            "created_unix": time.time(),
            "git_describe": git_describe(),
            "metrics_interval": self.metrics_interval,
        }
        payload.update(manifest or {})
        (self.directory / MANIFEST_NAME).write_text(_dump(payload))
        self.manifest = payload
        command = payload.get("command")
        if command:
            self._write_reproduce(command)
        self.note_event("campaign_start")

    # ------------------------------------------------------------------
    # event sinks (engine-facing)
    # ------------------------------------------------------------------
    def _append(self, name: str, text: str) -> IO[str]:
        attr = "_events" if name == EVENTS_NAME else "_metrics"
        fh = getattr(self, attr)
        if fh is None:
            fh = open(self.directory / name, "a")
            setattr(self, attr, fh)
        fh.write(text)
        fh.flush()
        return fh

    def note_event(self, kind: str, **fields) -> None:
        event = {"type": kind, "t": time.time()}
        event.update(fields)
        self._append(EVENTS_NAME, _dump_line(event))

    def note_trial(self, result: TrialResult) -> None:
        self._trials += 1
        self._since_flush += 1
        self.note_event("trial", resumed=result.resumed, **result.to_json())

    def note_progress(self, event) -> None:
        """Mirror one :class:`~repro.engine.progress.ProgressEvent`."""
        self.note_event(
            "progress",
            app=event.app,
            region=event.region,
            done=event.done,
            planned=event.planned,
            resumed=event.resumed,
            errors=event.errors,
            achieved_d=event.achieved_d,
            target_d=event.target_d,
            final=event.final,
        )

    def note_region_final(self, app: str, region_result) -> None:
        self.note_event(
            "region_final",
            app=app,
            region=region_result.region.value,
            trials=region_result.executions,
            errors=region_result.tally.errors,
            resumed=region_result.resumed,
            pruned=region_result.pruned,
            adaptive_d=region_result.adaptive_d,
            stratified=(
                _stratified_json(region_result.stratified)
                if region_result.stratified is not None
                else None
            ),
        )

    def metrics_flush_due(self) -> bool:
        return self._since_flush >= self.metrics_interval

    def flush_metrics(self, snapshot: MetricsSnapshot) -> None:
        self._flushes += 1
        self._since_flush = 0
        self._append(
            METRICS_NAME,
            _dump_line(
                {
                    "seq": self._flushes,
                    "t": time.time(),
                    "trials": self._trials,
                    "snapshot": snapshot.to_json(),
                }
            ),
        )

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------
    def finalize(self, registry=None) -> dict:
        """Close the run: final metrics flush, ``campaign_end``, then
        derive ``summary.json`` and ``report.html`` from the files."""
        if self._finalized:
            return build_summary(self.directory)
        self._finalized = True
        if registry is not None:
            self.flush_metrics(registry.snapshot())
        self.note_event("campaign_end", trials=self._trials)
        self.close()
        return write_outputs(self.directory)

    def close(self) -> None:
        for attr in ("_events", "_metrics"):
            fh = getattr(self, attr)
            if fh is not None:
                fh.close()
                setattr(self, attr, None)

    def _write_reproduce(self, command: str) -> None:
        path = self.directory / REPRODUCE_NAME
        path.write_text(
            "#!/bin/sh\n"
            "# Regenerates this campaign run: same seeds, same trial keys,\n"
            "# same stored bytes (artifact/serve paths included verbatim).\n"
            "set -e\n"
            f"exec {command}\n"
        )
        path.chmod(path.stat().st_mode | stat.S_IXUSR | stat.S_IXGRP)


def reproduce_command(argv: list[str] | None = None) -> str:
    """The shell command reproducing the current invocation."""
    import sys

    args = list(sys.argv[1:] if argv is None else argv)
    return shlex.join(["python", "-m", "repro", *args])


# ----------------------------------------------------------------------
# summary derivation (the pure-function half)
# ----------------------------------------------------------------------
def _iter_jsonl(path: Path):
    if not path.exists():
        return
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError:
                continue  # partial trailing write of an interrupted run
            if isinstance(obj, dict):
                yield obj


def build_summary(directory: str | os.PathLike) -> dict:
    """Derive the run summary from ``manifest.json`` + ``events.jsonl``
    + ``metrics.jsonl`` *alone* - no live state, no store - so any later
    ``python -m repro report DIR`` reproduces it bit-identically."""
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise FileNotFoundError(
            f"{manifest_path}: not an artifact run directory"
        )
    manifest = json.loads(manifest_path.read_text())

    fold = StoreSummary()
    region_finals: list[dict] = []
    progress_events = 0
    resumed = 0
    t_start = t_end = None
    for obj in _iter_jsonl(directory / EVENTS_NAME):
        kind = obj.get("type")
        if kind == "campaign_start":
            t_start = obj.get("t")
        elif kind == "campaign_end":
            t_end = obj.get("t")
        elif kind == "progress":
            progress_events += 1
        elif kind == "region_final":
            row = {k: v for k, v in obj.items() if k not in ("type", "t")}
            region_finals.append(row)
        elif kind == "trial":
            try:
                result = TrialResult.from_json(obj)
            except (ValueError, KeyError, TypeError):
                continue
            fold.add(result)
            if obj.get("resumed"):
                resumed += 1

    last_metrics = None
    metrics_flushes = 0
    for obj in _iter_jsonl(directory / METRICS_NAME):
        metrics_flushes += 1
        last_metrics = obj
    final_snapshot = (
        last_metrics.get("snapshot") if last_metrics is not None else None
    )

    wall = (
        t_end - t_start
        if t_start is not None and t_end is not None
        else None
    )
    trials = fold.trials
    stratified = {
        row["region"]: row.get("stratified")
        for row in region_finals
        if row.get("stratified") is not None
    }
    regions = []
    for row in fold.rows():
        payload = row.to_json()
        payload["stratified"] = stratified.get(row.region)
        regions.append(payload)
    return {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "app": manifest.get("app"),
        "seed": manifest.get("seed"),
        "trials": trials,
        "errors": fold.errors,
        "resumed": resumed,
        "regions": regions,
        "region_finals": region_finals,
        "progress_events": progress_events,
        "metrics_flushes": metrics_flushes,
        "metrics": final_snapshot,
        "wall_seconds": wall,
        "throughput_trials_per_second": (
            trials / wall if wall else None
        ),
    }


def write_outputs(directory: str | os.PathLike) -> dict:
    """(Re)derive and write ``summary.json`` + ``report.html``."""
    directory = Path(directory)
    summary = build_summary(directory)
    manifest = json.loads((directory / MANIFEST_NAME).read_text())
    (directory / SUMMARY_NAME).write_text(_dump(summary))
    (directory / REPORT_NAME).write_text(render_report(manifest, summary))
    return summary


def check_outputs(directory: str | os.PathLike) -> list[str]:
    """Names of derived files whose on-disk bytes differ from a fresh
    derivation (empty = bit-identical, the CI gate)."""
    directory = Path(directory)
    summary = build_summary(directory)
    manifest = json.loads((directory / MANIFEST_NAME).read_text())
    expected = {
        SUMMARY_NAME: _dump(summary),
        REPORT_NAME: render_report(manifest, summary),
    }
    stale = []
    for name, text in expected.items():
        path = directory / name
        if not path.exists() or path.read_text() != text:
            stale.append(name)
    return stale


# ----------------------------------------------------------------------
# report.html - the self-contained dashboard
# ----------------------------------------------------------------------
#: Fixed manifestation -> categorical slot assignment (identity is
#: never cycled; the order is the palette's validated adjacency order).
_OUTCOME_SLOTS = (
    ("correct", "var(--series-1)"),
    ("crash", "var(--series-2)"),
    ("hang", "var(--series-3)"),
    ("incorrect", "var(--series-4)"),
    ("app_detected", "var(--series-5)"),
    ("mpi_detected", "var(--series-6)"),
)

_REPORT_CSS = """
:root { color-scheme: light dark; }
.viz-root {
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --muted: #898781; --grid: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --series-4: #eda100; --series-5: #e87ba4; --series-6: #008300;
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  color: var(--text-primary); background: var(--page);
  margin: 0; padding: 24px; min-height: 100vh; box-sizing: border-box;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --muted: #898781; --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --series-4: #c98500; --series-5: #d55181; --series-6: #008300;
  }
}
.viz-root h1 { font-size: 18px; margin: 0 0 2px; }
.viz-root h2 { font-size: 14px; margin: 28px 0 10px; }
.viz-root .sub { color: var(--text-secondary); margin: 0 0 18px; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 14px; min-width: 110px;
}
.tile .v { font-size: 22px; }
.tile .k { color: var(--muted); font-size: 11px; text-transform: uppercase;
  letter-spacing: 0.04em; }
.panel { background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 14px; }
.row { display: flex; align-items: center; gap: 10px; margin: 6px 0; }
.row .lbl { width: 110px; color: var(--text-secondary); text-align: right;
  flex: none; }
.row .n { width: 90px; color: var(--muted); flex: none;
  font-variant-numeric: tabular-nums; }
.bar { display: flex; flex: 1; height: 14px; gap: 2px; }
.seg { border-radius: 4px; min-width: 1px; }
.legend { display: flex; flex-wrap: wrap; gap: 14px; margin-top: 10px;
  color: var(--text-secondary); }
.legend .sw { display: inline-block; width: 10px; height: 10px;
  border-radius: 3px; margin-right: 5px; vertical-align: -1px; }
.hist { display: flex; align-items: flex-end; gap: 2px; height: 84px;
  border-bottom: 1px solid var(--baseline); padding: 0 2px; }
.hist .hb { flex: 1; background: var(--series-1);
  border-radius: 4px 4px 0 0; min-height: 1px; }
.hx { display: flex; gap: 2px; padding: 2px 2px 0; color: var(--muted);
  font-size: 10px; }
.hx span { flex: 1; text-align: center; }
.grid2 { display: grid; gap: 12px;
  grid-template-columns: repeat(auto-fit, minmax(260px, 1fr)); }
.viz-root table { border-collapse: collapse; width: 100%; }
.viz-root th, .viz-root td { text-align: right; padding: 4px 10px;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums; }
.viz-root th { color: var(--muted); font-weight: 500; }
.viz-root th:first-child, .viz-root td:first-child { text-align: left; }
"""


def _esc(text: object) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _tile(label: str, value: str) -> str:
    return (
        f'<div class="tile"><div class="v">{_esc(value)}</div>'
        f'<div class="k">{_esc(label)}</div></div>'
    )


def _outcome_section(regions: list[dict]) -> str:
    rows = []
    for row in regions:
        trials = row["trials"] or 1
        segments = []
        for name, color in _OUTCOME_SLOTS:
            count = row["manifestations"].get(name, 0)
            if not count:
                continue
            pct = 100.0 * count / trials
            segments.append(
                f'<div class="seg" style="flex:{count} {count} 0;'
                f'background:{color}" title="{_esc(name)}: {count} '
                f"({pct:.1f}%)\"></div>"
            )
        rows.append(
            f'<div class="row"><div class="lbl">{_esc(row["region"])}</div>'
            f'<div class="bar">{"".join(segments)}</div>'
            f'<div class="n">{row["trials"]} trials</div></div>'
        )
    legend = "".join(
        f'<span><span class="sw" style="background:{color}"></span>'
        f"{_esc(name)}</span>"
        for name, color in _OUTCOME_SLOTS
    )
    table_rows = "".join(
        "<tr><td>{region}</td><td>{trials}</td><td>{errors}</td>"
        "<td>{rate:.1f}</td><td>{d:.1f}</td><td>{pruned}</td></tr>".format(
            region=_esc(row["region"]),
            trials=row["trials"],
            errors=row["errors"],
            rate=row["error_rate_percent"],
            d=row["achieved_d_percent"],
            pruned=row["pruned"],
        )
        for row in regions
    )
    return (
        '<h2>Outcome mix per region</h2><div class="panel">'
        + "".join(rows)
        + f'<div class="legend">{legend}</div></div>'
        + '<h2>Region tallies</h2><div class="panel"><table>'
        + "<tr><th>region</th><th>trials</th><th>errors</th>"
        + "<th>error %</th><th>d %</th><th>pruned</th></tr>"
        + table_rows
        + "</table></div>"
    )


def _latency_section(metrics: dict | None) -> str:
    if not metrics:
        return ""
    hists = {
        sample: h
        for sample, h in (metrics.get("histograms") or {}).items()
        if sample.startswith("repro_error_latency_blocks")
    }
    if not hists:
        return ""
    panels = []
    for sample in sorted(hists):
        hist = hists[sample]
        bounds, counts = hist["bounds"], hist["counts"]
        region = sample.split('region="', 1)[-1].rstrip('"}')
        # Trim empty tail buckets (keep at least four for shape).
        last = max(
            [i for i, c in enumerate(counts) if c] + [3]
        )
        shown = counts[: last + 1]
        peak = max(shown) or 1
        bars = "".join(
            f'<div class="hb" style="height:{max(100.0 * c / peak, 1.0):.0f}%"'
            f' title="&le; {_esc(_bucket_label(bounds, i))} blocks: {c}">'
            "</div>"
            for i, c in enumerate(shown)
        )
        ticks = "".join(
            f"<span>{_esc(_bucket_label(bounds, i))}</span>"
            for i in range(len(shown))
        )
        panels.append(
            f'<div class="panel"><div class="sub">{_esc(region)} '
            f'(n={hist["count"]})</div>'
            f'<div class="hist">{bars}</div><div class="hx">{ticks}</div></div>'
        )
    return (
        "<h2>Error latency (blocks from injection to first divergence)</h2>"
        f'<div class="grid2">{"".join(panels)}</div>'
    )


def _bucket_label(bounds: list, i: int) -> str:
    if i >= len(bounds):
        return "inf"
    bound = bounds[i]
    return str(int(bound)) if float(bound).is_integer() else str(bound)


def _fastpath_section(metrics: dict | None) -> str:
    if not metrics:
        return ""
    counters = {
        sample: value
        for sample, value in (metrics.get("counters") or {}).items()
        if sample.startswith("repro_vm_fastpath_total")
    }
    if not counters:
        return ""
    rows = "".join(
        "<tr><td>{kind}</td><td>{value}</td></tr>".format(
            kind=_esc(sample.split('kind="', 1)[-1].rstrip('"}')),
            value=int(value),
        )
        for sample, value in sorted(counters.items())
    )
    return (
        '<h2>Translated fast path</h2><div class="panel"><table>'
        "<tr><th>kind</th><th>count</th></tr>" + rows + "</table></div>"
    )


def render_report(manifest: dict, summary: dict) -> str:
    """The self-contained dashboard: stat tiles, per-region outcome
    bars, error-latency histograms, fast-path counters.  Pure function
    of its inputs (no clocks), so regeneration is bit-identical."""
    trials = summary["trials"]
    errors = summary["errors"]
    wall = summary.get("wall_seconds")
    throughput = summary.get("throughput_trials_per_second")
    tiles = [
        _tile("trials", str(trials)),
        _tile("errors", str(errors)),
        _tile(
            "error rate",
            f"{100.0 * errors / trials:.1f}%" if trials else "n/a",
        ),
        _tile("wall", f"{wall:.1f}s" if wall is not None else "n/a"),
        _tile(
            "throughput",
            f"{throughput:.2f}/s" if throughput else "n/a",
        ),
        _tile("regions", str(len(summary["regions"]))),
    ]
    describe = manifest.get("git_describe") or "untracked"
    header = (
        f"<h1>Campaign run: {_esc(manifest.get('app', '?'))}</h1>"
        f'<p class="sub">seed {_esc(manifest.get("seed", "?"))}'
        f" &middot; {_esc(describe)}"
        f" &middot; schema v{_esc(summary['schema_version'])}</p>"
    )
    body = (
        header
        + f'<div class="tiles">{"".join(tiles)}</div>'
        + _outcome_section(summary["regions"])
        + _latency_section(summary.get("metrics"))
        + _fastpath_section(summary.get("metrics"))
    )
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
        f"<title>repro campaign: {_esc(manifest.get('app', '?'))}</title>"
        f"<style>{_REPORT_CSS}</style></head>"
        f'<body class="viz-root">{body}</body></html>\n'
    )
