"""Per-process observability activation.

Instrumented layers (the VM, the MPI stack, the injectors, the
detectors) consult three module globals.  The contract that keeps the
disabled path essentially free:

* every instrumentation site begins with a plain ``runtime.TRACER is
  None`` / ``runtime.METRICS is None`` / ``runtime.TIMELINE is None``
  check and does nothing else when the global is unset;
* sites fire at *event* granularity (a kernel call, a packet, an MPI
  call, a bit flip) - never per instruction - so even the enabled path
  scales with communication and call volume, not with executed blocks.

:func:`activate` installs a scope (one trial) and restores the previous
state on exit, which makes it safe under fork-based workers: whatever
the parent had enabled at fork time, each trial runs under exactly the
scope its execution context requested, and :func:`enable` /
:func:`disable` are idempotent.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.observability.metrics import MetricsRegistry
from repro.observability.timeline import PropagationTimeline, TimelineEvent
from repro.observability.tracer import Tracer

#: Active tracer (None = tracing disabled).
TRACER: Tracer | None = None
#: Active metrics registry (None = metrics disabled).
METRICS: MetricsRegistry | None = None
#: Active propagation timeline (None = no trial in scope).
TIMELINE: PropagationTimeline | None = None


@contextmanager
def activate(
    *,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    timeline: PropagationTimeline | None = None,
):
    """Install an observability scope, restoring the prior one on exit."""
    global TRACER, METRICS, TIMELINE
    prior = (TRACER, METRICS, TIMELINE)
    TRACER, METRICS, TIMELINE = tracer, metrics, timeline
    try:
        yield
    finally:
        TRACER, METRICS, TIMELINE = prior


def enable(
    tracer: Tracer | None = None, metrics: MetricsRegistry | None = None
) -> tuple[Tracer, MetricsRegistry]:
    """Enable ambient tracing/metrics (idempotent: enabling while
    enabled keeps the existing sinks unless new ones are passed)."""
    global TRACER, METRICS
    if tracer is not None:
        TRACER = tracer
    elif TRACER is None:
        TRACER = Tracer()
    if metrics is not None:
        METRICS = metrics
    elif METRICS is None:
        METRICS = MetricsRegistry()
    return TRACER, METRICS


def disable() -> None:
    """Disable ambient tracing/metrics (idempotent)."""
    global TRACER, METRICS, TIMELINE
    TRACER = None
    METRICS = None
    TIMELINE = None


def enabled() -> bool:
    return TRACER is not None or METRICS is not None


# ----------------------------------------------------------------------
# shared event helpers (rare events; fine to pay a call when active)
# ----------------------------------------------------------------------
def note_detector(
    family: str,
    *,
    rank: int | None = None,
    blocks: int | None = None,
    corrected: bool = False,
    detail: str = "",
) -> None:
    """A detector fired: count it by family and stamp the timeline.

    Called from the detector modules *before* they raise (or, for
    correcting detectors like ABFT, instead of raising), so the
    first-divergence instant is the firing itself, not the eventual
    job teardown.
    """
    metrics = METRICS
    if metrics is not None:
        metrics.counter(
            "repro_detector_firings_total",
            family=family,
            result="corrected" if corrected else "detected",
        ).inc()
    timeline = TIMELINE
    if timeline is not None:
        timeline.note_divergence(
            TimelineEvent(
                kind=f"detector:{family}",
                rank=rank,
                blocks=blocks,
                detail=detail,
            )
        )
    tracer = TRACER
    if tracer is not None:
        tracer.instant(
            f"detector:{family}",
            "detector",
            blocks or 0,
            tid=rank or 0,
            args={"detail": detail} if detail else None,
        )


def note_injection(
    *,
    rank: int,
    blocks: int,
    insns: int | None = None,
    byte_offset: int | None = None,
    region: str = "",
    detail: str = "",
) -> None:
    """A fault was delivered: stamp the timeline and count the flip."""
    timeline = TIMELINE
    if timeline is not None:
        timeline.note_injection(
            TimelineEvent(
                kind="injection",
                rank=rank,
                blocks=blocks,
                insns=insns,
                byte_offset=byte_offset,
                detail=detail,
            )
        )
    metrics = METRICS
    if metrics is not None:
        metrics.counter("repro_injection_flips_total", region=region or "?").inc()
    tracer = TRACER
    if tracer is not None:
        args = {"region": region}
        if detail:
            args["detail"] = detail
        if byte_offset is not None:
            args["byte_offset"] = byte_offset
        tracer.instant("inject:flip", "injection", blocks, tid=rank, args=args)


def note_checkpoint_restore(
    *, switch_round: int, blocks_skipped: int, calls_skipped: int = 0
) -> None:
    """A trial resumed from the golden recording: count the restore and
    the interpreter work it avoided, and stamp a tracer instant at the
    start of the trial (the replayed prefix begins at block 0)."""
    metrics = METRICS
    if metrics is not None:
        metrics.counter("repro_checkpoint_restore_total").inc()
        metrics.counter("repro_checkpoint_blocks_skipped_total").inc(
            blocks_skipped
        )
    tracer = TRACER
    if tracer is not None:
        tracer.instant(
            "checkpoint:restore",
            "checkpoint",
            0,
            args={
                "switch_round": switch_round,
                "blocks_skipped": blocks_skipped,
                "calls_skipped": calls_skipped,
            },
        )


def note_termination(kind: str, *, rank: int | None, blocks: int | None, detail: str = "") -> None:
    """The job ended abnormally: record it as a divergence instant (the
    weakest evidence; detector firings recorded earlier take precedence
    because the timeline keeps the first divergence)."""
    timeline = TIMELINE
    if timeline is not None:
        timeline.note_divergence(
            TimelineEvent(kind=kind, rank=rank, blocks=blocks, detail=detail)
        )
    tracer = TRACER
    if tracer is not None:
        tracer.instant(
            f"end:{kind}",
            "trial",
            blocks or 0,
            tid=rank or 0,
            args={"detail": detail} if detail else None,
        )
