"""Metrics registry: counters, gauges, histograms, snapshots.

Design constraints, in order:

1. **No overhead when absent.**  Instrumented layers consult
   :mod:`repro.observability.runtime` with a plain ``is None`` check;
   nothing in this module runs unless a registry is active.
2. **Deterministic aggregation.**  Workers never share a registry;
   each trial produces a picklable :func:`MetricsRegistry.snapshot`
   that the driver merges.  Counters and histogram bucket counts are
   sums, so the merged registry is bit-identical regardless of worker
   count or completion order.
3. **Plain-text export.**  :func:`render_prometheus` writes the
   node-exporter textfile format; :func:`parse_prometheus` reads it
   back (used by the CI smoke check).

Metric identity is ``(name, sorted labels)``.  Histograms use fixed
power-of-two bucket bounds by default so merged histograms from
different processes always align.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Iterable

#: Default histogram bounds: powers of two up to ~one million blocks,
#: fixed so snapshots from any process merge bucket-for-bucket.
DEFAULT_BUCKETS = tuple(float(1 << i) for i in range(21))

LabelItems = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_value(v: float) -> str:
    if v != v:  # NaN
        return "NaN"
    if v in (math.inf, -math.inf):
        return "+Inf" if v > 0 else "-Inf"
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _escape_label_value(value: str) -> str:
    """Prometheus exposition-format label escaping: backslash, quote,
    and newline (exactly the three the format defines)."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_label_value(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append("\n" if nxt == "n" else nxt)
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def _render_labels(labels: LabelItems, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = tuple(labels) + tuple(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in items)
    return "{" + body + "}"


class Counter:
    """Monotonic counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0: {amount}")
        self.value += amount


class Gauge:
    """Last-value gauge (driver-side only; snapshots merge by
    overwrite, so worker code should prefer counters/histograms)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics)."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be ascending")
        # one count per finite bound plus the +Inf overflow bucket
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> list[int]:
        """Cumulative bucket counts in ``le`` order (Prometheus style)."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


@dataclass
class MetricsSnapshot:
    """Picklable, mergeable registry state.

    ``counters``/``gauges`` map ``(name, labels)`` to a value;
    ``histograms`` map it to ``(bounds, counts, sum, count)``.
    """

    counters: dict[tuple[str, LabelItems], float] = field(default_factory=dict)
    gauges: dict[tuple[str, LabelItems], float] = field(default_factory=dict)
    histograms: dict[
        tuple[str, LabelItems], tuple[tuple[float, ...], tuple[int, ...], float, int]
    ] = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Sum ``other`` into this snapshot (in place) and return it."""
        for key, value in other.counters.items():
            self.counters[key] = self.counters.get(key, 0.0) + value
        for key, value in other.gauges.items():
            self.gauges[key] = value
        for key, (bounds, counts, total, n) in other.histograms.items():
            mine = self.histograms.get(key)
            if mine is None:
                self.histograms[key] = (bounds, counts, total, n)
                continue
            if mine[0] != bounds:
                raise ValueError(f"histogram bound mismatch for {key[0]}")
            merged = tuple(a + b for a, b in zip(mine[1], counts))
            self.histograms[key] = (bounds, merged, mine[2] + total, mine[3] + n)
        return self

    def to_json(self) -> dict:
        """JSON-serializable view (``metrics.jsonl`` lines).  Keys are
        rendered as ``name{label="value",...}`` sample strings - the
        same identity the exposition format uses - and parsed back by
        :meth:`from_json`."""

        def sample(name: str, labels: LabelItems) -> str:
            return f"{name}{_render_labels(labels)}"

        return {
            "counters": {
                sample(*key): value
                for key, value in sorted(self.counters.items())
            },
            "gauges": {
                sample(*key): value
                for key, value in sorted(self.gauges.items())
            },
            "histograms": {
                sample(*key): {
                    "bounds": list(bounds),
                    "counts": list(counts),
                    "sum": total,
                    "count": n,
                }
                for key, (bounds, counts, total, n) in sorted(
                    self.histograms.items()
                )
            },
        }

    @classmethod
    def from_json(cls, obj: dict) -> "MetricsSnapshot":
        def key(sample: str) -> tuple[str, LabelItems]:
            name, brace, rest = sample.partition("{")
            if not brace:
                return name, ()
            labels = tuple(
                (k, _unescape_label_value(v))
                for k, v in _LABEL_RE.findall(rest[:-1])
            )
            return name, labels

        return cls(
            counters={key(s): float(v) for s, v in obj["counters"].items()},
            gauges={key(s): float(v) for s, v in obj["gauges"].items()},
            histograms={
                key(s): (
                    tuple(float(b) for b in h["bounds"]),
                    tuple(int(c) for c in h["counts"]),
                    float(h["sum"]),
                    int(h["count"]),
                )
                for s, h in obj["histograms"].items()
            },
        )


class MetricsRegistry:
    """Process-local registry of named, labelled metrics."""

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelItems], Counter] = {}
        self._gauges: dict[tuple[str, LabelItems], Gauge] = {}
        self._histograms: dict[tuple[str, LabelItems], Histogram] = {}

    # ------------------------------------------------------------------
    # creation / lookup
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        key = (name, _label_key(labels))
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _label_key(labels))
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        key = (name, _label_key(labels))
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(buckets)
        return metric

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # ------------------------------------------------------------------
    # snapshot / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters={k: c.value for k, c in self._counters.items()},
            gauges={k: g.value for k, g in self._gauges.items()},
            histograms={
                k: (h.bounds, tuple(h.counts), h.sum, h.count)
                for k, h in self._histograms.items()
            },
        )

    def merge(self, snapshot: MetricsSnapshot) -> None:
        """Fold a worker snapshot into this registry: counters and
        histogram buckets sum; gauges overwrite (drivers should only set
        gauges locally)."""
        for (name, labels), value in snapshot.counters.items():
            self.counter(name, **dict(labels)).value += value
        for (name, labels), value in snapshot.gauges.items():
            self.gauge(name, **dict(labels)).value = value
        for (name, labels), (bounds, counts, total, n) in snapshot.histograms.items():
            hist = self.histogram(name, buckets=bounds, **dict(labels))
            if hist.bounds != bounds:
                raise ValueError(f"histogram bound mismatch for {name}")
            for i, c in enumerate(counts):
                hist.counts[i] += c
            hist.sum += total
            hist.count += n

    # ------------------------------------------------------------------
    # queries (for tests and reports)
    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels) -> float:
        metric = self._counters.get((name, _label_key(labels)))
        return metric.value if metric is not None else 0.0

    def histogram_state(
        self, name: str, **labels
    ) -> tuple[tuple[float, ...], tuple[int, ...], float, int] | None:
        metric = self._histograms.get((name, _label_key(labels)))
        if metric is None:
            return None
        return (metric.bounds, tuple(metric.counts), metric.sum, metric.count)

    def histograms_named(self, name: str) -> dict[LabelItems, Histogram]:
        return {
            labels: h for (n, labels), h in self._histograms.items() if n == name
        }


# ----------------------------------------------------------------------
# Prometheus textfile round trip
# ----------------------------------------------------------------------
def render_prometheus(registry: "MetricsRegistry | MetricsSnapshot") -> str:
    """Render a registry (or an already-taken snapshot) in the
    Prometheus textfile exposition format, deterministically sorted by
    (name, labels).  Accepting a snapshot lets concurrent readers - the
    live ``/metrics`` endpoint - copy the state under a lock and render
    outside it."""
    lines: list[str] = []
    snap = registry if isinstance(registry, MetricsSnapshot) else registry.snapshot()
    seen_types: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for (name, labels), value in sorted(snap.counters.items()):
        type_line(name, "counter")
        lines.append(f"{name}{_render_labels(labels)} {_format_value(value)}")
    for (name, labels), value in sorted(snap.gauges.items()):
        type_line(name, "gauge")
        lines.append(f"{name}{_render_labels(labels)} {_format_value(value)}")
    for (name, labels), (bounds, counts, total, n) in sorted(
        snap.histograms.items()
    ):
        type_line(name, "histogram")
        running = 0
        for bound, count in zip(bounds, counts):
            running += count
            le = _render_labels(labels, (("le", _format_value(bound)),))
            lines.append(f"{name}_bucket{le} {running}")
        running += counts[-1]
        inf = _render_labels(labels, (("le", "+Inf"),))
        lines.append(f"{name}_bucket{inf} {running}")
        lines.append(f"{name}_sum{_render_labels(labels)} {_format_value(total)}")
        lines.append(f"{name}_count{_render_labels(labels)} {n}")
    return "\n".join(lines) + "\n"


#: One quoted label pair; values may contain any escaped character
#: (including ``}``, quotes, and escaped newlines).
_LABEL_PAIR = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>(?:" + _LABEL_PAIR + r")(?:," + _LABEL_PAIR + r")*,?)?\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> dict[tuple[str, LabelItems], float]:
    """Parse a textfile back into ``{(name, labels): value}``.

    Raises :class:`ValueError` on any malformed non-comment line, which
    is exactly what the CI smoke job wants to assert.  Label values are
    unescaped, so ``parse_prometheus(render_prometheus(reg))`` round-
    trips even adversarial values (quotes, backslashes, ``}``,
    newlines).
    """
    out: dict[tuple[str, LabelItems], float] = {}
    for i, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"malformed metrics line {i}: {line!r}")
        labels_text = m.group("labels") or ""
        labels = tuple(
            (k, _unescape_label_value(v))
            for k, v in _LABEL_RE.findall(labels_text)
        )
        raw = m.group("value")
        if raw == "+Inf":
            value = math.inf
        elif raw == "-Inf":
            value = -math.inf
        elif raw == "NaN":
            value = math.nan
        else:
            value = float(raw)
        out[(m.group("name"), labels)] = value
    return out
